#include "synth/area.hpp"

#include <cmath>
#include <stdexcept>

namespace metacore::synth {

namespace {

/// Width scaling relative to the 16-bit calibration constants.
double linear_width(int bits) { return static_cast<double>(bits) / 16.0; }
double quadratic_width(int bits) {
  const double r = linear_width(bits);
  return r * r;
}

}  // namespace

IirCostResult evaluate_iir_cost(const IirCostQuery& query,
                                const SynthAreaParams& params) {
  if (query.sample_period_us <= 0.0) {
    throw std::invalid_argument("evaluate_iir_cost: period must be positive");
  }
  if (query.word_bits < 4 || query.word_bits > 32) {
    throw std::invalid_argument("evaluate_iir_cost: word length out of range");
  }
  const Dfg dfg = build_filter_dfg(query.structure, query.order);

  IirCostResult result;
  result.clock_mhz =
      cost::achievable_clock_mhz(query.word_bits, query.tech);
  // Initiation-interval budget per sample: period [us] * clock [MHz].
  const int budget = static_cast<int>(
      std::floor(query.sample_period_us * result.clock_mhz + 1e-9));
  result.recurrence_mii = dfg.recurrence_mii(kMulLatency, kAddLatency);
  if (budget < 1) return result;  // infeasible: period shorter than a cycle

  const PipelinedResult alloc = pipelined_allocation(dfg, budget);
  if (!alloc.feasible) return result;

  result.feasible = true;
  result.allocation = alloc.allocation;
  result.cycles_per_sample = alloc.initiation_interval;
  result.latency_cycles = alloc.schedule.cycles;
  result.registers = dfg.state_registers() +
                     alloc.schedule.max_live_values * alloc.overlap;

  const double lambda = query.tech.area_lambda();
  result.exu_area_mm2 =
      lambda * (alloc.allocation.multipliers * params.mul_area_16bit *
                    quadratic_width(query.word_bits) +
                alloc.allocation.alus * params.alu_area_16bit *
                    linear_width(query.word_bits));
  result.register_area_mm2 = lambda * result.registers *
                             params.reg_area_16bit *
                             linear_width(query.word_bits);
  // Interconnect grows with how many producers share each bus: scale the
  // base fraction by log2 of the sharing degree (ops per functional unit).
  const int fu_ops = dfg.count(DfgOp::Mul) + dfg.count(DfgOp::Add) +
                     dfg.count(DfgOp::Sub);
  const int units = alloc.allocation.multipliers + alloc.allocation.alus;
  const double sharing =
      std::max(1.0, static_cast<double>(fu_ops) / units);
  result.interconnect_area_mm2 =
      params.interconnect_fraction * (1.0 + std::log2(sharing) / 3.0) *
      (result.exu_area_mm2 + result.register_area_mm2);
  result.control_area_mm2 =
      lambda * (params.control_base_area +
                params.control_area_per_state * alloc.schedule.cycles);
  result.area_mm2 = result.exu_area_mm2 + result.register_area_mm2 +
                    result.interconnect_area_mm2 + result.control_area_mm2;

  result.latency_us = alloc.schedule.cycles / result.clock_mhz;
  result.throughput_period_us = alloc.initiation_interval / result.clock_mhz;
  return result;
}

}  // namespace metacore::synth
