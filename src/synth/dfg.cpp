#include "synth/dfg.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace metacore::synth {

namespace {

using dsp::StructureKind;

class Builder {
 public:
  explicit Builder(std::string name) { dfg_.name = std::move(name); }

  int add(DfgOp op, std::vector<int> inputs, std::string tag = {}) {
    dfg_.nodes.push_back({op, std::move(inputs), std::move(tag), -1});
    return static_cast<int>(dfg_.nodes.size()) - 1;
  }

  int new_reg() { return next_reg_++; }

  int state_read(int reg, std::string tag = {}) {
    dfg_.nodes.push_back({DfgOp::StateRead, {}, std::move(tag), reg});
    return static_cast<int>(dfg_.nodes.size()) - 1;
  }

  void state_write(int reg, int value, std::string tag = {}) {
    dfg_.nodes.push_back({DfgOp::StateWrite, {value}, std::move(tag), reg});
  }

  /// Balanced binary adder-tree reduction of the given values.
  int reduce_add(std::vector<int> values, const std::string& tag) {
    if (values.empty()) {
      throw std::invalid_argument("reduce_add: nothing to reduce");
    }
    while (values.size() > 1) {
      std::vector<int> next;
      for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
        next.push_back(add(DfgOp::Add, {values[i], values[i + 1]}, tag));
      }
      if (values.size() % 2 == 1) next.push_back(values.back());
      values = std::move(next);
    }
    return values[0];
  }

  Dfg take() && { return std::move(dfg_); }

 private:
  Dfg dfg_;
  int next_reg_ = 0;
};

Dfg direct_form1(int order) {
  Builder b("df1");
  const int x = b.add(DfgOp::Input, {});
  std::vector<int> xreg(order), yreg(order), xs(order), ys(order);
  for (int i = 0; i < order; ++i) {
    xreg[i] = b.new_reg();
    xs[i] = b.state_read(xreg[i], "xh");
  }
  for (int i = 0; i < order; ++i) {
    yreg[i] = b.new_reg();
    ys[i] = b.state_read(yreg[i], "yh");
  }
  std::vector<int> ff;
  {
    const int c = b.add(DfgOp::Constant, {}, "b0");
    ff.push_back(b.add(DfgOp::Mul, {c, x}, "ff"));
  }
  for (int i = 0; i < order; ++i) {
    const int c = b.add(DfgOp::Constant, {}, "b");
    ff.push_back(b.add(DfgOp::Mul, {c, xs[i]}, "ff"));
  }
  const int ff_sum = b.reduce_add(ff, "ff");
  std::vector<int> fb;
  for (int i = 0; i < order; ++i) {
    const int c = b.add(DfgOp::Constant, {}, "a");
    fb.push_back(b.add(DfgOp::Mul, {c, ys[i]}, "fb"));
  }
  const int fb_sum = b.reduce_add(fb, "fb");
  const int y = b.add(DfgOp::Sub, {ff_sum, fb_sum}, "out");
  b.add(DfgOp::Output, {y});
  // Shift registers: x_0' = x, x_i' = x_{i-1}; likewise for y.
  b.state_write(xreg[0], x, "xh");
  for (int i = 1; i < order; ++i) b.state_write(xreg[i], xs[i - 1], "xh");
  b.state_write(yreg[0], y, "yh");
  for (int i = 1; i < order; ++i) b.state_write(yreg[i], ys[i - 1], "yh");
  return std::move(b).take();
}

Dfg direct_form2(int order) {
  Builder b("df2");
  const int x = b.add(DfgOp::Input, {});
  std::vector<int> wreg(order), w(order);
  for (int i = 0; i < order; ++i) {
    wreg[i] = b.new_reg();
    w[i] = b.state_read(wreg[i], "w");
  }
  std::vector<int> fb;
  for (int i = 0; i < order; ++i) {
    const int c = b.add(DfgOp::Constant, {}, "a");
    fb.push_back(b.add(DfgOp::Mul, {c, w[i]}, "fb"));
  }
  const int fb_sum = b.reduce_add(fb, "fb");
  const int w0 = b.add(DfgOp::Sub, {x, fb_sum}, "w0");
  std::vector<int> ff;
  {
    const int c = b.add(DfgOp::Constant, {}, "b0");
    ff.push_back(b.add(DfgOp::Mul, {c, w0}, "ff"));
  }
  for (int i = 0; i < order; ++i) {
    const int c = b.add(DfgOp::Constant, {}, "b");
    ff.push_back(b.add(DfgOp::Mul, {c, w[i]}, "ff"));
  }
  const int y = b.reduce_add(ff, "ff");
  b.add(DfgOp::Output, {y});
  b.state_write(wreg[0], w0, "w");
  for (int i = 1; i < order; ++i) b.state_write(wreg[i], w[i - 1], "w");
  return std::move(b).take();
}

Dfg direct_form2_transposed(int order) {
  Builder b("df2t");
  const int x = b.add(DfgOp::Input, {});
  std::vector<int> sreg(order), s(order);
  for (int i = 0; i < order; ++i) {
    sreg[i] = b.new_reg();
    s[i] = b.state_read(sreg[i], "s");
  }
  const int b0 = b.add(DfgOp::Constant, {}, "b0");
  const int b0x = b.add(DfgOp::Mul, {b0, x}, "out");
  const int y = b.add(DfgOp::Add, {b0x, s[0]}, "out");
  b.add(DfgOp::Output, {y});
  for (int i = 0; i < order; ++i) {
    const int bc = b.add(DfgOp::Constant, {}, "b");
    const int ac = b.add(DfgOp::Constant, {}, "a");
    const int bx = b.add(DfgOp::Mul, {bc, x}, "s");
    const int ay = b.add(DfgOp::Mul, {ac, y}, "s");
    const int diff = b.add(DfgOp::Sub, {bx, ay}, "s");
    const int next =
        i + 1 < order ? b.add(DfgOp::Add, {diff, s[i + 1]}, "s") : diff;
    b.state_write(sreg[i], next, "s");
  }
  return std::move(b).take();
}

/// One DF2 biquad; returns the section output node.
int biquad(Builder& b, int input, const std::string& tag, bool first_order) {
  const int r1 = b.new_reg();
  const int w1 = b.state_read(r1, tag);
  int r2 = -1, w2 = -1;
  if (!first_order) {
    r2 = b.new_reg();
    w2 = b.state_read(r2, tag);
  }
  const int a1 = b.add(DfgOp::Constant, {}, tag);
  const int m1 = b.add(DfgOp::Mul, {a1, w1}, tag);
  int fb = m1;
  if (!first_order) {
    const int a2 = b.add(DfgOp::Constant, {}, tag);
    const int m2 = b.add(DfgOp::Mul, {a2, w2}, tag);
    fb = b.add(DfgOp::Add, {m1, m2}, tag);
  }
  const int w0 = b.add(DfgOp::Sub, {input, fb}, tag);
  const int b0 = b.add(DfgOp::Constant, {}, tag);
  const int p0 = b.add(DfgOp::Mul, {b0, w0}, tag);
  const int b1 = b.add(DfgOp::Constant, {}, tag);
  const int p1 = b.add(DfgOp::Mul, {b1, w1}, tag);
  int out = b.add(DfgOp::Add, {p0, p1}, tag);
  if (!first_order) {
    const int b2 = b.add(DfgOp::Constant, {}, tag);
    const int p2 = b.add(DfgOp::Mul, {b2, w2}, tag);
    out = b.add(DfgOp::Add, {out, p2}, tag);
  }
  b.state_write(r1, w0, tag);
  if (!first_order) b.state_write(r2, w1, tag);
  return out;
}

Dfg cascade(int order) {
  Builder b("cascade");
  int v = b.add(DfgOp::Input, {});
  const int full_sections = order / 2;
  const bool odd = order % 2 == 1;
  for (int s = 0; s < full_sections; ++s) {
    v = biquad(b, v, "sec" + std::to_string(s), false);
  }
  if (odd) v = biquad(b, v, "sec" + std::to_string(full_sections), true);
  b.add(DfgOp::Output, {v});
  return std::move(b).take();
}

Dfg parallel(int order) {
  Builder b("parallel");
  const int x = b.add(DfgOp::Input, {});
  std::vector<int> terms;
  const int c = b.add(DfgOp::Constant, {}, "direct");
  terms.push_back(b.add(DfgOp::Mul, {c, x}, "direct"));
  const int full_sections = order / 2;
  const bool odd = order % 2 == 1;
  for (int s = 0; s < full_sections; ++s) {
    const std::string tag = "sec" + std::to_string(s);
    const int r1 = b.new_reg();
    const int r2 = b.new_reg();
    const int w1 = b.state_read(r1, tag);
    const int w2 = b.state_read(r2, tag);
    const int a1 = b.add(DfgOp::Constant, {}, tag);
    const int a2 = b.add(DfgOp::Constant, {}, tag);
    const int m1 = b.add(DfgOp::Mul, {a1, w1}, tag);
    const int m2 = b.add(DfgOp::Mul, {a2, w2}, tag);
    const int fb = b.add(DfgOp::Add, {m1, m2}, tag);
    const int w0 = b.add(DfgOp::Sub, {x, fb}, tag);
    const int b0 = b.add(DfgOp::Constant, {}, tag);
    const int b1c = b.add(DfgOp::Constant, {}, tag);
    const int p0 = b.add(DfgOp::Mul, {b0, w0}, tag);
    const int p1 = b.add(DfgOp::Mul, {b1c, w1}, tag);
    terms.push_back(b.add(DfgOp::Add, {p0, p1}, tag));
    b.state_write(r1, w0, tag);
    b.state_write(r2, w1, tag);
  }
  if (odd) {
    const int r1 = b.new_reg();
    const int w1 = b.state_read(r1, "sec_r");
    const int a1 = b.add(DfgOp::Constant, {}, "sec_r");
    const int m1 = b.add(DfgOp::Mul, {a1, w1}, "sec_r");
    const int w0 = b.add(DfgOp::Sub, {x, m1}, "sec_r");
    const int b0 = b.add(DfgOp::Constant, {}, "sec_r");
    terms.push_back(b.add(DfgOp::Mul, {b0, w0}, "sec_r"));
    b.state_write(r1, w0, "sec_r");
  }
  const int y = b.reduce_add(terms, "sum");
  b.add(DfgOp::Output, {y});
  return std::move(b).take();
}

Dfg lattice_ladder(int order) {
  Builder b("ladder");
  const int x = b.add(DfgOp::Input, {});
  std::vector<int> greg(order), g_read(order);
  for (int i = 0; i < order; ++i) {
    greg[i] = b.new_reg();
    g_read[i] = b.state_read(greg[i], "g");
  }
  // Downward f chain (serial through every stage).
  std::vector<int> f(order + 1);
  f[order] = x;
  std::vector<int> k(order);
  for (int m = order; m >= 1; --m) {
    k[m - 1] = b.add(DfgOp::Constant, {}, "k");
    const int prod = b.add(DfgOp::Mul, {k[m - 1], g_read[m - 1]}, "f");
    f[m - 1] = b.add(DfgOp::Sub, {f[m], prod}, "f");
  }
  // Upward g updates.
  std::vector<int> g_new(order + 1);
  g_new[0] = f[0];
  for (int m = 1; m <= order; ++m) {
    const int prod = b.add(DfgOp::Mul, {k[m - 1], f[m - 1]}, "g");
    g_new[m] = b.add(DfgOp::Add, {prod, g_read[m - 1]}, "g");
  }
  for (int m = 0; m < order; ++m) b.state_write(greg[m], g_new[m], "g");
  // Ladder taps off the updated g values.
  std::vector<int> taps;
  for (int m = 0; m <= order; ++m) {
    const int v = b.add(DfgOp::Constant, {}, "v");
    taps.push_back(b.add(DfgOp::Mul, {v, g_new[m]}, "tap"));
  }
  const int y = b.reduce_add(taps, "tap");
  b.add(DfgOp::Output, {y});
  return std::move(b).take();
}

int latency_of(DfgOp op, int mul_latency, int add_latency) {
  if (op == DfgOp::Mul) return mul_latency;
  if (op == DfgOp::Add || op == DfgOp::Sub) return add_latency;
  return 0;
}

}  // namespace

std::string to_string(DfgOp op) {
  switch (op) {
    case DfgOp::Input:
      return "input";
    case DfgOp::Constant:
      return "const";
    case DfgOp::StateRead:
      return "state-read";
    case DfgOp::Mul:
      return "mul";
    case DfgOp::Add:
      return "add";
    case DfgOp::Sub:
      return "sub";
    case DfgOp::StateWrite:
      return "state-write";
    case DfgOp::Output:
      return "output";
  }
  return "?";
}

int Dfg::count(DfgOp op) const {
  int n = 0;
  for (const auto& node : nodes) {
    if (node.op == op) ++n;
  }
  return n;
}

int Dfg::critical_path(int mul_latency, int add_latency) const {
  std::vector<int> depth(nodes.size(), 0);
  int best = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    int start = 0;
    for (int in : nodes[i].inputs) {
      start = std::max(start, depth[static_cast<std::size_t>(in)]);
    }
    depth[i] = start + latency_of(nodes[i].op, mul_latency, add_latency);
    best = std::max(best, depth[i]);
  }
  return best;
}

int Dfg::recurrence_mii(int mul_latency, int add_latency) const {
  validate();
  // Edge list: dataflow edges (distance 0, weight = producer latency) plus
  // state write -> read edges (distance 1, weight 0).
  struct Edge {
    int from, to, weight, distance;
  };
  std::vector<Edge> edges;
  std::unordered_map<int, int> write_of;  // register -> write node
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int in : nodes[i].inputs) {
      edges.push_back({in, static_cast<int>(i),
                       latency_of(nodes[static_cast<std::size_t>(in)].op,
                                  mul_latency, add_latency),
                       0});
    }
    if (nodes[i].op == DfgOp::StateWrite) {
      write_of[nodes[i].register_id] = static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == DfgOp::StateRead) {
      const auto it = write_of.find(nodes[i].register_id);
      if (it != write_of.end()) {
        edges.push_back({it->second, static_cast<int>(i), 0, 1});
      }
    }
  }

  // II is feasible iff the graph with edge weights (w - II*d) has no
  // positive cycle (Bellman-Ford style relaxation).
  const auto feasible = [&](int ii) {
    std::vector<double> dist(nodes.size(), 0.0);
    for (std::size_t round = 0; round <= nodes.size(); ++round) {
      bool changed = false;
      for (const Edge& e : edges) {
        const double cand = dist[static_cast<std::size_t>(e.from)] +
                            e.weight - static_cast<double>(ii) * e.distance;
        if (cand > dist[static_cast<std::size_t>(e.to)] + 1e-9) {
          dist[static_cast<std::size_t>(e.to)] = cand;
          changed = true;
        }
      }
      if (!changed) return true;
    }
    return false;  // still relaxing after |V| rounds -> positive cycle
  };

  int lo = 1, hi = std::max(1, critical_path(mul_latency, add_latency));
  if (feasible(lo)) return lo;
  while (lo + 1 < hi) {
    const int mid = (lo + hi) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void Dfg::validate() const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgNode& node = nodes[i];
    for (int in : node.inputs) {
      if (in < 0 || static_cast<std::size_t>(in) >= i) {
        throw std::invalid_argument("Dfg: node " + std::to_string(i) +
                                    " has a non-forward input reference");
      }
    }
    switch (node.op) {
      case DfgOp::Input:
      case DfgOp::Constant:
        if (!node.inputs.empty()) {
          throw std::invalid_argument("Dfg: source node with inputs");
        }
        break;
      case DfgOp::StateRead:
        if (!node.inputs.empty() || node.register_id < 0) {
          throw std::invalid_argument("Dfg: malformed state read");
        }
        break;
      case DfgOp::Mul:
      case DfgOp::Add:
      case DfgOp::Sub:
        if (node.inputs.size() != 2) {
          throw std::invalid_argument("Dfg: binary node without two inputs");
        }
        break;
      case DfgOp::StateWrite:
        if (node.inputs.size() != 1 || node.register_id < 0) {
          throw std::invalid_argument("Dfg: malformed state write");
        }
        break;
      case DfgOp::Output:
        if (node.inputs.size() != 1) {
          throw std::invalid_argument("Dfg: sink node without one input");
        }
        break;
    }
  }
}

Dfg build_filter_dfg(StructureKind kind, int order) {
  if (order < 1 || order > 64) {
    throw std::invalid_argument("build_filter_dfg: order out of range");
  }
  Dfg dfg;
  switch (kind) {
    case StructureKind::DirectForm1:
      dfg = direct_form1(order);
      break;
    case StructureKind::DirectForm2:
      dfg = direct_form2(order);
      break;
    case StructureKind::DirectForm2Transposed:
      dfg = direct_form2_transposed(order);
      break;
    case StructureKind::Cascade:
      dfg = cascade(order);
      break;
    case StructureKind::Parallel:
      dfg = parallel(order);
      break;
    case StructureKind::LatticeLadder:
      dfg = lattice_ladder(order);
      break;
  }
  dfg.validate();
  return dfg;
}

Dfg build_filter_dfg(const dsp::Realization& realization, int order) {
  return build_filter_dfg(realization.kind(), order);
}

}  // namespace metacore::synth
