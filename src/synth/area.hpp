// HYPER-style early area estimation: active logic area decomposed into
// execution units, registers, and interconnect, plus a statistical
// prediction of total (placed-and-routed) area — mirroring the estimators
// the paper takes from [Rab91].
#pragma once

#include "cost/area_model.hpp"
#include "synth/dfg.hpp"
#include "synth/schedule.hpp"

namespace metacore::synth {

/// Calibration constants (mm^2 at 0.35 um). Datapath-width scaling: adders
/// and registers linear in word length, array multipliers quadratic —
/// consistent with the [Erc98] factors used on the Viterbi side.
struct SynthAreaParams {
  double mul_area_16bit = 0.110;   ///< 16x16 array multiplier
  double alu_area_16bit = 0.016;   ///< 16-bit adder/subtractor with mux
  double reg_area_16bit = 0.0045;  ///< 16-bit register with input mux
  /// Interconnect/steering overhead per unit of active area, grows with the
  /// number of sources sharing each bus (HYPER's statistical model).
  double interconnect_fraction = 0.18;
  /// Controller overhead: base plus per-schedule-state increment.
  double control_base_area = 0.015;
  double control_area_per_state = 0.0012;
};

/// The IIR experiments in the paper come from the HYPER/Lager generation of
/// tools; its area numbers (units to tens of mm^2 for an 8th-order filter)
/// correspond to a ~1.2 um process, so that is the IIR-side default.
inline cost::TechnologyParams hyper_era_technology() {
  cost::TechnologyParams tech;
  tech.feature_um = 1.2;
  return tech;
}

struct IirCostQuery {
  dsp::StructureKind structure = dsp::StructureKind::Cascade;
  int order = 8;
  int word_bits = 12;
  /// Required sample period in microseconds (the paper's Table 4 axis).
  double sample_period_us = 1.0;
  cost::TechnologyParams tech = hyper_era_technology();
};

struct IirCostResult {
  bool feasible = false;
  double area_mm2 = 0.0;  ///< statistical total-area prediction
  double exu_area_mm2 = 0.0;
  double register_area_mm2 = 0.0;
  double interconnect_area_mm2 = 0.0;
  double control_area_mm2 = 0.0;
  Allocation allocation{};
  int cycles_per_sample = 0;     ///< achieved initiation interval
  int latency_cycles = 0;        ///< one-iteration schedule length
  int recurrence_mii = 0;
  int registers = 0;  ///< state + pipeline temporaries
  double clock_mhz = 0.0;
  double latency_us = 0.0;       ///< input-to-output delay
  double throughput_period_us = 0.0;  ///< achieved sample period
};

/// Evaluates the minimum-area datapath for the structure meeting the sample
/// period: builds the DFG, derives the initiation-interval budget from the
/// technology clock, forms the pipelined steady-state allocation, and
/// prices the result. Infeasible when the period is below the structure's
/// recurrence bound (e.g. the ladder's serial stage chain at tight rates).
IirCostResult evaluate_iir_cost(const IirCostQuery& query,
                                const SynthAreaParams& params = {});

}  // namespace metacore::synth
