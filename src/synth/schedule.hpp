// Resource-constrained scheduling of filter DFGs: ASAP/ALAP bounds and
// critical-path list scheduling under an allocation of multipliers and
// ALUs. The HYPER flow the paper uses performs exactly this step to obtain
// "the length of the clock cycle and the number of cycles used", from which
// throughput and latency follow.
#pragma once

#include <string>
#include <vector>

#include "synth/dfg.hpp"

namespace metacore::synth {

/// Functional-unit allocation for a datapath.
struct Allocation {
  int multipliers = 1;
  int alus = 1;  ///< adders/subtractors

  void validate() const;
};

/// Default FU latencies in clock cycles (array multiplier pipelined over 2
/// cycles; ALU single cycle) — the clock period itself comes from the
/// technology model.
inline constexpr int kMulLatency = 2;
inline constexpr int kAddLatency = 1;

struct DfgSchedule {
  int cycles = 0;                 ///< schedule length per sample
  int max_live_values = 0;        ///< peak temporaries (excl. state registers)
  std::vector<int> start_cycle;   ///< per node; -1 for zero-latency nodes
};

/// ASAP start times with unlimited resources.
std::vector<int> asap_schedule(const Dfg& dfg);

/// ALAP start times against the given deadline (must be >= critical path).
std::vector<int> alap_schedule(const Dfg& dfg, int deadline);

/// List schedule under the allocation; priority = ALAP slack.
DfgSchedule list_schedule(const Dfg& dfg, const Allocation& alloc);

/// Smallest allocation (by area order: multipliers weighted heavier) whose
/// schedule meets `cycle_budget`, or nullopt-like {0,0} sentinel when even
/// the richest allocation in the search box fails. `max_units` bounds the
/// search per FU type.
struct AllocationResult {
  bool feasible = false;
  Allocation allocation{};
  DfgSchedule schedule{};
};
AllocationResult minimize_allocation(const Dfg& dfg, int cycle_budget,
                                     int max_units = 16);

/// Functionally pipelined allocation: the sample period only has to cover
/// the initiation interval, not the whole iteration latency. Feasible iff
/// the II budget is at least the DFG's recurrence MII; the allocation is
/// then the steady-state resource bound ceil(ops / II) per FU class, and
/// the returned schedule gives the iteration latency under that allocation.
struct PipelinedResult {
  bool feasible = false;
  Allocation allocation{};
  DfgSchedule schedule{};   ///< one-iteration schedule (latency)
  int initiation_interval = 0;
  int recurrence_mii = 0;
  /// Iterations in flight: ceil(latency / II); scales pipeline registers.
  int overlap = 1;
};
PipelinedResult pipelined_allocation(const Dfg& dfg, int ii_budget,
                                     int max_units = 16);

/// Text Gantt chart of a schedule: one row per cycle listing the FU
/// operations issued there — the inspectable analog of HYPER's schedule
/// view. Zero-latency nodes (reads/writes/IO) are omitted.
std::string schedule_gantt(const Dfg& dfg, const DfgSchedule& schedule);

}  // namespace metacore::synth
