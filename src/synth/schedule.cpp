#include "synth/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <stdexcept>

namespace metacore::synth {

namespace {

int node_latency(DfgOp op) {
  switch (op) {
    case DfgOp::Mul:
      return kMulLatency;
    case DfgOp::Add:
    case DfgOp::Sub:
      return kAddLatency;
    default:
      return 0;
  }
}

bool needs_fu(DfgOp op) {
  return op == DfgOp::Mul || op == DfgOp::Add || op == DfgOp::Sub;
}

bool is_mul(DfgOp op) { return op == DfgOp::Mul; }

}  // namespace

void Allocation::validate() const {
  if (multipliers < 1 || alus < 1 || multipliers > 64 || alus > 64) {
    throw std::invalid_argument("Allocation: unit counts out of range");
  }
}

std::vector<int> asap_schedule(const Dfg& dfg) {
  dfg.validate();
  std::vector<int> start(dfg.nodes.size(), 0);
  for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
    int ready = 0;
    for (int in : dfg.nodes[i].inputs) {
      const auto j = static_cast<std::size_t>(in);
      ready = std::max(ready, start[j] + node_latency(dfg.nodes[j].op));
    }
    start[i] = ready;
  }
  return start;
}

std::vector<int> alap_schedule(const Dfg& dfg, int deadline) {
  dfg.validate();
  if (deadline < dfg.critical_path(kMulLatency, kAddLatency)) {
    throw std::invalid_argument("alap_schedule: deadline below critical path");
  }
  std::vector<int> finish(dfg.nodes.size(), deadline);
  for (std::size_t i = dfg.nodes.size(); i-- > 0;) {
    const int start_i = finish[i] - node_latency(dfg.nodes[i].op);
    for (int in : dfg.nodes[i].inputs) {
      auto& f = finish[static_cast<std::size_t>(in)];
      f = std::min(f, start_i);
    }
  }
  std::vector<int> start(dfg.nodes.size());
  for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
    start[i] = finish[i] - node_latency(dfg.nodes[i].op);
  }
  return start;
}

DfgSchedule list_schedule(const Dfg& dfg, const Allocation& alloc) {
  dfg.validate();
  alloc.validate();
  const std::size_t n = dfg.nodes.size();
  DfgSchedule result;
  result.start_cycle.assign(n, -1);

  // Priorities: negative ALAP slack (ALAP against the resource-free
  // critical path; tighter nodes first).
  const int cp = dfg.critical_path(kMulLatency, kAddLatency);
  const std::vector<int> alap = alap_schedule(dfg, cp);

  std::vector<int> remaining_inputs(n, 0);
  std::vector<std::vector<int>> consumers(n);
  for (std::size_t i = 0; i < n; ++i) {
    remaining_inputs[i] = static_cast<int>(dfg.nodes[i].inputs.size());
    for (int in : dfg.nodes[i].inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }

  std::vector<int> ready_at(n, 0);  // earliest issue cycle once inputs known
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining_inputs[i] == 0) ready.push_back(static_cast<int>(i));
  }

  auto finish_node = [&](int idx, int start, std::vector<int>& newly_ready) {
    result.start_cycle[static_cast<std::size_t>(idx)] = start;
    const int done = start + node_latency(dfg.nodes[static_cast<std::size_t>(idx)].op);
    result.cycles = std::max(result.cycles, done);
    for (int c : consumers[static_cast<std::size_t>(idx)]) {
      auto& r = ready_at[static_cast<std::size_t>(c)];
      r = std::max(r, done);
      if (--remaining_inputs[static_cast<std::size_t>(c)] == 0) {
        newly_ready.push_back(c);
      }
    }
  };

  // Zero-latency nodes (inputs, constants, state reads/writes, outputs) are
  // "scheduled" at their ready time without consuming FU slots.
  int scheduled = 0;
  int cycle = 0;
  while (scheduled < static_cast<int>(n)) {
    std::vector<int> newly_ready;
    // First resolve every ready zero-latency node regardless of cycle.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::vector<int> still;
      for (int idx : ready) {
        const DfgNode& node = dfg.nodes[static_cast<std::size_t>(idx)];
        if (!needs_fu(node.op)) {
          finish_node(idx, ready_at[static_cast<std::size_t>(idx)], newly_ready);
          ++scheduled;
          progressed = true;
        } else {
          still.push_back(idx);
        }
      }
      ready = std::move(still);
      for (int idx : newly_ready) ready.push_back(idx);
      newly_ready.clear();
    }
    if (scheduled == static_cast<int>(n)) break;

    // Issue FU nodes this cycle, most-urgent (smallest ALAP) first.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      const int sa = alap[static_cast<std::size_t>(a)];
      const int sb = alap[static_cast<std::size_t>(b)];
      return sa != sb ? sa < sb : a < b;
    });
    int free_mul = alloc.multipliers;
    int free_alu = alloc.alus;
    std::vector<int> still;
    for (int idx : ready) {
      const DfgNode& node = dfg.nodes[static_cast<std::size_t>(idx)];
      const bool mul = is_mul(node.op);
      int& slots = mul ? free_mul : free_alu;
      if (ready_at[static_cast<std::size_t>(idx)] <= cycle && slots > 0) {
        --slots;
        finish_node(idx, cycle, newly_ready);
        ++scheduled;
      } else {
        still.push_back(idx);
      }
    }
    ready = std::move(still);
    for (int idx : newly_ready) ready.push_back(idx);
    ++cycle;
    if (cycle > 1'000'000) {
      throw std::logic_error("list_schedule: failed to converge");
    }
  }

  // Peak temporary liveness: a value is live from the end of its producing
  // node to the start of its last consumer. State reads count from cycle 0;
  // state writes hold to the end of the iteration (they are the registers
  // themselves, counted separately by the area model).
  std::vector<int> live_begin(n, 0), live_end(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const DfgNode& node = dfg.nodes[i];
    if (needs_fu(node.op)) {
      live_begin[i] = result.start_cycle[i] + node_latency(node.op);
    } else {
      live_begin[i] = result.start_cycle[i];
    }
    for (int in : node.inputs) {
      auto& e = live_end[static_cast<std::size_t>(in)];
      e = std::max(e, result.start_cycle[i]);
    }
  }
  std::vector<int> live_count(static_cast<std::size_t>(result.cycles) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const DfgNode& node = dfg.nodes[i];
    // Constants live in ROM, state registers counted by the area model.
    if (node.op == DfgOp::Constant || node.op == DfgOp::StateRead ||
        node.op == DfgOp::StateWrite || node.op == DfgOp::Output) {
      continue;
    }
    for (int c = live_begin[i]; c <= std::min(live_end[i], result.cycles); ++c) {
      if (c >= 0) ++live_count[static_cast<std::size_t>(c)];
    }
  }
  result.max_live_values =
      live_count.empty()
          ? 0
          : *std::max_element(live_count.begin(), live_count.end());
  return result;
}

PipelinedResult pipelined_allocation(const Dfg& dfg, int ii_budget,
                                     int max_units) {
  if (ii_budget < 1) {
    throw std::invalid_argument("pipelined_allocation: empty II budget");
  }
  PipelinedResult result;
  result.recurrence_mii = dfg.recurrence_mii(kMulLatency, kAddLatency);
  if (ii_budget < result.recurrence_mii) return result;  // recurrence-bound

  const int mul_ops = dfg.count(DfgOp::Mul);
  const int alu_ops = dfg.count(DfgOp::Add) + dfg.count(DfgOp::Sub);
  Allocation alloc;
  alloc.multipliers = std::max(1, (mul_ops + ii_budget - 1) / ii_budget);
  alloc.alus = std::max(1, (alu_ops + ii_budget - 1) / ii_budget);
  if (alloc.multipliers > max_units || alloc.alus > max_units) return result;

  result.feasible = true;
  result.allocation = alloc;
  result.schedule = list_schedule(dfg, alloc);
  // Achievable steady-state interval under this allocation: the larger of
  // the recurrence bound and the per-class resource bounds (<= ii_budget by
  // construction of the allocation).
  const int res_bound =
      std::max((mul_ops + alloc.multipliers - 1) / alloc.multipliers,
               (alu_ops + alloc.alus - 1) / alloc.alus);
  result.initiation_interval = std::max(result.recurrence_mii, res_bound);
  // Iterations in flight at the *requested* rate — what sizes the pipeline
  // register overhead.
  result.overlap = (result.schedule.cycles + ii_budget - 1) / ii_budget;
  return result;
}

std::string schedule_gantt(const Dfg& dfg, const DfgSchedule& schedule) {
  if (schedule.start_cycle.size() != dfg.nodes.size()) {
    throw std::invalid_argument("schedule_gantt: schedule/graph mismatch");
  }
  std::string out = "cycle | issued operations\n";
  for (int cycle = 0; cycle <= schedule.cycles; ++cycle) {
    std::string line;
    for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
      const DfgOp op = dfg.nodes[i].op;
      if (op != DfgOp::Mul && op != DfgOp::Add && op != DfgOp::Sub) continue;
      if (schedule.start_cycle[i] != cycle) continue;
      if (!line.empty()) line += "  ";
      line += to_string(op) + "#" + std::to_string(i);
      if (!dfg.nodes[i].tag.empty()) line += "(" + dfg.nodes[i].tag + ")";
    }
    if (line.empty()) continue;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5d", cycle);
    out += std::string(buf) + " | " + line + "\n";
  }
  return out;
}

AllocationResult minimize_allocation(const Dfg& dfg, int cycle_budget,
                                     int max_units) {
  if (cycle_budget < 1) {
    throw std::invalid_argument("minimize_allocation: empty cycle budget");
  }
  AllocationResult best;
  double best_weight = std::numeric_limits<double>::infinity();
  for (int muls = 1; muls <= max_units; ++muls) {
    for (int alus = 1; alus <= max_units; ++alus) {
      const Allocation alloc{muls, alus};
      // Weight approximates area order so we can prune dominated points:
      // a multiplier costs several ALUs.
      const double weight = 4.0 * muls + alus;
      if (weight >= best_weight) continue;
      const DfgSchedule sched = list_schedule(dfg, alloc);
      if (sched.cycles <= cycle_budget) {
        best.feasible = true;
        best.allocation = alloc;
        best.schedule = sched;
        best_weight = weight;
      }
    }
  }
  return best;
}

}  // namespace metacore::synth
