// Small numeric helpers shared across the library: dB conversions, the
// Gaussian Q-function (theoretical BPSK error rates used to sanity-check the
// Monte-Carlo channel), and interpolation primitives used by the
// multiresolution search's smooth-metric estimator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace metacore::util {

/// Gaussian tail probability Q(x) = P(N(0,1) > x).
double q_function(double x);

/// Inverse of q_function on (0, 1), by bisection. Accurate to ~1e-12.
double q_function_inv(double p);

/// Theoretical BPSK bit error rate over AWGN at the given Eb/N0 (linear).
double bpsk_ber(double ebn0_linear);

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

/// Linear interpolation of y(x) on a strictly increasing grid `xs`.
/// Clamps outside the grid. Requires xs.size() == ys.size() >= 1.
double interp1(std::span<const double> xs, std::span<const double> ys,
               double x);

/// Multilinear interpolation on a regular axis-aligned grid.
///
/// `axes[d]` is the strictly increasing coordinate vector of dimension d and
/// `values` is stored row-major with the last axis fastest. Used by the
/// search engine to estimate smooth cost metrics (area, throughput) between
/// evaluated grid points, exactly as the paper prescribes in Section 4.4.
class MultilinearInterpolator {
 public:
  MultilinearInterpolator(std::vector<std::vector<double>> axes,
                          std::vector<double> values);

  double operator()(std::span<const double> point) const;

  std::size_t dimensions() const { return axes_.size(); }

 private:
  std::vector<std::vector<double>> axes_;
  std::vector<double> values_;
  std::vector<std::size_t> strides_;
};

/// Integer power with overflow-unaware semantics (inputs are small).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp-- > 0) r *= base;
  return r;
}

/// True when |a - b| <= tol * max(1, |a|, |b|).
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace metacore::util
