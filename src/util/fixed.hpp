// Saturating Q-format fixed-point arithmetic: the numeric substrate for
// bit-accurate datapath simulation (signal quantization and round-off, not
// just coefficient quantization).
#pragma once

#include <cstdint>
#include <string>

namespace metacore::util {

/// A signed fixed-point format: `word_bits` total (including sign),
/// `frac_bits` fractional. Range [-2^(i), 2^(i) - 2^-f] with
/// i = word_bits - 1 - frac_bits integer bits.
struct QFormat {
  int word_bits = 16;
  int frac_bits = 14;

  int integer_bits() const { return word_bits - 1 - frac_bits; }
  double resolution() const;
  double max_value() const;
  double min_value() const;
  std::string label() const;  ///< e.g. "Q1.14"

  /// Throws std::invalid_argument on nonsensical formats.
  void validate() const;
};

/// A fixed-point value: raw integer plus its format. Operations quantize
/// (round-to-nearest) and saturate exactly as a hardware datapath with a
/// saturating ALU would.
class Fixed {
 public:
  Fixed() = default;
  /// Quantizes `value` into `format` (round to nearest, saturate).
  Fixed(double value, QFormat format);

  double to_double() const;
  std::int64_t raw() const { return raw_; }
  const QFormat& format() const { return format_; }

  /// Saturating addition; operands must share the format.
  Fixed add(const Fixed& other) const;
  /// Saturating subtraction; operands must share the format.
  Fixed sub(const Fixed& other) const;
  /// Multiplication with rounding back into this value's format. The
  /// other operand may use a different format (e.g. a coefficient ROM
  /// format); the product is computed exactly in 128 bits, then rounded
  /// and saturated.
  Fixed mul(const Fixed& other) const;

  /// True if the last constructing/arithmetic step clipped.
  bool saturated() const { return saturated_; }

 private:
  Fixed(std::int64_t raw, QFormat format, bool saturated);

  std::int64_t raw_ = 0;
  QFormat format_{};
  bool saturated_ = false;
};

}  // namespace metacore::util
