#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace metacore::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_scientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string format_percent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace metacore::util
