// SSE4.2 CRC32C tier: the x86 `crc32` instruction implements exactly the
// reflected Castagnoli polynomial the software table walks, so this path
// is bit-identical to crc32c_sw — verified by tests over random buffers at
// every length. Compiled with -msse4.2 only for this TU (see
// src/util/CMakeLists.txt); the dispatcher in crc32c.cpp decides at
// runtime whether it ever runs.
#include <cstddef>
#include <cstdint>
#include <cstring>

#include <nmmintrin.h>

namespace metacore::util::detail {

std::uint32_t crc32c_sse42(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = _mm_crc32_u64(crc, chunk);
    p += 8;
    size -= 8;
  }
  auto crc32 = static_cast<std::uint32_t>(crc);
  while (size-- > 0) {
    crc32 = _mm_crc32_u8(crc32, *p++);
  }
  return crc32 ^ 0xFFFFFFFFu;
}

}  // namespace metacore::util::detail
