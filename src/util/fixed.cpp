#include "util/fixed.hpp"

#include <cmath>
#include <stdexcept>

namespace metacore::util {

void QFormat::validate() const {
  if (word_bits < 2 || word_bits > 62) {
    throw std::invalid_argument("QFormat: word bits out of [2, 62]");
  }
  if (frac_bits < 0 || frac_bits >= word_bits) {
    throw std::invalid_argument("QFormat: fractional bits out of range");
  }
}

double QFormat::resolution() const { return std::ldexp(1.0, -frac_bits); }

double QFormat::max_value() const {
  return std::ldexp(static_cast<double>((std::int64_t{1} << (word_bits - 1)) - 1),
                    -frac_bits);
}

double QFormat::min_value() const {
  return std::ldexp(-static_cast<double>(std::int64_t{1} << (word_bits - 1)),
                    -frac_bits);
}

std::string QFormat::label() const {
  return "Q" + std::to_string(integer_bits()) + "." + std::to_string(frac_bits);
}

namespace {

std::int64_t saturate_raw(std::int64_t raw, const QFormat& format,
                          bool& clipped) {
  const std::int64_t hi = (std::int64_t{1} << (format.word_bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (format.word_bits - 1));
  if (raw > hi) {
    clipped = true;
    return hi;
  }
  if (raw < lo) {
    clipped = true;
    return lo;
  }
  return raw;
}

}  // namespace

Fixed::Fixed(double value, QFormat format) : format_(format) {
  format_.validate();
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Fixed: non-finite value");
  }
  const double scaled = std::ldexp(value, format_.frac_bits);
  // Round to nearest; representable range enforced by saturation.
  const double rounded = std::nearbyint(scaled);
  bool clipped = false;
  if (rounded >= std::ldexp(1.0, 62) || rounded <= -std::ldexp(1.0, 62)) {
    raw_ = saturate_raw(rounded > 0 ? INT64_MAX : INT64_MIN, format_, clipped);
  } else {
    raw_ = saturate_raw(static_cast<std::int64_t>(rounded), format_, clipped);
  }
  saturated_ = clipped;
}

Fixed::Fixed(std::int64_t raw, QFormat format, bool saturated)
    : raw_(raw), format_(format), saturated_(saturated) {}

double Fixed::to_double() const {
  return std::ldexp(static_cast<double>(raw_), -format_.frac_bits);
}

Fixed Fixed::add(const Fixed& other) const {
  if (other.format_.word_bits != format_.word_bits ||
      other.format_.frac_bits != format_.frac_bits) {
    throw std::invalid_argument("Fixed::add: format mismatch");
  }
  bool clipped = false;
  const std::int64_t raw = saturate_raw(raw_ + other.raw_, format_, clipped);
  return Fixed(raw, format_, clipped);
}

Fixed Fixed::sub(const Fixed& other) const {
  if (other.format_.word_bits != format_.word_bits ||
      other.format_.frac_bits != format_.frac_bits) {
    throw std::invalid_argument("Fixed::sub: format mismatch");
  }
  bool clipped = false;
  const std::int64_t raw = saturate_raw(raw_ - other.raw_, format_, clipped);
  return Fixed(raw, format_, clipped);
}

Fixed Fixed::mul(const Fixed& other) const {
  // Exact product carries frac_bits + other.frac_bits fractional bits;
  // round back to this operand's format (hardware: multiplier followed by
  // a rounding shifter).
  const __int128 product =
      static_cast<__int128>(raw_) * static_cast<__int128>(other.raw_);
  const int shift = other.format_.frac_bits;
  const __int128 half = shift > 0 ? (__int128{1} << (shift - 1)) : 0;
  // Round half away from zero, then arithmetic shift.
  const __int128 adjusted = product >= 0 ? product + half : product - half;
  const __int128 shifted = adjusted / (__int128{1} << shift);
  bool clipped = false;
  std::int64_t raw;
  const std::int64_t hi = (std::int64_t{1} << (format_.word_bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (format_.word_bits - 1));
  if (shifted > hi) {
    raw = hi;
    clipped = true;
  } else if (shifted < lo) {
    raw = lo;
    clipped = true;
  } else {
    raw = static_cast<std::int64_t>(shifted);
  }
  return Fixed(raw, format_, clipped);
}

}  // namespace metacore::util
