// Streaming statistics accumulators and confidence intervals for
// Monte-Carlo estimates (BER proportions in particular).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace metacore::util {

/// Welford single-pass accumulator: mean/variance/min/max without storing
/// the sample stream.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counter for Bernoulli experiments (bit errors out of bits decoded).
struct ProportionEstimate {
  std::uint64_t successes = 0;  ///< e.g. bit errors observed
  std::uint64_t trials = 0;     ///< e.g. bits decoded

  void add(bool success) noexcept {
    successes += success ? 1 : 0;
    ++trials;
  }
  void merge(const ProportionEstimate& other) noexcept {
    successes += other.successes;
    trials += other.trials;
  }

  double rate() const noexcept {
    return trials ? static_cast<double>(successes) / trials : 0.0;
  }

  /// Wilson score interval at the given z (default ~95%). Behaves sanely at
  /// zero observed successes, which matters for deep-BER measurements.
  struct Interval {
    double low = 0.0;
    double high = 1.0;
  };
  Interval wilson(double z = 1.959963984540054) const noexcept;
};

/// Median of a copy of the data (the callers keep sample vectors small).
double median(std::vector<double> values);

/// Percentile in [0, 100] via linear interpolation between order statistics.
double percentile(std::vector<double> values, double pct);

}  // namespace metacore::util
