#include "util/crc32c.hpp"

#include <array>

namespace metacore::util {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// 8 tables x 256 entries, built at static init (constexpr so it can land in
// .rodata): table[0] is the classic byte-at-a-time table, table[k] advances
// a byte through k additional zero bytes, enabling slice-by-8.
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables build_tables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace metacore::util
