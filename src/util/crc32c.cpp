#include "util/crc32c.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace metacore::util {

namespace detail {
#if METACORE_CRC32C_HAVE_SSE42
// Defined in crc32c_sse4.cpp (compiled with -msse4.2).
std::uint32_t crc32c_sse42(const void* data, std::size_t size) noexcept;
#endif
}  // namespace detail

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// 8 tables x 256 entries, built at static init (constexpr so it can land in
// .rodata): table[0] is the classic byte-at-a-time table, table[k] advances
// a byte through k additional zero bytes, enabling slice-by-8.
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables build_tables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = build_tables();

using Crc32cFn = std::uint32_t (*)(const void*, std::size_t);

bool hw_compiled() noexcept {
#if METACORE_CRC32C_HAVE_SSE42
  return true;
#else
  return false;
#endif
}

bool hw_cpu_ok() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

std::pair<Crc32cFn, const char*> backend_for(bool hw) {
#if METACORE_CRC32C_HAVE_SSE42
  if (hw) return {detail::crc32c_sse42, "hw-sse42"};
#else
  (void)hw;
#endif
  return {crc32c_sw, "sw-slice8"};
}

/// Startup selection: METACORE_CRC32C if set, else hardware when available.
std::pair<Crc32cFn, const char*> initial_backend() {
  const char* env = std::getenv("METACORE_CRC32C");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "auto") {
    return backend_for(crc32c_hw_available());
  }
  const std::string value(env);
  if (value == "sw") return backend_for(false);
  if (value == "hw") {
    if (!crc32c_hw_available()) {
      throw std::runtime_error(
          std::string("METACORE_CRC32C=hw requested but the SSE4.2 path is ") +
          (hw_compiled() ? "not supported by this CPU"
                         : "not compiled into this binary"));
    }
    return backend_for(true);
  }
  throw std::invalid_argument(
      "METACORE_CRC32C must be 'sw', 'hw', or 'auto', got '" + value + "'");
}

// Same shape as comm::simd's kernel table: a single atomically swappable
// function pointer plus a name, resolved once on first use; both backends
// are bit-identical so a racing reader observing the old pointer is still
// correct.
struct Dispatch {
  std::atomic<Crc32cFn> fn;
  std::atomic<const char*> name;
  Dispatch() {
    const auto [f, n] = initial_backend();
    fn.store(f, std::memory_order_relaxed);
    name.store(n, std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

std::uint32_t crc32c_sw(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(const void* data, std::size_t size) {
  return dispatch().fn.load(std::memory_order_relaxed)(data, size);
}

bool crc32c_hw_available() noexcept { return hw_compiled() && hw_cpu_ok(); }

std::string_view crc32c_backend() {
  return dispatch().name.load(std::memory_order_relaxed);
}

void crc32c_force_backend(std::string_view backend) {
  Crc32cFn fn = nullptr;
  const char* name = nullptr;
  if (backend == "sw") {
    std::tie(fn, name) = backend_for(false);
  } else if (backend == "hw") {
    if (!crc32c_hw_available()) {
      throw std::runtime_error(
          std::string("crc32c_force_backend(hw): the SSE4.2 path is ") +
          (hw_compiled() ? "not supported by this CPU"
                         : "not compiled into this binary"));
    }
    std::tie(fn, name) = backend_for(true);
  } else if (backend == "auto") {
    std::tie(fn, name) = backend_for(crc32c_hw_available());
  } else {
    throw std::invalid_argument("crc32c_force_backend: unknown backend '" +
                                std::string(backend) + "'");
  }
  dispatch().fn.store(fn, std::memory_order_relaxed);
  dispatch().name.store(name, std::memory_order_relaxed);
}

}  // namespace metacore::util
