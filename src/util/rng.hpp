// Deterministic, seedable random number generation for simulation.
//
// All stochastic components of the library (AWGN channel, workload
// generators, Monte-Carlo BER estimation) draw from this generator so that
// every experiment in the repository is reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace metacore::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Chosen over std::mt19937 for speed
/// in the inner Monte-Carlo loops and for a compact, copyable state that
/// makes snapshotting simulation streams trivial.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via SplitMix64 so that even
  /// low-entropy seeds (0, 1, 2, ...) yield well-mixed initial states.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to carve independent
  /// substreams for parallel experiments.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Counter-based generator (Salmon et al.'s "parallel random numbers: as
/// easy as 1, 2, 3" design point, realized with the SplitMix64 finalizer):
/// output i of stream `key` is a pure function mix(key, i). Any shard of a
/// parallel Monte-Carlo run can therefore be handed an independent stream
/// that is reproducible regardless of which thread executes it or in what
/// order shards run — the property the sharded BER simulation builds its
/// bit-identical-at-any-thread-count guarantee on.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  /// `key` selects the stream; `counter` the position within it.
  explicit CounterRng(std::uint64_t key = 0,
                      std::uint64_t counter = 0) noexcept
      : key_(key), counter_(counter) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return at(key_, counter_++); }

  std::uint64_t counter() const noexcept { return counter_; }

  /// The stream as a pure function — mix(key, counter), no state involved.
  static std::uint64_t at(std::uint64_t key, std::uint64_t counter) noexcept;

 private:
  std::uint64_t key_;
  std::uint64_t counter_;
};

/// Derives the key of substream `stream` of a generator family rooted at
/// `seed`. Built on the same mixer as CounterRng, so adjacent stream
/// indices (0, 1, 2, ...) yield statistically independent keys.
std::uint64_t substream_key(std::uint64_t seed, std::uint64_t stream) noexcept;

/// Convenience sampling wrapper. Keeps a generator plus cached state for the
/// Box-Muller transform (normals are produced in pairs).
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (pairwise cached).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Fair coin; the workhorse for random bit streams.
  bool bit() noexcept;

  Xoshiro256& engine() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace metacore::util
