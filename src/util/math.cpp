#include "util/math.hpp"

#include <algorithm>

namespace metacore::util {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double q_function_inv(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::domain_error("q_function_inv: p must be in (0, 1)");
  }
  double lo = -40.0, hi = 40.0;
  // Q is strictly decreasing; bisect until the bracket collapses.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (q_function(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double bpsk_ber(double ebn0_linear) {
  return q_function(std::sqrt(2.0 * ebn0_linear));
}

double interp1(std::span<const double> xs, std::span<const double> ys,
               double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("interp1: mismatched or empty grids");
  }
  if (xs.size() == 1 || x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

MultilinearInterpolator::MultilinearInterpolator(
    std::vector<std::vector<double>> axes, std::vector<double> values)
    : axes_(std::move(axes)), values_(std::move(values)) {
  if (axes_.empty()) {
    throw std::invalid_argument("MultilinearInterpolator: no axes");
  }
  std::size_t expected = 1;
  for (const auto& axis : axes_) {
    if (axis.empty()) {
      throw std::invalid_argument("MultilinearInterpolator: empty axis");
    }
    if (!std::is_sorted(axis.begin(), axis.end(),
                        [](double a, double b) { return a <= b; })) {
      throw std::invalid_argument(
          "MultilinearInterpolator: axis not strictly increasing");
    }
    expected *= axis.size();
  }
  if (expected != values_.size()) {
    throw std::invalid_argument(
        "MultilinearInterpolator: value count does not match grid");
  }
  strides_.assign(axes_.size(), 1);
  for (std::size_t d = axes_.size(); d-- > 1;) {
    strides_[d - 1] = strides_[d] * axes_[d].size();
  }
}

double MultilinearInterpolator::operator()(
    std::span<const double> point) const {
  if (point.size() != axes_.size()) {
    throw std::invalid_argument(
        "MultilinearInterpolator: point dimensionality mismatch");
  }
  const std::size_t dims = axes_.size();
  std::vector<std::size_t> lo_idx(dims);
  std::vector<double> frac(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const auto& axis = axes_[d];
    double x = std::clamp(point[d], axis.front(), axis.back());
    if (axis.size() == 1) {
      lo_idx[d] = 0;
      frac[d] = 0.0;
      continue;
    }
    auto it = std::upper_bound(axis.begin(), axis.end(), x);
    std::size_t hi = std::min<std::size_t>(
        static_cast<std::size_t>(it - axis.begin()), axis.size() - 1);
    if (hi == 0) hi = 1;
    const std::size_t lo = hi - 1;
    lo_idx[d] = lo;
    frac[d] = (x - axis[lo]) / (axis[hi] - axis[lo]);
  }
  // Accumulate the 2^dims corner contributions.
  double result = 0.0;
  const std::size_t corners = std::size_t{1} << dims;
  for (std::size_t corner = 0; corner < corners; ++corner) {
    double weight = 1.0;
    std::size_t flat = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      const bool high = (corner >> d) & 1u;
      if (axes_[d].size() == 1 && high) {
        weight = 0.0;
        break;
      }
      weight *= high ? frac[d] : (1.0 - frac[d]);
      flat += (lo_idx[d] + (high ? 1 : 0)) * strides_[d];
    }
    if (weight > 0.0) result += weight * values_[flat];
  }
  return result;
}

}  // namespace metacore::util
