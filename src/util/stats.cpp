#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ProportionEstimate::Interval ProportionEstimate::wilson(
    double z) const noexcept {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - spread), std::min(1.0, center + spread)};
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty sample");
  }
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument("percentile: pct out of range");
  }
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace metacore::util
