#include "util/rng.hpp"

#include <cmath>

namespace metacore::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A zero state would lock the generator at zero forever; splitmix64 cannot
  // produce four zero outputs from any seed, but guard regardless.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

std::uint64_t CounterRng::at(std::uint64_t key,
                             std::uint64_t counter) noexcept {
  // Feed (key, counter) through two rounds of the SplitMix64 finalizer with
  // distinct odd constants; the double mix decorrelates streams whose keys
  // differ in few bits (consecutive shard indices are the common case).
  std::uint64_t z = key + 0x9E3779B97F4A7C15ULL * (counter + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  z += key ^ rotl(counter, 32);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t substream_key(std::uint64_t seed,
                            std::uint64_t stream) noexcept {
  return CounterRng::at(seed ^ 0x5851F42D4C957F2DULL, stream);
}

double Random::uniform() noexcept {
  // 53-bit mantissa construction: top 53 bits of the 64-bit output.
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Random::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Random::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and division-free in
  // the common case.
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Random::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Random::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Random::bernoulli(double p) noexcept { return uniform() < p; }

bool Random::bit() noexcept { return (gen_() >> 63) != 0; }

}  // namespace metacore::util
