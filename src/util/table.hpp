// Plain-text table and CSV emission used by the benchmark harnesses to
// print the paper's tables/figure series in a uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace metacore::util {

/// Column-aligned ASCII table. Cells are strings; numeric formatting is the
/// caller's job (benchmarks format to the same precision the paper reports).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, padding each column to its widest cell.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no quoting; callers avoid commas in cells).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style double formatting helpers used throughout bench output.
std::string format_double(double v, int precision = 3);
std::string format_scientific(double v, int precision = 2);
std::string format_percent(double v, int precision = 1);

}  // namespace metacore::util
