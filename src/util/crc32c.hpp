// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every persistence-layer record frame (robust/journal).
// Chosen over CRC32 (IEEE) for its better error-detection properties on
// short records and because hardware assists exist everywhere we may later
// want them; this implementation is a portable slice-by-8 table walk so the
// stored checksums are identical on every build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace metacore::util {

/// CRC32C of `data`, with the conventional init/final XOR (0xFFFFFFFF).
/// crc32c("123456789") == 0xE3069283 (the RFC 3720 check value).
std::uint32_t crc32c(const void* data, std::size_t size) noexcept;

inline std::uint32_t crc32c(std::string_view data) noexcept {
  return crc32c(data.data(), data.size());
}

}  // namespace metacore::util
