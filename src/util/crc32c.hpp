// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every persistence-layer record frame (robust/journal)
// and every MCB1 binary wire frame (net/frame). Chosen over CRC32 (IEEE)
// for its better error-detection properties on short records and because
// hardware assists exist everywhere: on x86-64 the SSE4.2 `crc32`
// instruction computes exactly this polynomial, so the dispatcher below
// picks the hardware path at runtime (CPUID) while the portable slice-by-8
// table walk stays the reference — both are bit-identical, so stored
// checksums match on every build and every machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace metacore::util {

/// CRC32C of `data`, with the conventional init/final XOR (0xFFFFFFFF).
/// crc32c("123456789") == 0xE3069283 (the RFC 3720 check value).
///
/// The first call resolves the backend: METACORE_CRC32C if set ("sw" or
/// "hw", throwing on an unknown value or an unavailable "hw"), else the
/// SSE4.2 instruction path when compiled in and the CPU reports sse4.2,
/// else the software table.
std::uint32_t crc32c(const void* data, std::size_t size);

inline std::uint32_t crc32c(std::string_view data) {
  return crc32c(data.data(), data.size());
}

/// The portable slice-by-8 table path — always available; the reference
/// the hardware tier is verified against.
std::uint32_t crc32c_sw(const void* data, std::size_t size) noexcept;

inline std::uint32_t crc32c_sw(std::string_view data) noexcept {
  return crc32c_sw(data.data(), data.size());
}

/// True when the SSE4.2 `crc32` path is compiled into this binary AND the
/// running CPU supports it.
bool crc32c_hw_available() noexcept;

/// Backend the next crc32c() call will use: "hw-sse42" or "sw-slice8".
std::string_view crc32c_backend();

/// Re-point the dispatch for tests and benchmarks: "sw", "hw", or "auto".
/// Throws std::runtime_error if "hw" is requested but unavailable.
void crc32c_force_backend(std::string_view backend);

}  // namespace metacore::util
