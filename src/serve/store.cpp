#include "serve/store.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "robust/checkpoint.hpp"
#include "robust/json.hpp"

namespace metacore::serve {

namespace {

constexpr const char* kKind = "metacore-evaluation-store";
constexpr const char* kWhat = "store";
constexpr int kLegacyStoreVersion = 1;
constexpr std::size_t kMaxSkipReasons = 100;

void note_skip(StoreStats& stats, std::string reason) {
  ++stats.skipped_records;
  if (stats.skip_reasons.size() < kMaxSkipReasons) {
    stats.skip_reasons.push_back(std::move(reason));
  } else if (stats.skip_reasons.size() == kMaxSkipReasons) {
    stats.skip_reasons.push_back("(further skip reasons elided)");
  }
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-exact evaluation identity: the "duplicates are identical by
/// construction" invariant, checked instead of assumed.
bool eval_equal(const search::Evaluation& a, const search::Evaluation& b) {
  if (a.feasible != b.feasible || a.failure_reason != b.failure_reason ||
      !bits_equal(a.confidence_weight, b.confidence_weight) ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  auto ita = a.metrics.begin();
  auto itb = b.metrics.begin();
  for (; ita != a.metrics.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !bits_equal(ita->second, itb->second)) {
      return false;
    }
  }
  return true;
}

std::size_t file_size_of(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

}  // namespace

StoreConfig StoreConfig::from_env() {
  StoreConfig config;
  config.durability = robust::DurabilityConfig::from_env();
  if (const char* env = std::getenv("METACORE_STORE_COMPACT_RATIO");
      env != nullptr && env[0] != '\0') {
    std::size_t pos = 0;
    double ratio = 0.0;
    try {
      ratio = std::stod(env, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != std::string(env).size() || !(ratio <= 1.0)) {
      throw std::invalid_argument(
          "store: METACORE_STORE_COMPACT_RATIO must be a number <= 1, got \"" +
          std::string(env) + "\"");
    }
    config.auto_compact_dead_ratio = ratio;
  }
  return config;
}

EvaluationStore::EvaluationStore(std::string path, StoreConfig config)
    : path_(std::move(path)), config_(config) {
  if (path_.empty()) {
    throw std::invalid_argument("store: path must be non-empty");
  }
  // A stale .tmp can only be the residue of a crash between snapshot write
  // and rename; the journal itself is authoritative.
  std::remove((path_ + ".tmp").c_str());
  load_or_create();
  if (needs_rewrite_) {
    compact_locked();  // recovery/migration/bounded-growth rewrite
  } else {
    open_writer(fresh_start_);
  }
}

std::string EvaluationStore::payload_for(
    const Key& key, const search::Evaluation& eval) const {
  robust::CheckpointRecord rec;
  rec.indices = std::get<1>(key);
  rec.fidelity = std::get<2>(key);
  rec.eval = eval;
  std::ostringstream os;
  os << "{\"fingerprint\":";
  robust::write_escaped(os, std::get<0>(key));
  os << ",\"record\":";
  robust::write_eval_record(os, rec);
  os << "}";
  return os.str();
}

std::string EvaluationStore::snapshot_text() const {
  std::string text = robust::journal_header_line(
      robust::JournalHeader{kKind, kStoreVersion});
  for (const auto& [key, eval] : entries_) {
    text += robust::frame_record(payload_for(key, eval));
  }
  return text;
}

void EvaluationStore::open_writer(bool truncate) {
  writer_ = std::make_unique<robust::JournalWriter>(
      path_, robust::JournalHeader{kKind, kStoreVersion}, config_.durability,
      truncate, "store.journal");
}

void EvaluationStore::load_or_create() {
  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }

  if (text.empty()) {
    fresh_start_ = true;
    return;
  }
  if (text.find('\n') == std::string::npos) {
    // Only an unterminated fragment: a crash while writing the very first
    // (header) line. Nothing is lost by starting fresh.
    stats_.recovered_bytes = text.size();
    fresh_start_ = true;
    return;
  }

  if (robust::looks_like_journal(text)) {
    load_framed(text);
  } else {
    load_legacy(text);
  }
  stats_.live_entries = entries_.size();

  // Recovery rewrites (damage, crash tails, legacy migration) are
  // unconditional — they restore the on-disk invariants. Pure duplicate
  // bloat compacts only past the configured dead-record ratio, so a
  // long-lived server's journal stays bounded without rewriting on every
  // restart.
  const std::size_t dead = stats_.duplicate_records + stats_.skipped_records;
  const std::size_t total = dead + entries_.size();
  if (stats_.skipped_records > 0 || stats_.recovered_bytes > 0) {
    needs_rewrite_ = true;
  } else if (dead > 0 && config_.auto_compact_dead_ratio > 0.0 && total > 0 &&
             static_cast<double>(dead) >=
                 config_.auto_compact_dead_ratio * static_cast<double>(total)) {
    needs_rewrite_ = true;
  }
}

void EvaluationStore::load_framed(const std::string& text) {
  robust::JournalReadResult framed =
      robust::read_journal_text(text, std::string(kWhat) + ": " + path_);
  if (framed.header.kind != kKind) {
    throw std::runtime_error("store: " + path_ +
                             " is not a metacore evaluation store");
  }
  if (framed.header.kind_version != kStoreVersion) {
    throw std::runtime_error(
        "store: " + path_ + " has unsupported version " +
        std::to_string(framed.header.kind_version) +
        " (this build reads version " + std::to_string(kStoreVersion) + ")");
  }
  stats_.recovered_bytes = framed.recovered_tail_bytes;
  stats_.skipped_records = framed.skipped_records;
  stats_.skip_reasons = std::move(framed.skip_reasons);

  for (std::size_t i = 0; i < framed.records.size(); ++i) {
    const std::string& payload = framed.records[i];
    std::string fingerprint;
    robust::CheckpointRecord rec;
    try {
      const robust::JsonValue entry = robust::parse_json(payload, kWhat);
      fingerprint = robust::require(entry, "fingerprint",
                                    robust::JsonValue::Type::String, kWhat)
                        .string;
      rec = robust::parse_eval_record(
          robust::require(entry, "record", robust::JsonValue::Type::Object,
                          kWhat),
          kWhat);
    } catch (const std::runtime_error& e) {
      // CRC-clean but unparseable: a writer bug or schema drift, not bit
      // rot. Skipped with a reason like any other damaged record.
      note_skip(stats_, "store: record " + std::to_string(i + 1) +
                            " is checksum-clean but failed to parse: " +
                            e.what());
      continue;
    }
    ++stats_.journal_records;
    Key key{std::move(fingerprint), rec.indices, rec.fidelity};
    auto [it, inserted] = entries_.emplace(std::move(key), rec.eval);
    if (!inserted) {
      ++stats_.duplicate_records;
      if (!eval_equal(it->second, rec.eval)) {
        ++stats_.divergent_duplicates;
      }
    }
  }
}

void EvaluationStore::load_legacy(const std::string& text) {
  // Pre-journal (version 1) stores: header line + one JSON record per
  // line, no checksums. Without CRCs we cannot tell damage from a writer
  // bug, so the legacy policy stays strict: a newline-terminated line that
  // fails to parse rejects the file. A clean legacy load is migrated to
  // the framed format (needs_rewrite_).
  std::vector<std::pair<std::size_t, std::string>> lines;  // (offset, text)
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.emplace_back(start, text.substr(start, nl - start));
    start = nl + 1;
  }
  const std::size_t tail_bytes = text.size() - start;

  robust::JsonValue header;
  try {
    header = robust::parse_json(lines[0].second, kWhat);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("store: " + path_ +
                             " has an unreadable header line: " + e.what());
  }
  if (header.type != robust::JsonValue::Type::Object ||
      robust::require(header, "magic", robust::JsonValue::Type::String, kWhat)
              .string != kKind) {
    throw std::runtime_error("store: " + path_ +
                             " is not a metacore evaluation store");
  }
  const auto version = static_cast<int>(std::llround(
      robust::require(header, "version", robust::JsonValue::Type::Number,
                      kWhat)
          .number));
  if (version != kLegacyStoreVersion) {
    throw std::runtime_error(
        "store: " + path_ + " has unsupported version " +
        std::to_string(version) + " (this build reads versions " +
        std::to_string(kLegacyStoreVersion) + " and " +
        std::to_string(kStoreVersion) + ")");
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    robust::JsonValue entry;
    try {
      entry = robust::parse_json(lines[i].second, kWhat);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(
          "store: " + path_ + " is corrupt at line " + std::to_string(i + 1) +
          " (a newline-terminated record failed to parse — not a truncated "
          "tail, refusing to guess): " +
          e.what());
    }
    const std::string fingerprint =
        robust::require(entry, "fingerprint", robust::JsonValue::Type::String,
                        kWhat)
            .string;
    const robust::CheckpointRecord rec = robust::parse_eval_record(
        robust::require(entry, "record", robust::JsonValue::Type::Object,
                        kWhat),
        kWhat);
    ++stats_.journal_records;
    Key key{fingerprint, rec.indices, rec.fidelity};
    auto [it, inserted] = entries_.emplace(std::move(key), rec.eval);
    if (!inserted) {
      ++stats_.duplicate_records;
      if (!eval_equal(it->second, rec.eval)) {
        ++stats_.divergent_duplicates;
      }
    }
  }
  if (tail_bytes > 0) {
    stats_.recovered_bytes = tail_bytes;
  }
  needs_rewrite_ = true;  // migrate to the framed format
}

std::size_t EvaluationStore::compact_locked() {
  const std::size_t bytes_before = file_size_of(path_);
  const std::string text = snapshot_text();
  if (writer_) {
    stats_.io_retries += writer_->io_retries();
    try {
      writer_->close();
    } catch (const robust::JournalIoError&) {
      // The journal is about to be replaced wholesale; a failed drain of
      // the old fd is moot.
    }
    writer_.reset();
  }
  try {
    robust::atomic_replace_file(path_, text, config_.durability,
                                "store.compact", kWhat);
  } catch (const robust::JournalIoError&) {
    // Snapshot failed before the rename: the old journal is intact. Try
    // to resume appending to it; if even that fails, degrade.
    try {
      open_writer(false);
    } catch (const robust::JournalIoError&) {
      degraded_ = true;
    }
    throw;
  }
  open_writer(false);
  degraded_ = false;  // a fresh, complete journal re-establishes durability
  ++stats_.compactions;
  stats_.compaction_bytes_before = bytes_before;
  stats_.compaction_bytes_after = text.size();
  return bytes_before > text.size() ? bytes_before - text.size() : 0;
}

std::size_t EvaluationStore::compact() {
  std::unique_lock lock(mutex_);
  return compact_locked();
}

std::optional<search::Evaluation> EvaluationStore::lookup(
    const std::string& fingerprint, const std::vector<int>& indices,
    int fidelity) {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(Key{fingerprint, indices, fidelity});
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvaluationStore::record(const std::string& fingerprint,
                             const std::vector<int>& indices, int fidelity,
                             const search::Evaluation& eval) {
  std::unique_lock lock(mutex_);
  Key key{fingerprint, indices, fidelity};
  auto [it, inserted] = entries_.emplace(key, eval);
  if (!inserted) {
    // First write wins; a duplicate that is NOT bit-identical is a
    // determinism regression upstream — count it instead of masking it.
    if (!eval_equal(it->second, eval)) {
      ++stats_.divergent_duplicates;
    }
    return;
  }
  ++stats_.live_entries;
  if (degraded_ || !writer_) {
    ++stats_.dropped_writes;
    return;
  }
  try {
    writer_->append(payload_for(key, eval));
  } catch (const robust::JournalIoError&) {
    // Terminal append failure (the retries are inside the writer): flip to
    // degraded read-only mode. The entry stays in memory so the search
    // keeps its result; only persistence is lost — callers see it in
    // stats() rather than as a failed query.
    degraded_ = true;
    ++stats_.dropped_writes;
    stats_.io_retries += writer_->io_retries();
    try {
      writer_->close();
    } catch (...) {
    }
    writer_.reset();
    return;
  }
  ++stats_.appends;
}

std::size_t EvaluationStore::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
EvaluationStore::entries_for(const std::string& fingerprint) const {
  std::shared_lock lock(mutex_);
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>> out;
  // Keys sort by fingerprint first, so the scope is one contiguous range.
  for (auto it = entries_.lower_bound(Key{fingerprint, {}, 0});
       it != entries_.end() && std::get<0>(it->first) == fingerprint; ++it) {
    out.emplace_back(std::get<1>(it->first), std::get<2>(it->first),
                     it->second);
  }
  return out;
}

bool EvaluationStore::degraded() const {
  std::shared_lock lock(mutex_);
  return degraded_;
}

std::size_t EvaluationStore::divergent_duplicates() const {
  std::shared_lock lock(mutex_);
  return stats_.divergent_duplicates;
}

StoreStats EvaluationStore::stats() const {
  std::shared_lock lock(mutex_);
  StoreStats out = stats_;
  out.live_entries = entries_.size();
  out.degraded = degraded_;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  if (writer_) {
    out.io_retries += writer_->io_retries();
  }
  return out;
}

}  // namespace metacore::serve
