#include "serve/store.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "robust/checkpoint.hpp"
#include "robust/json.hpp"

namespace metacore::serve {

namespace {

constexpr const char* kMagic = "metacore-evaluation-store";
constexpr const char* kWhat = "store";

std::string header_line() {
  std::ostringstream os;
  os << "{\"magic\":\"" << kMagic << "\",\"version\":" << kStoreVersion
     << "}";
  return os.str();
}

}  // namespace

EvaluationStore::EvaluationStore(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    throw std::invalid_argument("store: path must be non-empty");
  }
  load_or_create();
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("store: cannot open " + path_ +
                             " for appending");
  }
}

void EvaluationStore::write_line(std::ostream& os, const Key& key,
                                 const search::Evaluation& eval) const {
  robust::CheckpointRecord rec;
  rec.indices = std::get<1>(key);
  rec.fidelity = std::get<2>(key);
  rec.eval = eval;
  os << "{\"fingerprint\":";
  robust::write_escaped(os, std::get<0>(key));
  os << ",\"record\":";
  robust::write_eval_record(os, rec);
  os << "}\n";
}

void EvaluationStore::load_or_create() {
  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }

  if (text.empty()) {
    // Fresh store (or an empty file from a crash at creation): write the
    // header so the journal is self-identifying from byte 0.
    std::ofstream os(path_, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("store: cannot create " + path_);
    }
    os << header_line() << '\n';
    if (!os.flush()) {
      throw std::runtime_error("store: write to " + path_ + " failed");
    }
    return;
  }

  // Split into newline-terminated lines; an unterminated remainder is the
  // candidate crash tail.
  std::vector<std::pair<std::size_t, std::string>> lines;  // (offset, text)
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.emplace_back(start, text.substr(start, nl - start));
    start = nl + 1;
  }
  const std::size_t good_end = start;  // byte after the last terminated line
  const std::size_t tail_bytes = text.size() - good_end;

  if (lines.empty()) {
    // Only an unterminated fragment: a crash while writing the very first
    // (header) line. Nothing is lost by starting fresh.
    stats_.recovered_bytes = tail_bytes;
    std::ofstream os(path_, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("store: cannot create " + path_);
    }
    os << header_line() << '\n';
    if (!os.flush()) {
      throw std::runtime_error("store: write to " + path_ + " failed");
    }
    return;
  }

  // Header: must identify the file and carry a version we read.
  robust::JsonValue header;
  try {
    header = robust::parse_json(lines[0].second, kWhat);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("store: " + path_ +
                             " has an unreadable header line: " + e.what());
  }
  if (header.type != robust::JsonValue::Type::Object ||
      robust::require(header, "magic", robust::JsonValue::Type::String, kWhat)
              .string != kMagic) {
    throw std::runtime_error("store: " + path_ +
                             " is not a metacore evaluation store");
  }
  const auto version = static_cast<int>(std::llround(
      robust::require(header, "version", robust::JsonValue::Type::Number,
                      kWhat)
          .number));
  if (version != kStoreVersion) {
    throw std::runtime_error(
        "store: " + path_ + " has unsupported version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kStoreVersion) + ")");
  }

  // Records. A terminated line that fails to parse cannot be a crash
  // artifact (appends only emit '\n' last), so it is rejected as real
  // corruption with its line number.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    robust::JsonValue entry;
    try {
      entry = robust::parse_json(lines[i].second, kWhat);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(
          "store: " + path_ + " is corrupt at line " + std::to_string(i + 1) +
          " (a newline-terminated record failed to parse — not a truncated "
          "tail, refusing to guess): " +
          e.what());
    }
    const std::string fingerprint =
        robust::require(entry, "fingerprint", robust::JsonValue::Type::String,
                        kWhat)
            .string;
    const robust::CheckpointRecord rec = robust::parse_eval_record(
        robust::require(entry, "record", robust::JsonValue::Type::Object,
                        kWhat),
        kWhat);
    ++stats_.journal_lines;
    Key key{fingerprint, rec.indices, rec.fidelity};
    // First record wins: duplicate keys are bit-identical by construction
    // (same evaluator, same point, same fidelity), so which one survives
    // only matters for determinism of the compacted file.
    if (!entries_.emplace(std::move(key), rec.eval).second) {
      ++stats_.compacted_lines;
    }
  }
  stats_.live_entries = entries_.size();

  // Truncated-tail recovery: drop the unterminated fragment.
  if (tail_bytes > 0) {
    stats_.recovered_bytes = tail_bytes;
  }

  // Compaction / recovery rewrite: when the journal carries duplicate
  // lines or a corrupt tail, rewrite it compacted (atomic tmp + rename so
  // a crash mid-rewrite cannot lose the journal).
  if (stats_.compacted_lines > 0 || tail_bytes > 0) {
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (!os) {
        throw std::runtime_error("store: cannot open " + tmp +
                                 " for compaction");
      }
      os << header_line() << '\n';
      for (const auto& [key, eval] : entries_) {
        write_line(os, key, eval);
      }
      if (!os.flush()) {
        throw std::runtime_error("store: write to " + tmp + " failed");
      }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error("store: rename " + tmp + " -> " + path_ +
                               " failed");
    }
  }
}

std::optional<search::Evaluation> EvaluationStore::lookup(
    const std::string& fingerprint, const std::vector<int>& indices,
    int fidelity) {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(Key{fingerprint, indices, fidelity});
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvaluationStore::record(const std::string& fingerprint,
                             const std::vector<int>& indices, int fidelity,
                             const search::Evaluation& eval) {
  std::unique_lock lock(mutex_);
  Key key{fingerprint, indices, fidelity};
  if (!entries_.emplace(key, eval).second) {
    return;  // first write wins; duplicates are bit-identical anyway
  }
  write_line(out_, key, eval);
  out_.flush();
  if (!out_) {
    throw std::runtime_error("store: append to " + path_ + " failed");
  }
  ++stats_.appends;
  ++stats_.live_entries;
}

std::size_t EvaluationStore::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
EvaluationStore::entries_for(const std::string& fingerprint) const {
  std::shared_lock lock(mutex_);
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>> out;
  // Keys sort by fingerprint first, so the scope is one contiguous range.
  for (auto it = entries_.lower_bound(Key{fingerprint, {}, 0});
       it != entries_.end() && std::get<0>(it->first) == fingerprint; ++it) {
    out.emplace_back(std::get<1>(it->first), std::get<2>(it->first),
                     it->second);
  }
  return out;
}

StoreStats EvaluationStore::stats() const {
  std::shared_lock lock(mutex_);
  StoreStats out = stats_;
  out.live_entries = entries_.size();
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace metacore::serve
