#include "serve/store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "robust/checkpoint.hpp"
#include "robust/json.hpp"

namespace metacore::serve {

namespace {

constexpr const char* kKind = "metacore-evaluation-store";
constexpr const char* kWhat = "store";
constexpr int kLegacyStoreVersion = 1;
constexpr std::size_t kMaxSkipReasons = 100;
constexpr std::size_t kMaxShards = 256;

using Key = std::tuple<std::string, std::vector<int>, int>;

void note_skip(StoreStats& stats, std::string reason) {
  ++stats.skipped_records;
  if (stats.skip_reasons.size() < kMaxSkipReasons) {
    stats.skip_reasons.push_back(std::move(reason));
  } else if (stats.skip_reasons.size() == kMaxSkipReasons) {
    stats.skip_reasons.push_back("(further skip reasons elided)");
  }
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-exact evaluation identity: the "duplicates are identical by
/// construction" invariant, checked instead of assumed.
bool eval_equal(const search::Evaluation& a, const search::Evaluation& b) {
  if (a.feasible != b.feasible || a.failure_reason != b.failure_reason ||
      !bits_equal(a.confidence_weight, b.confidence_weight) ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  auto ita = a.metrics.begin();
  auto itb = b.metrics.begin();
  for (; ita != a.metrics.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !bits_equal(ita->second, itb->second)) {
      return false;
    }
  }
  return true;
}

std::size_t file_size_of(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

std::string payload_for(const Key& key, const search::Evaluation& eval) {
  robust::CheckpointRecord rec;
  rec.indices = std::get<1>(key);
  rec.fidelity = std::get<2>(key);
  rec.eval = eval;
  std::ostringstream os;
  os << "{\"fingerprint\":";
  robust::write_escaped(os, std::get<0>(key));
  os << ",\"record\":";
  robust::write_eval_record(os, rec);
  os << "}";
  return os.str();
}

/// One journal file replayed into memory: entries, load accounting, and
/// what the load decided about the file's future.
struct FileLoad {
  std::map<Key, search::Evaluation> entries;
  StoreStats stats;          // journal_records / duplicates / skips / tail
  bool fresh_start = false;  ///< the file starts empty (absent or header-torn)
  bool legacy = false;       ///< v1 JSONL; must be rewritten framed
};

void merge_record(FileLoad& load, std::string fingerprint,
                  robust::CheckpointRecord rec) {
  ++load.stats.journal_records;
  Key key{std::move(fingerprint), rec.indices, rec.fidelity};
  auto [it, inserted] = load.entries.emplace(std::move(key), rec.eval);
  if (!inserted) {
    ++load.stats.duplicate_records;
    if (!eval_equal(it->second, rec.eval)) {
      ++load.stats.divergent_duplicates;
    }
  }
}

void load_framed(FileLoad& load, const std::string& path,
                 const std::string& text) {
  robust::JournalReadResult framed =
      robust::read_journal_text(text, std::string(kWhat) + ": " + path);
  if (framed.header.kind != kKind) {
    throw std::runtime_error("store: " + path +
                             " is not a metacore evaluation store");
  }
  if (framed.header.kind_version != kStoreVersion) {
    throw std::runtime_error(
        "store: " + path + " has unsupported version " +
        std::to_string(framed.header.kind_version) +
        " (this build reads version " + std::to_string(kStoreVersion) + ")");
  }
  load.stats.recovered_bytes = framed.recovered_tail_bytes;
  load.stats.skipped_records = framed.skipped_records;
  load.stats.skip_reasons = std::move(framed.skip_reasons);

  for (std::size_t i = 0; i < framed.records.size(); ++i) {
    const std::string& payload = framed.records[i];
    std::string fingerprint;
    robust::CheckpointRecord rec;
    try {
      const robust::JsonValue entry = robust::parse_json(payload, kWhat);
      fingerprint = robust::require(entry, "fingerprint",
                                    robust::JsonValue::Type::String, kWhat)
                        .string;
      rec = robust::parse_eval_record(
          robust::require(entry, "record", robust::JsonValue::Type::Object,
                          kWhat),
          kWhat);
    } catch (const std::runtime_error& e) {
      // CRC-clean but unparseable: a writer bug or schema drift, not bit
      // rot. Skipped with a reason like any other damaged record.
      note_skip(load.stats, "store: record " + std::to_string(i + 1) +
                                " is checksum-clean but failed to parse: " +
                                e.what());
      continue;
    }
    merge_record(load, std::move(fingerprint), std::move(rec));
  }
}

void load_legacy(FileLoad& load, const std::string& path,
                 const std::string& text) {
  // Pre-journal (version 1) stores: header line + one JSON record per
  // line, no checksums. Without CRCs we cannot tell damage from a writer
  // bug, so the legacy policy stays strict: a newline-terminated line that
  // fails to parse rejects the file. A clean legacy load is migrated to
  // the framed format.
  std::vector<std::pair<std::size_t, std::string>> lines;  // (offset, text)
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.emplace_back(start, text.substr(start, nl - start));
    start = nl + 1;
  }
  const std::size_t tail_bytes = text.size() - start;

  robust::JsonValue header;
  try {
    header = robust::parse_json(lines[0].second, kWhat);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("store: " + path +
                             " has an unreadable header line: " + e.what());
  }
  if (header.type != robust::JsonValue::Type::Object ||
      robust::require(header, "magic", robust::JsonValue::Type::String, kWhat)
              .string != kKind) {
    throw std::runtime_error("store: " + path +
                             " is not a metacore evaluation store");
  }
  const auto version = static_cast<int>(std::llround(
      robust::require(header, "version", robust::JsonValue::Type::Number,
                      kWhat)
          .number));
  if (version != kLegacyStoreVersion) {
    throw std::runtime_error(
        "store: " + path + " has unsupported version " +
        std::to_string(version) + " (this build reads versions " +
        std::to_string(kLegacyStoreVersion) + " and " +
        std::to_string(kStoreVersion) + ")");
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    robust::JsonValue entry;
    try {
      entry = robust::parse_json(lines[i].second, kWhat);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(
          "store: " + path + " is corrupt at line " + std::to_string(i + 1) +
          " (a newline-terminated record failed to parse — not a truncated "
          "tail, refusing to guess): " +
          e.what());
    }
    std::string fingerprint =
        robust::require(entry, "fingerprint", robust::JsonValue::Type::String,
                        kWhat)
            .string;
    robust::CheckpointRecord rec = robust::parse_eval_record(
        robust::require(entry, "record", robust::JsonValue::Type::Object,
                        kWhat),
        kWhat);
    merge_record(load, std::move(fingerprint), std::move(rec));
  }
  if (tail_bytes > 0) {
    load.stats.recovered_bytes = tail_bytes;
  }
  load.legacy = true;
}

/// Replays one journal at `path` (absent file => fresh). Throws
/// std::runtime_error on header-level problems only.
FileLoad load_journal_file(const std::string& path) {
  FileLoad load;
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }

  if (text.empty()) {
    load.fresh_start = true;
    return load;
  }
  if (text.find('\n') == std::string::npos) {
    // Only an unterminated fragment: a crash while writing the very first
    // (header) line. Nothing is lost by starting fresh.
    load.stats.recovered_bytes = text.size();
    load.fresh_start = true;
    return load;
  }

  if (robust::looks_like_journal(text)) {
    load_framed(load, path, text);
  } else {
    load_legacy(load, path, text);
  }
  return load;
}

std::string snapshot_text(const std::map<Key, search::Evaluation>& entries) {
  std::string text = robust::journal_header_line(
      robust::JournalHeader{kKind, kStoreVersion});
  for (const auto& [key, eval] : entries) {
    text += robust::frame_record(payload_for(key, eval));
  }
  return text;
}

}  // namespace

std::uint64_t fingerprint_hash(std::string_view fingerprint) noexcept {
  // FNV-1a, 64-bit: stable pure byte arithmetic — the shard (and dispatch
  // worker) assignment must not change across runs, builds, or hosts.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : fingerprint) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::size_t shard_index(std::string_view fingerprint,
                        std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(fingerprint_hash(fingerprint) % shard_count);
}

StoreConfig StoreConfig::from_env() {
  StoreConfig config;
  config.durability = robust::DurabilityConfig::from_env();
  if (const char* env = std::getenv("METACORE_STORE_COMPACT_RATIO");
      env != nullptr && env[0] != '\0') {
    std::size_t pos = 0;
    double ratio = 0.0;
    try {
      ratio = std::stod(env, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != std::string(env).size() || !(ratio <= 1.0)) {
      throw std::invalid_argument(
          "store: METACORE_STORE_COMPACT_RATIO must be a number <= 1, got \"" +
          std::string(env) + "\"");
    }
    config.auto_compact_dead_ratio = ratio;
  }
  if (const char* env = std::getenv("METACORE_STORE_SHARDS");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || value == 0 || value > kMaxShards) {
      throw std::invalid_argument(
          "store: METACORE_STORE_SHARDS must be an integer in [1, " +
          std::to_string(kMaxShards) + "], got \"" + std::string(env) + "\"");
    }
    config.shards = static_cast<std::size_t>(value);
  }
  return config;
}

/// One shard: a journal file plus its in-memory replica, lock, and
/// accounting. With shards == 1 this is exactly the historical store.
struct EvaluationStore::Shard {
  std::string path;
  mutable std::shared_mutex mutex;
  std::map<Key, search::Evaluation> entries;
  std::unique_ptr<robust::JournalWriter> writer;
  bool fresh_start = false;    ///< load decided the file starts empty
  bool needs_rewrite = false;  ///< load found damage/migration/dead bloat
  bool degraded = false;
  StoreStats stats;  // hit/miss/contention tracked separately (atomics)
  mutable std::atomic<std::size_t> hits{0};
  mutable std::atomic<std::size_t> misses{0};
  std::atomic<std::size_t> contention{0};
  /// See EvaluationStore::generation(). Written under the writer lock,
  /// read lock-free by the response-cache validity check.
  std::atomic<std::uint64_t> generation{0};

  void open_writer(const StoreConfig& config, bool truncate) {
    writer = std::make_unique<robust::JournalWriter>(
        path, robust::JournalHeader{kKind, kStoreVersion}, config.durability,
        truncate, "store.journal");
  }
};

EvaluationStore::EvaluationStore(std::string path, StoreConfig config)
    : path_(std::move(path)), config_(config) {
  if (path_.empty()) {
    throw std::invalid_argument("store: path must be non-empty");
  }
  if (config_.shards == 0 || config_.shards > kMaxShards) {
    throw std::invalid_argument("store: shard count must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (config_.shards == 1) {
      shard->path = path_;
    } else {
      char name[48];
      std::snprintf(name, sizeof(name), "/shard-%02zu.journal", s);
      shard->path = path_ + ".d" + name;
    }
    shards_.push_back(std::move(shard));
  }
  base_stats_.shards = config_.shards;
  open_layout();
}

EvaluationStore::~EvaluationStore() = default;

std::string EvaluationStore::shard_path(std::size_t shard) const {
  return shards_.at(shard)->path;
}

EvaluationStore::Shard& EvaluationStore::shard_for(
    const std::string& fingerprint) {
  return *shards_[shard_index(fingerprint, shards_.size())];
}

const EvaluationStore::Shard& EvaluationStore::shard_for(
    const std::string& fingerprint) const {
  return *shards_[shard_index(fingerprint, shards_.size())];
}

void EvaluationStore::open_layout() {
  namespace fs = std::filesystem;
  const std::string dir = path_ + ".d";

  // What is on disk: the single file, and any shard journals in the
  // directory (any index — a reshard must pick stragglers up too).
  std::error_code ec;
  const bool single_exists = fs::is_regular_file(path_, ec);
  std::map<std::size_t, std::string> disk_shards;  // index -> path
  if (fs::is_directory(dir, ec)) {
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) != 0 ||
          name.size() <= 6 + std::string(".journal").size() ||
          name.substr(name.size() - 8) != ".journal") {
        continue;
      }
      const std::string digits = name.substr(6, name.size() - 6 - 8);
      char* end = nullptr;
      const unsigned long long index = std::strtoull(digits.c_str(), &end, 10);
      if (end == digits.c_str() || *end != '\0') continue;
      disk_shards.emplace(static_cast<std::size_t>(index),
                          entry.path().string());
    }
  }

  // The on-disk layout matches the requested one only when it is exactly
  // the requested one: single-file mode must see no shard journals;
  // sharded mode must see no single file and either no shard files at all
  // (a fresh store) or precisely shards {0 .. N-1} — a partial or
  // differently-sized set was written under different routing and must be
  // merged, not read in place.
  const bool exact_shard_set =
      disk_shards.size() == config_.shards &&
      disk_shards.begin()->first == 0 &&
      disk_shards.rbegin()->first == config_.shards - 1;
  const bool matches =
      config_.shards == 1
          ? disk_shards.empty()
          : !single_exists && (disk_shards.empty() || exact_shard_set);

  if (!matches) {
    std::vector<std::string> sources;
    if (single_exists) sources.push_back(path_);
    for (const auto& [index, shard_file] : disk_shards) {
      sources.push_back(shard_file);
    }
    migrate_layout(sources);
    return;
  }

  if (config_.shards > 1) fs::create_directories(dir);
  for (auto& shard : shards_) {
    load_shard_in_place(*shard);
  }
}

void EvaluationStore::load_shard_in_place(Shard& shard) {
  // A stale .tmp can only be the residue of a crash between snapshot write
  // and rename; the journal itself is authoritative.
  std::remove((shard.path + ".tmp").c_str());

  FileLoad load;
  try {
    load = load_journal_file(shard.path);
  } catch (const std::runtime_error& e) {
    if (shards_.size() == 1) throw;
    // A header-corrupt shard must not take the whole corpus down: rename
    // it aside for forensics, count it, and restart the shard empty — the
    // other shards keep serving everything they hold.
    std::error_code ec;
    std::filesystem::rename(shard.path, shard.path + ".rejected", ec);
    if (ec) std::remove(shard.path.c_str());
    ++base_stats_.quarantined_shards;
    note_skip(base_stats_, std::string("store: shard quarantined to ") +
                               shard.path + ".rejected: " + e.what());
    load = FileLoad{};
    load.fresh_start = true;
  }

  shard.entries = std::move(load.entries);
  shard.stats = std::move(load.stats);
  shard.stats.live_entries = shard.entries.size();
  shard.fresh_start = load.fresh_start;

  // Recovery rewrites (damage, crash tails, legacy migration) are
  // unconditional — they restore the on-disk invariants. Pure duplicate
  // bloat compacts only past the configured dead-record ratio, so a
  // long-lived server's journal stays bounded without rewriting on every
  // restart.
  const std::size_t dead =
      shard.stats.duplicate_records + shard.stats.skipped_records;
  const std::size_t total = dead + shard.entries.size();
  if (shard.stats.skipped_records > 0 || shard.stats.recovered_bytes > 0 ||
      load.legacy) {
    shard.needs_rewrite = true;
  } else if (dead > 0 && config_.auto_compact_dead_ratio > 0.0 && total > 0 &&
             static_cast<double>(dead) >=
                 config_.auto_compact_dead_ratio * static_cast<double>(total)) {
    shard.needs_rewrite = true;
  }

  if (shard.needs_rewrite) {
    compact_shard_locked(shard);  // recovery/migration/bounded-growth rewrite
  } else {
    shard.open_writer(config_, shard.fresh_start);
  }
}

void EvaluationStore::migrate_layout(const std::vector<std::string>& sources) {
  namespace fs = std::filesystem;
  base_stats_.migrated_layout = true;

  // Merge every source journal in deterministic order (single file first,
  // then shards by index), first write winning — same-key records are
  // bit-identical by construction, and any that are not are counted.
  std::map<Key, search::Evaluation> merged;
  for (const std::string& source : sources) {
    std::remove((source + ".tmp").c_str());
    FileLoad load;
    try {
      load = load_journal_file(source);
    } catch (const std::runtime_error& e) {
      if (source == path_) throw;  // single-file semantics stay strict
      std::error_code ec;
      fs::rename(source, source + ".rejected", ec);
      if (ec) std::remove(source.c_str());
      ++base_stats_.quarantined_shards;
      note_skip(base_stats_, "store: shard quarantined to " + source +
                                 ".rejected: " + e.what());
      continue;
    }
    base_stats_.journal_records += load.stats.journal_records;
    base_stats_.duplicate_records += load.stats.duplicate_records;
    base_stats_.divergent_duplicates += load.stats.divergent_duplicates;
    base_stats_.recovered_bytes += load.stats.recovered_bytes;
    base_stats_.skipped_records += load.stats.skipped_records;
    for (std::string& reason : load.stats.skip_reasons) {
      if (base_stats_.skip_reasons.size() < kMaxSkipReasons) {
        base_stats_.skip_reasons.push_back(std::move(reason));
      }
    }
    for (auto& [key, eval] : load.entries) {
      auto [it, inserted] = merged.emplace(key, std::move(eval));
      if (!inserted) {
        ++base_stats_.duplicate_records;
        if (!eval_equal(it->second, eval)) {
          ++base_stats_.divergent_duplicates;
        }
      }
    }
  }

  // Distribute to the target shards and write each as an atomic snapshot.
  // A crash anywhere in here leaves a superset of journals on disk; the
  // next open merges again, so no completed evaluation is ever lost.
  if (config_.shards > 1) fs::create_directories(path_ + ".d");
  for (auto& [key, eval] : merged) {
    Shard& shard = shard_for(std::get<0>(key));
    shard.entries.emplace(std::move(key), std::move(eval));
  }
  for (auto& shard : shards_) {
    robust::atomic_replace_file(shard->path, snapshot_text(shard->entries),
                                config_.durability, "store.compact", kWhat);
    shard->open_writer(config_, false);
    shard->stats.live_entries = shard->entries.size();
    shard->generation.fetch_add(1, std::memory_order_relaxed);
  }

  // Only now drop the stale sources that are not part of the new layout.
  for (const std::string& source : sources) {
    const bool is_target =
        std::any_of(shards_.begin(), shards_.end(),
                    [&](const auto& shard) { return shard->path == source; });
    if (!is_target) std::remove(source.c_str());
  }
  if (config_.shards == 1) {
    std::error_code ec;
    fs::remove(path_ + ".d", ec);  // succeeds only when empty
  }
}

std::size_t EvaluationStore::compact_shard_locked(Shard& shard) {
  const std::size_t bytes_before = file_size_of(shard.path);
  const std::string text = snapshot_text(shard.entries);
  if (shard.writer) {
    shard.stats.io_retries += shard.writer->io_retries();
    try {
      shard.writer->close();
    } catch (const robust::JournalIoError&) {
      // The journal is about to be replaced wholesale; a failed drain of
      // the old fd is moot.
    }
    shard.writer.reset();
  }
  try {
    robust::atomic_replace_file(shard.path, text, config_.durability,
                                "store.compact", kWhat);
  } catch (const robust::JournalIoError&) {
    // Snapshot failed before the rename: the old journal is intact. Try
    // to resume appending to it; if even that fails, degrade.
    try {
      shard.open_writer(config_, false);
    } catch (const robust::JournalIoError&) {
      shard.degraded = true;
    }
    throw;
  }
  shard.open_writer(config_, false);
  shard.degraded = false;  // a fresh, complete journal restores durability
  shard.needs_rewrite = false;
  shard.generation.fetch_add(1, std::memory_order_relaxed);
  ++shard.stats.compactions;
  shard.stats.compaction_bytes_before = bytes_before;
  shard.stats.compaction_bytes_after = text.size();
  return bytes_before > text.size() ? bytes_before - text.size() : 0;
}

std::size_t EvaluationStore::compact() {
  std::size_t reclaimed = 0;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    reclaimed += compact_shard_locked(*shard);
  }
  return reclaimed;
}

std::optional<search::Evaluation> EvaluationStore::lookup(
    const std::string& fingerprint, const std::vector<int>& indices,
    int fidelity) {
  const Shard& shard = shard_for(fingerprint);
  std::shared_lock lock(shard.mutex);
  const auto it = shard.entries.find(Key{fingerprint, indices, fidelity});
  if (it == shard.entries.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvaluationStore::record(const std::string& fingerprint,
                             const std::vector<int>& indices, int fidelity,
                             const search::Evaluation& eval) {
  Shard& shard = shard_for(fingerprint);
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    // The contention signal worker/shard sizing is tuned on: how often a
    // writer had to wait behind another thread on the same shard.
    shard.contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  Key key{fingerprint, indices, fidelity};
  auto [it, inserted] = shard.entries.emplace(key, eval);
  if (!inserted) {
    // First write wins; a duplicate that is NOT bit-identical is a
    // determinism regression upstream — count it instead of masking it.
    if (!eval_equal(it->second, eval)) {
      ++shard.stats.divergent_duplicates;
    }
    return;
  }
  ++shard.stats.live_entries;
  shard.generation.fetch_add(1, std::memory_order_relaxed);
  if (shard.degraded || !shard.writer) {
    ++shard.stats.dropped_writes;
    return;
  }
  try {
    shard.writer->append(payload_for(key, eval));
  } catch (const robust::JournalIoError&) {
    // Terminal append failure (the retries are inside the writer): flip
    // this shard to degraded read-only mode. The entry stays in memory so
    // the search keeps its result; only persistence is lost — callers see
    // it in stats() rather than as a failed query. Other shards keep
    // journaling.
    shard.degraded = true;
    ++shard.stats.dropped_writes;
    shard.stats.io_retries += shard.writer->io_retries();
    try {
      shard.writer->close();
    } catch (...) {
    }
    shard.writer.reset();
    return;
  }
  ++shard.stats.appends;
}

std::uint64_t EvaluationStore::generation(std::string_view fingerprint) const {
  return shards_[shard_index(fingerprint, shards_.size())]->generation.load(
      std::memory_order_relaxed);
}

std::size_t EvaluationStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
EvaluationStore::entries_for(const std::string& fingerprint) const {
  const Shard& shard = shard_for(fingerprint);
  std::shared_lock lock(shard.mutex);
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>> out;
  // Keys sort by fingerprint first, so the scope is one contiguous range.
  for (auto it = shard.entries.lower_bound(Key{fingerprint, {}, 0});
       it != shard.entries.end() && std::get<0>(it->first) == fingerprint;
       ++it) {
    out.emplace_back(std::get<1>(it->first), std::get<2>(it->first),
                     it->second);
  }
  return out;
}

bool EvaluationStore::degraded() const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    if (shard->degraded) return true;
  }
  return false;
}

std::size_t EvaluationStore::divergent_duplicates() const {
  std::size_t total = base_stats_.divergent_duplicates;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->stats.divergent_duplicates;
  }
  return total;
}

StoreStats EvaluationStore::stats() const {
  StoreStats out = base_stats_;
  out.shards = shards_.size();
  out.shard_entries.reserve(shards_.size());
  out.shard_bytes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    const StoreStats& ss = shard->stats;
    out.live_entries += shard->entries.size();
    out.journal_records += ss.journal_records;
    out.duplicate_records += ss.duplicate_records;
    out.skipped_records += ss.skipped_records;
    out.recovered_bytes += ss.recovered_bytes;
    out.appends += ss.appends;
    out.divergent_duplicates += ss.divergent_duplicates;
    out.dropped_writes += ss.dropped_writes;
    out.io_retries += ss.io_retries;
    if (shard->writer) out.io_retries += shard->writer->io_retries();
    out.compactions += ss.compactions;
    out.compaction_bytes_before += ss.compaction_bytes_before;
    out.compaction_bytes_after += ss.compaction_bytes_after;
    out.degraded = out.degraded || shard->degraded;
    for (const std::string& reason : ss.skip_reasons) {
      if (out.skip_reasons.size() <= kMaxSkipReasons) {
        out.skip_reasons.push_back(reason);
      }
    }
    out.hits += shard->hits.load(std::memory_order_relaxed);
    out.misses += shard->misses.load(std::memory_order_relaxed);
    out.lock_contention += shard->contention.load(std::memory_order_relaxed);
    out.shard_entries.push_back(shard->entries.size());
    out.shard_bytes.push_back(file_size_of(shard->path));
  }
  return out;
}

}  // namespace metacore::serve
