// MCB1 binary encodings of the service documents — the compact wire form
// behind the negotiated binary mode (net/): varints for counters, raw
// little-endian 8-byte doubles (bit-exact round trip, no text formatting),
// grid indices and metric vectors as raw little-endian arrays, and a
// per-response string table so repeated metric names on a large Pareto
// front cost one varint per use instead of a quoted JSON key per point.
//
// The encodings are canonical: equal documents encode to equal bytes, and
// decode(encode(x)) reproduces x exactly — pinned in tests by re-serializing
// the decoded struct through the canonical JSON writers and comparing bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace metacore::serve {

/// Version byte leading every binary document (query, response, envelope).
inline constexpr std::uint8_t kBinaryCodecVersion = 1;

std::string encode_binary(const DesignQuery& query);
DesignQuery decode_design_query(std::string_view bytes);

std::string encode_binary(const DesignResponse& response);
DesignResponse decode_design_response(std::string_view bytes);

/// Low-level primitives of the MCB1 encoding, shared with the envelope
/// codec in net/protocol: LEB128 varints, zigzag for signed ints, packed
/// bit-exact doubles (count byte + the non-zero tail of the little-endian
/// image, so quantized grid values cost 2-3 bytes), and length-prefixed
/// strings.
namespace bincode {

void put_u8(std::string& out, std::uint8_t v);
void put_varint(std::string& out, std::uint64_t v);
void put_zigzag(std::string& out, std::int64_t v);
void put_f64(std::string& out, double v);
void put_string(std::string& out, std::string_view s);

/// Sequential reader over an encoded document. Every accessor throws
/// std::runtime_error (prefixed with `what`) on truncation or malformed
/// data — never reads past the buffer.
struct Reader {
  std::string_view data;
  const char* what = "binary";
  std::size_t pos = 0;

  std::uint8_t u8();
  std::uint64_t varint();
  std::int64_t zigzag();
  double f64();
  std::string string();
  /// Checks that at least `n` bytes remain (for raw-array reads).
  void need(std::size_t n) const;
  std::size_t remaining() const { return data.size() - pos; }
  bool done() const { return pos == data.size(); }
  [[noreturn]] void fail(const std::string& message) const;
};

}  // namespace bincode

}  // namespace metacore::serve
