// Persistent, content-addressed evaluation store: the substrate that makes
// MetaCore cost evaluations reusable *across* runs, searches, and service
// queries. One store file is an append-only record journal
// (robust/journal.hpp) — a self-identifying header line followed by one
// CRC32C-guarded, length-prefixed frame per evaluation, keyed by (evaluator
// fingerprint, grid indices, fidelity). Payloads reuse the versioned-JSON
// machinery of robust/checkpoint (robust::write_eval_record /
// parse_eval_record), so stored doubles round-trip bit-exactly.
//
// Durability and recovery:
//  * Appends go through a pluggable durability policy (none | flush |
//    fsync-every-N | fsync-on-close; METACORE_DURABILITY overrides), so a
//    deployment chooses its crash window. A crash can only ever leave one
//    incomplete frame at the tail; load drops it silently — no completed
//    evaluation is lost.
//  * Every frame carries its own CRC32C: mid-file damage (bit rot, torn
//    sectors) is skipped per record with a counted, descriptive reason in
//    stats() instead of poisoning the whole journal. Only header-level
//    problems (foreign file, unsupported version) reject the file.
//  * Snapshot + compaction: compact() rewrites the live set as a
//    checksummed snapshot via tmp file + fsync + atomic rename; it runs
//    automatically at open when the dead-record ratio (duplicates +
//    damage) crosses StoreConfig::auto_compact_dead_ratio, so a long-lived
//    server's journal stays bounded. Legacy (v1 JSONL) stores are migrated
//    to the framed format on first open.
//  * Degraded read-only mode: when an append fails terminally (disk gone
//    bad mid-run, after bounded retries), the store keeps serving lookups
//    and absorbing records in memory but stops journaling; stats() reports
//    degraded=true and the dropped-write count, and a successful compact()
//    re-establishes the journal.
//
// Crash points: every journal write/fsync/rename boundary consults a named
// fail point ("store.journal.*", "store.compact.*"; robust/failpoint.hpp),
// so the crash-matrix tests enumerate byte-exact kill points.
//
// Concurrency discipline: any number of concurrent readers (lookup), one
// writer at a time (record) — enforced in-process with a shared mutex.
// Cross-process single-writer discipline is the caller's contract, as with
// the search checkpoints.
#pragma once

#include <cstddef>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "robust/journal.hpp"
#include "search/store.hpp"

namespace metacore::serve {

/// Framed-journal store schema ("kind_version" in the header). Version 1
/// was the pre-CRC JSONL format, still readable (and migrated) on load.
inline constexpr int kStoreVersion = 2;

/// Load + traffic accounting; all counters are since open.
struct StoreStats {
  std::size_t live_entries = 0;      ///< distinct keys held after load
  std::size_t journal_records = 0;   ///< intact record frames parsed at load
  std::size_t duplicate_records = 0; ///< duplicate-key frames dropped at load
  std::size_t skipped_records = 0;   ///< damaged frames skipped at load
  std::size_t recovered_bytes = 0;   ///< crashed-append tail dropped at load
  std::size_t hits = 0;              ///< lookup() found the key
  std::size_t misses = 0;            ///< lookup() did not
  std::size_t appends = 0;           ///< record() journal appends
  /// record() calls (or load-time duplicates) whose key already existed
  /// with a *different* evaluation — a determinism regression that
  /// first-write-wins would otherwise silently mask.
  std::size_t divergent_duplicates = 0;
  std::size_t dropped_writes = 0;    ///< records not journaled (degraded)
  std::size_t io_retries = 0;        ///< transient write failures retried
  std::size_t compactions = 0;       ///< snapshot rewrites since open
  std::size_t compaction_bytes_before = 0;  ///< journal size before last one
  std::size_t compaction_bytes_after = 0;   ///< ... and after
  bool degraded = false;             ///< journal lost mid-run; memory-only
  /// One descriptive reason per skipped record (capped), e.g. the CRC
  /// mismatch and offset.
  std::vector<std::string> skip_reasons;
};

struct StoreConfig {
  /// Append durability; defaults to the process-wide policy
  /// (METACORE_DURABILITY, else flush).
  robust::DurabilityConfig durability{};
  /// Auto-compaction trigger at open: rewrite when
  /// dead / (dead + live) >= ratio, dead = duplicate + skipped records.
  /// <= 0 disables ratio-triggered compaction (recovery rewrites for
  /// damage/tails and legacy migration still happen). Override with
  /// METACORE_STORE_COMPACT_RATIO.
  double auto_compact_dead_ratio = 0.25;

  /// durability from METACORE_DURABILITY, ratio from
  /// METACORE_STORE_COMPACT_RATIO; throws std::invalid_argument on
  /// malformed values.
  static StoreConfig from_env();
};

class EvaluationStore final : public search::EvaluationStoreBase {
 public:
  /// Opens (creating if absent) the journal at `path`, replaying it into
  /// memory with tail recovery, per-record damage skipping, legacy
  /// migration, and ratio-triggered compaction as described above. Throws
  /// std::runtime_error on I/O failure, a foreign file, or a version
  /// mismatch.
  explicit EvaluationStore(std::string path,
                           StoreConfig config = StoreConfig::from_env());

  /// Thread-safe; concurrent lookups proceed in parallel.
  std::optional<search::Evaluation> lookup(const std::string& fingerprint,
                                           const std::vector<int>& indices,
                                           int fidelity) override;

  /// Thread-safe; writers are serialized. A key already present is left
  /// untouched (first write wins); a duplicate whose evaluation *differs*
  /// bumps divergent_duplicates. In degraded mode the entry is kept in
  /// memory (searches keep working) and counted as a dropped write.
  void record(const std::string& fingerprint, const std::vector<int>& indices,
              int fidelity, const search::Evaluation& eval) override;

  /// Number of distinct keys currently held.
  std::size_t size() const;

  /// Entries recorded under `fingerprint`, as (indices, fidelity, eval)
  /// tuples in deterministic key order — the warm-start seed for Pareto
  /// archives.
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
  entries_for(const std::string& fingerprint) const;

  /// Rewrites the journal as a compacted snapshot of the live set (tmp
  /// file + fsync + atomic rename), dropping dead records; re-establishes
  /// journaling after degraded mode. Returns bytes reclaimed. Throws
  /// robust::JournalIoError when the rewrite itself fails.
  std::size_t compact();

  /// True once an append has failed terminally: lookups and in-memory
  /// recording still work, the journal does not grow.
  bool degraded() const;

  std::size_t divergent_duplicates() const override;

  StoreStats stats() const;

  const std::string& path() const { return path_; }

 private:
  using Key = std::tuple<std::string, std::vector<int>, int>;

  void load_or_create();
  void load_framed(const std::string& text);
  void load_legacy(const std::string& text);
  std::string payload_for(const Key& key, const search::Evaluation& eval) const;
  std::string snapshot_text() const;
  std::size_t compact_locked();
  void open_writer(bool truncate);

  std::string path_;
  StoreConfig config_;
  mutable std::shared_mutex mutex_;
  std::map<Key, search::Evaluation> entries_;
  std::unique_ptr<robust::JournalWriter> writer_;
  bool fresh_start_ = false;     ///< load decided the file starts empty
  bool needs_rewrite_ = false;   ///< load found damage/migration/dead bloat
  bool degraded_ = false;
  StoreStats stats_;  // hit/miss tracked separately (atomics below)
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace metacore::serve
