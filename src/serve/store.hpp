// Persistent, content-addressed evaluation store: the substrate that makes
// MetaCore cost evaluations reusable *across* runs, searches, and service
// queries. Storage is one or more append-only record journals
// (robust/journal.hpp) — a self-identifying header line followed by one
// CRC32C-guarded, length-prefixed frame per evaluation, keyed by (evaluator
// fingerprint, grid indices, fidelity). Payloads reuse the versioned-JSON
// machinery of robust/checkpoint (robust::write_eval_record /
// parse_eval_record), so stored doubles round-trip bit-exactly.
//
// Sharding (StoreConfig::shards, env METACORE_STORE_SHARDS):
//  * shards == 1 keeps the historical single-file layout at `path`,
//    byte-compatible with every v2 store ever written.
//  * shards == N > 1 spreads the corpus over `path`.d/shard-00.journal …
//    shard-(N-1).journal, routed by fingerprint_hash(fingerprint) % N — so
//    every entry of one evaluator scope lives in exactly one shard, and
//    lookups/records/compactions on distinct fingerprints touch distinct
//    files behind distinct locks. One torn shard recovers (or, for
//    header-level corruption, is quarantined aside) without blocking the
//    others.
//  * Layout migration is transparent: opening a single-file store with
//    N > 1 shards, a sharded store with 1, or resharding N -> M merges
//    every journal found (first write wins; bit-different duplicates are
//    counted as divergent), rewrites the requested layout atomically, and
//    removes the stale files. A crash mid-migration leaves both layouts on
//    disk; the next open simply merges again — no completed evaluation is
//    ever lost.
//
// Durability and recovery (per shard):
//  * Appends go through a pluggable durability policy (none | flush |
//    fsync-every-N | fsync-on-close; METACORE_DURABILITY overrides), so a
//    deployment chooses its crash window. A crash can only ever leave one
//    incomplete frame at the tail of one shard; load drops it silently —
//    no completed evaluation is lost.
//  * Every frame carries its own CRC32C: mid-file damage (bit rot, torn
//    sectors) is skipped per record with a counted, descriptive reason in
//    stats() instead of poisoning the whole journal. Header-level problems
//    (foreign file, unsupported version) reject a single-file store; in a
//    sharded store the bad shard is renamed to <shard>.rejected, counted
//    in quarantined_shards, and restarted empty while the rest serve.
//  * Snapshot + compaction: compact() rewrites each shard's live set as a
//    checksummed snapshot via tmp file + fsync + atomic rename; it runs
//    automatically at open when a shard's dead-record ratio (duplicates +
//    damage) crosses StoreConfig::auto_compact_dead_ratio, so a long-lived
//    server's journals stay bounded. Legacy (v1 JSONL) stores are migrated
//    to the framed format on first open.
//  * Degraded read-only mode: when an append fails terminally (disk gone
//    bad mid-run, after bounded retries), the affected shard keeps serving
//    lookups and absorbing records in memory but stops journaling; stats()
//    reports degraded=true and the dropped-write count, and a successful
//    compact() re-establishes the journal. Healthy shards keep journaling.
//
// Crash points: every journal write/fsync/rename boundary consults a named
// fail point ("store.journal.*", "store.compact.*"; robust/failpoint.hpp),
// so the crash-matrix tests enumerate byte-exact kill points.
//
// Concurrency discipline: any number of concurrent readers (lookup), one
// writer at a time *per shard* (record) — enforced in-process with a
// shared mutex per shard; writers on distinct shards proceed in parallel,
// and blocked writer acquisitions are counted in
// StoreStats::lock_contention. Cross-process single-writer discipline is
// the caller's contract, as with the search checkpoints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "robust/journal.hpp"
#include "search/store.hpp"

namespace metacore::serve {

/// Framed-journal store schema ("kind_version" in the header). Version 1
/// was the pre-CRC JSONL format, still readable (and migrated) on load.
inline constexpr int kStoreVersion = 2;

/// Stable 64-bit FNV-1a over the fingerprint bytes: the routing hash that
/// assigns an evaluator scope to a store shard — and, in the networked
/// server, to a dispatch worker. Stable across runs, builds, and hosts by
/// construction (pure byte arithmetic), so a store written at N shards is
/// read back identically anywhere.
std::uint64_t fingerprint_hash(std::string_view fingerprint) noexcept;

/// The shard owning `fingerprint` in an N-shard layout:
/// fingerprint_hash(fingerprint) % shard_count.
std::size_t shard_index(std::string_view fingerprint,
                        std::size_t shard_count) noexcept;

/// Load + traffic accounting; all counters are since open, summed over the
/// shards (per-shard breakdowns at the bottom).
struct StoreStats {
  std::size_t live_entries = 0;      ///< distinct keys held after load
  std::size_t journal_records = 0;   ///< intact record frames parsed at load
  std::size_t duplicate_records = 0; ///< duplicate-key frames dropped at load
  std::size_t skipped_records = 0;   ///< damaged frames skipped at load
  std::size_t recovered_bytes = 0;   ///< crashed-append tails dropped at load
  std::size_t hits = 0;              ///< lookup() found the key
  std::size_t misses = 0;            ///< lookup() did not
  std::size_t appends = 0;           ///< record() journal appends
  /// record() calls (or load-time duplicates) whose key already existed
  /// with a *different* evaluation — a determinism regression that
  /// first-write-wins would otherwise silently mask.
  std::size_t divergent_duplicates = 0;
  std::size_t dropped_writes = 0;    ///< records not journaled (degraded)
  std::size_t io_retries = 0;        ///< transient write failures retried
  std::size_t compactions = 0;       ///< snapshot rewrites since open
  std::size_t compaction_bytes_before = 0;  ///< journal size before last one
  std::size_t compaction_bytes_after = 0;   ///< ... and after
  bool degraded = false;             ///< any shard lost its journal mid-run
  /// One descriptive reason per skipped record (capped), e.g. the CRC
  /// mismatch and offset.
  std::vector<std::string> skip_reasons;

  // Shard-layout accounting.
  std::size_t shards = 1;            ///< shard count of this open store
  /// True when open() found a different layout (single file vs sharded,
  /// or another shard count) and rewrote it.
  bool migrated_layout = false;
  /// Shards whose journal failed header-level validation and were renamed
  /// to <shard>.rejected (sharded layouts only; the shard restarts empty).
  std::size_t quarantined_shards = 0;
  /// record() writer-lock acquisitions that found the shard lock held and
  /// had to block — the contention signal worker/shard sizing tunes on.
  std::size_t lock_contention = 0;
  std::vector<std::size_t> shard_entries;  ///< live keys per shard
  std::vector<std::size_t> shard_bytes;    ///< journal bytes on disk per shard
};

struct StoreConfig {
  /// Append durability; defaults to the process-wide policy
  /// (METACORE_DURABILITY, else flush).
  robust::DurabilityConfig durability{};
  /// Auto-compaction trigger at open: rewrite a shard when
  /// dead / (dead + live) >= ratio, dead = duplicate + skipped records.
  /// <= 0 disables ratio-triggered compaction (recovery rewrites for
  /// damage/tails and legacy migration still happen). Override with
  /// METACORE_STORE_COMPACT_RATIO.
  double auto_compact_dead_ratio = 0.25;
  /// Shard count (1 = historical single-file layout). Override with
  /// METACORE_STORE_SHARDS; must be in [1, 256].
  std::size_t shards = 1;

  /// durability from METACORE_DURABILITY, ratio from
  /// METACORE_STORE_COMPACT_RATIO, shards from METACORE_STORE_SHARDS;
  /// throws std::invalid_argument on malformed values.
  static StoreConfig from_env();
};

class EvaluationStore final : public search::EvaluationStoreBase {
 public:
  /// Opens (creating if absent) the store at `path`, replaying every
  /// journal of the on-disk layout into memory with tail recovery,
  /// per-record damage skipping, legacy migration, layout migration, and
  /// ratio-triggered compaction as described above. Throws
  /// std::runtime_error on I/O failure, a foreign single-file store, or a
  /// version mismatch.
  explicit EvaluationStore(std::string path,
                           StoreConfig config = StoreConfig::from_env());
  ~EvaluationStore() override;  // out-of-line: Shard is incomplete here

  /// Thread-safe; concurrent lookups proceed in parallel (across and
  /// within shards).
  std::optional<search::Evaluation> lookup(const std::string& fingerprint,
                                           const std::vector<int>& indices,
                                           int fidelity) override;

  /// Thread-safe; writers are serialized per shard (distinct fingerprints
  /// usually append concurrently). A key already present is left untouched
  /// (first write wins); a duplicate whose evaluation *differs* bumps
  /// divergent_duplicates. In degraded mode the entry is kept in memory
  /// (searches keep working) and counted as a dropped write.
  void record(const std::string& fingerprint, const std::vector<int>& indices,
              int fidelity, const search::Evaluation& eval) override;

  /// Number of distinct keys currently held (all shards).
  std::size_t size() const;

  /// Entries recorded under `fingerprint`, as (indices, fidelity, eval)
  /// tuples in deterministic key order — the warm-start seed for Pareto
  /// archives. Reads exactly one shard.
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
  entries_for(const std::string& fingerprint) const;

  /// Rewrites every shard's journal as a compacted snapshot of its live
  /// set (tmp file + fsync + atomic rename), dropping dead records;
  /// re-establishes journaling after degraded mode. Returns bytes
  /// reclaimed. Throws robust::JournalIoError when a rewrite fails.
  std::size_t compact();

  /// True once an append has failed terminally on any shard: lookups and
  /// in-memory recording still work, that shard's journal does not grow.
  bool degraded() const;

  /// Mutation generation of the shard owning `fingerprint`: bumped on every
  /// new-key record() (journaled or in-memory), every compaction of that
  /// shard, and layout migration at open. A serialized-response cache entry
  /// stamped with the generation observed around its search is valid
  /// exactly while this number holds still — any append or rewrite that
  /// could change what a repeat query would answer advances it.
  std::uint64_t generation(std::string_view fingerprint) const;

  std::size_t divergent_duplicates() const override;

  StoreStats stats() const;

  const std::string& path() const { return path_; }

  std::size_t shard_count() const { return shards_.size(); }

  /// On-disk journal path of shard `shard` (the configured path itself in
  /// the single-file layout).
  std::string shard_path(std::size_t shard) const;

 private:
  using Key = std::tuple<std::string, std::vector<int>, int>;
  struct Shard;

  Shard& shard_for(const std::string& fingerprint);
  const Shard& shard_for(const std::string& fingerprint) const;
  void open_layout();
  void load_shard_in_place(Shard& shard);
  void migrate_layout(const std::vector<std::string>& sources);
  std::size_t compact_shard_locked(Shard& shard);

  std::string path_;
  StoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Load accounting from a layout migration (per-shard loads write into
  /// their shard's stats instead).
  StoreStats base_stats_;
};

}  // namespace metacore::serve
