// Persistent, content-addressed evaluation store: the substrate that makes
// MetaCore cost evaluations reusable *across* runs, searches, and service
// queries. One store file is an append-only JSONL journal — a header line
// followed by one evaluation record per line, keyed by (evaluator
// fingerprint, grid indices, fidelity) — reusing the versioned-JSON
// machinery of robust/checkpoint (robust::write_eval_record /
// parse_eval_record), so stored doubles round-trip bit-exactly.
//
// Durability and recovery:
//  * Appends are single writes terminated by '\n' and flushed, so a crash
//    can only ever leave one *unterminated* partial line at the tail. Load
//    drops such a tail, truncates the file back to the last good byte, and
//    reports the recovery in stats() — no completed evaluation is lost.
//  * A newline-terminated line that fails to parse cannot have been
//    produced by a crashed append: that is real corruption, and load
//    rejects the file with a descriptive error rather than guessing.
//  * A header version this build does not understand is rejected.
//  * Load-time compaction: duplicate keys are deduplicated in memory
//    (first record wins — later identical appends are by construction
//    bit-identical) and, when duplicates were present, the journal is
//    rewritten compacted via tmp-file + atomic rename.
//
// Concurrency discipline: any number of concurrent readers (lookup), one
// writer at a time (record) — enforced in-process with a shared mutex.
// Cross-process single-writer discipline is the caller's contract, as with
// the search checkpoints.
#pragma once

#include <cstddef>
#include <atomic>
#include <fstream>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "search/store.hpp"

namespace metacore::serve {

inline constexpr int kStoreVersion = 1;

/// Load + traffic accounting; all counters are since open.
struct StoreStats {
  std::size_t live_entries = 0;     ///< distinct keys held after load
  std::size_t journal_lines = 0;    ///< record lines parsed at load
  std::size_t compacted_lines = 0;  ///< duplicate lines dropped at load
  std::size_t recovered_bytes = 0;  ///< corrupt unterminated tail truncated
  std::size_t hits = 0;             ///< lookup() found the key
  std::size_t misses = 0;           ///< lookup() did not
  std::size_t appends = 0;          ///< record() journal appends
};

class EvaluationStore final : public search::EvaluationStoreBase {
 public:
  /// Opens (creating if absent) the journal at `path`, replaying it into
  /// memory with tail recovery and compaction as described above. Throws
  /// std::runtime_error on I/O failure, mid-file corruption, a foreign
  /// file, or a version mismatch.
  explicit EvaluationStore(std::string path);

  /// Thread-safe; concurrent lookups proceed in parallel.
  std::optional<search::Evaluation> lookup(const std::string& fingerprint,
                                           const std::vector<int>& indices,
                                           int fidelity) override;

  /// Thread-safe; writers are serialized. A key already present is left
  /// untouched (first write wins — a well-behaved caller only records keys
  /// it failed to look up, and duplicate evaluations are bit-identical).
  void record(const std::string& fingerprint, const std::vector<int>& indices,
              int fidelity, const search::Evaluation& eval) override;

  /// Number of distinct keys currently held.
  std::size_t size() const;

  /// Entries recorded under `fingerprint`, as (indices, fidelity, eval)
  /// tuples in deterministic key order — the warm-start seed for Pareto
  /// archives.
  std::vector<std::tuple<std::vector<int>, int, search::Evaluation>>
  entries_for(const std::string& fingerprint) const;

  StoreStats stats() const;

  const std::string& path() const { return path_; }

 private:
  using Key = std::tuple<std::string, std::vector<int>, int>;

  void load_or_create();
  void write_line(std::ostream& os, const Key& key,
                  const search::Evaluation& eval) const;

  std::string path_;
  mutable std::shared_mutex mutex_;
  std::map<Key, search::Evaluation> entries_;
  std::ofstream out_;
  StoreStats stats_;  // hit/miss tracked separately (atomics below)
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace metacore::serve
