#include "serve/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <cstdlib>

#include "core/report.hpp"
#include "exec/thread_pool.hpp"
#include "robust/checkpoint.hpp"
#include "robust/json.hpp"
#include "search/pareto.hpp"
#include "serve/binary_codec.hpp"

namespace metacore::serve {

namespace {

using robust::JsonValue;

constexpr const char* kWhat = "query";

double get_number(const JsonValue& obj, const std::string& key,
                  double fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->type != JsonValue::Type::Number) {
    throw std::runtime_error(std::string(kWhat) + ": field '" + key +
                             "' must be a number");
  }
  return v->number;
}

int get_int(const JsonValue& obj, const std::string& key, int fallback) {
  return static_cast<int>(get_number(obj, key, fallback));
}

bool get_bool(const JsonValue& obj, const std::string& key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->type != JsonValue::Type::Bool) {
    throw std::runtime_error(std::string(kWhat) + ": field '" + key +
                             "' must be a boolean");
  }
  return v->boolean;
}

std::string get_string(const JsonValue& obj, const std::string& key,
                       const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->type != JsonValue::Type::String) {
    throw std::runtime_error(std::string(kWhat) + ": field '" + key +
                             "' must be a string");
  }
  return v->string;
}

core::ViterbiRequirements viterbi_requirements(const DesignQuery& query) {
  core::ViterbiRequirements req;
  req.target_ber = query.target_ber;
  req.esn0_db = query.esn0_db;
  req.throughput_mbps = query.throughput_mbps;
  req.ber_shards = query.ber_shards;
  req.ber_lanes = query.ber_lanes;
  return req;
}

search::Objective query_objective(const DesignQuery& query,
                                  search::Objective base) {
  if (!query.minimize.empty()) base.minimize = query.minimize;
  if (!query.constraints.empty()) base.constraints = query.constraints;
  return base;
}

std::string encode_response(const DesignResponse& response,
                            WireEncoding encoding) {
  return encoding == WireEncoding::Binary ? encode_binary(response)
                                          : to_json(response);
}

/// Cache cap: METACORE_RESPONSE_CACHE when set (0 disables), else the
/// configured value. Throws std::invalid_argument on a malformed value.
std::size_t cache_capacity_from_env(std::size_t configured) {
  const char* env = std::getenv("METACORE_RESPONSE_CACHE");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    throw std::invalid_argument(
        "service: METACORE_RESPONSE_CACHE must be a non-negative integer, "
        "got \"" +
        std::string(env) + "\"");
  }
  return static_cast<std::size_t>(value);
}

void write_point(std::ostream& os, const search::EvaluatedPoint& pt) {
  os << "{\"values\":[";
  for (std::size_t i = 0; i < pt.values.size(); ++i) {
    if (i > 0) os << ',';
    robust::write_double(os, pt.values[i]);
  }
  os << "],\"record\":";
  robust::write_eval_record(
      os, robust::CheckpointRecord{pt.indices, pt.fidelity, pt.eval});
  os << '}';
}

}  // namespace

std::string to_string(QueryKind kind) {
  return kind == QueryKind::Viterbi ? "viterbi" : "iir";
}

std::string query_fingerprint(const DesignQuery& query) {
  if (query.kind == QueryKind::Viterbi) {
    return core::ViterbiMetaCore(viterbi_requirements(query))
        .evaluation_fingerprint();
  }
  return core::IirMetaCore(
             core::paper_bandpass_requirements(query.sample_period_us))
      .evaluation_fingerprint();
}

std::string to_json(const DesignQuery& query) {
  std::ostringstream os;
  os << "{\"kind\":\"" << to_string(query.kind) << "\",\"target_ber\":";
  robust::write_double(os, query.target_ber);
  os << ",\"esn0_db\":";
  robust::write_double(os, query.esn0_db);
  os << ",\"throughput_mbps\":";
  robust::write_double(os, query.throughput_mbps);
  os << ",\"ber_shards\":" << query.ber_shards
     << ",\"ber_lanes\":" << query.ber_lanes << ",\"sample_period_us\":";
  robust::write_double(os, query.sample_period_us);
  os << ",\"budget\":{\"initial_points_per_dim\":"
     << query.budget.initial_points_per_dim
     << ",\"max_resolution\":" << query.budget.max_resolution
     << ",\"regions_per_level\":" << query.budget.regions_per_level
     << ",\"max_evaluations\":" << query.budget.max_evaluations
     << "},\"minimize\":";
  robust::write_escaped(os, query.minimize);
  os << ",\"constraints\":[";
  for (std::size_t i = 0; i < query.constraints.size(); ++i) {
    const search::Constraint& c = query.constraints[i];
    if (i > 0) os << ',';
    os << "{\"kind\":\""
       << (c.kind == search::Constraint::Kind::UpperBound ? "upper" : "lower")
       << "\",\"metric\":";
    robust::write_escaped(os, c.metric);
    os << ",\"bound\":";
    robust::write_double(os, c.bound);
    os << '}';
  }
  os << "],\"archive_only\":" << (query.archive_only ? "true" : "false")
     << '}';
  return os.str();
}

DesignQuery parse_design_query(const std::string& json) {
  const JsonValue doc = robust::parse_json(json, kWhat);
  if (doc.type != JsonValue::Type::Object) {
    throw std::runtime_error(std::string(kWhat) +
                             ": document must be an object");
  }
  DesignQuery query;
  const std::string kind = get_string(doc, "kind", "");
  if (kind == "viterbi") {
    query.kind = QueryKind::Viterbi;
  } else if (kind == "iir") {
    query.kind = QueryKind::Iir;
  } else {
    throw std::runtime_error(std::string(kWhat) +
                             ": 'kind' must be \"viterbi\" or \"iir\"");
  }
  query.target_ber = get_number(doc, "target_ber", query.target_ber);
  query.esn0_db = get_number(doc, "esn0_db", query.esn0_db);
  query.throughput_mbps =
      get_number(doc, "throughput_mbps", query.throughput_mbps);
  query.ber_shards = get_int(doc, "ber_shards", query.ber_shards);
  query.ber_lanes = get_int(doc, "ber_lanes", query.ber_lanes);
  query.sample_period_us =
      get_number(doc, "sample_period_us", query.sample_period_us);
  if (const JsonValue* budget = doc.find("budget")) {
    if (budget->type != JsonValue::Type::Object) {
      throw std::runtime_error(std::string(kWhat) +
                               ": 'budget' must be an object");
    }
    query.budget.initial_points_per_dim =
        get_int(*budget, "initial_points_per_dim",
                query.budget.initial_points_per_dim);
    query.budget.max_resolution =
        get_int(*budget, "max_resolution", query.budget.max_resolution);
    query.budget.regions_per_level =
        get_int(*budget, "regions_per_level", query.budget.regions_per_level);
    query.budget.max_evaluations = static_cast<std::size_t>(get_number(
        *budget, "max_evaluations",
        static_cast<double>(query.budget.max_evaluations)));
  }
  query.minimize = get_string(doc, "minimize", query.minimize);
  if (const JsonValue* constraints = doc.find("constraints")) {
    if (constraints->type != JsonValue::Type::Array) {
      throw std::runtime_error(std::string(kWhat) +
                               ": 'constraints' must be an array");
    }
    for (const JsonValue& entry : constraints->array) {
      if (entry.type != JsonValue::Type::Object) {
        throw std::runtime_error(std::string(kWhat) +
                                 ": each constraint must be an object");
      }
      search::Constraint c;
      const std::string ckind = get_string(entry, "kind", "upper");
      if (ckind == "upper") {
        c.kind = search::Constraint::Kind::UpperBound;
      } else if (ckind == "lower") {
        c.kind = search::Constraint::Kind::LowerBound;
      } else {
        throw std::runtime_error(
            std::string(kWhat) +
            ": constraint 'kind' must be \"upper\" or \"lower\"");
      }
      c.metric =
          robust::require(entry, "metric", JsonValue::Type::String, kWhat)
              .string;
      c.bound =
          robust::require(entry, "bound", JsonValue::Type::Number, kWhat)
              .number;
      query.constraints.push_back(std::move(c));
    }
  }
  query.archive_only = get_bool(doc, "archive_only", query.archive_only);
  return query;
}

std::string to_json(const DesignResponse& response) {
  std::ostringstream os;
  os << "{\"feasible\":" << (response.feasible ? "true" : "false")
     << ",\"from_archive\":" << (response.from_archive ? "true" : "false")
     << ",\"best\":";
  write_point(os, response.best);
  os << ",\"evaluations\":" << response.evaluations
     << ",\"cache_hits\":" << response.cache_hits
     << ",\"store_hits\":" << response.store_hits
     << ",\"divergent_duplicates\":" << response.divergent_duplicates
     << ",\"store_degraded\":" << (response.store_degraded ? "true" : "false")
     << ",\"front_x\":";
  robust::write_escaped(os, response.front_x);
  os << ",\"front_y\":";
  robust::write_escaped(os, response.front_y);
  os << ",\"front\":[";
  for (std::size_t i = 0; i < response.front.size(); ++i) {
    if (i > 0) os << ',';
    write_point(os, response.front[i]);
  }
  os << "],\"summary\":";
  robust::write_escaped(os, response.summary);
  os << '}';
  return os.str();
}

struct DesignService::InFlight {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  DesignResponse response;
  std::exception_ptr error;
};

DesignService::DesignService(ServiceConfig config)
    : cache_capacity_(cache_capacity_from_env(config.response_cache_capacity)) {
  if (config.store) {
    store_ = std::move(config.store);
  } else if (!config.store_path.empty()) {
    store_ = std::make_shared<EvaluationStore>(config.store_path);
  }
}

DesignResponse DesignService::submit(const DesignQuery& query) {
  const std::string key = to_json(query);
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<InFlight>();
      in_flight_.emplace(key, flight);
      leader = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    if (!leader) ++stats_.coalesced;
  }
  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->response;
  }

  DesignResponse response;
  std::exception_ptr error;
  try {
    response = run_query(query);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    in_flight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->response = response;
    flight->error = error;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return response;
}

std::vector<DesignResponse> DesignService::submit_batch(
    const std::vector<DesignQuery>& queries) {
  std::vector<DesignResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Deduplicate identical queries up front: each unique query runs exactly
  // once regardless of thread count (at METACORE_THREADS=1 the fan-out is
  // sequential, so in-flight coalescing alone could never fire — pre-dedup
  // is what keeps the response vector byte-identical at any thread count).
  std::map<std::string, std::size_t> first_of;
  std::vector<std::size_t> slot_of(queries.size());
  std::vector<std::size_t> unique;
  std::size_t duplicates = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = first_of.emplace(to_json(queries[i]), unique.size());
    if (inserted) {
      unique.push_back(i);
    } else {
      ++duplicates;
    }
    slot_of[i] = it->second;
  }
  if (duplicates > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries += duplicates;
    stats_.coalesced += duplicates;
  }

  // Group distinct queries that share an evaluator fingerprint: they read
  // and feed the same store partition and archive, so they run sequentially
  // in batch order within the group (groups fan out in parallel). Without
  // this, whether query B's search hits entries recorded by query A's
  // would depend on scheduling — store_hits would vary with thread count.
  std::map<std::string, std::vector<std::size_t>> by_fingerprint;
  for (std::size_t u = 0; u < unique.size(); ++u) {
    by_fingerprint[query_fingerprint(queries[unique[u]])].push_back(u);
  }
  std::vector<const std::vector<std::size_t>*> groups;
  groups.reserve(by_fingerprint.size());
  for (const auto& [fingerprint, slots] : by_fingerprint) {
    groups.push_back(&slots);
  }

  std::vector<DesignResponse> unique_responses(unique.size());
  exec::parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t u : *groups[g]) {
      unique_responses[u] = submit(queries[unique[u]]);
    }
  });

  for (std::size_t i = 0; i < queries.size(); ++i) {
    responses[i] = unique_responses[slot_of[i]];
  }
  return responses;
}

std::shared_ptr<const std::string> DesignService::submit_encoded(
    const DesignQuery& query, WireEncoding encoding) {
  const auto slot = static_cast<std::size_t>(encoding);
  if (cache_capacity_ == 0) {
    return std::make_shared<const std::string>(
        encode_response(submit(query), encoding));
  }

  // An unconstructible query (bad requirements) has no evaluator scope to
  // stamp; skip the cache and let submit() raise the real error.
  std::string fingerprint;
  try {
    fingerprint = query_fingerprint(query);
  } catch (...) {
    return std::make_shared<const std::string>(
        encode_response(submit(query), encoding));
  }

  const std::string key = to_json(query);
  const Generation g0 = current_generation(fingerprint);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    auto it = response_cache_.find(key);
    if (it != response_cache_.end()) {
      if (it->second.gen == g0) {
        // Valid entry: the scope has not moved since the cached run, so a
        // fresh submit() would reproduce these exact bytes. A missing
        // encoding is filled from the cached struct — still zero
        // re-search.
        auto& encoded = it->second.encoded[slot];
        if (!encoded) {
          encoded = std::make_shared<const std::string>(
              encode_response(it->second.response, encoding));
        }
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.queries;
          ++stats_.response_cache_hits;
        }
        return encoded;
      }
      // The store or archive generation moved: the entry may no longer
      // match what a fresh run would answer (store_hits, archive
      // population). Drop it.
      response_cache_.erase(it);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.response_cache_invalidations;
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.response_cache_misses;
  }

  DesignResponse response = submit(query);
  const Generation g1 = current_generation(fingerprint);
  auto bytes = std::make_shared<const std::string>(
      encode_response(response, encoding));
  // Cache only runs that left their scope unchanged (g1 == g0): a cold
  // search appends to the store, so its repeat would answer differently
  // (store_hits) — the *repeat* is the run that becomes cacheable.
  if (g1 == g0) {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    auto [it, inserted] = response_cache_.try_emplace(key);
    if (inserted) {
      cache_fifo_.push_back(key);
      it->second.gen = g1;
      it->second.response = std::move(response);
      // FIFO eviction, skipping keys an invalidation already erased.
      while (response_cache_.size() > cache_capacity_ &&
             !cache_fifo_.empty()) {
        response_cache_.erase(cache_fifo_.front());
        cache_fifo_.erase(cache_fifo_.begin());
      }
    } else if (it->second.gen != g1) {
      it->second = CachedResponse{};
      it->second.gen = g1;
      it->second.response = std::move(response);
    }
    auto refreshed = response_cache_.find(key);
    if (refreshed != response_cache_.end() && refreshed->second.gen == g1) {
      refreshed->second.encoded[slot] = bytes;
    }
  }
  return bytes;
}

std::vector<std::shared_ptr<const std::string>>
DesignService::submit_batch_encoded(const std::vector<EncodedQuery>& items) {
  std::vector<std::shared_ptr<const std::string>> out(items.size());
  if (items.empty()) return out;

  // Deduplicate identical (query, encoding) pairs up front — same
  // rationale as submit_batch: byte-identical output at any thread count.
  std::map<std::pair<std::string, int>, std::size_t> first_of;
  std::vector<std::size_t> slot_of(items.size());
  std::vector<std::size_t> unique;
  std::size_t duplicates = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto [it, inserted] = first_of.emplace(
        std::make_pair(to_json(items[i].query),
                       static_cast<int>(items[i].encoding)),
        unique.size());
    if (inserted) {
      unique.push_back(i);
    } else {
      ++duplicates;
    }
    slot_of[i] = it->second;
  }
  if (duplicates > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries += duplicates;
    stats_.coalesced += duplicates;
  }

  // Same-fingerprint queries run sequentially in batch order (see
  // submit_batch); distinct scopes fan out in parallel.
  std::map<std::string, std::vector<std::size_t>> by_fingerprint;
  for (std::size_t u = 0; u < unique.size(); ++u) {
    by_fingerprint[query_fingerprint(items[unique[u]].query)].push_back(u);
  }
  std::vector<const std::vector<std::size_t>*> groups;
  groups.reserve(by_fingerprint.size());
  for (const auto& [fingerprint, slots] : by_fingerprint) {
    groups.push_back(&slots);
  }

  std::vector<std::shared_ptr<const std::string>> unique_out(unique.size());
  exec::parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t u : *groups[g]) {
      const EncodedQuery& item = items[unique[u]];
      unique_out[u] = submit_encoded(item.query, item.encoding);
    }
  });

  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i] = unique_out[slot_of[i]];
  }
  return out;
}

std::size_t DesignService::response_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return response_cache_.size();
}

DesignService::Generation DesignService::current_generation(
    const std::string& fingerprint) const {
  Generation gen{0, 0};
  if (store_) gen.first = store_->generation(fingerprint);
  std::shared_lock<std::shared_mutex> lock(archive_mutex_);
  const auto it = archive_generation_.find(fingerprint);
  gen.second = it == archive_generation_.end() ? 0 : it->second;
  return gen;
}

ServiceStats DesignService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string to_json(const ServiceStats& stats) {
  std::ostringstream os;
  os << "{\"queries\":" << stats.queries
     << ",\"searches_launched\":" << stats.searches_launched
     << ",\"coalesced\":" << stats.coalesced
     << ",\"archive_answers\":" << stats.archive_answers
     << ",\"evaluations\":" << stats.evaluations
     << ",\"cache_hits\":" << stats.cache_hits
     << ",\"store_hits\":" << stats.store_hits
     << ",\"response_cache_hits\":" << stats.response_cache_hits
     << ",\"response_cache_misses\":" << stats.response_cache_misses
     << ",\"response_cache_invalidations\":"
     << stats.response_cache_invalidations << '}';
  return os.str();
}

std::string DesignService::stats_json() const {
  std::string doc = to_json(stats());
  doc.pop_back();  // reopen the object to append the store member
  std::ostringstream os;
  os << doc << ",\"store\":{\"attached\":" << (store_ ? "true" : "false");
  if (store_) {
    const StoreStats ss = store_->stats();
    os << ",\"entries\":" << store_->size() << ",\"hits\":" << ss.hits
       << ",\"misses\":" << ss.misses << ",\"appends\":" << ss.appends
       << ",\"divergent_duplicates\":" << ss.divergent_duplicates
       << ",\"dropped_writes\":" << ss.dropped_writes
       << ",\"degraded\":" << (ss.degraded ? "true" : "false")
       << ",\"shards\":" << ss.shards
       << ",\"migrated_layout\":" << (ss.migrated_layout ? "true" : "false")
       << ",\"quarantined_shards\":" << ss.quarantined_shards
       << ",\"lock_contention\":" << ss.lock_contention
       << ",\"shard_entries\":[";
    for (std::size_t i = 0; i < ss.shard_entries.size(); ++i) {
      if (i > 0) os << ',';
      os << ss.shard_entries[i];
    }
    os << "],\"shard_bytes\":[";
    for (std::size_t i = 0; i < ss.shard_bytes.size(); ++i) {
      if (i > 0) os << ',';
      os << ss.shard_bytes[i];
    }
    os << ']';
  }
  os << "}}";
  return os.str();
}

std::size_t DesignService::archive_size(const DesignQuery& query) const {
  const std::string fingerprint = query_fingerprint(query);
  std::shared_lock<std::shared_mutex> lock(archive_mutex_);
  auto it = archives_.find(fingerprint);
  return it == archives_.end() ? 0 : it->second.size();
}

DesignResponse DesignService::run_query(const DesignQuery& query) {
  if (query.archive_only) return answer_from_archive(query);

  search::SearchConfig config;
  config.initial_points_per_dim = query.budget.initial_points_per_dim;
  config.max_resolution = query.budget.max_resolution;
  config.regions_per_level = query.budget.regions_per_level;
  config.max_evaluations = query.budget.max_evaluations;
  config.store = store_;

  DesignResponse response;
  response.front_x = "area_mm2";
  search::SearchResult result;
  std::string fingerprint;
  search::Objective objective;

  if (query.kind == QueryKind::Viterbi) {
    const core::ViterbiMetaCore metacore(viterbi_requirements(query));
    fingerprint = metacore.evaluation_fingerprint();
    config.store_fingerprint = fingerprint;
    objective = query_objective(query, metacore.objective());
    // BER stays under Bayesian guard only while the (possibly replaced)
    // constraint set actually bounds it.
    const bool ber_bounded = std::any_of(
        objective.constraints.begin(), objective.constraints.end(),
        [](const search::Constraint& c) {
          return c.metric == "ber" &&
                 c.kind == search::Constraint::Kind::UpperBound;
        });
    if (ber_bounded) config.probabilistic_metric = "ber";
    const search::DesignSpace space = metacore.design_space();
    search::MultiresolutionSearch engine(space, objective,
                                         metacore.evaluator(), config);
    result = engine.run();
    // Same final high-fidelity pass ViterbiMetaCore::search applies.
    result = search::verify_top_candidates(
        std::move(result), space, objective, metacore.evaluator(), 5,
        config.max_resolution + 1, config.store.get(),
        config.store_fingerprint);
    response.front_y = "ber";
  } else {
    const core::IirMetaCore metacore(
        core::paper_bandpass_requirements(query.sample_period_us));
    fingerprint = metacore.evaluation_fingerprint();
    config.store_fingerprint = fingerprint;
    objective = query_objective(query, metacore.objective());
    search::MultiresolutionSearch engine(metacore.design_space(), objective,
                                         metacore.evaluator(), config);
    result = engine.run();
    response.front_y = "passband_ripple_db";
  }

  absorb_history(fingerprint, result.history);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.searches_launched;
    stats_.evaluations += result.evaluations;
    stats_.cache_hits += result.cache_hits;
    stats_.store_hits += result.store_hits;
  }

  response.feasible = result.found_feasible;
  response.best = result.best;
  response.evaluations = result.evaluations;
  response.cache_hits = result.cache_hits;
  response.store_hits = result.store_hits;
  response.divergent_duplicates = result.divergent_duplicates;
  response.front =
      search::pareto_front(result.history, response.front_x, response.front_y);
  response.summary = core::summarize(result, objective);
  if (store_ && store_->degraded()) {
    response.store_degraded = true;
    response.summary +=
        "; STORE DEGRADED: evaluations from this query were not persisted";
  }
  return response;
}

DesignResponse DesignService::answer_from_archive(const DesignQuery& query) {
  DesignResponse response;
  response.from_archive = true;
  response.front_x = "area_mm2";

  std::string fingerprint;
  search::Objective objective;
  std::optional<search::DesignSpace> space;
  if (query.kind == QueryKind::Viterbi) {
    const core::ViterbiMetaCore metacore(viterbi_requirements(query));
    fingerprint = metacore.evaluation_fingerprint();
    objective = query_objective(query, metacore.objective());
    space.emplace(metacore.design_space());
    response.front_y = "ber";
  } else {
    const core::IirMetaCore metacore(
        core::paper_bandpass_requirements(query.sample_period_us));
    fingerprint = metacore.evaluation_fingerprint();
    objective = query_objective(query, metacore.objective());
    space.emplace(metacore.design_space());
    response.front_y = "passband_ripple_db";
  }

  // Population: persisted store entries overlaid with this service's
  // in-memory archive, keyed by grid indices, highest fidelity winning.
  // Same-fingerprint evaluations are bit-identical per (indices, fidelity),
  // so the merge is order-independent.
  std::map<std::vector<int>, search::EvaluatedPoint> population;
  const auto merge = [&population](search::EvaluatedPoint pt) {
    auto [it, inserted] = population.emplace(pt.indices, pt);
    if (!inserted && pt.fidelity > it->second.fidelity) {
      it->second = std::move(pt);
    }
  };
  if (store_) {
    for (auto& [indices, fidelity, eval] : store_->entries_for(fingerprint)) {
      search::EvaluatedPoint pt;
      pt.indices = indices;
      pt.values = space->values_at(indices);
      pt.fidelity = fidelity;
      pt.eval = std::move(eval);
      merge(std::move(pt));
    }
  }
  {
    std::shared_lock<std::shared_mutex> lock(archive_mutex_);
    auto it = archives_.find(fingerprint);
    if (it != archives_.end()) {
      for (const auto& [indices, pt] : it->second) merge(pt);
    }
  }

  std::vector<search::EvaluatedPoint> satisfying;
  const search::EvaluatedPoint* best = nullptr;
  for (const auto& [indices, pt] : population) {
    if (!best || objective.better(pt.eval, best->eval)) best = &pt;
    if (objective.feasible(pt.eval)) satisfying.push_back(pt);
  }
  if (best) {
    response.best = *best;
    response.feasible = objective.feasible(best->eval);
  }
  response.front =
      search::pareto_front(satisfying, response.front_x, response.front_y);

  std::ostringstream os;
  os << "archive answer over " << population.size() << " stored points ("
     << satisfying.size() << " satisfy the constraints): ";
  if (!best) {
    os << "no archived evaluations for this evaluator scope";
  } else if (!response.feasible) {
    os << "no archived point satisfies the constraints; closest returned";
  } else {
    os << "best " << objective.minimize << " = ";
    robust::write_double(os, best->eval.metric(objective.minimize));
  }
  response.summary = os.str();
  if (store_ && store_->degraded()) {
    response.store_degraded = true;
    response.summary += "; STORE DEGRADED: journal writes are suspended";
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.archive_answers;
  }
  return response;
}

void DesignService::absorb_history(
    const std::string& fingerprint,
    const std::vector<search::EvaluatedPoint>& history) {
  std::unique_lock<std::shared_mutex> lock(archive_mutex_);
  auto& archive = archives_[fingerprint];
  bool changed = false;
  for (const search::EvaluatedPoint& pt : history) {
    auto [it, inserted] = archive.emplace(pt.indices, pt);
    if (inserted) {
      changed = true;
    } else if (pt.fidelity > it->second.fidelity) {
      it->second = pt;
      changed = true;
    }
  }
  // Only an actual change advances the generation: a warm replay that
  // re-absorbs known points leaves cached serialized responses valid.
  if (changed) ++archive_generation_[fingerprint];
}

}  // namespace metacore::serve
