#include "serve/binary_codec.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

namespace metacore::serve {

namespace bincode {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_zigzag(std::string& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  // Packed: drop low-order zero bytes of the bit image and lead with the
  // count of bytes kept. Quantized grid values (0.5, 3.0, ...) have
  // all-zero mantissa tails and pack to 2-3 bytes; a full-entropy double
  // costs one extra byte. Bit-exact either way, NaN payloads included.
  int zeros = 0;
  while (zeros < 8 && ((bits >> (8 * zeros)) & 0xFFu) == 0) ++zeros;
  put_u8(out, static_cast<std::uint8_t>(8 - zeros));
  for (int i = zeros; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFFu));
  }
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

void Reader::fail(const std::string& message) const {
  throw std::runtime_error(std::string(what) + ": " + message);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) fail("truncated document");
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data[pos++]);
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = u8();
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  fail("varint too long");
}

std::int64_t Reader::zigzag() {
  const std::uint64_t v = varint();
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1u) + 1u));
}

double Reader::f64() {
  const std::uint8_t n = u8();
  if (n > 8) fail("bad packed-f64 length");
  need(n);
  std::uint64_t bits = 0;
  for (std::uint8_t i = 0; i < n; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(data[pos + i]))
            << (8 * (8 - n + i));
  }
  pos += n;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::string() {
  const std::uint64_t n = varint();
  need(n);
  std::string s(data.substr(pos, n));
  pos += n;
  return s;
}

}  // namespace bincode

namespace {

using bincode::Reader;

constexpr const char* kQueryWhat = "binary query";
constexpr const char* kResponseWhat = "binary response";

// Grid indices are small non-negative integers in practice, so zigzag
// varints encode most of them in one byte where a fixed i32 spends four.
void put_i32_array(std::string& out, const std::vector<int>& v) {
  bincode::put_varint(out, v.size());
  for (const int x : v) bincode::put_zigzag(out, x);
}

std::vector<int> get_i32_array(Reader& r) {
  const std::uint64_t n = r.varint();
  r.need(n);  // each element consumes >= 1 byte
  std::vector<int> v(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v[i] = static_cast<int>(r.zigzag());
  }
  return v;
}

void put_f64_array(std::string& out, const std::vector<double>& v) {
  bincode::put_varint(out, v.size());
  for (const double x : v) bincode::put_f64(out, x);
}

std::vector<double> get_f64_array(Reader& r) {
  const std::uint64_t n = r.varint();
  r.need(n);  // each packed f64 consumes >= 1 byte
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.f64();
  return v;
}

/// Deduplicating string table for the per-point repeated strings (metric
/// names, failure reasons). Built in deterministic traversal order so equal
/// responses encode to equal bytes.
struct StringTable {
  std::vector<std::string_view> entries;
  std::map<std::string_view, std::uint64_t> index;

  std::uint64_t intern(std::string_view s) {
    auto [it, inserted] = index.emplace(s, entries.size());
    if (inserted) entries.push_back(s);
    return it->second;
  }
};

void collect_point_strings(const search::EvaluatedPoint& pt,
                           StringTable& table) {
  table.intern(pt.eval.failure_reason);
  for (const auto& [name, value] : pt.eval.metrics) table.intern(name);
}

void put_point(std::string& out, const search::EvaluatedPoint& pt,
               StringTable& table) {
  put_i32_array(out, pt.indices);
  put_f64_array(out, pt.values);
  bincode::put_zigzag(out, pt.fidelity);
  bincode::put_u8(out, pt.eval.feasible ? 1 : 0);
  bincode::put_f64(out, pt.eval.confidence_weight);
  bincode::put_varint(out, table.intern(pt.eval.failure_reason));
  bincode::put_varint(out, pt.eval.metrics.size());
  for (const auto& [name, value] : pt.eval.metrics) {
    bincode::put_varint(out, table.intern(name));
    bincode::put_f64(out, value);
  }
}

search::EvaluatedPoint get_point(Reader& r,
                                 const std::vector<std::string>& table) {
  const auto lookup = [&](std::uint64_t idx) -> const std::string& {
    if (idx >= table.size()) r.fail("string-table index out of range");
    return table[idx];
  };
  search::EvaluatedPoint pt;
  pt.indices = get_i32_array(r);
  pt.values = get_f64_array(r);
  pt.fidelity = static_cast<int>(r.zigzag());
  pt.eval.feasible = r.u8() != 0;
  pt.eval.confidence_weight = r.f64();
  pt.eval.failure_reason = lookup(r.varint());
  const std::uint64_t n_metrics = r.varint();
  r.need(n_metrics);  // each metric consumes >= 2 bytes
  for (std::uint64_t i = 0; i < n_metrics; ++i) {
    const std::string& name = lookup(r.varint());
    pt.eval.metrics.emplace(name, r.f64());
  }
  return pt;
}

void check_version(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kBinaryCodecVersion) {
    r.fail("unsupported codec version " + std::to_string(version));
  }
}

}  // namespace

std::string encode_binary(const DesignQuery& query) {
  std::string out;
  bincode::put_u8(out, kBinaryCodecVersion);
  bincode::put_u8(out, query.kind == QueryKind::Viterbi ? 0 : 1);
  bincode::put_f64(out, query.target_ber);
  bincode::put_f64(out, query.esn0_db);
  bincode::put_f64(out, query.throughput_mbps);
  bincode::put_f64(out, query.sample_period_us);
  bincode::put_zigzag(out, query.ber_shards);
  bincode::put_zigzag(out, query.ber_lanes);
  bincode::put_zigzag(out, query.budget.initial_points_per_dim);
  bincode::put_zigzag(out, query.budget.max_resolution);
  bincode::put_zigzag(out, query.budget.regions_per_level);
  bincode::put_varint(out, query.budget.max_evaluations);
  bincode::put_string(out, query.minimize);
  bincode::put_varint(out, query.constraints.size());
  for (const search::Constraint& c : query.constraints) {
    bincode::put_u8(
        out, c.kind == search::Constraint::Kind::UpperBound ? 0 : 1);
    bincode::put_string(out, c.metric);
    bincode::put_f64(out, c.bound);
  }
  bincode::put_u8(out, query.archive_only ? 1 : 0);
  return out;
}

DesignQuery decode_design_query(std::string_view bytes) {
  Reader r{bytes, kQueryWhat};
  check_version(r);
  DesignQuery query;
  const std::uint8_t kind = r.u8();
  if (kind > 1) r.fail("unknown query kind tag");
  query.kind = kind == 0 ? QueryKind::Viterbi : QueryKind::Iir;
  query.target_ber = r.f64();
  query.esn0_db = r.f64();
  query.throughput_mbps = r.f64();
  query.sample_period_us = r.f64();
  query.ber_shards = static_cast<int>(r.zigzag());
  query.ber_lanes = static_cast<int>(r.zigzag());
  query.budget.initial_points_per_dim = static_cast<int>(r.zigzag());
  query.budget.max_resolution = static_cast<int>(r.zigzag());
  query.budget.regions_per_level = static_cast<int>(r.zigzag());
  query.budget.max_evaluations = static_cast<std::size_t>(r.varint());
  query.minimize = r.string();
  const std::uint64_t n_constraints = r.varint();
  r.need(n_constraints);  // each constraint consumes >= 3 bytes
  for (std::uint64_t i = 0; i < n_constraints; ++i) {
    search::Constraint c;
    const std::uint8_t ckind = r.u8();
    if (ckind > 1) r.fail("unknown constraint kind tag");
    c.kind = ckind == 0 ? search::Constraint::Kind::UpperBound
                        : search::Constraint::Kind::LowerBound;
    c.metric = r.string();
    c.bound = r.f64();
    query.constraints.push_back(std::move(c));
  }
  query.archive_only = r.u8() != 0;
  if (!r.done()) r.fail("trailing bytes after document");
  return query;
}

std::string encode_binary(const DesignResponse& response) {
  // Pass 1: intern the per-point strings in traversal order (best first,
  // then the front) so the table is deterministic.
  StringTable table;
  collect_point_strings(response.best, table);
  for (const search::EvaluatedPoint& pt : response.front) {
    collect_point_strings(pt, table);
  }

  std::string out;
  bincode::put_u8(out, kBinaryCodecVersion);
  bincode::put_varint(out, table.entries.size());
  for (const std::string_view s : table.entries) bincode::put_string(out, s);
  bincode::put_u8(out, static_cast<std::uint8_t>(
                           (response.feasible ? 1u : 0u) |
                           (response.from_archive ? 2u : 0u) |
                           (response.store_degraded ? 4u : 0u)));
  bincode::put_varint(out, response.evaluations);
  bincode::put_varint(out, response.cache_hits);
  bincode::put_varint(out, response.store_hits);
  bincode::put_varint(out, response.divergent_duplicates);
  bincode::put_string(out, response.front_x);
  bincode::put_string(out, response.front_y);
  put_point(out, response.best, table);
  bincode::put_varint(out, response.front.size());
  for (const search::EvaluatedPoint& pt : response.front) {
    put_point(out, pt, table);
  }
  bincode::put_string(out, response.summary);
  return out;
}

DesignResponse decode_design_response(std::string_view bytes) {
  Reader r{bytes, kResponseWhat};
  check_version(r);
  const std::uint64_t n_strings = r.varint();
  r.need(n_strings);  // each table entry consumes >= 1 byte
  std::vector<std::string> table;
  table.reserve(n_strings);
  for (std::uint64_t i = 0; i < n_strings; ++i) table.push_back(r.string());

  DesignResponse response;
  const std::uint8_t flags = r.u8();
  response.feasible = (flags & 1u) != 0;
  response.from_archive = (flags & 2u) != 0;
  response.store_degraded = (flags & 4u) != 0;
  response.evaluations = static_cast<std::size_t>(r.varint());
  response.cache_hits = static_cast<std::size_t>(r.varint());
  response.store_hits = static_cast<std::size_t>(r.varint());
  response.divergent_duplicates = static_cast<std::size_t>(r.varint());
  response.front_x = r.string();
  response.front_y = r.string();
  response.best = get_point(r, table);
  const std::uint64_t n_front = r.varint();
  r.need(n_front);  // each point consumes >= 7 bytes
  response.front.reserve(n_front);
  for (std::uint64_t i = 0; i < n_front; ++i) {
    response.front.push_back(get_point(r, table));
  }
  response.summary = r.string();
  if (!r.done()) r.fail("trailing bytes after document");
  return response;
}

}  // namespace metacore::serve
