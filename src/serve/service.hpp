// The MetaCore design-query service: a long-lived engine that answers
// "find me the cheapest Viterbi/IIR configuration meeting these
// requirements" queries on top of the multiresolution search, the
// persistent evaluation store, and an incremental Pareto archive.
//
//  * Queries are JSON-serializable round-trip (parse_design_query /
//    to_json), so the service can be driven from files, sockets, or any
//    transport a deployment puts in front of it.
//  * Identical in-flight queries are coalesced: concurrent submits of the
//    same canonical query share one search, and every waiter receives a
//    byte-identical copy of its response.
//  * Batches fan independent queries out across the exec thread pool
//    (submit_batch); duplicates inside a batch are deduplicated up front
//    so responses are byte-identical at any METACORE_THREADS.
//  * Every completed search feeds a per-evaluator Pareto archive;
//    constraint-only queries (DesignQuery::archive_only) are answered
//    directly from it — chosen point, metrics, and the front slice —
//    without launching a search.
//  * With a persistent store attached, repeat queries (same evaluator
//    fingerprint) are served with near-zero evaluator calls: the search
//    replays its trajectory out of the store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/iir_metacore.hpp"
#include "core/viterbi_metacore.hpp"
#include "search/multires_search.hpp"
#include "serve/store.hpp"

namespace metacore::serve {

enum class QueryKind : int { Viterbi = 0, Iir = 1 };

std::string to_string(QueryKind kind);

/// Search-budget knobs a query may carry (the trajectory-shaping subset of
/// search::SearchConfig; everything else keeps MetaCore defaults).
struct QueryBudget {
  int initial_points_per_dim = 3;
  int max_resolution = 1;
  int regions_per_level = 3;
  std::size_t max_evaluations = 160;
};

/// One design request. For Viterbi queries the requirement fields mirror
/// core::ViterbiRequirements; IIR queries parameterize the paper's
/// Section 5.3 bandpass (core::paper_bandpass_requirements) by sample
/// period. `constraints`, when non-empty, REPLACE the metacore's default
/// constraint set (so a constraint-only query can relax or retighten
/// bounds over the same evaluator scope); `minimize` overrides the
/// objective metric when non-empty. With `archive_only` set the query is
/// answered from the accumulated Pareto archive without searching.
struct DesignQuery {
  QueryKind kind = QueryKind::Viterbi;

  // Viterbi requirements (used when kind == Viterbi).
  double target_ber = 1e-4;
  double esn0_db = 1.0;
  double throughput_mbps = 1.0;
  int ber_shards = 8;
  /// SIMD lane cap for the frame-parallel BER decoders (0 = auto; see
  /// BerRunConfig::lanes). Throughput-only: results and the evaluator
  /// fingerprint are lane-invariant, so two queries differing only here
  /// share store entries — but NOT the coalescing key, which hashes the
  /// canonical JSON below.
  int ber_lanes = 0;

  // IIR requirements (used when kind == Iir).
  double sample_period_us = 1.0;

  QueryBudget budget{};
  std::string minimize;                       ///< empty = metacore default
  std::vector<search::Constraint> constraints;  ///< empty = metacore default
  bool archive_only = false;
};

/// Canonical JSON encodings: field order is fixed and doubles are written
/// with round-trip precision, so equal queries encode to equal bytes (the
/// coalescing key) and every query/response round-trips exactly.
std::string to_json(const DesignQuery& query);
DesignQuery parse_design_query(const std::string& json);

/// The query's evaluator scope: which store entries and which Pareto
/// archive it reads and feeds. Cheap (constructing a metacore runs no
/// simulation) — this is the routing key the sharded store and the
/// server's dispatch worker pool hash (fingerprint_hash) to keep
/// same-scope work ordered while distinct scopes run concurrently.
std::string query_fingerprint(const DesignQuery& query);

struct DesignResponse {
  bool feasible = false;
  bool from_archive = false;
  /// The chosen design point (indices, values, evaluation, fidelity).
  search::EvaluatedPoint best{};
  /// Search accounting (all zero for archive answers).
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;
  std::size_t store_hits = 0;
  /// Store keys this query re-derived with a *different* evaluation —
  /// upstream determinism drift (see StoreStats::divergent_duplicates).
  std::size_t divergent_duplicates = 0;
  /// True when the attached store is in degraded read-only mode (journal
  /// lost mid-run): the answer is still valid, but the evaluations behind
  /// it were not persisted. Also noted in `summary`.
  bool store_degraded = false;
  /// The Pareto front slice over (front_x, front_y), both minimized;
  /// for archive answers, restricted to constraint-satisfying points.
  std::string front_x, front_y;
  std::vector<search::EvaluatedPoint> front;
  std::string summary;
};

std::string to_json(const DesignResponse& response);

/// The wire encodings a response can be serialized into: canonical text
/// JSON (the default wire mode) and the MCB1 binary form
/// (serve/binary_codec.hpp). Used as the per-encoding key of the
/// serialized-response cache below.
enum class WireEncoding : int { Json = 0, Binary = 1 };

struct ServiceStats {
  std::size_t queries = 0;           ///< submits (batch entries included)
  std::size_t searches_launched = 0; ///< searches actually executed
  std::size_t coalesced = 0;         ///< submits served by another's search
  std::size_t archive_answers = 0;   ///< answered from the Pareto archive
  // Cumulative per-search accounting summed over every executed search
  // (coalesced waiters share the leader's search, so they add nothing):
  std::size_t evaluations = 0;       ///< evaluator calls across searches
  std::size_t cache_hits = 0;        ///< in-search cache reuse
  std::size_t store_hits = 0;        ///< answers replayed from the store
  // Serialized-response cache (submit_encoded): repeats of an identical
  // query whose evaluator scope has not changed are answered as cached
  // pre-encoded bytes — zero re-search, zero re-serialization.
  std::size_t response_cache_hits = 0;
  std::size_t response_cache_misses = 0;
  /// Cached entries discarded because the store/archive generation moved
  /// (append, compaction, migration) between caching and the repeat.
  std::size_t response_cache_invalidations = 0;
};

/// Canonical JSON of the service counters — the `stats` query kind of the
/// wire protocol embeds this document (field set documented in DESIGN.md).
std::string to_json(const ServiceStats& stats);

struct ServiceConfig {
  /// Path of the persistent evaluation store; empty = no persistence
  /// (in-run coalescing and archives still work).
  std::string store_path;
  /// Share an already-open store instead (takes precedence over
  /// store_path).
  std::shared_ptr<EvaluationStore> store;
  /// Entry cap of the serialized-response cache (0 disables it). The env
  /// override METACORE_RESPONSE_CACHE, when set, wins over this value.
  std::size_t response_cache_capacity = 256;
};

class DesignService {
 public:
  explicit DesignService(ServiceConfig config = {});

  /// Blocking: answers the query, coalescing with any identical in-flight
  /// submit. Safe to call concurrently from any number of threads.
  DesignResponse submit(const DesignQuery& query);

  /// Fans the batch out across the exec thread pool. Identical queries
  /// are deduplicated up front (each unique query runs once; duplicates
  /// count as coalesced), so the response vector is byte-identical at any
  /// thread count.
  std::vector<DesignResponse> submit_batch(
      const std::vector<DesignQuery>& queries);

  /// The serving hot path: answers the query as encoded response-body
  /// bytes (canonical JSON or MCB1 binary), consulting the
  /// serialized-response cache first. A repeat of an identical query whose
  /// evaluator scope held still (same store shard + archive generation) is
  /// answered from the cached bytes with zero re-search and zero
  /// re-serialization; the networked server splices them straight into the
  /// response frame. Entries are stamped with the generation observed
  /// around their run and only cached when the run itself left the scope
  /// unchanged — so a cached answer is always byte-identical to what a
  /// fresh submit() would produce right now.
  std::shared_ptr<const std::string> submit_encoded(const DesignQuery& query,
                                                    WireEncoding encoding);

  struct EncodedQuery {
    DesignQuery query;
    WireEncoding encoding = WireEncoding::Json;
  };

  /// Batch form of submit_encoded: deduplicates identical (query,
  /// encoding) pairs, groups by evaluator fingerprint (same-scope queries
  /// run sequentially in batch order), and fans the groups out across the
  /// exec thread pool — same determinism contract as submit_batch.
  std::vector<std::shared_ptr<const std::string>> submit_batch_encoded(
      const std::vector<EncodedQuery>& items);

  /// Entries currently held by the serialized-response cache.
  std::size_t response_cache_size() const;

  ServiceStats stats() const;

  /// Stats snapshot as one JSON object: the ServiceStats counters plus a
  /// "store" member (entry/hit/append/degraded accounting from the
  /// attached store, or {"attached":false} without persistence). This is
  /// what the networked `stats` query kind returns — no side channel.
  std::string stats_json() const;

  /// The attached store (nullptr when running without persistence).
  std::shared_ptr<EvaluationStore> store() const { return store_; }

  /// Distinct evaluated points archived for the query's evaluator scope.
  std::size_t archive_size(const DesignQuery& query) const;

 private:
  struct InFlight;

  /// (store shard generation, archive generation) for one evaluator
  /// scope — the validity stamp of a serialized-response cache entry.
  using Generation = std::pair<std::uint64_t, std::uint64_t>;

  struct CachedResponse {
    Generation gen{};
    DesignResponse response;
    /// Lazily filled per encoding, indexed by WireEncoding.
    std::shared_ptr<const std::string> encoded[2];
  };

  /// Executes the query for real (search or archive answer).
  DesignResponse run_query(const DesignQuery& query);
  DesignResponse answer_from_archive(const DesignQuery& query);
  void absorb_history(const std::string& fingerprint,
                      const std::vector<search::EvaluatedPoint>& history);
  Generation current_generation(const std::string& fingerprint) const;

  std::shared_ptr<EvaluationStore> store_;
  std::size_t cache_capacity_ = 0;

  mutable std::mutex cache_mutex_;
  std::map<std::string, CachedResponse> response_cache_;
  /// Insertion order for FIFO eviction; stale keys (erased by an
  /// invalidation) are skipped lazily when they reach the front.
  std::vector<std::string> cache_fifo_;

  std::mutex registry_mutex_;
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  /// Per-evaluator-fingerprint archives: every distinct point any search
  /// evaluated, highest fidelity per point, keyed by grid indices.
  mutable std::shared_mutex archive_mutex_;
  std::map<std::string, std::map<std::vector<int>, search::EvaluatedPoint>>
      archives_;
  /// Bumped whenever absorb_history actually changes a scope's archive —
  /// the in-memory half of the cache-validity generation.
  std::map<std::string, std::uint64_t> archive_generation_;
};

}  // namespace metacore::serve
