#include "vliw/machine.hpp"

#include <stdexcept>

namespace metacore::vliw {

int MachineConfig::slots(FuClass cls) const {
  switch (cls) {
    case FuClass::Alu:
      return num_alus;
    case FuClass::Mul:
      return num_multipliers;
    case FuClass::Mem:
      return num_memory_ports;
    case FuClass::Branch:
      return num_branch_units;
  }
  return 0;
}

std::string MachineConfig::label() const {
  return std::to_string(num_alus) + "A" + std::to_string(num_multipliers) +
         "M" + std::to_string(num_memory_ports) + "P" +
         std::to_string(num_branch_units) + "B/r" +
         std::to_string(register_file_size) + "/w" +
         std::to_string(datapath_bits);
}

void MachineConfig::validate() const {
  if (num_alus < 1 || num_multipliers < 0 || num_memory_ports < 1 ||
      num_branch_units < 1) {
    throw std::invalid_argument("MachineConfig: missing functional units");
  }
  if (register_file_size < 4 || register_file_size > 256) {
    throw std::invalid_argument("MachineConfig: register file out of range");
  }
  if (datapath_bits < 4 || datapath_bits > 64) {
    throw std::invalid_argument("MachineConfig: datapath width out of range");
  }
}

std::vector<MachineConfig> standard_config_family(int datapath_bits) {
  std::vector<MachineConfig> family;
  // (alus, muls, mem ports, branch, regfile) — small to wide.
  struct Shape {
    int alus, muls, mem, br, regs;
  };
  static constexpr Shape kShapes[] = {
      {1, 0, 1, 1, 16}, {2, 0, 1, 1, 32},  {2, 1, 1, 1, 32},
      {4, 1, 2, 1, 32}, {4, 1, 2, 1, 64},  {6, 1, 2, 1, 64},
      {8, 2, 2, 1, 64}, {8, 2, 4, 2, 128},
  };
  for (const auto& s : kShapes) {
    MachineConfig cfg;
    cfg.num_alus = s.alus;
    cfg.num_multipliers = s.muls;
    cfg.num_memory_ports = s.mem;
    cfg.num_branch_units = s.br;
    cfg.register_file_size = s.regs;
    cfg.datapath_bits = datapath_bits;
    cfg.validate();
    family.push_back(cfg);
  }
  return family;
}

}  // namespace metacore::vliw
