// Symbolic execution of a kernel on a machine configuration: multiplies the
// per-block schedules by trip counts to produce the aggregate statistics
// Trimaran reported to the paper's flow — total operations executed by
// class, total cycles per unit of work, and register/spill behaviour.
#pragma once

#include <string>
#include <vector>

#include "vliw/ir.hpp"
#include "vliw/machine.hpp"
#include "vliw/scheduler.hpp"

namespace metacore::vliw {

struct BlockProfile {
  std::string name;
  double trip_count = 0.0;
  int makespan = 0;            ///< scheduled cycles for one iteration
  int initiation_interval = 0; ///< steady-state cycles per iteration
  double total_cycles = 0.0;   ///< contribution to the unit of work
  int max_live_values = 0;
  double spill_ops = 0.0;      ///< spill loads+stores added per execution
};

struct ExecutionProfile {
  double cycles_per_unit = 0.0;  ///< cycles per unit of work (per decoded bit)
  double ops_per_unit = 0.0;     ///< dynamic IR ops per unit (incl. spills)
  double alu_ops_per_unit = 0.0;
  double mul_ops_per_unit = 0.0;
  double mem_ops_per_unit = 0.0;
  double branch_ops_per_unit = 0.0;
  int max_register_pressure = 0;  ///< max over blocks
  double spill_ops_per_unit = 0.0;
  std::vector<BlockProfile> blocks;

  /// Average instructions issued per cycle — a utilization sanity metric.
  double ipc() const {
    return cycles_per_unit > 0.0 ? ops_per_unit / cycles_per_unit : 0.0;
  }
};

/// Schedules every block of `kernel` on `machine` and aggregates.
///
/// Loop model: a block with trip count t > 1 is treated as a
/// software-pipelined loop — the first iteration pays the full schedule
/// makespan and each subsequent iteration pays the initiation interval
/// II = max(resource bound, recurrence MII), the standard modulo-scheduling
/// steady state. Blocks with t <= 1 pay trip * makespan.
///
/// Spill model: when a block's peak register pressure exceeds the register
/// file, each excess value costs one spill store and one reload per block
/// execution; the extra memory traffic lengthens the II by the memory-port
/// resource bound for those operations.
ExecutionProfile profile_kernel(const Kernel& kernel,
                                const MachineConfig& machine);

}  // namespace metacore::vliw
