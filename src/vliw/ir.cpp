#include "vliw/ir.hpp"

#include <algorithm>
#include <stdexcept>

namespace metacore::vliw {

std::string to_string(OpCode op) {
  switch (op) {
    case OpCode::Load: return "load";
    case OpCode::Store: return "store";
    case OpCode::Add: return "add";
    case OpCode::Sub: return "sub";
    case OpCode::And: return "and";
    case OpCode::Or: return "or";
    case OpCode::Xor: return "xor";
    case OpCode::Shift: return "shift";
    case OpCode::Compare: return "cmp";
    case OpCode::Select: return "select";
    case OpCode::Mul: return "mul";
    case OpCode::Branch: return "branch";
    case OpCode::Nop: return "nop";
  }
  return "?";
}

FuClass fu_class(OpCode op) {
  switch (op) {
    case OpCode::Load:
    case OpCode::Store:
      return FuClass::Mem;
    case OpCode::Mul:
      return FuClass::Mul;
    case OpCode::Branch:
      return FuClass::Branch;
    default:
      return FuClass::Alu;
  }
}

int default_latency(OpCode op) {
  switch (op) {
    case OpCode::Load:
      return 2;
    case OpCode::Mul:
      return 3;
    case OpCode::Store:
    case OpCode::Branch:
      return 1;
    default:
      return 1;
  }
}

int BasicBlock::count(FuClass cls) const {
  int n = 0;
  for (const auto& op : ops) {
    if (fu_class(op.op) == cls) ++n;
  }
  return n;
}

int Kernel::num_virtual_regs() const {
  int highest = -1;
  for (const auto& block : blocks) {
    for (const auto& op : block.ops) {
      highest = std::max(highest, op.dst);
      for (int src : op.srcs) highest = std::max(highest, src);
    }
  }
  return highest + 1;
}

int Kernel::static_ops() const {
  int n = 0;
  for (const auto& block : blocks) n += static_cast<int>(block.ops.size());
  return n;
}

double Kernel::dynamic_ops() const {
  double n = 0.0;
  for (const auto& block : blocks) {
    n += block.trip_count * static_cast<double>(block.ops.size());
  }
  return n;
}

void Kernel::validate() const {
  for (const auto& block : blocks) {
    if (block.trip_count < 0.0) {
      throw std::invalid_argument("Kernel: negative trip count in block '" +
                                  block.name + "'");
    }
    for (const auto& op : block.ops) {
      const bool produces = op.op != OpCode::Store && op.op != OpCode::Branch &&
                            op.op != OpCode::Nop;
      if (produces && op.dst < 0) {
        throw std::invalid_argument("Kernel: value op without destination in '" +
                                    block.name + "'");
      }
      if (!produces && op.dst >= 0) {
        throw std::invalid_argument(
            "Kernel: void op with a destination register in '" + block.name +
            "'");
      }
      for (int src : op.srcs) {
        if (src < 0) {
          throw std::invalid_argument("Kernel: negative source register in '" +
                                      block.name + "'");
        }
      }
    }
  }
}

std::string Kernel::to_string() const {
  std::string out = "kernel " + name + "\n";
  char buf[64];
  for (const auto& block : blocks) {
    std::snprintf(buf, sizeof(buf), "%.2f", block.trip_count);
    out += "  block " + block.name + " (trips/unit " + buf;
    if (block.recurrence_mii > 1) {
      out += ", recurrence MII " + std::to_string(block.recurrence_mii);
    }
    out += ")\n";
    for (const auto& op : block.ops) {
      out += "    ";
      if (op.dst >= 0) out += "r" + std::to_string(op.dst) + " = ";
      out += metacore::vliw::to_string(op.op);
      for (std::size_t i = 0; i < op.srcs.size(); ++i) {
        out += (i == 0 ? " r" : ", r") + std::to_string(op.srcs[i]);
      }
      if (!op.tag.empty()) out += "    ; " + op.tag;
      out += "\n";
    }
  }
  return out;
}

BlockBuilder::BlockBuilder(std::string name, double trip_count) {
  block_.name = std::move(name);
  block_.trip_count = trip_count;
}

int BlockBuilder::emit(OpCode op, std::vector<int> srcs, std::string tag) {
  const int dst = next_reg_++;
  block_.ops.push_back({op, dst, std::move(srcs), std::move(tag)});
  return dst;
}

void BlockBuilder::emit_void(OpCode op, std::vector<int> srcs,
                             std::string tag) {
  block_.ops.push_back({op, -1, std::move(srcs), std::move(tag)});
}

int BlockBuilder::live_in() { return next_reg_++; }

BasicBlock BlockBuilder::build() && { return std::move(block_); }

}  // namespace metacore::vliw
