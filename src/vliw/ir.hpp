// A compact VLIW intermediate representation: the substrate that replaces
// Trimaran in the paper's cost-evaluation engine. Candidate decoder
// configurations are lowered to kernels in this IR (see viterbi_kernel.hpp),
// scheduled onto a parameterized machine, and "executed" symbolically to
// collect the statistics the paper reads off Trimaran: operation counts by
// class, cycles per unit of work, and register pressure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metacore::vliw {

enum class OpCode : std::uint8_t {
  Load,    // memory read
  Store,   // memory write
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shift,
  Compare,
  Select,  // conditional move (predicated select, VLIW-style if-conversion)
  Mul,
  Branch,  // control transfer (loop back-edges, exits)
  Nop,
};

std::string to_string(OpCode op);

/// Functional-unit class an opcode occupies for issue.
enum class FuClass : std::uint8_t { Alu, Mul, Mem, Branch };

FuClass fu_class(OpCode op);

/// Default latencies (cycles until the result is usable), modeled on a
/// short embedded pipeline like the TR4101.
int default_latency(OpCode op);

/// One IR operation in SSA-like form. Virtual registers are plain integers;
/// `dst < 0` means the op produces no value (stores, branches).
struct Operation {
  OpCode op = OpCode::Nop;
  int dst = -1;
  std::vector<int> srcs;
  std::string tag;  ///< provenance label for reports ("acs", "traceback", ...)
};

/// A straight-line region executed `trip_count` times per unit of work
/// (for the Viterbi kernels, per decoded bit).
struct BasicBlock {
  std::string name;
  double trip_count = 1.0;  ///< average iterations per unit of work
  /// Minimum initiation interval imposed by loop-carried dependences when
  /// this block is the body of a loop (1 = iterations fully independent;
  /// larger values model serial recurrences such as traceback's
  /// state-to-state chain). Set by the kernel generator.
  int recurrence_mii = 1;
  std::vector<Operation> ops;

  /// Count of operations of the given functional-unit class.
  int count(FuClass cls) const;
};

/// A kernel is a set of blocks plus the number of virtual registers used.
struct Kernel {
  std::string name;
  std::vector<BasicBlock> blocks;

  /// Highest virtual register index referenced, plus one.
  int num_virtual_regs() const;

  /// Static op count across all blocks (unweighted by trip counts).
  int static_ops() const;

  /// Dynamic op count per unit of work (weighted by trip counts).
  double dynamic_ops() const;

  /// Throws std::invalid_argument on malformed ops (e.g. a value-producing
  /// op without a destination, or a use of a never-defined register within
  /// a block when `strict` asks for def-before-use checking).
  void validate() const;

  /// Human-readable listing (one op per line, grouped by block with trip
  /// counts) — the inspectable analog of the generated source the paper
  /// fed to Trimaran.
  std::string to_string() const;
};

/// Small builder utility so kernel generators read naturally.
class BlockBuilder {
 public:
  BlockBuilder(std::string name, double trip_count);

  /// Emits an op producing a fresh virtual register; returns that register.
  int emit(OpCode op, std::vector<int> srcs, std::string tag = {});

  /// Emits a non-value-producing op (Store / Branch).
  void emit_void(OpCode op, std::vector<int> srcs, std::string tag = {});

  /// Allocates an input register (live-in value such as a loaded pointer).
  int live_in();

  BasicBlock build() &&;

  int next_reg() const { return next_reg_; }

 private:
  BasicBlock block_;
  int next_reg_ = 0;
};

}  // namespace metacore::vliw
