// Dependence analysis and resource-constrained list scheduling for one
// basic block on a MachineConfig. This is the piece that turns an IR kernel
// plus an architecture into cycle counts — the quantity the paper's
// throughput constraint is written against.
#pragma once

#include <vector>

#include "vliw/ir.hpp"
#include "vliw/machine.hpp"

namespace metacore::vliw {

/// Outcome of scheduling one basic block.
struct BlockSchedule {
  int cycles = 0;               ///< makespan including final latencies
  int max_live_values = 0;      ///< peak register pressure over the schedule
  std::vector<int> issue_cycle; ///< per-op issue cycle, parallel to block.ops
};

/// Schedules `block` on `machine` using critical-path list scheduling.
///
/// Dependences honored:
///  * RAW def->use edges with producer latency,
///  * conservative memory ordering (stores are ordered with each other and
///    with loads that follow them; loads may reorder among themselves),
///  * branches issue no earlier than every store in the block (a branch
///    ends the block; stores must commit first).
BlockSchedule schedule_block(const BasicBlock& block,
                             const MachineConfig& machine);

/// Lower bound on the block's cycles from resource counts alone
/// (ops-of-class / slots-of-class, rounded up). Useful for tests and for
/// sanity-checking the scheduler.
int resource_bound(const BasicBlock& block, const MachineConfig& machine);

}  // namespace metacore::vliw
