#include "vliw/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace metacore::vliw {

ExecutionProfile profile_kernel(const Kernel& kernel,
                                const MachineConfig& machine) {
  kernel.validate();
  machine.validate();
  ExecutionProfile profile;
  for (const auto& block : kernel.blocks) {
    const BlockSchedule sched = schedule_block(block, machine);
    BlockProfile bp;
    bp.name = block.name;
    bp.trip_count = block.trip_count;
    bp.max_live_values = sched.max_live_values;

    int makespan = sched.cycles;
    double spill_ops = 0.0;
    int spill_cycles = 0;
    if (sched.max_live_values > machine.register_file_size) {
      const int spilled = sched.max_live_values - machine.register_file_size;
      spill_ops = 2.0 * spilled;  // one store + one reload per excess value
      spill_cycles = (2 * spilled + machine.num_memory_ports - 1) /
                     machine.num_memory_ports;
      makespan += spill_cycles;
    }

    // Steady-state initiation interval for software-pipelined loops: the
    // larger of the resource bound (including spill traffic on the memory
    // ports) and the loop-carried recurrence bound.
    const int ii =
        std::max({resource_bound(block, machine) + spill_cycles,
                  block.recurrence_mii, 1});
    bp.makespan = makespan;
    bp.initiation_interval = ii;

    double total_cycles;
    if (block.trip_count > 1.0) {
      total_cycles = makespan + (block.trip_count - 1.0) * ii;
    } else {
      total_cycles = block.trip_count * makespan;
    }
    bp.total_cycles = total_cycles;
    bp.spill_ops = spill_ops;
    profile.blocks.push_back(bp);

    profile.cycles_per_unit += total_cycles;
    const double base_ops = static_cast<double>(block.ops.size());
    profile.ops_per_unit += block.trip_count * (base_ops + spill_ops);
    profile.alu_ops_per_unit += block.trip_count * block.count(FuClass::Alu);
    profile.mul_ops_per_unit += block.trip_count * block.count(FuClass::Mul);
    profile.mem_ops_per_unit +=
        block.trip_count * (block.count(FuClass::Mem) + spill_ops);
    profile.branch_ops_per_unit +=
        block.trip_count * block.count(FuClass::Branch);
    profile.spill_ops_per_unit += block.trip_count * spill_ops;
    profile.max_register_pressure =
        std::max(profile.max_register_pressure, sched.max_live_values);
  }
  return profile;
}

}  // namespace metacore::vliw
