#include "vliw/viterbi_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/trellis.hpp"

namespace metacore::vliw {

namespace {

using comm::DecoderKind;
using comm::DecoderSpec;
using comm::QuantizationMethod;

/// Emits the quantization of one received sample into `bits`-resolution
/// levels and returns the register holding the level.
int emit_quantize(BlockBuilder& b, int sample_reg, int bits,
                  QuantizationMethod method) {
  if (bits == 1 || method == QuantizationMethod::Hard) {
    // Sign slice: one compare feeding a select.
    const int cmp = b.emit(OpCode::Compare, {sample_reg}, "quantize");
    return b.emit(OpCode::Select, {cmp}, "quantize");
  }
  // Uniform quantizer: shift by the offset, scale by the reciprocal step
  // (fixed-point multiply + shift), then clamp to [0, 2^bits - 1].
  const int shifted = b.emit(OpCode::Sub, {sample_reg}, "quantize");
  const int scaled = b.emit(OpCode::Mul, {shifted}, "quantize");
  const int level = b.emit(OpCode::Shift, {scaled}, "quantize");
  const int lo_cmp = b.emit(OpCode::Compare, {level}, "quantize");
  const int lo = b.emit(OpCode::Select, {level, lo_cmp}, "quantize");
  const int hi_cmp = b.emit(OpCode::Compare, {lo}, "quantize");
  return b.emit(OpCode::Select, {lo, hi_cmp}, "quantize");
}

/// Emits computation of all 2^n pattern branch metrics from per-symbol
/// levels; metrics end up stored to the metric table.
void emit_branch_metrics(BlockBuilder& b, const std::vector<int>& levels,
                         const char* tag) {
  const int n = static_cast<int>(levels.size());
  // Per symbol, the metric for expected bit 1 is (max_level - level); the
  // metric for expected bit 0 is the level itself (already in a register).
  std::vector<int> complement(levels.size());
  for (int j = 0; j < n; ++j) {
    complement[static_cast<std::size_t>(j)] =
        b.emit(OpCode::Sub, {levels[static_cast<std::size_t>(j)]}, tag);
  }
  const int patterns = 1 << n;
  for (int p = 0; p < patterns; ++p) {
    int acc = (p & 1) ? complement[0] : levels[0];
    for (int j = 1; j < n; ++j) {
      const int term = ((p >> j) & 1) ? complement[static_cast<std::size_t>(j)]
                                      : levels[static_cast<std::size_t>(j)];
      acc = b.emit(OpCode::Add, {acc, term}, tag);
    }
    const int table = b.live_in();
    b.emit_void(OpCode::Store, {table, acc}, tag);
  }
}

/// Standard loop bookkeeping: induction increment, bound compare, back edge.
void emit_loop_overhead(BlockBuilder& b, const char* tag) {
  const int induction = b.live_in();
  const int next = b.emit(OpCode::Add, {induction}, tag);
  const int done = b.emit(OpCode::Compare, {next}, tag);
  b.emit_void(OpCode::Branch, {done}, tag);
}

}  // namespace

Kernel build_viterbi_kernel(const DecoderSpec& spec) {
  spec.code.validate();
  const int n = spec.code.rate_denominator();
  const int states = spec.code.num_states();
  const bool multires = spec.kind == DecoderKind::Multires;
  const int main_bits =
      spec.kind == DecoderKind::Hard ? 1 : spec.high_res_bits;
  const auto main_method = spec.kind == DecoderKind::Hard
                               ? QuantizationMethod::Hard
                               : spec.quantization;

  Kernel kernel;
  kernel.name = "viterbi_" + spec.label();

  // --- Quantize + branch metrics: once per decoded bit. -------------------
  {
    BlockBuilder b("quantize_metrics", 1.0);
    std::vector<int> low_levels, high_levels;
    for (int j = 0; j < n; ++j) {
      const int buffer = b.live_in();
      const int sample = b.emit(OpCode::Load, {buffer}, "quantize");
      if (multires) {
        const int high =
            emit_quantize(b, sample, spec.high_res_bits, spec.quantization);
        high_levels.push_back(high);
        if (spec.low_res_bits == 1) {
          // The 1-bit low-resolution level is the high-res level's MSB —
          // one shift, no second quantizer pass.
          low_levels.push_back(b.emit(OpCode::Shift, {high}, "quantize"));
        } else {
          low_levels.push_back(
              emit_quantize(b, sample, spec.low_res_bits, spec.quantization));
        }
      } else {
        low_levels.push_back(emit_quantize(b, sample, main_bits, main_method));
      }
    }
    emit_branch_metrics(b, low_levels, multires ? "bm_low" : "bm");
    if (multires) emit_branch_metrics(b, high_levels, "bm_high");
    b.emit_void(OpCode::Branch, {}, "loop");
    kernel.blocks.push_back(std::move(b).build());
  }

  // --- Add-compare-select: once per state per decoded bit. ----------------
  {
    BlockBuilder b("acs", static_cast<double>(states));
    const int acc_base = b.live_in();
    const int bm_table = b.live_in();
    const int acc0 = b.emit(OpCode::Load, {acc_base}, "acs");
    const int acc1 = b.emit(OpCode::Load, {acc_base}, "acs");
    const int bm0 = b.emit(OpCode::Load, {bm_table}, "acs");
    const int bm1 = b.emit(OpCode::Load, {bm_table}, "acs");
    const int cand0 = b.emit(OpCode::Add, {acc0, bm0}, "acs");
    const int cand1 = b.emit(OpCode::Add, {acc1, bm1}, "acs");
    const int cmp = b.emit(OpCode::Compare, {cand0, cand1}, "acs");
    const int best = b.emit(OpCode::Select, {cand0, cand1, cmp}, "acs");
    const int survivor = b.emit(OpCode::Select, {cmp}, "acs");
    const int out_base = b.live_in();
    b.emit_void(OpCode::Store, {out_base, best}, "acs");
    b.emit_void(OpCode::Store, {out_base, survivor}, "acs");
    if (multires) {
      // Best-M selection fuses into the ACS sweep: compare the fresh
      // metric against the running refinement threshold and conditionally
      // note the state — no separate pass over the trellis.
      const int threshold = b.live_in();
      const int keep_cmp = b.emit(OpCode::Compare, {best, threshold}, "select");
      (void)b.emit(OpCode::Select, {keep_cmp}, "select");
    }
    emit_loop_overhead(b, "acs");
    kernel.blocks.push_back(std::move(b).build());
  }

  if (multires) {
    // --- Correction term: average of the N best metric differences. -------
    {
      BlockBuilder b("correction", 1.0);
      const int diffs = b.live_in();
      int acc = b.emit(OpCode::Load, {diffs}, "correction");
      for (int i = 1; i < spec.normalization_terms; ++i) {
        const int next = b.emit(OpCode::Load, {diffs}, "correction");
        acc = b.emit(OpCode::Add, {acc, next}, "correction");
      }
      // Division by N via reciprocal multiply + shift.
      const int scaled = b.emit(OpCode::Mul, {acc}, "correction");
      const int correction = b.emit(OpCode::Shift, {scaled}, "correction");
      const int slot = b.live_in();
      b.emit_void(OpCode::Store, {slot, correction}, "correction");
      kernel.blocks.push_back(std::move(b).build());
    }
    // --- High-resolution refinement of the M best paths. ------------------
    {
      BlockBuilder b("refine", static_cast<double>(spec.num_high_res_paths));
      const int list = b.live_in();
      const int bm_high_table = b.live_in();
      const int correction = b.live_in();
      const int state = b.emit(OpCode::Load, {list}, "refine");
      const int pred_acc = b.emit(OpCode::Load, {state}, "refine");
      const int bm_high = b.emit(OpCode::Load, {bm_high_table}, "refine");
      const int corrected = b.emit(OpCode::Sub, {bm_high, correction}, "refine");
      const int updated = b.emit(OpCode::Add, {pred_acc, corrected}, "refine");
      const int acc_base = b.live_in();
      b.emit_void(OpCode::Store, {acc_base, updated}, "refine");
      emit_loop_overhead(b, "refine");
      kernel.blocks.push_back(std::move(b).build());
    }
  }

  // --- Sliding-block traceback. Tracing back L+D steps releases D decoded
  // bits, so the amortized survivor-hop count per bit is (L+D)/D; D = 2K is
  // the conventional block length. The hop chain is inherently serial
  // (next state depends on the survivor bit just loaded), captured by the
  // recurrence MII below.
  {
    const double d = 2.0 * spec.code.constraint_length;
    const double hops_per_bit = (spec.traceback_depth + d) / d;
    BlockBuilder b("traceback", hops_per_bit);
    const int survivor_base = b.live_in();
    const int state = b.live_in();
    const int word = b.emit(OpCode::Load, {survivor_base, state}, "traceback");
    const int bit = b.emit(OpCode::And, {word}, "traceback");
    const int shifted = b.emit(OpCode::Shift, {state}, "traceback");
    const int next_state = b.emit(OpCode::Or, {shifted, bit}, "traceback");
    (void)next_state;
    emit_loop_overhead(b, "traceback");
    auto block = std::move(b).build();
    // Serial chain per hop: survivor load (2) -> mask (1) -> merge into the
    // next state (1), which feeds the next hop's load address.
    block.recurrence_mii = default_latency(OpCode::Load) + 2;
    kernel.blocks.push_back(std::move(block));
  }

  // --- Metric renormalization: amortized over ~16 decoded bits. -----------
  {
    BlockBuilder b("normalize", static_cast<double>(states) / 16.0);
    const int acc_base = b.live_in();
    const int floor_metric = b.live_in();
    const int acc = b.emit(OpCode::Load, {acc_base}, "normalize");
    const int lowered = b.emit(OpCode::Sub, {acc, floor_metric}, "normalize");
    b.emit_void(OpCode::Store, {acc_base, lowered}, "normalize");
    const int cmp = b.emit(OpCode::Compare, {lowered}, "normalize");
    (void)b.emit(OpCode::Select, {cmp}, "normalize");  // running min
    emit_loop_overhead(b, "normalize");
    kernel.blocks.push_back(std::move(b).build());
  }

  // --- Emit decoded bit. ---------------------------------------------------
  {
    BlockBuilder b("output", 1.0);
    const int out_buf = b.live_in();
    const int bit = b.live_in();
    b.emit_void(OpCode::Store, {out_buf, bit}, "output");
    b.emit_void(OpCode::Branch, {}, "output");
    kernel.blocks.push_back(std::move(b).build());
  }

  kernel.validate();
  return kernel;
}

int required_datapath_bits(const DecoderSpec& spec) {
  const int n = spec.code.rate_denominator();
  // The multiresolution decoder's bulk datapath (the full-trellis ACS) runs
  // at the *low* resolution — that is the point of the algorithm; only the
  // M refinement lanes see high-resolution values, and the correction term
  // keeps accumulations in low-resolution scale (+1 bit of fractional
  // headroom below).
  int resolution_bits;
  switch (spec.kind) {
    case DecoderKind::Hard:
      resolution_bits = 1;
      break;
    case DecoderKind::Soft:
      resolution_bits = spec.high_res_bits;
      break;
    case DecoderKind::Multires:
      resolution_bits = spec.low_res_bits;
      break;
    default:
      resolution_bits = spec.high_res_bits;
      break;
  }
  const int max_level = (1 << resolution_bits) - 1;
  // Classic bound: accumulated metrics within the decoding window differ by
  // at most L * n * max_level; one extra bit covers the renormalization
  // slack and one the comparison headroom.
  const double spread = static_cast<double>(spec.traceback_depth) * n *
                        std::max(1, max_level);
  int bits = static_cast<int>(std::ceil(std::log2(spread + 1.0))) + 2;
  if (spec.kind == DecoderKind::Multires) ++bits;  // correction fraction
  return std::clamp(bits, 8, 32);
}

}  // namespace metacore::vliw
