#include "vliw/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace metacore::vliw {

namespace {

struct DepGraph {
  // adjacency: edges[i] = list of (successor, latency)
  std::vector<std::vector<std::pair<int, int>>> edges;
  std::vector<int> in_degree;
};

DepGraph build_dependences(const BasicBlock& block) {
  const int n = static_cast<int>(block.ops.size());
  DepGraph g;
  g.edges.resize(static_cast<std::size_t>(n));
  g.in_degree.assign(static_cast<std::size_t>(n), 0);

  auto add_edge = [&](int from, int to, int latency) {
    g.edges[static_cast<std::size_t>(from)].push_back({to, latency});
    ++g.in_degree[static_cast<std::size_t>(to)];
  };

  // RAW: map register -> defining op index.
  std::unordered_map<int, int> def_site;
  int last_store = -1;
  std::vector<int> loads_since_store;
  for (int i = 0; i < n; ++i) {
    const Operation& op = block.ops[static_cast<std::size_t>(i)];
    for (int src : op.srcs) {
      const auto it = def_site.find(src);
      if (it != def_site.end()) {
        add_edge(it->second, i,
                 default_latency(block.ops[static_cast<std::size_t>(it->second)].op));
      }
      // Registers with no def site are live-ins: available at cycle 0.
    }
    if (op.op == OpCode::Store) {
      // Order after the previous store and after every load since it.
      if (last_store >= 0) add_edge(last_store, i, 1);
      for (int load : loads_since_store) add_edge(load, i, 1);
      loads_since_store.clear();
      last_store = i;
    } else if (op.op == OpCode::Load) {
      if (last_store >= 0) add_edge(last_store, i, 1);
      loads_since_store.push_back(i);
    } else if (op.op == OpCode::Branch) {
      if (last_store >= 0) add_edge(last_store, i, 1);
    }
    if (op.dst >= 0) def_site[op.dst] = i;
  }
  return g;
}

/// Critical-path height per op (longest latency-weighted path to any sink).
std::vector<int> critical_heights(const BasicBlock& block, const DepGraph& g) {
  const int n = static_cast<int>(block.ops.size());
  std::vector<int> height(static_cast<std::size_t>(n), 0);
  // Ops are in program order and edges always point forward, so a reverse
  // sweep is a valid topological order.
  for (int i = n - 1; i >= 0; --i) {
    int h = default_latency(block.ops[static_cast<std::size_t>(i)].op);
    for (const auto& [succ, lat] : g.edges[static_cast<std::size_t>(i)]) {
      h = std::max(h, lat + height[static_cast<std::size_t>(succ)]);
    }
    height[static_cast<std::size_t>(i)] = h;
  }
  return height;
}

}  // namespace

BlockSchedule schedule_block(const BasicBlock& block,
                             const MachineConfig& machine) {
  machine.validate();
  const int n = static_cast<int>(block.ops.size());
  BlockSchedule result;
  result.issue_cycle.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return result;
  for (const auto& op : block.ops) {
    if (machine.slots(fu_class(op.op)) == 0) {
      throw std::invalid_argument(
          "schedule_block: block '" + block.name +
          "' needs a functional unit the machine lacks (" + to_string(op.op) +
          ")");
    }
  }

  const DepGraph g = build_dependences(block);
  const std::vector<int> height = critical_heights(block, g);

  // earliest[i]: first cycle op i may issue given scheduled predecessors.
  std::vector<int> earliest(static_cast<std::size_t>(n), 0);
  std::vector<int> pending_preds = g.in_degree;
  std::vector<int> ready;  // ops whose predecessors are all scheduled
  for (int i = 0; i < n; ++i) {
    if (pending_preds[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }

  int scheduled = 0;
  int cycle = 0;
  int makespan = 0;
  while (scheduled < n) {
    // Slots free this cycle, per FU class.
    int free_slots[4] = {machine.slots(FuClass::Alu), machine.slots(FuClass::Mul),
                         machine.slots(FuClass::Mem),
                         machine.slots(FuClass::Branch)};
    // Issue ready ops whose earliest cycle has arrived, highest critical
    // path first.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      const auto ha = height[static_cast<std::size_t>(a)];
      const auto hb = height[static_cast<std::size_t>(b)];
      return ha != hb ? ha > hb : a < b;
    });
    std::vector<int> still_ready;
    std::vector<int> issued_now;
    for (int op_idx : ready) {
      const OpCode op = block.ops[static_cast<std::size_t>(op_idx)].op;
      auto& slots = free_slots[static_cast<int>(fu_class(op))];
      if (earliest[static_cast<std::size_t>(op_idx)] <= cycle && slots > 0) {
        --slots;
        result.issue_cycle[static_cast<std::size_t>(op_idx)] = cycle;
        makespan = std::max(makespan, cycle + default_latency(op));
        issued_now.push_back(op_idx);
        ++scheduled;
      } else {
        still_ready.push_back(op_idx);
      }
    }
    for (int op_idx : issued_now) {
      for (const auto& [succ, lat] : g.edges[static_cast<std::size_t>(op_idx)]) {
        auto& e = earliest[static_cast<std::size_t>(succ)];
        e = std::max(e, cycle + lat);
        if (--pending_preds[static_cast<std::size_t>(succ)] == 0) {
          still_ready.push_back(succ);
        }
      }
    }
    ready = std::move(still_ready);
    ++cycle;
    if (cycle > 1'000'000) {
      throw std::logic_error("schedule_block: scheduler failed to converge");
    }
  }
  result.cycles = makespan;

  // Register pressure: a value is live from its def's issue cycle to the
  // issue cycle of its last consumer; live-ins are live from cycle 0.
  std::unordered_map<int, std::pair<int, int>> live_range;  // reg -> [def, last use]
  for (int i = 0; i < n; ++i) {
    const Operation& op = block.ops[static_cast<std::size_t>(i)];
    const int at = result.issue_cycle[static_cast<std::size_t>(i)];
    if (op.dst >= 0) {
      live_range[op.dst] = {at, at};
    }
    for (int src : op.srcs) {
      auto it = live_range.find(src);
      if (it == live_range.end()) {
        live_range[src] = {0, at};  // live-in
      } else {
        it->second.second = std::max(it->second.second, at);
      }
    }
  }
  std::vector<int> live_at(static_cast<std::size_t>(result.cycles) + 1, 0);
  for (const auto& [reg, range] : live_range) {
    for (int c = range.first; c <= range.second; ++c) {
      ++live_at[static_cast<std::size_t>(c)];
    }
  }
  result.max_live_values =
      live_at.empty() ? 0 : *std::max_element(live_at.begin(), live_at.end());
  return result;
}

int resource_bound(const BasicBlock& block, const MachineConfig& machine) {
  int bound = 0;
  for (FuClass cls :
       {FuClass::Alu, FuClass::Mul, FuClass::Mem, FuClass::Branch}) {
    const int ops = block.count(cls);
    const int slots = machine.slots(cls);
    if (ops > 0 && slots == 0) {
      throw std::invalid_argument(
          "resource_bound: block needs a functional unit the machine lacks");
    }
    if (slots > 0) bound = std::max(bound, (ops + slots - 1) / slots);
  }
  return bound;
}

}  // namespace metacore::vliw
