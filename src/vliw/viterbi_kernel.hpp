// Lowers a Viterbi decoder configuration (the 8 parameters of the paper's
// Table 2) to a VLIW IR kernel whose per-decoded-bit work mirrors a
// realistic software implementation: symbol quantization, branch-metric
// computation, the add-compare-select sweep over all trellis states, the
// multiresolution refinement of the M best paths, sliding traceback, and
// metric renormalization. This generated source is what the paper fed to
// Trimaran; here it feeds the scheduler/simulator in this module.
#pragma once

#include "comm/ber.hpp"
#include "vliw/ir.hpp"

namespace metacore::vliw {

/// Builds the decode kernel for `spec`. Trip counts are per decoded bit.
Kernel build_viterbi_kernel(const comm::DecoderSpec& spec);

/// Narrowest datapath (in bits) that holds the decoder's accumulated error
/// metrics without overflow between renormalizations: the quantity the
/// paper's data_path_factor [Erc98] is applied to. Grows with quantizer
/// resolution and traceback depth.
int required_datapath_bits(const comm::DecoderSpec& spec);

}  // namespace metacore::vliw
