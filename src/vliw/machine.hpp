// The parameterized VLIW machine description: the knobs the paper lists as
// "Trimaran hardware architecture parameters such as register file sizes,
// memory hierarchy, number of arithmetic logic units (ALU) and others"
// (Section 4.2).
#pragma once

#include <string>
#include <vector>

#include "vliw/ir.hpp"

namespace metacore::vliw {

struct MachineConfig {
  int num_alus = 2;
  int num_multipliers = 1;
  int num_memory_ports = 1;
  int num_branch_units = 1;
  int register_file_size = 32;
  int datapath_bits = 32;

  /// Issue slots available per cycle for the given functional-unit class.
  int slots(FuClass cls) const;

  /// Total issue width.
  int issue_width() const {
    return num_alus + num_multipliers + num_memory_ports + num_branch_units;
  }

  std::string label() const;

  /// Throws on non-positive resource counts or absurd widths.
  void validate() const;

  bool operator==(const MachineConfig&) const = default;
};

/// The configuration family the cost engine searches over when looking for
/// the cheapest machine that sustains a required throughput: from a minimal
/// single-issue core up to a wide 8-ALU engine. Ordered by increasing
/// estimated area so the first feasible entry is the cheapest.
std::vector<MachineConfig> standard_config_family(int datapath_bits);

}  // namespace metacore::vliw
