// Hardware area and clock model (Section 4.3 of the paper).
//
// The paper anchors its Trimaran area model on the LSI Logic TR4101
// embedded microprocessor — 0.35 um feature size, 81 MHz maximum clock,
// 32-bit datapath — and scales with
//
//     lambda = (alpha / 0.35)^2 * data_path_factor
//
// for a target feature size alpha, where data_path_factor (from [Erc98])
// adjusts for datapath width. Clock rates scale linearly with feature size
// and are likewise adjusted for datapath width.
//
// Our calibration decomposes the core into control, functional units,
// register file, and on-chip SRAM so that richer machine configurations
// (more ALUs, bigger register files, deeper survivor memories) cost
// proportionally more. Absolute constants are calibrated so that the
// paper's Table 1 reference points land in the right regime; all relative
// comparisons — which is what the design-space search consumes — follow
// from the decomposition.
#pragma once

#include "vliw/machine.hpp"

namespace metacore::cost {

/// Process technology parameters; defaults are the paper's TR4101 anchor.
struct TechnologyParams {
  double base_feature_um = 0.35;  ///< feature size the constants are quoted at
  double feature_um = 0.35;       ///< target feature size (alpha)
  double base_clock_mhz = 81.0;   ///< TR4101 maximum clock at 0.35 um

  /// The paper's quadratic area scaling factor, before data_path_factor.
  double area_lambda() const {
    const double r = feature_um / base_feature_um;
    return r * r;
  }

  /// Linear clock scaling with feature size (smaller -> faster).
  double clock_scale() const { return base_feature_um / feature_um; }
};

/// Calibration constants (mm^2 at 0.35 um for a 32-bit datapath).
struct AreaModelParams {
  double control_area = 0.14;       ///< fetch/decode/sequencing per core
  double alu_area = 0.045;          ///< one 32-bit ALU
  double mul_area = 0.16;           ///< one 32-bit multiplier
  double mem_port_area = 0.055;     ///< one load/store port + buffers
  double branch_unit_area = 0.02;
  double reg_area_per_word = 0.0015;  ///< 32-bit register incl. ports
  double sram_mm2_per_kbit = 0.011;   ///< on-chip SRAM macro density
  /// Fraction of core area that does not shrink with datapath width
  /// (control, clocking, branch logic) — the [Erc98] width adjustment
  /// applies only to the remaining fraction.
  double width_fixed_fraction = 0.30;
};

/// Width adjustment for datapath-proportional area ([Erc98]): linear in the
/// number of bits for adders/registers, quadratic for array multipliers.
double datapath_area_factor(int bits, const AreaModelParams& params);
double multiplier_area_factor(int bits);

/// Narrower datapaths close timing faster: the carry/bypass critical path
/// shortens with width. Factor multiplies the technology clock.
double datapath_clock_factor(int bits);

/// Area of one VLIW core instance (no memories) at the given technology.
double machine_area_mm2(const vliw::MachineConfig& machine,
                        const AreaModelParams& params,
                        const TechnologyParams& tech);

/// Area of `kbits` of on-chip SRAM at the given technology.
double sram_area_mm2(double kbits, const AreaModelParams& params,
                     const TechnologyParams& tech);

/// Maximum clock (MHz) of a core with the given datapath width.
double achievable_clock_mhz(int datapath_bits, const TechnologyParams& tech);

}  // namespace metacore::cost
