// The cost evaluation engine for Viterbi MetaCores: composes the kernel
// generator, the VLIW scheduler/simulator, and the TR4101 area model to
// answer the question the paper's search asks at every design point —
// "what is the cheapest implementation of this decoder configuration that
// sustains the required throughput?"
#pragma once

#include <string>
#include <vector>

#include "comm/ber.hpp"
#include "cost/area_model.hpp"
#include "vliw/machine.hpp"
#include "vliw/simulator.hpp"

namespace metacore::cost {

struct ViterbiCostQuery {
  comm::DecoderSpec spec;
  double throughput_mbps = 1.0;
  TechnologyParams tech{};
};

struct ViterbiCostResult {
  bool feasible = false;
  double area_mm2 = 0.0;          ///< total: cores + survivor/metric memory
  double core_area_mm2 = 0.0;
  double memory_area_mm2 = 0.0;
  double cycles_per_bit = 0.0;
  double required_clock_mhz = 0.0;
  double achievable_clock_mhz = 0.0;
  int cores = 0;                  ///< block-interleaved decoder engines
  int datapath_bits = 0;
  vliw::MachineConfig machine{};
  vliw::ExecutionProfile profile{};
};

/// Maximum decoder engines ganged on one stream before block-interleaving
/// overhead makes further replication useless.
inline constexpr int kMaxCores = 16;

/// Evaluates the cheapest feasible implementation: enumerates the standard
/// machine-configuration family at the spec's required datapath width,
/// profiles the generated kernel on each, determines the replication count
/// needed to meet the throughput, and returns the minimum-area choice.
/// `feasible == false` when even the widest machine at kMaxCores falls
/// short.
ViterbiCostResult evaluate_viterbi_cost(const ViterbiCostQuery& query,
                                        const AreaModelParams& params = {});

/// Survivor + path-metric storage for the spec, in kbits. Exposed for tests.
double decoder_memory_kbits(const comm::DecoderSpec& spec, int datapath_bits);

}  // namespace metacore::cost
