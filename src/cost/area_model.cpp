#include "cost/area_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace metacore::cost {

double datapath_area_factor(int bits, const AreaModelParams& params) {
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("datapath_area_factor: bits out of range");
  }
  const double width_ratio = static_cast<double>(bits) / 32.0;
  return params.width_fixed_fraction +
         (1.0 - params.width_fixed_fraction) * width_ratio;
}

double multiplier_area_factor(int bits) {
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("multiplier_area_factor: bits out of range");
  }
  const double width_ratio = static_cast<double>(bits) / 32.0;
  return width_ratio * width_ratio;
}

double datapath_clock_factor(int bits) {
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("datapath_clock_factor: bits out of range");
  }
  // Carry chains shorten with width; logarithmic sensitivity keeps the
  // factor in the empirically reasonable 1.0-1.5x band for 8..32 bits.
  const double width_ratio = static_cast<double>(bits) / 32.0;
  return 1.0 / (0.62 + 0.38 * width_ratio);
}

double machine_area_mm2(const vliw::MachineConfig& machine,
                        const AreaModelParams& params,
                        const TechnologyParams& tech) {
  machine.validate();
  const double width = datapath_area_factor(machine.datapath_bits, params);
  double area = params.control_area;
  area += machine.num_alus * params.alu_area * width;
  area += machine.num_multipliers * params.mul_area *
          multiplier_area_factor(machine.datapath_bits);
  area += machine.num_memory_ports * params.mem_port_area * width;
  area += machine.num_branch_units * params.branch_unit_area;
  area += machine.register_file_size * params.reg_area_per_word * width;
  return area * tech.area_lambda();
}

double sram_area_mm2(double kbits, const AreaModelParams& params,
                     const TechnologyParams& tech) {
  if (kbits < 0.0) {
    throw std::invalid_argument("sram_area_mm2: negative capacity");
  }
  return kbits * params.sram_mm2_per_kbit * tech.area_lambda();
}

double achievable_clock_mhz(int datapath_bits, const TechnologyParams& tech) {
  return tech.base_clock_mhz * tech.clock_scale() *
         datapath_clock_factor(datapath_bits);
}

}  // namespace metacore::cost
