#include "cost/viterbi_cost.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "vliw/viterbi_kernel.hpp"

namespace metacore::cost {

double decoder_memory_kbits(const comm::DecoderSpec& spec,
                            int datapath_bits) {
  const double states = spec.code.num_states();
  // Survivor memory: one bit per state per trellis step in the window.
  const double survivor_bits = states * spec.traceback_depth;
  // Path metric storage: two metric banks (current/next) of datapath width.
  const double metric_bits = 2.0 * states * datapath_bits;
  // Quantizer tables and branch-metric scratch: a handful of words.
  const double table_bits = 16.0 * datapath_bits;
  return (survivor_bits + metric_bits + table_bits) / 1024.0;
}

ViterbiCostResult evaluate_viterbi_cost(const ViterbiCostQuery& query,
                                        const AreaModelParams& params) {
  if (query.throughput_mbps <= 0.0) {
    throw std::invalid_argument(
        "evaluate_viterbi_cost: throughput must be positive");
  }
  const int bits = vliw::required_datapath_bits(query.spec);
  const vliw::Kernel kernel = vliw::build_viterbi_kernel(query.spec);
  const double clock_mhz = achievable_clock_mhz(bits, query.tech);
  const double memory_area =
      sram_area_mm2(decoder_memory_kbits(query.spec, bits), params, query.tech);

  ViterbiCostResult best;
  best.feasible = false;
  best.area_mm2 = std::numeric_limits<double>::infinity();
  best.datapath_bits = bits;
  best.achievable_clock_mhz = clock_mhz;

  // Profiling the kernel on each family member is the expensive part;
  // candidates are independent, so they fan out across the pool. The
  // minimum-area reduction below walks family order, keeping the selection
  // (ties included) identical to the historical serial loop. Collected
  // per-item outcomes let a single misbehaving candidate (e.g. a scheduler
  // that fails to converge on one machine shape) drop out as infeasible
  // instead of aborting the whole query.
  const std::vector<vliw::MachineConfig> family =
      vliw::standard_config_family(bits);
  const auto profiles = exec::parallel_map_collect(
      family,
      [&](const vliw::MachineConfig& machine)
          -> std::optional<vliw::ExecutionProfile> {
        // Skip configurations missing a functional unit the kernel needs
        // (e.g. multiplier-less minimal cores for soft-decision quantizers).
        for (const auto& block : kernel.blocks) {
          for (const auto& op : block.ops) {
            if (machine.slots(vliw::fu_class(op.op)) == 0) {
              return std::nullopt;
            }
          }
        }
        return vliw::profile_kernel(kernel, machine);
      });

  for (std::size_t m = 0; m < family.size(); ++m) {
    if (!profiles[m].ok() || !profiles[m].value->has_value()) continue;
    const vliw::MachineConfig& machine = family[m];
    const vliw::ExecutionProfile& profile = **profiles[m].value;
    // Throughput in Mbps, clock in MHz: required MHz = cycles/bit * Mbps.
    const double required_mhz = profile.cycles_per_unit * query.throughput_mbps;
    const int cores =
        static_cast<int>(std::ceil(required_mhz / clock_mhz - 1e-9));
    if (cores < 1 || cores > kMaxCores) continue;
    const double core_area =
        cores * machine_area_mm2(machine, params, query.tech);
    const double total = core_area + memory_area;
    if (total < best.area_mm2) {
      best.feasible = true;
      best.area_mm2 = total;
      best.core_area_mm2 = core_area;
      best.memory_area_mm2 = memory_area;
      best.cycles_per_bit = profile.cycles_per_unit;
      best.required_clock_mhz = required_mhz;
      best.cores = cores;
      best.machine = machine;
      best.profile = profile;
    }
  }
  if (!best.feasible) {
    best.area_mm2 = 0.0;
  }
  return best;
}

}  // namespace metacore::cost
