// Request/response envelopes for the networked design-query protocol.
//
// Every frame on the wire is one JSON object. Client → server:
//
//   {"id":"r1","kind":"query","query":{...DesignQuery...}}
//   {"id":"r2","kind":"stats"}
//
// `id` is a client-chosen tag (non-empty string, <= 256 bytes) echoed back
// verbatim on the response, so any number of requests may be in flight on
// one connection and answered out of order. Server → client:
//
//   {"id":"r1","status":"ok","response":{...DesignResponse...}}
//   {"id":"r2","status":"ok","stats":{...server stats snapshot...}}
//   {"id":"r3","status":"rejected","reason":"overloaded","queue_depth":N}
//   {"id":"" ,"status":"error","error":"<descriptive message>"}
//
// A "rejected" status is backpressure, not failure: the query was well-
// formed but the server declined to queue it (reason "overloaded" when the
// pending-query quota is full, "draining" during graceful shutdown) — the
// client may retry later. An "error" status means the frame itself was
// unusable; when the id could not be recovered from the broken frame it is
// the empty string.
//
// The payload members ("response"/"stats") are spliced into the envelope
// as raw pre-serialized JSON and can be extracted back *byte-exactly* with
// extract_raw_member — so a response that crossed the wire compares
// byte-identical against serve::to_json of an in-process answer.
#pragma once

#include <string>

#include "serve/service.hpp"

namespace metacore::net {

/// Upper bound on request-id length; longer ids are a malformed request.
inline constexpr std::size_t kMaxRequestIdBytes = 256;

enum class RequestKind : int { Query = 0, Stats = 1 };

struct Request {
  std::string id;
  RequestKind kind = RequestKind::Query;
  serve::DesignQuery query;  ///< meaningful only when kind == Query
};

/// Canonical encoding (stable field order, round-trip doubles).
std::string to_json(const Request& request);

/// Parses and validates one request frame. Throws std::runtime_error with
/// a descriptive message on malformed JSON, a missing/over-long/empty id,
/// an unknown kind, or a missing/invalid query document.
Request parse_request(const std::string& json);

/// Best-effort id recovery from a frame that failed parse_request, so the
/// error response can still be correlated; "" when unrecoverable.
std::string best_effort_request_id(const std::string& json);

/// Response-envelope builders (see the grammar above).
std::string make_design_response(const std::string& id,
                                 const std::string& response_json);
std::string make_stats_response(const std::string& id,
                                const std::string& stats_json);
std::string make_rejected_response(const std::string& id,
                                   const std::string& reason,
                                   std::size_t queue_depth);
std::string make_error_response(const std::string& id,
                                const std::string& message);

/// One parsed server → client envelope.
struct WireResponse {
  std::string id;
  std::string status;  ///< "ok" | "rejected" | "error"
  std::string reason;  ///< rejection reason or error message; "" when ok
  std::size_t queue_depth = 0;  ///< populated on "rejected"
  /// Raw JSON text of the "response" member, byte-exact as serialized by
  /// the server; "" when the envelope carried none.
  std::string response_json;
  /// Raw JSON text of the "stats" member; "" when absent.
  std::string stats_json;

  bool ok() const noexcept { return status == "ok"; }
  bool rejected() const noexcept { return status == "rejected"; }
};

WireResponse parse_wire_response(const std::string& json);

/// Returns the raw text of top-level member `key` in JSON object `json`
/// (exactly the bytes of its value, braces to braces), or "" when absent.
/// Tracks strings/escapes, so brace characters inside string values do not
/// confuse it. Throws std::runtime_error when `json` is not an object.
std::string extract_raw_member(const std::string& json,
                               const std::string& key);

}  // namespace metacore::net
