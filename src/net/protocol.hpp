// Request/response envelopes for the networked design-query protocol.
//
// Every frame on the wire is one JSON object (until binary mode is
// negotiated — see below). Client → server:
//
//   {"id":"r0","kind":"hello","wire":"binary"}
//   {"id":"r1","kind":"query","query":{...DesignQuery...}}
//   {"id":"r2","kind":"stats"}
//
// `id` is a client-chosen tag (non-empty string, <= 256 bytes) echoed back
// verbatim on the response, so any number of requests may be in flight on
// one connection and answered out of order. Server → client:
//
//   {"id":"r1","status":"ok","response":{...DesignResponse...}}
//   {"id":"r2","status":"ok","stats":{...server stats snapshot...}}
//   {"id":"r3","status":"rejected","reason":"overloaded","queue_depth":N}
//   {"id":"" ,"status":"error","error":"<descriptive message>"}
//
// A "rejected" status is backpressure, not failure: the query was well-
// formed but the server declined to queue it (reason "overloaded" when the
// pending-query quota is full, "draining" during graceful shutdown) — the
// client may retry later. An "error" status means the frame itself was
// unusable; when the id could not be recovered from the broken frame it is
// the empty string.
//
// The payload members ("response"/"stats") are spliced into the envelope
// as raw pre-serialized JSON and can be extracted back *byte-exactly* with
// extract_raw_member — so a response that crossed the wire compares
// byte-identical against serve::to_json of an in-process answer.
//
// Wire-mode negotiation: a client that wants the MCB1 binary mode sends
// `{"id":..,"kind":"hello","wire":"binary"}` as the FIRST request on the
// connection (a hello after any query/stats request is an error). The
// server answers in text with `{"id":..,"status":"ok","wire":"binary"}`
// when it accepts (both sides then switch: each sends the 4-byte "MCB1"
// stream preamble once, and every subsequent frame is a
// robust::frame_record carrying a binary envelope), or with
// `"wire":"text"` when binary is disabled — the connection simply stays
// in text mode, so a binary-capable client talking to a text-only server
// degrades transparently. A text client never sends hello and is
// unaffected.
//
// Binary envelopes (encode_binary_request / parse_binary_wire_response)
// carry the same information as the JSON ones: a version byte, a kind or
// status byte, the id, and the payload — a serve/binary_codec document
// for queries and responses, the stats JSON text for stats (stats are a
// diagnostic surface, not a hot path). The response body is a contiguous
// suffix of the envelope, so the server splices pre-encoded (and cached)
// response bytes straight into the frame.
#pragma once

#include <string>
#include <string_view>

#include "serve/binary_codec.hpp"
#include "serve/service.hpp"

namespace metacore::net {

/// Upper bound on request-id length; longer ids are a malformed request.
inline constexpr std::size_t kMaxRequestIdBytes = 256;

enum class RequestKind : int { Query = 0, Stats = 1, Hello = 2 };

struct Request {
  std::string id;
  RequestKind kind = RequestKind::Query;
  serve::DesignQuery query;  ///< meaningful only when kind == Query
  std::string wire;          ///< requested mode ("text"/"binary"), Hello only
};

/// Canonical encoding (stable field order, round-trip doubles).
std::string to_json(const Request& request);

/// Parses and validates one request frame. Throws std::runtime_error with
/// a descriptive message on malformed JSON, a missing/over-long/empty id,
/// an unknown kind, or a missing/invalid query document.
Request parse_request(const std::string& json);

/// Best-effort id recovery from a frame that failed parse_request, so the
/// error response can still be correlated; "" when unrecoverable.
std::string best_effort_request_id(const std::string& json);

/// Response-envelope builders (see the grammar above).
std::string make_design_response(const std::string& id,
                                 const std::string& response_json);
std::string make_stats_response(const std::string& id,
                                const std::string& stats_json);
std::string make_rejected_response(const std::string& id,
                                   const std::string& reason,
                                   std::size_t queue_depth);
std::string make_error_response(const std::string& id,
                                const std::string& message);
/// The text reply to a hello: {"id":..,"status":"ok","wire":"binary"|"text"}.
std::string make_hello_response(const std::string& id,
                                const std::string& wire);

/// One parsed server → client envelope.
struct WireResponse {
  std::string id;
  std::string status;  ///< "ok" | "rejected" | "error"
  std::string reason;  ///< rejection reason or error message; "" when ok
  std::size_t queue_depth = 0;  ///< populated on "rejected"
  /// Raw JSON text of the "response" member, byte-exact as serialized by
  /// the server; "" when the envelope carried none. For a binary envelope
  /// this is the decoded DesignResponse re-serialized through the
  /// canonical writer — byte-identical to the text-mode answer, which is
  /// how the lossless-round-trip pin works.
  std::string response_json;
  /// Raw JSON text of the "stats" member; "" when absent.
  std::string stats_json;
  /// The "wire" member of a hello reply; "" otherwise.
  std::string wire;

  bool ok() const noexcept { return status == "ok"; }
  bool rejected() const noexcept { return status == "rejected"; }
};

WireResponse parse_wire_response(const std::string& json);

// --- MCB1 binary envelopes (negotiated mode) -----------------------------
//
// Request:  version u8, kind u8 (0 = query, 1 = stats), id string,
//           [DesignQuery document] (kind 0 only, runs to the end).
// Response: version u8, status u8 (0 = ok+response, 1 = ok+stats,
//           2 = rejected, 3 = error), id string, then per status:
//           0 → DesignResponse document (contiguous suffix — spliceable),
//           1 → stats JSON string, 2 → reason string + queue-depth varint,
//           3 → message string.

std::string encode_binary_request(const Request& request);
/// Throws std::runtime_error (descriptive) on malformed bytes, a bad
/// version, an unknown kind, an invalid id, or a broken query document.
Request decode_binary_request(std::string_view bytes);

/// Best-effort id recovery from a binary frame that failed
/// decode_binary_request; "" when unrecoverable.
std::string best_effort_binary_request_id(std::string_view bytes);

/// Binary response-envelope builders; `response_bytes` is a pre-encoded
/// serve::encode_binary(DesignResponse) document appended verbatim.
std::string make_binary_design_response(const std::string& id,
                                        std::string_view response_bytes);
std::string make_binary_stats_response(const std::string& id,
                                       const std::string& stats_json);
std::string make_binary_rejected_response(const std::string& id,
                                          const std::string& reason,
                                          std::size_t queue_depth);
std::string make_binary_error_response(const std::string& id,
                                       const std::string& message);

/// Decodes a binary envelope into the same WireResponse shape as text
/// mode: an ok+response envelope has its body decoded and re-serialized
/// into `response_json` via the canonical writer.
WireResponse parse_binary_wire_response(std::string_view bytes);

/// Returns the raw text of top-level member `key` in JSON object `json`
/// (exactly the bytes of its value, braces to braces), or "" when absent.
/// Tracks strings/escapes, so brace characters inside string values do not
/// confuse it. Throws std::runtime_error when `json` is not an object.
std::string extract_raw_member(const std::string& json,
                               const std::string& key);

}  // namespace metacore::net
