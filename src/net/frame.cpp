#include "net/frame.hpp"

#include <stdexcept>

namespace metacore::net {

void append_frame(std::string& out, std::string_view payload) {
  if (payload.find('\n') != std::string_view::npos) {
    throw std::logic_error("frame payload must not contain a raw newline");
  }
  out.append(payload.data(), payload.size());
  out.push_back('\n');
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes == 0 ? kDefaultMaxFrameBytes
                                            : max_frame_bytes) {}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<Frame> FrameDecoder::next() {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (discarding_) {
      if (pos == std::string::npos) {
        // Still inside the oversized line: drop everything buffered.
        discarded_ += buffer_.size();
        buffer_.clear();
        return std::nullopt;
      }
      Frame frame;
      frame.oversized = true;
      frame.dropped_bytes = discarded_ + pos;
      buffer_.erase(0, pos + 1);
      discarding_ = false;
      discarded_ = 0;
      return frame;
    }
    if (pos == std::string::npos) {
      if (buffer_.size() > max_frame_bytes_) {
        // The line already exceeds the cap with no terminator in sight:
        // switch to discard mode so buffered memory stays bounded.
        discarding_ = true;
        discarded_ = buffer_.size();
        buffer_.clear();
      }
      return std::nullopt;
    }
    Frame frame;
    frame.payload.assign(buffer_, 0, pos);
    buffer_.erase(0, pos + 1);
    if (!frame.payload.empty() && frame.payload.back() == '\r') {
      frame.payload.pop_back();
    }
    if (frame.payload.size() > max_frame_bytes_) {
      frame.oversized = true;
      frame.dropped_bytes = frame.payload.size();
      frame.payload.clear();
      return frame;
    }
    if (frame.payload.empty()) continue;  // blank keep-alive line
    return frame;
  }
}

}  // namespace metacore::net
