#include "net/frame.hpp"

#include <stdexcept>

#include "robust/journal.hpp"
#include "util/crc32c.hpp"

namespace metacore::net {

namespace {

// Binary framing mirrors robust::frame_record:
// '#' + 8-hex length + '|' + 8-hex crc + '|' + payload + '\n'.
constexpr std::size_t kBinaryHeaderBytes = 19;

bool parse_hex8(const char* p, std::uint32_t& out) {
  std::uint32_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = p[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  if (payload.find('\n') != std::string_view::npos) {
    throw std::logic_error("frame payload must not contain a raw newline");
  }
  out.append(payload.data(), payload.size());
  out.push_back('\n');
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes == 0 ? kDefaultMaxFrameBytes
                                            : max_frame_bytes) {}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<Frame> FrameDecoder::next() {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (discarding_) {
      if (pos == std::string::npos) {
        // Still inside the oversized line: drop everything buffered.
        discarded_ += buffer_.size();
        buffer_.clear();
        return std::nullopt;
      }
      Frame frame;
      frame.oversized = true;
      frame.dropped_bytes = discarded_ + pos;
      buffer_.erase(0, pos + 1);
      discarding_ = false;
      discarded_ = 0;
      return frame;
    }
    if (pos == std::string::npos) {
      if (buffer_.size() > max_frame_bytes_) {
        // The line already exceeds the cap with no terminator in sight:
        // switch to discard mode so buffered memory stays bounded.
        discarding_ = true;
        discarded_ = buffer_.size();
        buffer_.clear();
      }
      return std::nullopt;
    }
    Frame frame;
    frame.payload.assign(buffer_, 0, pos);
    buffer_.erase(0, pos + 1);
    if (!frame.payload.empty() && frame.payload.back() == '\r') {
      frame.payload.pop_back();
    }
    if (frame.payload.size() > max_frame_bytes_) {
      frame.oversized = true;
      frame.dropped_bytes = frame.payload.size();
      frame.payload.clear();
      return frame;
    }
    if (frame.payload.empty()) continue;  // blank keep-alive line
    return frame;
  }
}

std::string FrameDecoder::take_buffer() {
  std::string taken = std::move(buffer_);
  buffer_.clear();
  return taken;
}

void append_binary_frame(std::string& out, std::string_view payload) {
  out += robust::frame_record(payload);
}

BinaryFrameDecoder::BinaryFrameDecoder(std::size_t max_frame_bytes,
                                       bool expect_preamble)
    : max_frame_bytes_(max_frame_bytes == 0 ? kDefaultMaxFrameBytes
                                            : max_frame_bytes),
      state_(expect_preamble ? State::Preamble : State::Clean) {}

void BinaryFrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

BinaryFrameDecoder::Head BinaryFrameDecoder::parse_head(BinaryFrame* frame,
                                                        std::string* reason) {
  if (buffer_.size() < kBinaryHeaderBytes) return Head::NeedMore;
  if (buffer_[0] != '#' || buffer_[9] != '|' || buffer_[18] != '|') {
    *reason = "broken binary frame header";
    return Head::BadResync;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (!parse_hex8(buffer_.data() + 1, len) ||
      !parse_hex8(buffer_.data() + 10, crc)) {
    *reason = "broken binary frame header";
    return Head::BadResync;
  }
  if (len > max_frame_bytes_) {
    *reason = "binary frame length " + std::to_string(len) + " exceeds the " +
              std::to_string(max_frame_bytes_) + "-byte limit";
    return Head::BadResync;
  }
  const std::size_t total = kBinaryHeaderBytes + len + 1;
  if (buffer_.size() < total) return Head::NeedMore;
  const std::string_view payload(buffer_.data() + kBinaryHeaderBytes, len);
  const bool crc_ok = util::crc32c(payload) == crc;
  const bool term_ok = buffer_[kBinaryHeaderBytes + len] == '\n';
  if (crc_ok && term_ok) {
    frame->payload.assign(payload);
    buffer_.erase(0, total);
    return Head::Frame;
  }
  if (crc_ok || term_ok) {
    // One of the two trailing checks still validates the length, so the
    // frame boundary is trusted: consume it whole and stay in sync.
    *reason = crc_ok ? "binary frame terminator corrupted"
                     : "binary frame CRC mismatch";
    buffer_.erase(0, total);
    return Head::BadSkipFrame;
  }
  // Both failed: the length itself is suspect; let the caller rescan.
  *reason = "binary frame CRC mismatch";
  return Head::BadResync;
}

std::optional<BinaryFrame> BinaryFrameDecoder::next() {
  for (;;) {
    switch (state_) {
      case State::Preamble: {
        if (buffer_.size() < kBinaryPreamble.size()) return std::nullopt;
        if (std::string_view(buffer_).substr(0, kBinaryPreamble.size()) !=
            kBinaryPreamble) {
          state_ = State::Resync;
          BinaryFrame frame;
          frame.corrupt = true;
          frame.reason = "bad MCB1 stream preamble";
          return frame;
        }
        buffer_.erase(0, kBinaryPreamble.size());
        state_ = State::Clean;
        continue;
      }
      case State::Clean: {
        std::size_t start = 0;
        while (start < buffer_.size() && buffer_[start] == '\n') ++start;
        if (start > 0) buffer_.erase(0, start);  // keep-alive padding
        if (buffer_.empty()) return std::nullopt;
        BinaryFrame frame;
        std::string reason;
        switch (parse_head(&frame, &reason)) {
          case Head::NeedMore:
            return std::nullopt;
          case Head::Frame:
            return frame;
          case Head::BadSkipFrame:
            frame.corrupt = true;
            frame.reason = std::move(reason);
            return frame;
          case Head::BadResync:
            state_ = State::Resync;
            frame.corrupt = true;
            frame.reason = std::move(reason);
            return frame;
        }
        continue;
      }
      case State::Resync: {
        // Silent recovery: the corrupt event for this damaged region was
        // already emitted; candidates that fail validation are dropped
        // without further errors until one full frame checks out.
        for (;;) {
          if (!buffer_.empty() && buffer_[0] == '#') {
            BinaryFrame frame;
            std::string reason;
            switch (parse_head(&frame, &reason)) {
              case Head::NeedMore:
                return std::nullopt;
              case Head::Frame:
                state_ = State::Clean;
                return frame;
              case Head::BadSkipFrame:
                continue;  // boundary trusted but damaged: swallow silently
              case Head::BadResync:
                buffer_.erase(0, 1);
                break;
            }
          }
          const std::size_t pos = buffer_.find("\n#");
          if (pos == std::string::npos) {
            // Keep a trailing '\n' — its '#' may still be in flight.
            if (!buffer_.empty() && buffer_.back() == '\n') {
              buffer_.erase(0, buffer_.size() - 1);
            } else {
              buffer_.clear();
            }
            return std::nullopt;
          }
          buffer_.erase(0, pos + 1);  // buffer now starts at the candidate '#'
        }
      }
    }
  }
}

}  // namespace metacore::net
