#include "net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace metacore::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

double retry_backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                        std::size_t queue_depth,
                        std::uint64_t jitter_counter) {
  double exp_ms = policy.base_ms *
                  std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(
                                      attempt, 62))) *
                  (1.0 + policy.depth_weight * static_cast<double>(queue_depth));
  exp_ms = std::min(exp_ms, policy.cap_ms);
  // Half-jitter: never below exp/2 (the backoff keeps its exponential
  // floor) and never above exp (the cap is a real cap). u in [0, 1).
  const double u =
      static_cast<double>(util::CounterRng::at(policy.jitter_key,
                                               jitter_counter)) *
      0x1p-64;
  return exp_ms / 2.0 + u * (exp_ms / 2.0);
}

DesignClient::~DesignClient() { close(); }

void DesignClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void DesignClient::connect(const std::string& host, int port,
                           int timeout_ms) {
  close();
  timeout_ms_ = timeout_ms;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    throw std::runtime_error("resolve " + host + ": " + ::gai_strerror(rc));
  }

  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    errno = last_errno;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }

  // A fresh connection is a fresh protocol session: no leftover decoder
  // bytes, no buffered responses from the old socket, text mode again,
  // ids from c1, and — the explicit stats lifetime — zeroed counters.
  decoder_ = FrameDecoder();
  binary_decoder_ = BinaryFrameDecoder();
  wire_ = serve::WireEncoding::Json;
  preamble_sent_ = false;
  out_of_order_.clear();
  next_seq_ = 0;
  jitter_counter_ = 0;
  stats_ = ClientStats{};
}

bool DesignClient::negotiate_binary() {
  if (wire_ == serve::WireEncoding::Binary) return true;
  Request hello;
  hello.id = next_id();
  hello.kind = RequestKind::Hello;
  hello.wire = "binary";
  send_raw(to_json(hello));
  const WireResponse reply = recv_matching(hello.id);
  if (!reply.ok() || reply.wire != "binary") return false;
  wire_ = serve::WireEncoding::Binary;
  // Bytes the server sent behind its hello reply (starting with the
  // "MCB1" preamble) may already sit in the text decoder: hand them over.
  binary_decoder_.feed(decoder_.take_buffer());
  return true;
}

void DesignClient::send_all(const std::string& bytes) {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
  stats_.wire_bytes_sent += bytes.size();
}

void DesignClient::send_query(const std::string& id,
                              const serve::DesignQuery& query) {
  Request request;
  request.id = id;
  request.kind = RequestKind::Query;
  request.query = query;
  if (wire_ == serve::WireEncoding::Binary) {
    send_binary_frame(encode_binary_request(request));
  } else {
    send_raw(to_json(request));
  }
  ++stats_.queries_sent;
}

void DesignClient::send_stats(const std::string& id) {
  Request request;
  request.id = id;
  request.kind = RequestKind::Stats;
  if (wire_ == serve::WireEncoding::Binary) {
    send_binary_frame(encode_binary_request(request));
  } else {
    send_raw(to_json(request));
  }
}

void DesignClient::send_raw(const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 1);
  append_frame(framed, payload);
  send_all(framed);
}

void DesignClient::send_bytes(const std::string& bytes) { send_all(bytes); }

void DesignClient::send_binary_frame(const std::string& payload) {
  std::string framed;
  if (!preamble_sent_) {
    framed.append(kBinaryPreamble.data(), kBinaryPreamble.size());
    preamble_sent_ = true;
  }
  append_binary_frame(framed, payload);
  send_all(framed);
}

WireResponse DesignClient::recv_response() {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  char buf[65536];
  for (;;) {
    if (wire_ == serve::WireEncoding::Binary) {
      if (auto frame = binary_decoder_.next()) {
        if (frame->corrupt) {
          // The server never ships a damaged frame; this is transport-level
          // corruption the client cannot recover a response from.
          throw std::runtime_error("corrupt binary response frame: " +
                                   frame->reason);
        }
        return parse_binary_wire_response(frame->payload);
      }
    } else if (auto frame = decoder_.next()) {
      if (frame->oversized) {
        throw std::runtime_error("response frame exceeds the client limit");
      }
      return parse_wire_response(frame->payload);
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.wire_bytes_received += static_cast<std::size_t>(n);
      if (wire_ == serve::WireEncoding::Binary) {
        binary_decoder_.feed(buf, static_cast<std::size_t>(n));
      } else {
        decoder_.feed(buf, static_cast<std::size_t>(n));
      }
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("timed out waiting for a response (" +
                               std::to_string(timeout_ms_) + " ms)");
    }
    throw_errno("recv");
  }
}

WireResponse DesignClient::recv_matching(const std::string& id) {
  auto it = out_of_order_.find(id);
  if (it != out_of_order_.end()) {
    WireResponse response = std::move(it->second);
    out_of_order_.erase(it);
    return response;
  }
  for (;;) {
    WireResponse response = recv_response();
    if (response.id == id) return response;
    out_of_order_[response.id] = std::move(response);
  }
}

std::string DesignClient::next_id() {
  return "c" + std::to_string(++next_seq_);
}

WireResponse DesignClient::query(const serve::DesignQuery& query) {
  for (std::size_t attempt = 0;; ++attempt) {
    const std::string id = next_id();
    send_query(id, query);
    WireResponse response = recv_matching(id);
    // Only `overloaded` is worth waiting out; `draining` means the server
    // is going away and any other status is a real answer.
    if (!response.rejected() || response.reason != "overloaded") {
      return response;
    }
    ++stats_.overloaded_rejections;
    if (attempt >= retry_.max_retries) {
      if (retry_.max_retries > 0) ++stats_.gave_up;
      return response;
    }
    const double ms = retry_backoff_ms(retry_, attempt, response.queue_depth,
                                       jitter_counter_++);
    stats_.backoff_ms_total += ms;
    ++stats_.retries;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

WireResponse DesignClient::stats() {
  const std::string id = next_id();
  send_stats(id);
  return recv_matching(id);
}

}  // namespace metacore::net
