#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "net/protocol.hpp"
#include "robust/json.hpp"
#include "util/stats.hpp"

namespace metacore::net {

namespace {

// epoll user-data tags; connection ids start above the reserved values.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

constexpr std::size_t kLatencyWindow = 8192;
constexpr std::size_t kMaxWorkers = 128;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || value == 0) {
    throw std::invalid_argument(std::string(name) +
                                " must be a positive integer, got '" + env +
                                "'");
  }
  return static_cast<std::size_t>(value);
}

bool env_bool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::string value(env);
  if (value == "0") return false;
  if (value == "1") return true;
  throw std::invalid_argument(std::string(name) + " must be '0' or '1', got '" +
                              value + "'");
}

/// Per-wire-mode response builders: one call site per status, so the
/// admission path reads the same in both modes.
std::string error_envelope(serve::WireEncoding encoding, const std::string& id,
                           const std::string& message) {
  return encoding == serve::WireEncoding::Binary
             ? make_binary_error_response(id, message)
             : make_error_response(id, message);
}

std::string rejected_envelope(serve::WireEncoding encoding,
                              const std::string& id, const std::string& reason,
                              std::size_t queue_depth) {
  return encoding == serve::WireEncoding::Binary
             ? make_binary_rejected_response(id, reason, queue_depth)
             : make_rejected_response(id, reason, queue_depth);
}

std::string stats_envelope(serve::WireEncoding encoding, const std::string& id,
                           const std::string& stats_json) {
  return encoding == serve::WireEncoding::Binary
             ? make_binary_stats_response(id, stats_json)
             : make_stats_response(id, stats_json);
}

std::string design_envelope(serve::WireEncoding encoding, const std::string& id,
                            const std::string& body) {
  return encoding == serve::WireEncoding::Binary
             ? make_binary_design_response(id, body)
             : make_design_response(id, body);
}

}  // namespace

ServerConfig ServerConfig::from_env() {
  ServerConfig config;
  config.max_pending_queries =
      env_size("METACORE_SERVER_QUEUE", config.max_pending_queries);
  config.max_frame_bytes =
      env_size("METACORE_SERVER_MAX_FRAME", config.max_frame_bytes);
  config.search_workers =
      env_size("METACORE_SERVER_WORKERS", config.search_workers);
  if (config.search_workers > kMaxWorkers) {
    throw std::invalid_argument("METACORE_SERVER_WORKERS must be at most " +
                                std::to_string(kMaxWorkers) + ", got " +
                                std::to_string(config.search_workers));
  }
  config.enable_binary = env_bool("METACORE_SERVER_BINARY",
                                  config.enable_binary);
  return config;
}

std::string to_json(const ServerStats& stats) {
  std::ostringstream os;
  os << "{\"accepted_connections\":" << stats.accepted_connections
     << ",\"active_connections\":" << stats.active_connections
     << ",\"queries_received\":" << stats.queries_received
     << ",\"queries_served\":" << stats.queries_served
     << ",\"queries_rejected\":" << stats.queries_rejected
     << ",\"query_errors\":" << stats.query_errors
     << ",\"stats_requests\":" << stats.stats_requests
     << ",\"hello_requests\":" << stats.hello_requests
     << ",\"binary_connections\":" << stats.binary_connections
     << ",\"malformed_frames\":" << stats.malformed_frames
     << ",\"oversized_frames\":" << stats.oversized_frames
     << ",\"dropped_responses\":" << stats.dropped_responses
     << ",\"queue_depth\":" << stats.queue_depth
     << ",\"in_flight\":" << stats.in_flight << ",\"latency_p50_ms\":";
  robust::write_double(os, stats.latency_p50_ms);
  os << ",\"latency_p99_ms\":";
  robust::write_double(os, stats.latency_p99_ms);
  os << ",\"latency_samples\":" << stats.latency_samples
     << ",\"workers\":" << stats.workers
     << ",\"fast_lane_queries\":" << stats.fast_lane_queries
     << ",\"worker_depths\":[";
  for (std::size_t i = 0; i < stats.worker_depths.size(); ++i) {
    if (i > 0) os << ',';
    os << stats.worker_depths[i];
  }
  os << "]}";
  return os.str();
}

struct DesignServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  /// The negotiated wire mode; Json until a hello switches it. Fixed for
  /// the life of the connection once any query/stats request is admitted,
  /// so in-flight completions always frame correctly.
  serve::WireEncoding encoding = serve::WireEncoding::Json;
  /// Decodes the stream after the binary switch (expects the client's
  /// "MCB1" preamble first).
  BinaryFrameDecoder binary_decoder;
  /// A query or stats request was handled; hello is no longer legal.
  bool saw_request = false;
  /// Response frames awaiting the socket; the front one may be partially
  /// written (outbox_offset bytes already sent).
  std::deque<std::string> outbox;
  std::size_t outbox_offset = 0;
  bool epollout_armed = false;

  explicit Connection(std::size_t max_frame_bytes)
      : decoder(max_frame_bytes),
        binary_decoder(max_frame_bytes, /*expect_preamble=*/true) {}
};

struct DesignServer::PendingQuery {
  std::uint64_t conn_id = 0;
  std::string request_id;
  serve::DesignQuery query;
  serve::WireEncoding encoding = serve::WireEncoding::Json;
  std::chrono::steady_clock::time_point arrival;
};

struct DesignServer::Completion {
  std::uint64_t conn_id = 0;
  std::string envelope;
};

/// One dispatch worker: a FIFO queue the I/O thread routes into and a
/// thread draining it batch-at-a-time through submit_batch. All queries
/// on one evaluator fingerprint land on one worker (route_query), so
/// their arrival order — and with it coalescing and byte-exact
/// determinism — survives any worker count.
struct DesignServer::Worker {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<PendingQuery> queue;  ///< guarded by mutex
  std::size_t in_flight = 0;       ///< guarded by mutex
  std::thread thread;
};

DesignServer::DesignServer(std::shared_ptr<serve::DesignService> service,
                           ServerConfig config)
    : service_(std::move(service)), config_(std::move(config)) {
  if (!service_) {
    throw std::invalid_argument("DesignServer requires a DesignService");
  }
  latency_window_.reserve(kLatencyWindow);
}

DesignServer::~DesignServer() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; the sockets are closed regardless.
  }
}

void DesignServer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("DesignServer::start called twice");
  }
  // An abandoned client must never kill the process: without this, the
  // first write to a half-closed socket raises SIGPIPE. Writes also pass
  // MSG_NOSIGNAL, but ignoring process-wide covers every path.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind/listen on " + config_.bind_address + ":" +
                std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("epoll_create1/eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    io_stopped_ = false;
  }
  running_.store(true);
  search_workers_ = config_.search_workers != 0
                        ? std::min(config_.search_workers, kMaxWorkers)
                        : std::max(1u, std::thread::hardware_concurrency());
  // Index search_workers_ is the fast lane for cheap query kinds.
  workers_.clear();
  for (std::size_t w = 0; w < search_workers_ + 1; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &w = *worker] { worker_loop(w); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

void DesignServer::request_shutdown() noexcept {
  draining_.store(true);
  wake_io();
}

void DesignServer::wake_io() noexcept {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; nothing to do on error.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void DesignServer::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  stopped_cv_.wait(lock, [&] { return io_stopped_; });
}

void DesignServer::shutdown() {
  if (!started_.load()) return;
  request_shutdown();
  wait();
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stop_workers_.store(true);
  for (auto& worker : workers_) {
    {
      // Taking the lock orders the store against a worker mid-wait: the
      // notify cannot slip between its predicate check and its sleep.
      std::lock_guard<std::mutex> lock(worker->mutex);
    }
    worker->cv.notify_all();
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  running_.store(false);
}

bool DesignServer::drain_complete() {
  if (total_pending_.load() != 0 || total_in_flight_.load() != 0) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn->outbox.empty()) return false;
  }
  return true;
}

void DesignServer::io_loop() {
  epoll_event events[64];
  bool listener_closed = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  for (;;) {
    const bool draining = draining_.load();
    if (draining && !listener_closed) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_closed = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(config_.drain_flush_timeout_ms);
    }
    if (draining) {
      if (drain_complete()) break;
      // Admitted queries always run to completion, however long they
      // take: the flush timeout clocks only the final phase, where the
      // sole remaining work is clients reading their responses.
      bool work_remaining =
          total_pending_.load() != 0 || total_in_flight_.load() != 0;
      if (!work_remaining) {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        work_remaining = !completions_.empty();
      }
      if (work_remaining) {
        drain_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.drain_flush_timeout_ms);
      } else if (std::chrono::steady_clock::now() >= drain_deadline) {
        // Clients that never read their final responses: force-close and
        // count what they left behind.
        std::size_t abandoned = 0;
        for (const auto& [id, conn] : connections_) {
          abandoned += conn->outbox.size();
        }
        if (abandoned > 0) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.dropped_responses += abandoned;
        }
        break;
      }
    }
    const int timeout_ms = draining ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &counter, sizeof(counter));
        continue;
      }
      if (tag == kListenTag) {
        if (!listener_closed) accept_ready();
        continue;
      }
      auto it = connections_.find(tag);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(tag, "hangup");
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        connection_writable(conn);
        if (connections_.find(tag) == connections_.end()) continue;
      }
      if (events[i].events & EPOLLIN) connection_readable(conn);
    }
    drain_completions();
  }

  // Loop exited: close every socket.
  for (auto& [id, conn] : connections_) {
    ::close(conn->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.active_connections = 0;
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    io_stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void DesignServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = kFirstConnId + next_conn_id_++;
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted_connections;
    stats_.active_connections = connections_.size();
  }
}

void DesignServer::connection_readable(Connection& conn) {
  const std::uint64_t id = conn.id;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (conn.encoding == serve::WireEncoding::Binary) {
        conn.binary_decoder.feed(buf, static_cast<std::size_t>(n));
      } else {
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
      }
      // The mode can flip mid-buffer (a hello followed by binary frames in
      // one read), so re-check the encoding every iteration.
      for (;;) {
        if (conn.encoding == serve::WireEncoding::Binary) {
          auto frame = conn.binary_decoder.next();
          if (!frame) break;
          handle_binary_frame(conn, *frame);
        } else {
          auto frame = conn.decoder.next();
          if (!frame) break;
          handle_frame(conn, *frame);
        }
        // Handling writes the response; a dead socket closes the
        // connection out from under us.
        if (connections_.find(id) == connections_.end()) return;
      }
      continue;
    }
    if (n == 0) {
      close_connection(id, "eof");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(id, "read error");
    return;
  }
}

void DesignServer::connection_writable(Connection& conn) {
  flush_outbox(conn);
}

void DesignServer::handle_frame(Connection& conn, const Frame& frame) {
  if (frame.oversized) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.oversized_frames;
    }
    std::ostringstream msg;
    msg << "frame exceeds the " << config_.max_frame_bytes
        << "-byte limit (" << frame.dropped_bytes
        << " bytes dropped); the request id could not be recovered";
    enqueue_response(conn, make_error_response("", msg.str()));
    return;
  }

  Request request;
  try {
    request = parse_request(frame.payload);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    }
    enqueue_response(
        conn, make_error_response(best_effort_request_id(frame.payload),
                                  e.what()));
    return;
  }

  if (request.kind == RequestKind::Hello) {
    handle_hello(conn, request);
    return;
  }
  admit_request(conn, std::move(request));
}

void DesignServer::handle_binary_frame(Connection& conn,
                                       const BinaryFrame& frame) {
  if (frame.corrupt) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    }
    enqueue_response(
        conn, make_binary_error_response(
                  "", frame.reason + "; the request id could not be recovered"));
    return;
  }

  Request request;
  try {
    request = decode_binary_request(frame.payload);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    }
    enqueue_response(
        conn, make_binary_error_response(
                  best_effort_binary_request_id(frame.payload), e.what()));
    return;
  }
  admit_request(conn, std::move(request));
}

bool DesignServer::handle_hello(Connection& conn, const Request& request) {
  const std::uint64_t id = conn.id;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.hello_requests;
  }
  if (conn.saw_request) {
    enqueue_response(
        conn, make_error_response(
                  request.id,
                  "hello must precede every query on the connection"));
    return connections_.find(id) != connections_.end();
  }
  const bool binary = request.wire == "binary" && config_.enable_binary;
  // The reply is always text (the client is still reading text frames);
  // on a grant the 4-byte stream preamble follows in the same write, and
  // everything after it is binary.
  std::string bytes;
  append_frame(bytes, make_hello_response(request.id,
                                          binary ? "binary" : "text"));
  if (binary) bytes.append(kBinaryPreamble.data(), kBinaryPreamble.size());
  conn.outbox.push_back(std::move(bytes));
  if (!flush_outbox(conn)) return false;
  if (connections_.find(id) == connections_.end()) return false;
  if (binary) {
    conn.encoding = serve::WireEncoding::Binary;
    // Bytes that arrived behind the hello in the same read already sit in
    // the text decoder; they are the start of the binary stream.
    const std::string leftover = conn.decoder.take_buffer();
    conn.binary_decoder.feed(leftover.data(), leftover.size());
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.binary_connections;
  }
  return true;
}

void DesignServer::admit_request(Connection& conn, Request&& request) {
  const serve::WireEncoding encoding = conn.encoding;
  conn.saw_request = true;
  if (request.kind == RequestKind::Stats) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.stats_requests;
    }
    enqueue_response(conn, stats_envelope(encoding, request.id, stats_json()));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries_received;
  }
  // Admission: only the I/O thread admits, so the check-then-admit on the
  // pending total cannot race with itself.
  const std::size_t depth = total_pending_.load();
  const char* reason = nullptr;
  if (draining_.load()) {
    reason = "draining";
  } else if (depth >= config_.max_pending_queries) {
    reason = "overloaded";
  }
  if (reason != nullptr) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.queries_rejected;
    }
    enqueue_response(conn,
                     rejected_envelope(encoding, request.id, reason, depth));
    return;
  }

  const std::size_t route = route_query(request.query);
  if (route == search_workers_) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fast_lane_queries;
  }
  PendingQuery pending;
  pending.conn_id = conn.id;
  pending.request_id = request.id;
  pending.query = std::move(request.query);
  pending.encoding = encoding;
  pending.arrival = std::chrono::steady_clock::now();
  Worker& worker = *workers_[route];
  total_pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.queue.push_back(std::move(pending));
  }
  worker.cv.notify_one();
}

std::size_t DesignServer::route_query(const serve::DesignQuery& query) const {
  // Cheap kinds take the fast lane (the extra worker at the end): an
  // archive probe must never wait behind a cold search.
  if (query.archive_only) return search_workers_;
  std::string fingerprint;
  try {
    fingerprint = serve::query_fingerprint(query);
  } catch (...) {
    // Parseable but unconstructible (the search itself will surface the
    // error): any stable route preserves ordering, use the canonical
    // query bytes.
    fingerprint = serve::to_json(query);
  }
  // Same hash family as the store shards: one fingerprint -> one worker,
  // so same-scope queries keep arrival order at any worker count.
  return serve::shard_index(fingerprint, search_workers_);
}

void DesignServer::enqueue_response(Connection& conn,
                                    const std::string& envelope) {
  std::string framed;
  if (conn.encoding == serve::WireEncoding::Binary) {
    append_binary_frame(framed, envelope);
  } else {
    framed.reserve(envelope.size() + 1);
    append_frame(framed, envelope);
  }
  conn.outbox.push_back(std::move(framed));
  flush_outbox(conn);
}

bool DesignServer::flush_outbox(Connection& conn) {
  while (!conn.outbox.empty()) {
    const std::string& front = conn.outbox.front();
    const ssize_t n =
        ::send(conn.fd, front.data() + conn.outbox_offset,
               front.size() - conn.outbox_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox_offset += static_cast<std::size_t>(n);
      if (conn.outbox_offset == front.size()) {
        conn.outbox.pop_front();
        conn.outbox_offset = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.epollout_armed) {
        conn.epollout_armed = true;
        update_epoll(conn);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET / anything else: the client is gone. Every frame
    // still in the outbox (including the half-written front) is lost.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.dropped_responses += conn.outbox.size();
    }
    close_connection(conn.id, "write error");
    return false;
  }
  if (conn.epollout_armed) {
    conn.epollout_armed = false;
    update_epoll(conn);
  }
  return true;
}

void DesignServer::update_epoll(Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.epollout_armed ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void DesignServer::close_connection(std::uint64_t conn_id, const char*) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  connections_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.active_connections = connections_.size();
}

void DesignServer::drain_completions() {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) {
      // The client disconnected while its query ran: the work still
      // completed (and fed the store/archive); only delivery was lost.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.dropped_responses;
      continue;
    }
    enqueue_response(*it->second, completion.envelope);
  }
}

void DesignServer::worker_loop(Worker& worker) {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(
          lock, [&] { return stop_workers_.load() || !worker.queue.empty(); });
      if (worker.queue.empty()) {
        if (stop_workers_.load()) return;
        continue;
      }
      // Drain everything queued on this worker: one submit_batch per
      // drain, so queries that piled up behind a slow batch are
      // deduplicated, coalesced, and fingerprint-grouped together by the
      // service — exactly the single-dispatcher semantics, per worker.
      batch.reserve(worker.queue.size());
      while (!worker.queue.empty()) {
        batch.push_back(std::move(worker.queue.front()));
        worker.queue.pop_front();
      }
      worker.in_flight = batch.size();
    }
    // in_flight rises before pending falls: the drain check (pending,
    // then in_flight) can never observe the handoff as "all done".
    total_in_flight_.fetch_add(batch.size());
    total_pending_.fetch_sub(batch.size());

    std::vector<serve::DesignService::EncodedQuery> items(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      items[i].query = batch[i].query;
      items[i].encoding = batch[i].encoding;
    }

    std::vector<std::string> envelopes(batch.size());
    std::size_t served = 0;
    std::size_t errors = 0;
    try {
      // The encoded path: the service answers with pre-serialized response
      // bodies (cached when the scope held still), spliced straight into
      // the per-mode envelope — no re-serialization on the hot path.
      const std::vector<std::shared_ptr<const std::string>> bodies =
          service_->submit_batch_encoded(items);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        envelopes[i] =
            design_envelope(batch[i].encoding, batch[i].request_id, *bodies[i]);
      }
      served = batch.size();
    } catch (...) {
      // A poisoned query fails the whole fan-out; isolate it by running
      // the batch sequentially so every other query still gets its
      // answer and only the bad one carries an error envelope.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          envelopes[i] = design_envelope(
              batch[i].encoding, batch[i].request_id,
              *service_->submit_encoded(items[i].query, items[i].encoding));
          ++served;
        } catch (const std::exception& e) {
          envelopes[i] = error_envelope(batch[i].encoding, batch[i].request_id,
                                        e.what());
          ++errors;
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.queries_served += served;
      stats_.query_errors += errors;
      for (const PendingQuery& pending : batch) {
        const double ms =
            std::chrono::duration<double, std::milli>(now - pending.arrival)
                .count();
        if (latency_window_.size() < kLatencyWindow) {
          latency_window_.push_back(ms);
        } else {
          latency_window_[latency_next_ % kLatencyWindow] = ms;
        }
        ++latency_next_;
        ++stats_.latency_samples;
      }
    }
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        completions_.push_back(
            Completion{batch[i].conn_id, std::move(envelopes[i])});
      }
    }
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      worker.in_flight = 0;
    }
    // Completions are queued before in_flight falls, so a drain check
    // that sees zero in flight is guaranteed to see the completions too.
    total_in_flight_.fetch_sub(batch.size());
    wake_io();
  }
}

ServerStats DesignServer::stats() const {
  ServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    if (!latency_window_.empty()) {
      std::vector<double> window = latency_window_;
      snapshot.latency_p50_ms = util::percentile(window, 50.0);
      snapshot.latency_p99_ms = util::percentile(std::move(window), 99.0);
    }
  }
  snapshot.queue_depth = total_pending_.load();
  snapshot.in_flight = total_in_flight_.load();
  snapshot.workers = search_workers_;
  snapshot.worker_depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    snapshot.worker_depths.push_back(worker->queue.size() +
                                     worker->in_flight);
  }
  return snapshot;
}

std::string DesignServer::stats_json() const {
  return "{\"server\":" + to_json(stats()) +
         ",\"service\":" + service_->stats_json() + "}";
}

}  // namespace metacore::net
