// Wire framing for the networked design-query protocol: newline-delimited
// JSON. One frame is one complete JSON document followed by '\n' (an
// optional '\r' before the newline is tolerated and stripped, so the
// protocol is usable from netcat/telnet). Our JSON writers escape control
// characters, so a document can never contain a raw newline — the
// delimiter is unambiguous.
//
// FrameDecoder turns an arbitrary byte stream (partial reads, several
// frames per read, frames split across reads) back into frames, enforcing
// a per-frame byte limit: a line that exceeds the limit is *dropped* but
// the connection survives — the decoder discards until the terminating
// newline and then emits a Frame with `oversized` set so the caller can
// answer with a descriptive error and keep the session alive.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace metacore::net {

/// Default per-frame cap (1 MiB) — far above any real query, far below
/// anything that could be used to balloon server memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

struct Frame {
  /// The frame payload (the line without its terminator). Empty and
  /// meaningless when `oversized` is set.
  std::string payload;
  /// The line exceeded the decoder's limit; `dropped_bytes` of payload
  /// were discarded (the connection stream stays in sync).
  bool oversized = false;
  std::size_t dropped_bytes = 0;
};

/// Appends `payload` to `out` as one wire frame. Throws std::logic_error
/// if the payload contains a raw newline (it would desynchronize the
/// stream; our serializers never produce one).
void append_frame(std::string& out, std::string_view payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffers `size` bytes of stream data.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame, or std::nullopt when more bytes are
  /// needed. Blank lines (empty payload after '\r' stripping) are skipped —
  /// they are keep-alive noise, not frames.
  std::optional<Frame> next();

  /// Bytes currently buffered awaiting a newline (excludes bytes already
  /// discarded from an oversized line in progress).
  std::size_t buffered() const noexcept { return buffer_.size(); }

  std::size_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool discarding_ = false;
  std::size_t discarded_ = 0;
};

}  // namespace metacore::net
