// Wire framing for the networked design-query protocol.
//
// Text mode (the default): newline-delimited JSON. One frame is one
// complete JSON document followed by '\n' (an optional '\r' before the
// newline is tolerated and stripped, so the protocol is usable from
// netcat/telnet). Our JSON writers escape control characters, so a
// document can never contain a raw newline — the delimiter is unambiguous.
//
// FrameDecoder turns an arbitrary byte stream (partial reads, several
// frames per read, frames split across reads) back into frames, enforcing
// a per-frame byte limit: a line that exceeds the limit is *dropped* but
// the connection survives — the decoder discards until the terminating
// newline and then emits a Frame with `oversized` set so the caller can
// answer with a descriptive error and keep the session alive.
//
// Binary mode (negotiated via the "hello" request, see net/protocol.hpp):
// each frame is one robust::frame_record — the journal framing reused on
// the wire:
//
//   '#' <8-hex payload length> '|' <8-hex CRC32C of payload> '|' payload '\n'
//
// The payload is arbitrary bytes (the MCB1 envelope of
// serve/binary_codec.hpp), so unlike text mode the terminating '\n' is a
// sanity check, not the delimiter — the explicit length is. The stream
// opens with the 4-byte preamble "MCB1" (each direction sends it once
// after the mode switch), so a peer that failed to switch is detected on
// the first byte rather than by a silent CRC mismatch.
//
// BinaryFrameDecoder is resilient the same way the journal reader is: a
// frame whose CRC or framing does not check out yields exactly ONE
// BinaryFrame with `corrupt` set, then the decoder resynchronizes —
// silently scanning for the next "\n#" boundary and discarding candidates
// that fail validation — so a single flipped byte costs one error
// response, not the connection.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace metacore::net {

/// Default per-frame cap (1 MiB) — far above any real query, far below
/// anything that could be used to balloon server memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

struct Frame {
  /// The frame payload (the line without its terminator). Empty and
  /// meaningless when `oversized` is set.
  std::string payload;
  /// The line exceeded the decoder's limit; `dropped_bytes` of payload
  /// were discarded (the connection stream stays in sync).
  bool oversized = false;
  std::size_t dropped_bytes = 0;
};

/// Appends `payload` to `out` as one wire frame. Throws std::logic_error
/// if the payload contains a raw newline (it would desynchronize the
/// stream; our serializers never produce one).
void append_frame(std::string& out, std::string_view payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffers `size` bytes of stream data.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame, or std::nullopt when more bytes are
  /// needed. Blank lines (empty payload after '\r' stripping) are skipped —
  /// they are keep-alive noise, not frames.
  std::optional<Frame> next();

  /// Bytes currently buffered awaiting a newline (excludes bytes already
  /// discarded from an oversized line in progress).
  std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Surrenders the buffered-but-undecoded bytes (the buffer is left
  /// empty). Used at the text→binary mode switch: bytes that arrived in
  /// the same read as the hello reply belong to the binary decoder.
  std::string take_buffer();

  std::size_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool discarding_ = false;
  std::size_t discarded_ = 0;
};

/// The 4-byte stream preamble each side sends once after switching to
/// binary mode.
inline constexpr std::string_view kBinaryPreamble = "MCB1";

struct BinaryFrame {
  /// The frame payload (header and terminator stripped, CRC verified).
  /// Empty and meaningless when `corrupt` is set.
  std::string payload;
  /// The frame failed validation (preamble mismatch, broken header, CRC
  /// mismatch, bad terminator, or an over-limit length). Exactly one
  /// corrupt frame is emitted per damaged region; the decoder then
  /// resynchronizes silently.
  bool corrupt = false;
  /// Human-readable cause when `corrupt` is set.
  std::string reason;
};

/// Appends `payload` to `out` as one binary wire frame
/// (robust::frame_record framing; the payload may hold arbitrary bytes).
void append_binary_frame(std::string& out, std::string_view payload);

class BinaryFrameDecoder {
 public:
  explicit BinaryFrameDecoder(
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
      bool expect_preamble = true);

  void feed(const char* data, std::size_t size);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Extracts the next frame (payload or corrupt marker), or std::nullopt
  /// when more bytes are needed. Stray '\n' bytes between frames are
  /// skipped as keep-alive noise.
  std::optional<BinaryFrame> next();

  std::size_t buffered() const noexcept { return buffer_.size(); }
  std::size_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

 private:
  enum class State {
    Preamble,  ///< awaiting the 4-byte "MCB1" stream preamble
    Clean,     ///< at a frame boundary; failures here emit a corrupt frame
    Resync,    ///< scanning for "\n#"; failed candidates are silent
  };

  enum class Head {
    NeedMore,      ///< incomplete frame; buffer untouched
    Frame,         ///< valid frame extracted; buffer consumed past it
    BadSkipFrame,  ///< damaged but length-trusted; whole frame consumed
    BadResync,     ///< length untrustworthy; buffer untouched
  };

  /// Attempts to parse one frame at the buffer head (buffer_[0] is the
  /// candidate '#'). On Frame fills *frame; on Bad* fills *reason.
  Head parse_head(BinaryFrame* frame, std::string* reason);

  std::size_t max_frame_bytes_;
  State state_;
  std::string buffer_;
};

}  // namespace metacore::net
