#include "net/protocol.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "robust/json.hpp"

namespace metacore::net {

namespace {

using robust::JsonValue;

constexpr const char* kWhat = "request";

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Advances past the JSON string whose opening quote is at `i`; returns
/// the index one past the closing quote. Throws on an unterminated string.
std::size_t skip_string(const std::string& s, std::size_t i) {
  ++i;  // opening quote
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
    } else if (s[i] == '"') {
      return i + 1;
    } else {
      ++i;
    }
  }
  throw std::runtime_error("json scan: unterminated string");
}

/// Advances past one JSON value starting at `i` (object, array, string, or
/// bare literal); returns the index one past its last byte.
std::size_t skip_value(const std::string& s, std::size_t i) {
  i = skip_ws(s, i);
  if (i >= s.size()) throw std::runtime_error("json scan: truncated value");
  const char c = s[i];
  if (c == '"') return skip_string(s, i);
  if (c == '{' || c == '[') {
    int depth = 0;
    while (i < s.size()) {
      const char d = s[i];
      if (d == '"') {
        i = skip_string(s, i);
        continue;
      }
      if (d == '{' || d == '[') ++depth;
      if (d == '}' || d == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    throw std::runtime_error("json scan: unbalanced braces");
  }
  // Bare literal (number, true/false/null, inf/nan): runs to the next
  // structural character.
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

}  // namespace

std::string extract_raw_member(const std::string& json,
                               const std::string& key) {
  std::size_t i = skip_ws(json, 0);
  if (i >= json.size() || json[i] != '{') {
    throw std::runtime_error("json scan: document is not an object");
  }
  ++i;
  for (;;) {
    i = skip_ws(json, i);
    if (i < json.size() && json[i] == '}') return "";
    if (i >= json.size() || json[i] != '"') {
      throw std::runtime_error("json scan: expected member key");
    }
    const std::size_t key_start = i + 1;
    i = skip_string(json, i);
    const std::string raw_key =
        json.substr(key_start, i - 1 - key_start);  // raw, escapes kept
    i = skip_ws(json, i);
    if (i >= json.size() || json[i] != ':') {
      throw std::runtime_error("json scan: expected ':' after member key");
    }
    const std::size_t value_start = skip_ws(json, i + 1);
    const std::size_t value_end = skip_value(json, value_start);
    if (raw_key == key) {
      return json.substr(value_start, value_end - value_start);
    }
    i = skip_ws(json, value_end);
    if (i < json.size() && json[i] == ',') {
      ++i;
      continue;
    }
    if (i < json.size() && json[i] == '}') return "";
    throw std::runtime_error("json scan: expected ',' or '}' after member");
  }
}

std::string to_json(const Request& request) {
  std::ostringstream os;
  os << "{\"id\":";
  robust::write_escaped(os, request.id);
  os << ",\"kind\":\""
     << (request.kind == RequestKind::Query
             ? "query"
             : request.kind == RequestKind::Stats ? "stats" : "hello")
     << '"';
  if (request.kind == RequestKind::Query) {
    os << ",\"query\":" << serve::to_json(request.query);
  } else if (request.kind == RequestKind::Hello) {
    os << ",\"wire\":";
    robust::write_escaped(os, request.wire);
  }
  os << '}';
  return os.str();
}

Request parse_request(const std::string& json) {
  const JsonValue doc = robust::parse_json(json, kWhat);
  if (doc.type != JsonValue::Type::Object) {
    throw std::runtime_error(std::string(kWhat) +
                             ": frame must be a JSON object");
  }
  Request request;
  const JsonValue& id = robust::require(doc, "id", JsonValue::Type::String,
                                        kWhat);
  if (id.string.empty()) {
    throw std::runtime_error(std::string(kWhat) +
                             ": 'id' must be a non-empty string");
  }
  if (id.string.size() > kMaxRequestIdBytes) {
    throw std::runtime_error(std::string(kWhat) + ": 'id' exceeds " +
                             std::to_string(kMaxRequestIdBytes) + " bytes");
  }
  request.id = id.string;
  const JsonValue& kind = robust::require(doc, "kind",
                                          JsonValue::Type::String, kWhat);
  if (kind.string == "query") {
    request.kind = RequestKind::Query;
    const JsonValue* query = doc.find("query");
    if (!query || query->type != JsonValue::Type::Object) {
      throw std::runtime_error(
          std::string(kWhat) +
          ": kind \"query\" requires a 'query' object member");
    }
    request.query = serve::parse_design_query(extract_raw_member(json,
                                                                 "query"));
  } else if (kind.string == "stats") {
    request.kind = RequestKind::Stats;
  } else if (kind.string == "hello") {
    request.kind = RequestKind::Hello;
    const JsonValue& wire = robust::require(doc, "wire",
                                            JsonValue::Type::String, kWhat);
    if (wire.string != "text" && wire.string != "binary") {
      throw std::runtime_error(std::string(kWhat) +
                               ": 'wire' must be \"text\" or \"binary\"");
    }
    request.wire = wire.string;
  } else {
    throw std::runtime_error(
        std::string(kWhat) +
        ": 'kind' must be \"query\", \"stats\", or \"hello\"");
  }
  return request;
}

std::string best_effort_request_id(const std::string& json) {
  try {
    const JsonValue doc = robust::parse_json(json, kWhat);
    const JsonValue* id = doc.find("id");
    if (id && id->type == JsonValue::Type::String &&
        !id->string.empty() && id->string.size() <= kMaxRequestIdBytes) {
      return id->string;
    }
  } catch (...) {
    // Unrecoverable frame: the error response carries an empty id.
  }
  return {};
}

namespace {

std::string envelope_prefix(const std::string& id, const char* status) {
  std::ostringstream os;
  os << "{\"id\":";
  robust::write_escaped(os, id);
  os << ",\"status\":\"" << status << '"';
  return os.str();
}

}  // namespace

std::string make_design_response(const std::string& id,
                                 const std::string& response_json) {
  return envelope_prefix(id, "ok") + ",\"response\":" + response_json + "}";
}

std::string make_stats_response(const std::string& id,
                                const std::string& stats_json) {
  return envelope_prefix(id, "ok") + ",\"stats\":" + stats_json + "}";
}

std::string make_rejected_response(const std::string& id,
                                   const std::string& reason,
                                   std::size_t queue_depth) {
  std::ostringstream os;
  os << envelope_prefix(id, "rejected") << ",\"reason\":";
  robust::write_escaped(os, reason);
  os << ",\"queue_depth\":" << queue_depth << '}';
  return os.str();
}

std::string make_error_response(const std::string& id,
                                const std::string& message) {
  std::ostringstream os;
  os << envelope_prefix(id, "error") << ",\"error\":";
  robust::write_escaped(os, message);
  os << '}';
  return os.str();
}

std::string make_hello_response(const std::string& id,
                                const std::string& wire) {
  std::ostringstream os;
  os << envelope_prefix(id, "ok") << ",\"wire\":";
  robust::write_escaped(os, wire);
  os << '}';
  return os.str();
}

WireResponse parse_wire_response(const std::string& json) {
  constexpr const char* what = "response";
  const JsonValue doc = robust::parse_json(json, what);
  if (doc.type != JsonValue::Type::Object) {
    throw std::runtime_error(std::string(what) +
                             ": frame must be a JSON object");
  }
  WireResponse response;
  response.id =
      robust::require(doc, "id", JsonValue::Type::String, what).string;
  response.status =
      robust::require(doc, "status", JsonValue::Type::String, what).string;
  if (response.status != "ok" && response.status != "rejected" &&
      response.status != "error") {
    throw std::runtime_error(std::string(what) + ": unknown status '" +
                             response.status + "'");
  }
  if (const JsonValue* reason = doc.find("reason")) {
    if (reason->type == JsonValue::Type::String) {
      response.reason = reason->string;
    }
  }
  if (const JsonValue* error = doc.find("error")) {
    if (error->type == JsonValue::Type::String) response.reason = error->string;
  }
  if (const JsonValue* depth = doc.find("queue_depth")) {
    if (depth->type == JsonValue::Type::Number && depth->number >= 0) {
      response.queue_depth = static_cast<std::size_t>(depth->number);
    }
  }
  if (const JsonValue* wire = doc.find("wire")) {
    if (wire->type == JsonValue::Type::String) response.wire = wire->string;
  }
  response.response_json = extract_raw_member(json, "response");
  response.stats_json = extract_raw_member(json, "stats");
  return response;
}

namespace {

using serve::bincode::Reader;

constexpr std::uint8_t kBinKindQuery = 0;
constexpr std::uint8_t kBinKindStats = 1;

constexpr std::uint8_t kBinStatusResponse = 0;
constexpr std::uint8_t kBinStatusStats = 1;
constexpr std::uint8_t kBinStatusRejected = 2;
constexpr std::uint8_t kBinStatusError = 3;

/// Shared prefix of every binary envelope: version byte, tag byte, id.
std::string binary_envelope_prefix(std::uint8_t tag, const std::string& id) {
  std::string out;
  serve::bincode::put_u8(out, serve::kBinaryCodecVersion);
  serve::bincode::put_u8(out, tag);
  serve::bincode::put_string(out, id);
  return out;
}

/// Reads and validates the version + tag + id prefix of an envelope.
std::pair<std::uint8_t, std::string> read_binary_prefix(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != serve::kBinaryCodecVersion) {
    r.fail("unsupported binary envelope version " + std::to_string(version));
  }
  const std::uint8_t tag = r.u8();
  std::string id = r.string();
  return {tag, std::move(id)};
}

}  // namespace

std::string encode_binary_request(const Request& request) {
  if (request.kind == RequestKind::Hello) {
    throw std::logic_error("hello is negotiated in text mode only");
  }
  std::string out = binary_envelope_prefix(
      request.kind == RequestKind::Query ? kBinKindQuery : kBinKindStats,
      request.id);
  if (request.kind == RequestKind::Query) {
    out += serve::encode_binary(request.query);
  }
  return out;
}

Request decode_binary_request(std::string_view bytes) {
  Reader r{bytes, "binary request"};
  auto [kind, id] = read_binary_prefix(r);
  if (id.empty()) r.fail("'id' must be a non-empty string");
  if (id.size() > kMaxRequestIdBytes) {
    r.fail("'id' exceeds " + std::to_string(kMaxRequestIdBytes) + " bytes");
  }
  Request request;
  request.id = std::move(id);
  if (kind == kBinKindQuery) {
    request.kind = RequestKind::Query;
    request.query =
        serve::decode_design_query(bytes.substr(r.pos));
  } else if (kind == kBinKindStats) {
    request.kind = RequestKind::Stats;
    if (!r.done()) r.fail("trailing bytes after a stats request");
  } else {
    r.fail("unknown request kind " + std::to_string(kind));
  }
  return request;
}

std::string best_effort_binary_request_id(std::string_view bytes) {
  try {
    Reader r{bytes, "binary request"};
    auto [kind, id] = read_binary_prefix(r);
    (void)kind;
    if (!id.empty() && id.size() <= kMaxRequestIdBytes) return id;
  } catch (...) {
    // Unrecoverable frame: the error response carries an empty id.
  }
  return {};
}

std::string make_binary_design_response(const std::string& id,
                                        std::string_view response_bytes) {
  std::string out = binary_envelope_prefix(kBinStatusResponse, id);
  out.append(response_bytes.data(), response_bytes.size());
  return out;
}

std::string make_binary_stats_response(const std::string& id,
                                       const std::string& stats_json) {
  std::string out = binary_envelope_prefix(kBinStatusStats, id);
  serve::bincode::put_string(out, stats_json);
  return out;
}

std::string make_binary_rejected_response(const std::string& id,
                                          const std::string& reason,
                                          std::size_t queue_depth) {
  std::string out = binary_envelope_prefix(kBinStatusRejected, id);
  serve::bincode::put_string(out, reason);
  serve::bincode::put_varint(out, queue_depth);
  return out;
}

std::string make_binary_error_response(const std::string& id,
                                       const std::string& message) {
  std::string out = binary_envelope_prefix(kBinStatusError, id);
  serve::bincode::put_string(out, message);
  return out;
}

WireResponse parse_binary_wire_response(std::string_view bytes) {
  Reader r{bytes, "binary response"};
  auto [status, id] = read_binary_prefix(r);
  WireResponse response;
  response.id = std::move(id);
  switch (status) {
    case kBinStatusResponse: {
      response.status = "ok";
      const serve::DesignResponse decoded =
          serve::decode_design_response(bytes.substr(r.pos));
      response.response_json = serve::to_json(decoded);
      return response;
    }
    case kBinStatusStats:
      response.status = "ok";
      response.stats_json = r.string();
      break;
    case kBinStatusRejected:
      response.status = "rejected";
      response.reason = r.string();
      response.queue_depth = static_cast<std::size_t>(r.varint());
      break;
    case kBinStatusError:
      response.status = "error";
      response.reason = r.string();
      break;
    default:
      r.fail("unknown response status " + std::to_string(status));
  }
  if (!r.done()) r.fail("trailing bytes after the envelope");
  return response;
}

}  // namespace metacore::net
