// Blocking TCP client for the networked design-query protocol. One
// connection multiplexes any number of in-flight requests: send_query /
// send_stats tag each frame with a caller-chosen id, recv_response returns
// envelopes in server order, and the query()/stats() conveniences pair the
// two (buffering any out-of-order responses so interleaved use is safe).
//
// The raw response JSON is preserved byte-exactly (WireResponse::
// response_json), so a client can compare a networked answer against an
// in-process serve::to_json(DesignService::submit(...)) result — the
// determinism tests and the warm-store smoke do exactly that.
//
// Backpressure cooperation: an overloaded server answers with a
// structured {"status":"rejected","reason":"overloaded","queue_depth":D}
// envelope instead of queueing unboundedly. With a RetryPolicy set
// (max_retries > 0), query() turns that into bounded exponential backoff
// scaled by the server's own queue-depth hint D — the deeper the queue
// the longer the wait — capped and half-jittered from the counter-RNG so
// the schedule is a pure function of (jitter_key, attempt index) and
// tests replay it exactly. "draining" rejections are terminal (the server
// is going away; waiting cannot help) and are returned as-is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace metacore::net {

/// Client-side backoff for structured `overloaded` rejections.
struct RetryPolicy {
  /// Resends after the first rejection; 0 disables retrying entirely
  /// (the default — rejections surface to the caller unchanged).
  std::size_t max_retries = 0;
  double base_ms = 5.0;      ///< backoff scale of the first retry
  double cap_ms = 2000.0;    ///< upper bound before jitter
  /// Queue-depth weighting: the backoff scales by
  /// (1 + depth_weight * queue_depth), so a rejection from a deeply
  /// backed-up server waits proportionally longer.
  double depth_weight = 0.05;
  /// Counter-RNG stream for the jitter (util::CounterRng::at) — two
  /// clients given distinct keys desynchronize; a test fixing the key
  /// gets a bit-reproducible schedule.
  std::uint64_t jitter_key = 0;
};

/// The deterministic backoff before retry `attempt` (0-based), given the
/// `queue_depth` hint the rejection carried:
///   exp = min(cap_ms, base_ms * 2^attempt * (1 + depth_weight * depth))
///   backoff = exp/2 + u * exp/2,  u = CounterRng::at(jitter_key, counter)
/// i.e. exponential growth, depth scaling, a hard cap, and half-jitter —
/// a pure function, so tests can assert the exact schedule.
double retry_backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                        std::size_t queue_depth,
                        std::uint64_t jitter_counter);

/// Per-client traffic counters (single-threaded like the client itself).
/// Lifetime: reset by connect() — each (re)connection starts a fresh
/// window, so retry accounting never bleeds across reconnects — and on
/// demand via reset_stats().
struct ClientStats {
  std::size_t queries_sent = 0;           ///< query frames shipped
  std::size_t overloaded_rejections = 0;  ///< overloaded envelopes seen
  std::size_t retries = 0;                ///< resends after backoff
  std::size_t gave_up = 0;                ///< retry budget exhausted
  double backoff_ms_total = 0.0;          ///< time spent backing off
  std::size_t wire_bytes_sent = 0;        ///< bytes shipped, framing included
  std::size_t wire_bytes_received = 0;    ///< bytes read off the socket
};

class DesignClient {
 public:
  DesignClient() = default;
  ~DesignClient();

  DesignClient(const DesignClient&) = delete;
  DesignClient& operator=(const DesignClient&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name such as
  /// "localhost"). `timeout_ms` bounds connect, and every subsequent
  /// send/receive. Throws std::runtime_error on failure. Resets all
  /// per-connection state: stats, decoder buffers, buffered out-of-order
  /// responses, the id sequence, and the wire mode (back to text).
  void connect(const std::string& host, int port, int timeout_ms = 30000);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Requests the MCB1 binary wire mode (a blocking hello round trip;
  /// must be the first request on the connection). Returns true when the
  /// server granted binary — every subsequent frame in both directions is
  /// binary — and false when it declined (the connection simply stays in
  /// text mode; everything keeps working). Throws on transport errors.
  bool negotiate_binary();

  /// The active wire mode.
  serve::WireEncoding wire() const noexcept { return wire_; }

  /// Multiplexed primitives: frame off one request without waiting.
  void send_query(const std::string& id, const serve::DesignQuery& query);
  void send_stats(const std::string& id);
  /// Ships an arbitrary payload as one TEXT frame — the malformed/garbage-
  /// frame tests use this to poke the server off the happy path.
  void send_raw(const std::string& payload);
  /// Ships bytes verbatim, no framing at all — the binary corruption-fuzz
  /// tests build (and damage) their own frames.
  void send_bytes(const std::string& bytes);

  /// Next response envelope in server order (may belong to any in-flight
  /// id). Throws on timeout or connection loss.
  WireResponse recv_response();

  /// Blocking conveniences: send with an auto-assigned id and wait for the
  /// matching response; envelopes for other ids are buffered for later
  /// recv_matching calls. With a retry policy set, query() retries
  /// `overloaded` rejections with deterministic backoff (see above); the
  /// last rejection is returned once the budget is exhausted.
  WireResponse query(const serve::DesignQuery& query);
  WireResponse stats();

  /// Backoff policy for query(); default-constructed = no retrying.
  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  const ClientStats& client_stats() const noexcept { return stats_; }

  /// Zeroes the traffic counters without touching the connection (the
  /// benches bracket measurement passes with this).
  void reset_stats() noexcept { stats_ = ClientStats{}; }

  /// Waits for the response with this exact id (drawing from the buffer
  /// first, then the socket).
  WireResponse recv_matching(const std::string& id);

  /// A fresh request id unique within this client ("c1", "c2", ...).
  std::string next_id();

  int fd() const noexcept { return fd_; }

 private:
  void send_all(const std::string& bytes);
  /// Frames `payload` as one binary frame (prefixing the one-time "MCB1"
  /// preamble) and ships it.
  void send_binary_frame(const std::string& payload);

  int fd_ = -1;
  int timeout_ms_ = 30000;
  std::uint64_t next_seq_ = 0;
  FrameDecoder decoder_;
  serve::WireEncoding wire_ = serve::WireEncoding::Json;
  BinaryFrameDecoder binary_decoder_;
  bool preamble_sent_ = false;
  std::map<std::string, WireResponse> out_of_order_;
  RetryPolicy retry_{};
  ClientStats stats_{};
  std::uint64_t jitter_counter_ = 0;
};

}  // namespace metacore::net
