// Blocking TCP client for the networked design-query protocol. One
// connection multiplexes any number of in-flight requests: send_query /
// send_stats tag each frame with a caller-chosen id, recv_response returns
// envelopes in server order, and the query()/stats() conveniences pair the
// two (buffering any out-of-order responses so interleaved use is safe).
//
// The raw response JSON is preserved byte-exactly (WireResponse::
// response_json), so a client can compare a networked answer against an
// in-process serve::to_json(DesignService::submit(...)) result — the
// determinism tests and the warm-store smoke do exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace metacore::net {

class DesignClient {
 public:
  DesignClient() = default;
  ~DesignClient();

  DesignClient(const DesignClient&) = delete;
  DesignClient& operator=(const DesignClient&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name such as
  /// "localhost"). `timeout_ms` bounds connect, and every subsequent
  /// send/receive. Throws std::runtime_error on failure.
  void connect(const std::string& host, int port, int timeout_ms = 30000);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Multiplexed primitives: frame off one request without waiting.
  void send_query(const std::string& id, const serve::DesignQuery& query);
  void send_stats(const std::string& id);
  /// Ships an arbitrary payload as one frame — the malformed/garbage-frame
  /// tests use this to poke the server off the happy path.
  void send_raw(const std::string& payload);

  /// Next response envelope in server order (may belong to any in-flight
  /// id). Throws on timeout or connection loss.
  WireResponse recv_response();

  /// Blocking conveniences: send with an auto-assigned id and wait for the
  /// matching response; envelopes for other ids are buffered for later
  /// recv_matching calls.
  WireResponse query(const serve::DesignQuery& query);
  WireResponse stats();

  /// Waits for the response with this exact id (drawing from the buffer
  /// first, then the socket).
  WireResponse recv_matching(const std::string& id);

  /// A fresh request id unique within this client ("c1", "c2", ...).
  std::string next_id();

  int fd() const noexcept { return fd_; }

 private:
  void send_all(const std::string& bytes);

  int fd_ = -1;
  int timeout_ms_ = 30000;
  std::uint64_t next_seq_ = 0;
  FrameDecoder decoder_;
  std::map<std::string, WireResponse> out_of_order_;
};

}  // namespace metacore::net
