// Networked front end for the design-query service: a small epoll-based
// TCP server speaking the newline-delimited JSON protocol of
// net/protocol.hpp.
//
// Threading model (1 + W + 1 threads + the exec pool, no thread per
// connection):
//
//   * One I/O thread owns every socket: non-blocking accept/read/write
//     behind epoll, frame decoding, request parsing, and response writes.
//     It never executes a query — `stats` requests (and malformed-frame
//     errors) are answered inline so they can never queue behind a cold
//     search; `query` requests are admitted into bounded per-worker
//     queues.
//   * W dispatch workers (ServerConfig::search_workers, env
//     METACORE_SERVER_WORKERS, default = hardware concurrency). An
//     admitted search query is routed to worker
//     serve::fingerprint_hash(query_fingerprint(query)) % W — all queries
//     on one evaluator fingerprint land on one worker and keep arrival
//     order (preserving coalescing and byte-exact determinism), while
//     distinct fingerprints dispatch concurrently. Each worker drains its
//     queue in arrival order and hands the drained batch to
//     DesignService::submit_batch — so the in-flight coalescing,
//     per-fingerprint sequencing, and exec-pool fan-out built in PR 3
//     serve network traffic unchanged at any worker count.
//   * One fast-lane worker for cheap query kinds (`archive_only`): an
//     archive probe never queues behind a cold search on another
//     evaluator. (Archive answers reflect whatever searches completed
//     before dispatch, exactly as an in-process submit at that moment
//     would.)
//   * Completed responses flow back to the I/O thread over an
//     eventfd-signalled completion queue; only the I/O thread ever
//     touches a socket.
//
// Backpressure / admission control: the pending queue is bounded
// (ServerConfig::max_pending_queries, env METACORE_SERVER_QUEUE). A query
// arriving while the queue is full gets an immediate structured
// {"status":"rejected","reason":"overloaded"} response — the server never
// queues unboundedly, and a client that keeps pipelining into an
// overloaded server only ever costs one small rejection frame per query.
//
// Graceful drain: shutdown() (or request_shutdown() from a SIGTERM
// handler — it is async-signal-safe) stops accepting, rejects newly
// arriving queries with reason "draining", finishes every admitted query,
// flushes the responses, closes every socket, and returns. The final
// stats snapshot is available afterwards via stats()/stats_json().
//
// Client disconnects are survivable by construction: SIGPIPE is ignored
// process-wide at start() (writes use MSG_NOSIGNAL as well), and a
// response whose connection died before it could be written is counted in
// ServerStats::dropped_responses instead of killing the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "serve/service.hpp"

namespace metacore::net {

struct Request;  // net/protocol.hpp

struct ServerConfig {
  /// Bind address; loopback by default (a deployment fronting real
  /// traffic sets "0.0.0.0" explicitly).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  int port = 0;
  /// Admission quota: queries queued-but-not-yet-dispatched before the
  /// server answers "rejected: overloaded". Env: METACORE_SERVER_QUEUE.
  std::size_t max_pending_queries = 256;
  /// Per-frame read limit; an oversized line is dropped (connection
  /// survives) and answered with a descriptive error.
  /// Env: METACORE_SERVER_MAX_FRAME.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Accepted-connection cap; excess accepts are closed immediately.
  std::size_t max_connections = 1024;
  /// During drain, how long to wait for clients to read their final
  /// responses before force-closing.
  int drain_flush_timeout_ms = 5000;
  /// Dispatch workers for search queries (the fast lane for cheap kinds
  /// is one extra). 0 = hardware concurrency, resolved at start().
  /// Env: METACORE_SERVER_WORKERS (positive; capped at 128).
  std::size_t search_workers = 0;
  /// Whether a client hello asking for the MCB1 binary wire mode is
  /// granted. When false the server answers hello with "wire":"text" and
  /// the connection stays on newline-delimited JSON — the downgrade path
  /// a binary-capable client must survive. Env: METACORE_SERVER_BINARY
  /// ("0"/"1").
  bool enable_binary = true;

  /// Defaults with METACORE_SERVER_QUEUE / METACORE_SERVER_MAX_FRAME /
  /// METACORE_SERVER_WORKERS / METACORE_SERVER_BINARY applied; throws
  /// std::invalid_argument on malformed values.
  static ServerConfig from_env();
};

/// Monotonic counters since start() plus a latency snapshot. Service-level
/// accounting (coalescing, store hits) lives in serve::ServiceStats; the
/// wire `stats` response carries both.
struct ServerStats {
  std::size_t accepted_connections = 0;
  std::size_t active_connections = 0;
  std::size_t queries_received = 0;  ///< well-formed query frames
  std::size_t queries_served = 0;    ///< ok responses queued for write
  std::size_t queries_rejected = 0;  ///< overloaded/draining rejections
  std::size_t query_errors = 0;      ///< queries answered with status error
  std::size_t stats_requests = 0;
  std::size_t hello_requests = 0;    ///< wire-mode negotiation frames
  /// Connections that negotiated the MCB1 binary wire mode (cumulative,
  /// like accepted_connections).
  std::size_t binary_connections = 0;
  std::size_t malformed_frames = 0;  ///< frames failing parse_request
  std::size_t oversized_frames = 0;  ///< frames over max_frame_bytes
  std::size_t dropped_responses = 0; ///< connection died before delivery
  std::size_t queue_depth = 0;       ///< pending queries right now
  std::size_t in_flight = 0;         ///< queries inside submit_batch now
  /// Service latency (admission to response-ready) over a sliding window
  /// of up to 8192 recent queries.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  std::size_t latency_samples = 0;   ///< total latency samples recorded

  // Worker-pool accounting.
  std::size_t workers = 0;           ///< search dispatch workers (fast lane
                                     ///< not included)
  std::size_t fast_lane_queries = 0; ///< queries routed to the fast lane
  /// Queued + running queries per worker right now; the last entry is the
  /// fast lane.
  std::vector<std::size_t> worker_depths;
};

std::string to_json(const ServerStats& stats);

class DesignServer {
 public:
  /// The server shares the service (and through it the store): in-process
  /// submits and networked queries coalesce against each other.
  explicit DesignServer(std::shared_ptr<serve::DesignService> service,
                        ServerConfig config = ServerConfig::from_env());
  ~DesignServer();

  DesignServer(const DesignServer&) = delete;
  DesignServer& operator=(const DesignServer&) = delete;

  /// Binds, listens, and spawns the I/O + dispatch threads. Throws
  /// std::runtime_error on socket/bind failure. Ignores SIGPIPE
  /// process-wide (abandoned clients must never kill the server).
  void start();

  /// The bound TCP port (resolves an ephemeral request); 0 before start().
  int port() const noexcept { return port_; }

  bool running() const noexcept { return running_.load(); }

  /// Initiates graceful drain and blocks until the server is fully
  /// stopped: listener closed, admitted queries answered, responses
  /// flushed, sockets closed, threads joined. Idempotent.
  void shutdown();

  /// Async-signal-safe drain trigger (write(2) on an eventfd): safe to
  /// call from a SIGTERM/SIGINT handler. The caller still runs
  /// shutdown() (or wait() then shutdown()) to join the threads.
  void request_shutdown() noexcept;

  /// Blocks until the event loop has exited (drain complete or never
  /// started).
  void wait();

  ServerStats stats() const;

  /// The combined wire-format stats document:
  /// {"server":{...ServerStats...},"service":{...ServiceStats + store...}}.
  std::string stats_json() const;

 private:
  struct Connection;
  struct PendingQuery;
  struct Completion;
  struct Worker;

  void io_loop();
  void worker_loop(Worker& worker);
  /// Worker index for an admitted query: fingerprint-hash routing for
  /// searches, the fast lane (last worker) for archive_only.
  std::size_t route_query(const serve::DesignQuery& query) const;
  void accept_ready();
  void connection_readable(Connection& conn);
  void connection_writable(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  void handle_binary_frame(Connection& conn, const BinaryFrame& frame);
  /// Wire-mode negotiation (text-only; must precede any query/stats).
  /// Returns false when the connection died mid-reply.
  bool handle_hello(Connection& conn, const Request& request);
  /// Mode-independent request handling: stats answered inline, queries
  /// admitted (or rejected) into the worker queues.
  void admit_request(Connection& conn, Request&& request);
  void enqueue_response(Connection& conn, const std::string& envelope);
  /// Flushes as much of the outbox as the socket accepts; closes the
  /// connection on a write error. Returns false when the connection died.
  bool flush_outbox(Connection& conn);
  void close_connection(std::uint64_t conn_id, const char* why);
  void drain_completions();
  void update_epoll(Connection& conn);
  void wake_io() noexcept;
  bool drain_complete();

  std::shared_ptr<serve::DesignService> service_;
  ServerConfig config_;
  int port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread io_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  bool shutdown_done_ = false;
  std::mutex lifecycle_mutex_;
  std::condition_variable stopped_cv_;
  bool io_stopped_ = true;

  // Owned exclusively by the I/O thread after start().
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;

  // Dispatch worker pool: the I/O thread produces into per-worker queues
  // (routed by fingerprint hash; last worker is the fast lane), each
  // worker consumes its own. search_workers_ is resolved at start().
  std::size_t search_workers_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_workers_{false};
  /// Admitted-but-not-yet-dispatched queries across all workers (the
  /// admission quota and the queue_depth stat/backpressure hint).
  std::atomic<std::size_t> total_pending_{0};
  /// Queries inside some worker's submit_batch right now. Workers raise
  /// this before lowering total_pending_ and push completions before
  /// lowering it, so drain_complete() (pending -> in_flight ->
  /// completions -> outboxes) can never observe a false "all done".
  std::atomic<std::size_t> total_in_flight_{0};

  // Completion queue: workers produce, I/O thread consumes.
  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  std::vector<double> latency_window_;  ///< ring buffer, newest overwrites
  std::size_t latency_next_ = 0;
};

}  // namespace metacore::net
