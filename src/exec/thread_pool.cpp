#include "exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace metacore::exec {

namespace {

thread_local bool tls_on_worker = false;

std::size_t env_threads() {
  if (const char* env = std::getenv("METACORE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// One parallel_for invocation. Shared ownership: helper tasks queued on the
/// pool keep the batch alive even if they only run (and find the cursor
/// exhausted) after the caller has long returned — so a late helper never
/// touches pool state that a newer batch is mutating.
struct Batch {
  const std::function<void(std::size_t)>* fn;  // owned by the caller's frame
  std::size_t size = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t finished = 0;
  std::exception_ptr first_error;

  /// Claims indices off the shared cursor until exhausted. The caller's
  /// `fn` reference stays valid while any index remains unclaimed, because
  /// the caller cannot observe finished == size before that.
  void work() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= size) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (++finished == size) done.notify_all();
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;
  bool shutdown = false;
  /// Pending helper tasks (at most threads-1 per in-flight batch). Helpers
  /// accelerate a batch; the issuing thread alone always drives its batch
  /// to completion, so dropping queued helpers at shutdown is harmless.
  std::deque<std::shared_ptr<Batch>> queue;
  std::vector<std::thread> workers;

  void worker_loop() {
    tls_on_worker = true;
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      wake.wait(lock, [&] { return shutdown || !queue.empty(); });
      if (shutdown) return;
      const std::shared_ptr<Batch> batch = std::move(queue.front());
      queue.pop_front();
      lock.unlock();
      batch->work();
      lock.lock();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), threads_(threads ? threads : 1) {
  impl_->workers.reserve(threads_ - 1);
  for (std::size_t i = 1; i < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial pool, tiny batch, or a nested call from inside a work item:
  // execute inline — but with the same drain-then-rethrow contract as the
  // threaded path, so a throwing item never abandons its queued siblings
  // (callers like parallel_map_collect rely on every index running).
  if (threads_ == 1 || n == 1 || tls_on_worker) {
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->size = n;
  const std::size_t helpers = std::min(threads_ - 1, n - 1);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::size_t i = 0; i < helpers; ++i) impl_->queue.push_back(batch);
  }
  if (helpers == 1) {
    impl_->wake.notify_one();
  } else {
    impl_->wake.notify_all();
  }

  // The caller works its own batch too; flag it as a worker so nested
  // parallel_for calls from its own slice run inline like everyone else's.
  tls_on_worker = true;
  batch->work();
  tls_on_worker = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&] { return batch->finished == batch->size; });
    error = batch->first_error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(configured_threads());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(threads ? threads : 1);
}

std::size_t ThreadPool::configured_threads() { return env_threads(); }

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace metacore::exec
