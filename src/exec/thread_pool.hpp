// Reusable parallel execution layer for the cost-evaluation hot paths:
// a fixed-size thread pool with parallel_for / parallel_map fan-out.
//
// Design constraints (shared by every user in the repository):
//  * Determinism: the pool never decides *what* work happens or in what
//    order results are merged — callers fan out index-addressed work and
//    reduce in index order, so results are bit-identical at any thread
//    count. The pool only decides *when* each index runs.
//  * Nesting: work items may themselves call parallel_for (e.g. a parallel
//    grid evaluation whose evaluator runs a sharded BER simulation). Inner
//    calls issued from a pool worker execute inline serially, which avoids
//    deadlock without oversubscribing.
//  * Exceptions: every index of a batch always runs — a throwing item never
//    abandons its queued siblings. parallel_for / parallel_map drain the
//    whole batch, then rethrow the first work-item exception on the calling
//    thread; parallel_map_collect instead returns a per-item Outcome so the
//    caller can treat failed items as data (the robust evaluation layer
//    builds on this).
//
// The global pool is sized from the METACORE_THREADS environment variable
// (falling back to std::thread::hardware_concurrency). METACORE_THREADS=1
// disables worker threads entirely: every batch runs serially on the
// caller, byte-for-byte identical to the pre-parallel code path.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <vector>

namespace metacore::exec {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread always participates
  /// in batches, so `threads == 1` spawns none). `threads == 0` is treated
  /// as 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the caller thread.
  std::size_t size() const noexcept { return threads_; }

  /// Runs fn(0) ... fn(n-1), distributing indices across the pool. Blocks
  /// until all complete; rethrows the first work-item exception. Empty
  /// batches return immediately. Runs inline when the pool is serial, the
  /// batch is a single item, or the caller is itself a pool worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, created on first use. Honors METACORE_THREADS.
  static ThreadPool& global();

  /// Re-sizes the global pool (tests and benchmarks that compare thread
  /// counts). Not safe to call while another thread is inside a batch.
  static void set_global_threads(std::size_t threads);

  /// Thread count METACORE_THREADS / hardware_concurrency resolves to.
  static std::size_t configured_threads();

  /// True on a thread currently executing pool work (nested-call guard).
  static bool on_worker_thread() noexcept;

 private:
  struct Impl;
  Impl* impl_;
  std::size_t threads_;
};

/// parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Maps `fn` over `items` on the global pool; results keep item order.
/// `fn` must be callable concurrently from multiple threads.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn)
    -> std::vector<decltype(fn(items[0]))> {
  std::vector<decltype(fn(items[0]))> out(items.size());
  parallel_for(items.size(),
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// Success-or-error result of one item in a parallel_map_collect batch
/// (std::expected stand-in until C++23): exactly one of `value` / `error`
/// is set.
template <typename T>
struct Outcome {
  std::optional<T> value;
  std::exception_ptr error;

  bool ok() const noexcept { return value.has_value(); }
  /// Rethrows the stored error; only meaningful when !ok().
  [[noreturn]] void rethrow() const { std::rethrow_exception(error); }
};

/// Like parallel_map, but drains the whole batch unconditionally and
/// returns a per-item Outcome instead of rethrowing the first exception —
/// one failed item costs that item alone, never its in-flight siblings.
/// Results keep item order.
template <typename T, typename F>
auto parallel_map_collect(const std::vector<T>& items, F&& fn)
    -> std::vector<Outcome<decltype(fn(items[0]))>> {
  std::vector<Outcome<decltype(fn(items[0]))>> out(items.size());
  parallel_for(items.size(), [&](std::size_t i) {
    try {
      out[i].value.emplace(fn(items[i]));
    } catch (...) {
      out[i].error = std::current_exception();
    }
  });
  return out;
}

}  // namespace metacore::exec
