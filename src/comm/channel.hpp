// BPSK modulation over an additive white Gaussian noise channel — the
// "software simulation" substrate behind every BER figure in the paper
// (Figures 1 and 8). Fully deterministic given a seed.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace metacore::comm {

/// Antipodal BPSK: bit 0 -> -amplitude, bit 1 -> +amplitude.
class BpskModulator {
 public:
  explicit BpskModulator(double amplitude = 1.0) : amplitude_(amplitude) {}

  double modulate(int bit) const { return bit ? amplitude_ : -amplitude_; }

  std::vector<double> modulate(std::span<const int> bits) const;

  double amplitude() const { return amplitude_; }

 private:
  double amplitude_;
};

/// AWGN channel parameterized by Es/N0 (energy per *channel symbol* to noise
/// density). The paper sweeps Es/N0 directly on its BER axes, so the channel
/// is configured the same way. With unit-energy BPSK symbols the per-sample
/// noise is N(0, N0/2) with N0 = Es / (Es/N0).
class AwgnChannel {
 public:
  AwgnChannel(double esn0_db, double symbol_energy = 1.0,
              std::uint64_t seed = 1);

  double transmit(double symbol);
  std::vector<double> transmit(std::span<const double> symbols);

  /// Standard deviation of the additive noise.
  double noise_sigma() const { return sigma_; }
  double esn0_db() const { return esn0_db_; }
  double esn0_linear() const { return esn0_linear_; }

 private:
  double esn0_db_;
  double esn0_linear_;
  double sigma_;
  util::Random rng_;
};

}  // namespace metacore::comm
