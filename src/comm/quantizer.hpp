// Channel-symbol quantization (the Q, R1, R2 degrees of freedom in Table 2
// of the paper). Three methods are modeled, mirroring Section 3.2 and the
// AHA application note [Aha95] the paper builds on:
//
//  * Hard      — 1-bit sign slicing, regardless of the configured width.
//  * FixedSoft — b-bit uniform quantizer whose step is fixed from the
//                nominal signal amplitude (no knowledge of the noise).
//  * AdaptiveSoft — b-bit uniform quantizer whose decision level D is
//                derived from the measured Es/N0 (i.e. the noise sigma),
//                the scheme of Figure 4 in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace metacore::comm {

enum class QuantizationMethod : std::uint8_t { Hard, FixedSoft, AdaptiveSoft };

std::string to_string(QuantizationMethod method);

class Quantizer {
 public:
  /// `bits` is the output resolution (1..8). For Hard the resolution is
  /// forced to 1. `amplitude` is the nominal BPSK amplitude; `noise_sigma`
  /// is used only by AdaptiveSoft to place the decision level.
  Quantizer(QuantizationMethod method, int bits, double amplitude,
            double noise_sigma);

  /// Maps a received sample to an integer level in [0, levels()-1]; level 0
  /// is "most confidently bit 0", the top level "most confidently bit 1".
  int quantize(double rx) const;

  /// Batch form: quantizes rx[i] into out[i] for every sample in one
  /// branchless, vectorizable pass through the dispatched SIMD kernel
  /// (comm/simd/acs_kernel.hpp). Bit-identical to calling quantize() per
  /// sample; `out` must be at least as large as `rx`. The decoders and the
  /// sequential decoder quantize whole chunks through this instead of one
  /// per-symbol call per step.
  void quantize_block(std::span<const double> rx, std::span<int> out) const;

  int bits() const { return bits_; }
  int levels() const { return 1 << bits_; }
  /// Largest per-symbol branch-metric contribution, = levels()-1.
  int max_level() const { return levels() - 1; }
  QuantizationMethod method() const { return method_; }

  /// Distance-to-expected-symbol metric contribution: the integer soft
  /// metric is the distance from the quantized level to the level a
  /// noiseless transmission of `expected_bit` would produce.
  int branch_metric(int level, int expected_bit) const {
    return expected_bit ? (max_level() - level) : level;
  }

  /// Precomputed branch-metric row for one expected bit, indexed by
  /// quantized level — the `level x expected_bit` lookup table the decoder
  /// kernels read so their inner loops are pure table-lookup ACS.
  /// metric_table(b)[level] == branch_metric(level, b) for every level.
  std::span<const int> metric_table(int expected_bit) const {
    const std::size_t levels_count = static_cast<std::size_t>(levels());
    return std::span<const int>(metric_table_)
        .subspan(expected_bit ? levels_count : 0, levels_count);
  }

  /// Decision step between adjacent quantizer thresholds.
  double step() const { return step_; }

 private:
  QuantizationMethod method_;
  int bits_;
  double step_;
  double offset_;  ///< rx is shifted by this before dividing by step_
  /// Flattened metric table: [expected_bit * levels() + level].
  std::vector<int> metric_table_;
};

/// The decision-level constant for adaptive quantization: D = kD * sigma.
/// [Aha95] recommends spacing thresholds roughly half a noise deviation
/// apart for 3-bit quantization; we expose the constant for tests/ablation.
inline constexpr double kAdaptiveDecisionFactor = 0.5;

}  // namespace metacore::comm
