// The paper's primary algorithmic contribution (Section 3.3): the
// multiresolution Viterbi decoder. The trellis is updated with cheap
// low-resolution (R1-bit) branch metrics; after each step, the M most
// promising states have their winning branch metrics *recomputed* at high
// resolution (R2 bits), with a correction term — the average difference
// between high- and low-resolution metrics over the N best branches — added
// to keep accumulated errors normalized across states.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "comm/quantizer.hpp"
#include "comm/simd/acs_kernel.hpp"
#include "comm/trellis.hpp"
#include "comm/viterbi.hpp"

namespace metacore::comm {

namespace detail {
/// Double path-metric constants shared by the single-frame multiresolution
/// decoder (multires_viterbi.cpp) and the frame-parallel one
/// (frame_decode.cpp); both must use the exact same values for per-lane
/// bit-identity.
inline constexpr double kMultiresUnreachable = 1e15;
inline constexpr double kMultiresNormalizeThreshold = 1e12;
}  // namespace detail

/// Normalization policy for the multiresolution correction term (the N
/// parameter of Table 2). N = 1 uses only the single best branch; larger N
/// averages over the N best recomputed branches, which the paper reports as
/// an improvement.
struct MultiresConfig {
  int traceback_depth = 15;     ///< L
  int low_res_bits = 1;         ///< R1
  int high_res_bits = 3;        ///< R2
  QuantizationMethod method = QuantizationMethod::AdaptiveSoft;  ///< Q
  int num_high_res_paths = 4;   ///< M, in [1, 2^(K-1)]
  int normalization_terms = 1;  ///< N, in [1, M]

  void validate(int num_states) const;
};

class MultiresViterbiDecoder final : public Decoder {
 public:
  MultiresViterbiDecoder(const Trellis& trellis, const MultiresConfig& config,
                         double amplitude, double noise_sigma);

  std::optional<int> step(std::span<const double> rx) override;
  /// Batched kernel: one virtual call per chunk, whole-chunk batch
  /// quantization at both resolutions, the low-resolution ACS core routed
  /// through the dispatched state-parallel SIMD kernel (the O(M) high-res
  /// refinement stays scalar), and a single fused scan for the
  /// renormalization floor and the traceback start state. Bit-identical to
  /// the step() loop on every ISA tier.
  std::size_t decode_block(std::span<const double> rx,
                           std::span<int> out) override;
  std::vector<int> flush() override;
  void reset() override;
  const Trellis& trellis() const override { return *trellis_; }

  const MultiresConfig& config() const { return config_; }
  const Quantizer& low_res_quantizer() const { return low_; }
  const Quantizer& high_res_quantizer() const { return high_; }

  /// Accumulated errors, in high-resolution-equivalent units.
  std::span<const double> accumulated_errors() const { return acc_; }
  std::uint32_t best_state() const;

  /// Metric renormalizations performed since construction/reset.
  std::int64_t normalizations() const { return normalizations_; }
  /// Test hook mirroring ViterbiDecoder's: lowers the renormalization
  /// threshold so long-stream equivalence tests can exercise the renorm
  /// path cheaply.
  void set_normalize_threshold_for_test(double threshold) {
    norm_threshold_ = threshold;
  }

  /// Test hook: the full survivor window, compared byte for byte across
  /// ISA tiers by the dispatch-matrix equivalence test.
  std::span<const std::uint8_t> survivor_window_for_test() const {
    return survivors_;
  }

 private:
  int high_branch_metric(std::uint32_t expected_symbols,
                         const int* levels) const;
  void fill_scaled_low_metric_table(const int* levels);
  /// Phases 1+2 of one trellis step on pre-quantized symbols (high-res
  /// levels via `high_levels`, phase-1 ACS through `acs`, resolved once per
  /// chunk by the callers); returns the traceback start state (argmin of
  /// the updated accumulated errors).
  std::uint32_t advance_one_step(const int* high_levels,
                                 simd::MultiresAcsFn acs);
  int traceback_bit_from(std::uint32_t state) const;

  const Trellis* trellis_;
  MultiresConfig config_;
  Quantizer low_;
  Quantizer high_;
  /// Per-symbol scale mapping low-resolution metric units onto the
  /// high-resolution metric range, so mixed-resolution accumulations stay
  /// comparable.
  double scale_;

  std::vector<double> acc_;
  std::vector<double> next_acc_;
  /// Flat circular survivor store: entry (t % L) * num_states + state.
  std::vector<std::uint8_t> survivors_;
  std::vector<int> quantized_low_;
  std::vector<int> quantized_high_;
  std::vector<int> block_levels_low_;   ///< scratch: whole-chunk low levels
  std::vector<int> block_levels_high_;  ///< scratch: whole-chunk high levels
  /// Scratch, per symbol pattern: low-resolution branch metric already
  /// multiplied by scale_ (the SIMD ACS kernel consumes pure adds, which
  /// keeps every tier bit-identical — no fusable multiply in the loop).
  std::vector<double> scaled_low_metric_by_pattern_;
  /// Per-state scaled low-res metric of the surviving branch (phase 2's
  /// correction term subtracts it from the high-res recompute).
  std::vector<double> winning_scaled_metric_;
  std::vector<std::uint32_t> order_;     ///< scratch for best-M selection
  std::vector<double> high_metrics_;     ///< scratch for phase-2 recompute
  std::int64_t steps_ = 0;
  double norm_threshold_;
  std::int64_t normalizations_ = 0;
};

/// Factory mirroring make_hard_decoder / make_soft_decoder.
std::unique_ptr<Decoder> make_multires_decoder(const Trellis& trellis,
                                               const MultiresConfig& config,
                                               double amplitude,
                                               double noise_sigma);

}  // namespace metacore::comm
