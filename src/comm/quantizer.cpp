#include "comm/quantizer.hpp"

#include <stdexcept>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm {

std::string to_string(QuantizationMethod method) {
  switch (method) {
    case QuantizationMethod::Hard:
      return "hard";
    case QuantizationMethod::FixedSoft:
      return "fixed";
    case QuantizationMethod::AdaptiveSoft:
      return "adaptive";
  }
  return "?";
}

Quantizer::Quantizer(QuantizationMethod method, int bits, double amplitude,
                     double noise_sigma)
    : method_(method), bits_(method == QuantizationMethod::Hard ? 1 : bits) {
  if (bits_ < 1 || bits_ > 8) {
    throw std::invalid_argument("Quantizer: bits must be in [1, 8]");
  }
  if (amplitude <= 0.0) {
    throw std::invalid_argument("Quantizer: amplitude must be positive");
  }
  const int num_levels = 1 << bits_;
  switch (method_) {
    case QuantizationMethod::Hard:
    case QuantizationMethod::FixedSoft:
      // Uniform over the nominal signal swing [-A, +A].
      step_ = 2.0 * amplitude / num_levels;
      offset_ = -amplitude;
      break;
    case QuantizationMethod::AdaptiveSoft:
      // Thresholds spaced D = kD * sigma apart, centered on zero (Figure 4).
      if (noise_sigma <= 0.0) {
        throw std::invalid_argument(
            "Quantizer: adaptive quantization needs a positive noise sigma");
      }
      step_ = kAdaptiveDecisionFactor * noise_sigma;
      offset_ = -step_ * (num_levels / 2);
      break;
  }

  metric_table_.resize(static_cast<std::size_t>(num_levels) * 2);
  for (int expected = 0; expected < 2; ++expected) {
    for (int level = 0; level < num_levels; ++level) {
      metric_table_[static_cast<std::size_t>(expected * num_levels + level)] =
          branch_metric(level, expected);
    }
  }
}

int Quantizer::quantize(double rx) const {
  // Branchless level search, clamped in the double domain before the
  // conversion so the mapping is defined for any finite input (truncation
  // equals floor once non-negative). This is exactly the scalar SIMD
  // kernel's computation — quantize() and quantize_block() are bit-identical
  // by construction.
  const double top = static_cast<double>(max_level());
  const double scaled = (rx - offset_) / step_;
  double clamped = scaled < top ? scaled : top;
  clamped = clamped > 0.0 ? clamped : 0.0;
  return static_cast<int>(clamped);
}

void Quantizer::quantize_block(std::span<const double> rx,
                               std::span<int> out) const {
  if (out.size() < rx.size()) {
    throw std::invalid_argument(
        "Quantizer::quantize_block: output span smaller than input");
  }
  simd::quantize_block()(rx.data(), out.data(), rx.size(), step_, offset_,
                         max_level());
}

}  // namespace metacore::comm
