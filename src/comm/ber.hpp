// Monte-Carlo bit-error-rate measurement: the "software simulation" arm of
// the paper's cost evaluation engine. Runs random data through
// encode -> BPSK -> AWGN -> decode and counts disagreements, with optional
// early termination once enough errors have been observed and Wilson
// confidence intervals on the estimate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/convolutional.hpp"
#include "comm/frame_decode.hpp"
#include "comm/multires_viterbi.hpp"
#include "comm/trellis.hpp"
#include "comm/viterbi.hpp"
#include "util/stats.hpp"

namespace metacore::comm {

/// The decoder taxonomy of the paper: pure hard decision, pure soft
/// decision (R2-bit), or multiresolution (R1-bit update, R2-bit refinement
/// of M paths).
enum class DecoderKind : std::uint8_t { Hard, Soft, Multires };

std::string to_string(DecoderKind kind);

/// Full specification of one decoder instance — the 8 parameters of the
/// paper's Table 2 plus the channel amplitude convention.
struct DecoderSpec {
  CodeSpec code;                 // K and G
  int traceback_depth = 15;      // L
  DecoderKind kind = DecoderKind::Hard;
  int low_res_bits = 1;          // R1 (multires only)
  int high_res_bits = 3;         // R2 (soft and multires)
  QuantizationMethod quantization = QuantizationMethod::AdaptiveSoft;  // Q
  int normalization_terms = 1;   // N (multires only)
  int num_high_res_paths = 1;    // M (multires only)

  /// Builds a decoder for the given channel conditions. The adaptive
  /// quantizer needs the true noise sigma, mirroring the paper's Es/N0-
  /// derived decision level D (Figure 4).
  std::unique_ptr<Decoder> make_decoder(const Trellis& trellis,
                                        double amplitude,
                                        double noise_sigma) const;

  /// Builds the frame-parallel counterpart: a lock-step decoder over
  /// `lanes` independent frames, each lane bit-identical to the decoder
  /// make_decoder would build (see comm/frame_decode.hpp). `lanes == 0`
  /// resolves via default_frame_lanes().
  std::unique_ptr<FrameDecoder> make_frame_decoder(const Trellis& trellis,
                                                   double amplitude,
                                                   double noise_sigma,
                                                   std::size_t lanes) const;

  std::string label() const;
};

/// Batch decode of independent frames through the frame-parallel SIMD
/// path. `frames[i]` holds raw channel samples (a multiple of
/// symbols_per_step); the result is exactly
/// `spec.make_decoder(trellis, amplitude, noise_sigma)->decode(frames[i])`
/// for every frame — block bits plus the flush tail, in input order —
/// regardless of `lanes` (0 = default_frame_lanes()). Ragged lengths are
/// handled by grouping similar-length frames into lane groups and
/// capturing each frame's flush at the step its samples end.
std::vector<std::vector<int>> decode_frames(
    const DecoderSpec& spec, const Trellis& trellis, double amplitude,
    double noise_sigma, std::span<const std::span<const double>> frames,
    std::size_t lanes = 0);

struct BerRunConfig {
  std::uint64_t max_bits = 200'000;   ///< simulation length cap per point
  std::uint64_t max_errors = 2'000;   ///< stop early once this many errors seen
  std::uint64_t min_bits = 10'000;    ///< never stop before this many bits
  std::uint64_t seed = 0xC0FFEE;      ///< base RNG seed
  /// Sequential decision test: when nonzero, the run also stops as soon as
  /// the Wilson 95% interval confidently separates from this threshold
  /// (upper bound < threshold/1.5 -> confident pass; lower bound >
  /// 1.5*threshold -> confident fail). Decision-directed runs finish in a
  /// fraction of max_bits on clear points; only borderline candidates pay
  /// the full budget. The resulting point estimate is mildly biased by the
  /// stopping rule — use it against thresholds, not as a curve sample.
  double decision_ber = 0.0;
  /// Number of independent simulation streams the run is split into. Each
  /// shard gets its own counter-based RNG stream (util::substream_key) and
  /// a 1/shards slice of the bit/error budgets; shards fan out across the
  /// exec thread pool and reduce in shard order, so the measurement is
  /// bit-identical for a given shard count regardless of thread count (and
  /// `shards = 1` reproduces the historical single-stream measurement
  /// exactly). Early-stopping rules apply per shard.
  int shards = 1;
  /// Upper bound on how many shards share one frame-parallel decoder (the
  /// SIMD lane axis; see comm/frame_decode.hpp). 0 = auto
  /// (default_frame_lanes(), i.e. the dispatched ISA's vector width or the
  /// METACORE_LANES override); 1 forces the degenerate one-stream-per-
  /// decoder path. Shards are grouped to fill the thread pool first and
  /// the lanes second (frames x threads x lanes), and because every lane
  /// is bit-identical to a standalone decoder, this knob NEVER changes the
  /// measurement — only its throughput.
  int lanes = 0;
};

struct BerPoint {
  double esn0_db = 0.0;
  util::ProportionEstimate errors;  ///< bit errors over decoded bits
  double ber() const { return errors.rate(); }
};

/// Measures BER for one decoder spec at one channel point.
BerPoint measure_ber(const DecoderSpec& spec, double esn0_db,
                     const BerRunConfig& config);

/// Measures a whole BER-vs-Es/N0 curve (one Figure-1/Figure-8 series).
std::vector<BerPoint> measure_ber_curve(const DecoderSpec& spec,
                                        const std::vector<double>& esn0_db_points,
                                        const BerRunConfig& config);

/// Process-wide count of decoded-and-counted bits across every measure_ber
/// stream since startup (monotone; thread-safe). Benchmark harnesses diff
/// it around a timed region to report decode throughput, e.g. the
/// decoded_bits_per_second field in BENCH_search.json.
///
/// Ordering guarantee: the counter uses relaxed atomics — it is a
/// statistics counter, never a synchronization point, so reads impose no
/// memory-ordering cost on the decode hot path. A diff taken around a
/// region whose worker threads have been joined (as the search benchmarks
/// do: measure_ber only returns after its shard tasks complete, and the
/// thread pool's task-completion handshake is an acquire/release edge) is
/// exact — every increment from inside the region is visible, and none can
/// leak in from outside it. Concurrent readers see a monotone,
/// possibly-stale value.
std::uint64_t ber_decoded_bits_total();

}  // namespace metacore::comm
