#include "comm/burst_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace metacore::comm {

void GilbertElliottParams::validate() const {
  if (p_good_to_bad <= 0.0 || p_good_to_bad >= 1.0 || p_bad_to_good <= 0.0 ||
      p_bad_to_good >= 1.0) {
    throw std::invalid_argument(
        "GilbertElliottParams: transition probabilities must be in (0, 1)");
  }
  if (bad_esn0_db >= good_esn0_db) {
    throw std::invalid_argument(
        "GilbertElliottParams: the bad state must be worse than the good one");
  }
}

namespace {
double sigma_for(double esn0_db, double symbol_energy) {
  const double n0 = symbol_energy / util::db_to_linear(esn0_db);
  return std::sqrt(n0 / 2.0);
}
}  // namespace

GilbertElliottChannel::GilbertElliottChannel(GilbertElliottParams params,
                                             double symbol_energy,
                                             std::uint64_t seed)
    : params_(params),
      sigma_good_(sigma_for(params.good_esn0_db, symbol_energy)),
      sigma_bad_(sigma_for(params.bad_esn0_db, symbol_energy)),
      rng_(seed) {
  params_.validate();
  if (symbol_energy <= 0.0) {
    throw std::invalid_argument(
        "GilbertElliottChannel: symbol energy must be positive");
  }
}

double GilbertElliottChannel::transmit(double symbol) {
  // State transition first, then emission from the current state.
  const double p = bad_ ? params_.p_bad_to_good : params_.p_good_to_bad;
  if (rng_.bernoulli(p)) bad_ = !bad_;
  return symbol + rng_.normal(0.0, bad_ ? sigma_bad_ : sigma_good_);
}

std::vector<double> GilbertElliottChannel::transmit(
    std::span<const double> symbols) {
  std::vector<double> out;
  out.reserve(symbols.size());
  for (double s : symbols) out.push_back(transmit(s));
  return out;
}

double GilbertElliottChannel::average_noise_sigma() const {
  const double f = params_.bad_fraction();
  // Average the noise *power*, then take the root.
  const double power =
      (1.0 - f) * sigma_good_ * sigma_good_ + f * sigma_bad_ * sigma_bad_;
  return std::sqrt(power);
}

}  // namespace metacore::comm
