// Block interleaving: writes symbols row-wise into a rows x cols matrix and
// reads them column-wise, spreading a burst of B corrupted symbols across
// ceil(B / rows) distinct codeword neighborhoods — the standard companion
// to convolutional coding on bursty channels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace metacore::comm {

class BlockInterleaver {
 public:
  /// rows x cols block; depth() = rows * cols symbols per block.
  BlockInterleaver(int rows, int cols);

  std::size_t depth() const { return static_cast<std::size_t>(rows_ * cols_); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Permutes a stream whose length must be a multiple of depth().
  std::vector<double> interleave(std::span<const double> input) const;
  std::vector<double> deinterleave(std::span<const double> input) const;
  std::vector<int> interleave(std::span<const int> input) const;
  std::vector<int> deinterleave(std::span<const int> input) const;

 private:
  template <typename T>
  std::vector<T> permute(std::span<const T> input, bool forward) const;

  int rows_;
  int cols_;
};

}  // namespace metacore::comm
