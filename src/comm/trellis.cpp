#include "comm/trellis.hpp"

#include <stdexcept>
#include <string>

namespace metacore::comm {

Trellis::Trellis(CodeSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  num_states_ = spec_.num_states();
  symbols_per_step_ = spec_.rate_denominator();
  next_state_.resize(static_cast<std::size_t>(num_states_) * 2);
  output_.resize(static_cast<std::size_t>(num_states_) * 2);

  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_states_); ++s) {
    for (int bit = 0; bit < 2; ++bit) {
      // Re-run the encoder combinational logic for this (state, input); the
      // encoder exposes no state setter by design, so replicate it here.
      const int k = spec_.constraint_length;
      const std::uint32_t reg =
          (static_cast<std::uint32_t>(bit) << (k - 1)) | s;
      std::uint32_t out = 0;
      for (std::size_t j = 0; j < spec_.generators.size(); ++j) {
        std::uint32_t acc = reg & spec_.generators[j];
        // Parity via popcount-free fold keeps this header-independent.
        acc ^= acc >> 16;
        acc ^= acc >> 8;
        acc ^= acc >> 4;
        acc ^= acc >> 2;
        acc ^= acc >> 1;
        out |= (acc & 1u) << j;
      }
      const std::uint32_t next =
          (s >> 1) | (static_cast<std::uint32_t>(bit) << (k - 2));
      next_state_[(s << 1) | static_cast<std::uint32_t>(bit)] = next;
      output_[(s << 1) | static_cast<std::uint32_t>(bit)] = out;
    }
  }

  // Build the predecessor view. Exactly two branches enter each state in a
  // binary-input trellis; assert that while filling.
  predecessors_.resize(static_cast<std::size_t>(num_states_));
  std::vector<int> fill(static_cast<std::size_t>(num_states_), 0);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_states_); ++s) {
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t to = next_state(s, bit);
      if (fill[to] >= 2) {
        throw std::logic_error("Trellis: state has more than two predecessors");
      }
      predecessors_[to][static_cast<std::size_t>(fill[to]++)] = {
          s, bit, output_symbols(s, bit)};
    }
  }
  for (int count : fill) {
    if (count != 2) {
      throw std::logic_error("Trellis: state lacks two predecessors");
    }
  }

  // Flatten the predecessor view into butterfly-ordered SoA arrays for the
  // decoder ACS kernels.
  const std::size_t branches = static_cast<std::size_t>(num_states_) * 2;
  pred_state_.resize(branches);
  pred_symbols_.resize(branches);
  pred_bit_.resize(branches);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_states_); ++s) {
    for (std::size_t b = 0; b < 2; ++b) {
      const Predecessor& pred = predecessors_[s][b];
      pred_state_[(s << 1) | b] = pred.from_state;
      pred_symbols_[(s << 1) | b] = pred.symbols;
      pred_bit_[(s << 1) | b] = static_cast<std::uint8_t>(pred.input_bit);
    }
  }
}

std::string Trellis::to_string() const {
  std::string out = "trellis K=" + std::to_string(spec_.constraint_length) +
                    " G=(" + spec_.generators_octal() + "), " +
                    std::to_string(num_states_) + " states\n";
  auto bits_of = [&](std::uint32_t word, int n) {
    std::string text;
    for (int j = n - 1; j >= 0; --j) {
      text += static_cast<char>('0' + ((word >> j) & 1u));
    }
    return text;
  };
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_states_); ++s) {
    out += "  S" + bits_of(s, spec_.constraint_length - 1) + ":";
    for (int bit = 0; bit < 2; ++bit) {
      out += "  --" + std::to_string(bit) + "/" +
             bits_of(output_symbols(s, bit), symbols_per_step_) + "--> S" +
             bits_of(next_state(s, bit), spec_.constraint_length - 1);
    }
    out += "\n";
  }
  return out;
}

std::string describe_encoder(const CodeSpec& spec) {
  spec.validate();
  std::string out = "convolutional encoder: rate 1/" +
                    std::to_string(spec.rate_denominator()) + ", K=" +
                    std::to_string(spec.constraint_length) + "\n";
  out += "  registers: [input";
  for (int r = 1; r < spec.constraint_length; ++r) {
    out += ", R" + std::to_string(r);
  }
  out += "]\n";
  for (std::size_t g = 0; g < spec.generators.size(); ++g) {
    out += "  output " + std::to_string(g) + " = XOR of taps {";
    bool first = true;
    for (int pos = spec.constraint_length - 1; pos >= 0; --pos) {
      if ((spec.generators[g] >> pos) & 1u) {
        if (!first) out += ", ";
        first = false;
        const int reg = spec.constraint_length - 1 - pos;
        out += reg == 0 ? "input" : "R" + std::to_string(reg);
      }
    }
    out += "}\n";
  }
  return out;
}

}  // namespace metacore::comm
