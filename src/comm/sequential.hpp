// Sequential decoding — the alternative decoding family the paper
// contrasts with Viterbi decoding in Section 3.1: near-ML performance for
// long constraint lengths, but with *variable* decoding effort that makes
// it less suited to fixed-throughput hardware ("sequential decoding ...
// has a variable decoding time"). Implemented as a baseline so that
// trade-off can be measured rather than asserted.
//
// This is the stack (Zigangirov-Jelinek) algorithm: a best-first search of
// the code tree ordered by the Fano metric. Decoding work (tree-node
// extensions) is reported so benchmarks can show the characteristic
// effort explosion at low SNR.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/convolutional.hpp"
#include "comm/quantizer.hpp"

namespace metacore::comm {

struct SequentialConfig {
  /// Fano metric bias as a fraction of the per-symbol worst-case distance:
  /// each branch contributes sum_j (bias * max_level - distance_j).
  ///
  /// The binding condition is on the *best child* of a wrong node, because
  /// a best-first search is free to follow locally lucky branches. With
  /// complementary branch pairs (both generators tap the input bit) and a
  /// saturated quantizer, a wrong node's branch distances over a rate-1/2
  /// branch are (0, 2m) half the time and (m, m) half the time, m the
  /// per-symbol maximum, so E[best-child gain] = 2m*bias - m/2: the bias
  /// must stay below 1/4 or wrong paths drift *upward* along their best
  /// children and the search returns garbage. The default of 1/8 leaves a
  /// -m/4 per-branch down-drift on wrong paths while the correct path
  /// (E[distance] << m/4 per symbol at usable SNR) still climbs. Below the
  /// channel's computational cutoff the correct path sinks too and effort
  /// explodes — sequential decoding's textbook failure mode.
  double bias = 0.125;
  /// Abort threshold: maximum tree-node extensions per decoded bit before
  /// the decode is declared a computational overflow — sequential
  /// decoding's classic failure mode.
  double max_extensions_per_bit = 1024.0;
  /// Cap on the stack size; the worst entries are discarded beyond it.
  std::size_t max_stack = 1u << 16;
};

struct SequentialResult {
  bool completed = false;     ///< false on computational overflow
  std::vector<int> bits;      ///< decoded data (tail bits stripped)
  std::uint64_t extensions = 0;  ///< tree nodes expanded (work metric)
  double extensions_per_bit() const {
    return bits.empty() ? 0.0
                        : static_cast<double>(extensions) / bits.size();
  }
};

/// Decodes one *terminated* block: the transmitted data must end with K-1
/// zero tail bits (present in `rx`; stripped from the returned bits), so
/// the search can anchor the end of the code tree.
class SequentialDecoder {
 public:
  SequentialDecoder(CodeSpec code, Quantizer quantizer,
                    SequentialConfig config = {});

  /// `rx` holds raw channel samples, n per input bit, like the Viterbi API.
  SequentialResult decode(std::span<const double> rx) const;

  const CodeSpec& code() const { return code_; }

 private:
  CodeSpec code_;
  Quantizer quantizer_;
  SequentialConfig config_;
};

}  // namespace metacore::comm
