#include "comm/multires_viterbi.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace metacore::comm {

namespace {
constexpr double kUnreachable = 1e15;
constexpr double kNormalizeThreshold = 1e12;
}  // namespace

void MultiresConfig::validate(int num_states) const {
  if (traceback_depth < 1) {
    throw std::invalid_argument("MultiresConfig: traceback depth must be >= 1");
  }
  if (low_res_bits < 1 || high_res_bits < 1 || low_res_bits > 8 ||
      high_res_bits > 8) {
    throw std::invalid_argument("MultiresConfig: resolutions must be in [1,8]");
  }
  if (high_res_bits < low_res_bits) {
    throw std::invalid_argument(
        "MultiresConfig: R2 must be at least as fine as R1");
  }
  if (num_high_res_paths < 1 || num_high_res_paths > num_states) {
    throw std::invalid_argument(
        "MultiresConfig: M must be in [1, num_states]");
  }
  if (normalization_terms < 1 || normalization_terms > num_high_res_paths) {
    throw std::invalid_argument("MultiresConfig: N must be in [1, M]");
  }
}

MultiresViterbiDecoder::MultiresViterbiDecoder(const Trellis& trellis,
                                               const MultiresConfig& config,
                                               double amplitude,
                                               double noise_sigma)
    : trellis_(&trellis),
      config_(config),
      // Low-resolution trellis update: 1-bit R1 degenerates to hard slicing
      // regardless of method, matching the paper's R1=1 experiments.
      low_(config.low_res_bits == 1 ? QuantizationMethod::Hard : config.method,
           config.low_res_bits, amplitude, noise_sigma),
      high_(config.method, config.high_res_bits, amplitude, noise_sigma) {
  config_.validate(trellis_->num_states());
  scale_ = static_cast<double>(high_.max_level()) /
           static_cast<double>(low_.max_level());
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  acc_.resize(states);
  next_acc_.resize(states);
  survivors_.assign(static_cast<std::size_t>(config_.traceback_depth),
                    std::vector<std::uint8_t>(states, 0));
  quantized_low_.resize(static_cast<std::size_t>(trellis_->symbols_per_step()));
  quantized_high_.resize(quantized_low_.size());
  winning_low_metric_.resize(states);
  order_.resize(states);
  reset();
}

void MultiresViterbiDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), kUnreachable);
  acc_[0] = 0.0;
  steps_ = 0;
}

int MultiresViterbiDecoder::low_branch_metric(
    std::uint32_t expected_symbols) const {
  int metric = 0;
  for (std::size_t j = 0; j < quantized_low_.size(); ++j) {
    metric += low_.branch_metric(quantized_low_[j],
                                 static_cast<int>((expected_symbols >> j) & 1u));
  }
  return metric;
}

int MultiresViterbiDecoder::high_branch_metric(
    std::uint32_t expected_symbols) const {
  int metric = 0;
  for (std::size_t j = 0; j < quantized_high_.size(); ++j) {
    metric += high_.branch_metric(
        quantized_high_[j], static_cast<int>((expected_symbols >> j) & 1u));
  }
  return metric;
}

std::optional<int> MultiresViterbiDecoder::step(std::span<const double> rx) {
  if (rx.size() != quantized_low_.size()) {
    throw std::invalid_argument("MultiresViterbiDecoder::step: wrong symbol count");
  }
  for (std::size_t j = 0; j < rx.size(); ++j) {
    quantized_low_[j] = low_.quantize(rx[j]);
    quantized_high_[j] = high_.quantize(rx[j]);
  }

  const int states = trellis_->num_states();
  auto& survivor_row =
      survivors_[static_cast<std::size_t>(steps_ % config_.traceback_depth)];

  // Precompute the 2^n distinct low-resolution branch metrics per step.
  const int patterns = 1 << quantized_low_.size();
  low_metric_by_pattern_.resize(static_cast<std::size_t>(patterns));
  for (int p = 0; p < patterns; ++p) {
    low_metric_by_pattern_[static_cast<std::size_t>(p)] =
        low_branch_metric(static_cast<std::uint32_t>(p));
  }

  // Phase 1: full low-resolution add-compare-select. Low-res metrics are
  // scaled into high-resolution units so both phases accumulate compatibly.
  for (int s = 0; s < states; ++s) {
    const auto& preds = trellis_->predecessors(static_cast<std::uint32_t>(s));
    const int bm0 = low_metric_by_pattern_[preds[0].symbols];
    const int bm1 = low_metric_by_pattern_[preds[1].symbols];
    const double cand0 = acc_[preds[0].from_state] + scale_ * bm0;
    const double cand1 = acc_[preds[1].from_state] + scale_ * bm1;
    if (cand1 < cand0) {
      next_acc_[static_cast<std::size_t>(s)] = cand1;
      survivor_row[static_cast<std::size_t>(s)] = 1;
      winning_low_metric_[static_cast<std::size_t>(s)] = bm1;
    } else {
      next_acc_[static_cast<std::size_t>(s)] = cand0;
      survivor_row[static_cast<std::size_t>(s)] = 0;
      winning_low_metric_[static_cast<std::size_t>(s)] = bm0;
    }
  }

  // Phase 2: pick the M states with the smallest accumulated error — the
  // plausible traceback candidates — and recompute their winning branch
  // metrics at high resolution.
  const int m = config_.num_high_res_paths;
  std::iota(order_.begin(), order_.end(), 0u);
  std::partial_sort(order_.begin(), order_.begin() + m, order_.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return next_acc_[a] < next_acc_[b];
                    });

  // Correction term: the average (high − scaled-low) metric difference over
  // the N best recomputed branches. Subtracting it from the recomputed
  // metrics keeps the expected accumulation equal for refined and
  // unrefined states, so no state gains an unfair traceback advantage.
  std::vector<double> high_metrics(static_cast<std::size_t>(m));
  double correction = 0.0;
  for (int i = 0; i < m; ++i) {
    const std::uint32_t s = order_[static_cast<std::size_t>(i)];
    const auto& branch = trellis_->predecessors(s)[survivor_row[s]];
    high_metrics[static_cast<std::size_t>(i)] =
        static_cast<double>(high_branch_metric(branch.symbols));
    if (i < config_.normalization_terms) {
      correction += high_metrics[static_cast<std::size_t>(i)] -
                    scale_ * winning_low_metric_[s];
    }
  }
  correction /= static_cast<double>(config_.normalization_terms);

  for (int i = 0; i < m; ++i) {
    const std::uint32_t s = order_[static_cast<std::size_t>(i)];
    const auto& branch = trellis_->predecessors(s)[survivor_row[s]];
    next_acc_[s] = acc_[branch.from_state] +
                   high_metrics[static_cast<std::size_t>(i)] - correction;
  }

  acc_.swap(next_acc_);
  ++steps_;

  const double floor = *std::min_element(acc_.begin(), acc_.end());
  if (floor > kNormalizeThreshold) {
    for (auto& a : acc_) a -= floor;
  }

  if (steps_ < config_.traceback_depth) return std::nullopt;
  return traceback_bit();
}

std::uint32_t MultiresViterbiDecoder::best_state() const {
  return static_cast<std::uint32_t>(
      std::min_element(acc_.begin(), acc_.end()) - acc_.begin());
}

int MultiresViterbiDecoder::traceback_bit() const {
  std::uint32_t state = best_state();
  int bit = 0;
  for (int d = 0; d < config_.traceback_depth; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const auto& row =
        survivors_[static_cast<std::size_t>(t % config_.traceback_depth)];
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bit = branch.input_bit;
    state = branch.from_state;
  }
  return bit;
}

std::vector<int> MultiresViterbiDecoder::flush() {
  const std::int64_t window = config_.traceback_depth;
  const std::int64_t pending = steps_ < window ? steps_ : window - 1;
  std::vector<int> bits(static_cast<std::size_t>(pending));
  std::uint32_t state = best_state();
  for (std::int64_t d = 0; d < pending; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const auto& row = survivors_[static_cast<std::size_t>(t % window)];
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bits[static_cast<std::size_t>(pending - 1 - d)] = branch.input_bit;
    state = branch.from_state;
  }
  return bits;
}

std::unique_ptr<Decoder> make_multires_decoder(const Trellis& trellis,
                                               const MultiresConfig& config,
                                               double amplitude,
                                               double noise_sigma) {
  return std::make_unique<MultiresViterbiDecoder>(trellis, config, amplitude,
                                                  noise_sigma);
}

}  // namespace metacore::comm
