#include "comm/multires_viterbi.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm {

namespace {
constexpr double kUnreachable = detail::kMultiresUnreachable;
constexpr double kNormalizeThreshold = detail::kMultiresNormalizeThreshold;
}  // namespace

void MultiresConfig::validate(int num_states) const {
  if (traceback_depth < 1) {
    throw std::invalid_argument("MultiresConfig: traceback depth must be >= 1");
  }
  if (low_res_bits < 1 || high_res_bits < 1 || low_res_bits > 8 ||
      high_res_bits > 8) {
    throw std::invalid_argument("MultiresConfig: resolutions must be in [1,8]");
  }
  if (high_res_bits < low_res_bits) {
    throw std::invalid_argument(
        "MultiresConfig: R2 must be at least as fine as R1");
  }
  if (num_high_res_paths < 1 || num_high_res_paths > num_states) {
    throw std::invalid_argument(
        "MultiresConfig: M must be in [1, num_states]");
  }
  if (normalization_terms < 1 || normalization_terms > num_high_res_paths) {
    throw std::invalid_argument("MultiresConfig: N must be in [1, M]");
  }
}

MultiresViterbiDecoder::MultiresViterbiDecoder(const Trellis& trellis,
                                               const MultiresConfig& config,
                                               double amplitude,
                                               double noise_sigma)
    : trellis_(&trellis),
      config_(config),
      // Low-resolution trellis update: 1-bit R1 degenerates to hard slicing
      // regardless of method, matching the paper's R1=1 experiments.
      low_(config.low_res_bits == 1 ? QuantizationMethod::Hard : config.method,
           config.low_res_bits, amplitude, noise_sigma),
      high_(config.method, config.high_res_bits, amplitude, noise_sigma),
      norm_threshold_(kNormalizeThreshold) {
  config_.validate(trellis_->num_states());
  scale_ = static_cast<double>(high_.max_level()) /
           static_cast<double>(low_.max_level());
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  acc_.resize(states);
  next_acc_.resize(states);
  survivors_.assign(static_cast<std::size_t>(config_.traceback_depth) * states,
                    0);
  quantized_low_.resize(static_cast<std::size_t>(trellis_->symbols_per_step()));
  quantized_high_.resize(quantized_low_.size());
  winning_scaled_metric_.resize(states);
  order_.resize(states);
  // All scratch sized here so neither step() nor decode_block() touches the
  // allocator in steady state (the chunk-level buffers match the BER
  // pipeline's 1024-step chunks and only regrow for larger one-shot calls).
  scaled_low_metric_by_pattern_.resize(std::size_t{1} << quantized_low_.size());
  high_metrics_.resize(static_cast<std::size_t>(config_.num_high_res_paths));
  block_levels_low_.reserve(1024 * quantized_low_.size());
  block_levels_high_.reserve(1024 * quantized_low_.size());
  reset();
}

void MultiresViterbiDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), kUnreachable);
  acc_[0] = 0.0;
  steps_ = 0;
  normalizations_ = 0;
}

int MultiresViterbiDecoder::high_branch_metric(std::uint32_t expected_symbols,
                                               const int* levels) const {
  int metric = 0;
  for (std::size_t j = 0; j < quantized_high_.size(); ++j) {
    metric += high_.branch_metric(
        levels[j], static_cast<int>((expected_symbols >> j) & 1u));
  }
  return metric;
}

void MultiresViterbiDecoder::fill_scaled_low_metric_table(const int* levels) {
  // Precompute the 2^n distinct low-resolution branch metrics per step from
  // the quantizer's level x expected_bit lookup table, pre-multiplied by
  // scale_ so the ACS kernels run pure gathered adds. scale_ * metric is
  // rounded once here exactly as the per-branch multiply used to round, so
  // the accumulated sums are unchanged.
  const auto zero_row = low_.metric_table(0);
  const auto one_row = low_.metric_table(1);
  const auto patterns = scaled_low_metric_by_pattern_.size();
  const std::size_t n = quantized_low_.size();
  for (std::size_t p = 0; p < patterns; ++p) {
    int metric = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto level = static_cast<std::size_t>(levels[j]);
      metric += ((p >> j) & 1u) ? one_row[level] : zero_row[level];
    }
    scaled_low_metric_by_pattern_[p] = scale_ * metric;
  }
}

std::uint32_t MultiresViterbiDecoder::advance_one_step(
    const int* high_levels, simd::MultiresAcsFn acs) {
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint32_t* pred_symbols = trellis_->pred_symbols().data();
  std::uint8_t* survivor_row =
      survivors_.data() +
      static_cast<std::size_t>(steps_ % config_.traceback_depth) * states;

  // Phase 1: full low-resolution add-compare-select over the flat butterfly
  // arrays through the dispatched state-parallel kernel (resolved once per
  // chunk by the callers). Low-res metrics are pre-scaled into
  // high-resolution units so both phases accumulate compatibly.
  acs(acc_.data(), next_acc_.data(), pred_state, pred_symbols,
      scaled_low_metric_by_pattern_.data(), survivor_row,
      winning_scaled_metric_.data(), states);

  // Phase 2 (scalar — it is O(M), not O(states)): pick the M states with
  // the smallest accumulated error — the plausible traceback candidates —
  // and recompute their winning branch metrics at high resolution.
  const int m = config_.num_high_res_paths;
  std::iota(order_.begin(), order_.end(), 0u);
  std::partial_sort(order_.begin(), order_.begin() + m, order_.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return next_acc_[a] < next_acc_[b];
                    });

  // Correction term: the average (high − scaled-low) metric difference over
  // the N best recomputed branches. Subtracting it from the recomputed
  // metrics keeps the expected accumulation equal for refined and
  // unrefined states, so no state gains an unfair traceback advantage.
  double correction = 0.0;
  for (int i = 0; i < m; ++i) {
    const std::uint32_t s = order_[static_cast<std::size_t>(i)];
    const std::size_t branch = 2 * s + survivor_row[s];
    high_metrics_[static_cast<std::size_t>(i)] = static_cast<double>(
        high_branch_metric(pred_symbols[branch], high_levels));
    if (i < config_.normalization_terms) {
      correction += high_metrics_[static_cast<std::size_t>(i)] -
                    winning_scaled_metric_[s];
    }
  }
  correction /= static_cast<double>(config_.normalization_terms);

  for (int i = 0; i < m; ++i) {
    const std::uint32_t s = order_[static_cast<std::size_t>(i)];
    const std::size_t branch = 2 * s + survivor_row[s];
    next_acc_[s] = acc_[pred_state[branch]] +
                   high_metrics_[static_cast<std::size_t>(i)] - correction;
  }

  acc_.swap(next_acc_);
  ++steps_;

  // Fused scan: the renormalization floor and the traceback start state
  // (first index achieving the minimum, matching min_element) in one pass.
  double floor = std::numeric_limits<double>::infinity();
  std::uint32_t best_s = 0;
  for (std::size_t s = 0; s < states; ++s) {
    if (acc_[s] < floor) {
      floor = acc_[s];
      best_s = static_cast<std::uint32_t>(s);
    }
  }
  if (floor > norm_threshold_) {
    for (auto& a : acc_) a -= floor;
    ++normalizations_;
  }
  return best_s;
}

std::optional<int> MultiresViterbiDecoder::step(std::span<const double> rx) {
  if (rx.size() != quantized_low_.size()) {
    throw std::invalid_argument("MultiresViterbiDecoder::step: wrong symbol count");
  }
  low_.quantize_block(rx, quantized_low_);
  high_.quantize_block(rx, quantized_high_);
  fill_scaled_low_metric_table(quantized_low_.data());
  const std::uint32_t best_s =
      advance_one_step(quantized_high_.data(), simd::multires_acs());
  if (steps_ < config_.traceback_depth) return std::nullopt;
  return traceback_bit_from(best_s);
}

std::size_t MultiresViterbiDecoder::decode_block(std::span<const double> rx,
                                                 std::span<int> out) {
  const std::size_t n = quantized_low_.size();
  if (rx.size() % n != 0) {
    throw std::invalid_argument(
        "MultiresViterbiDecoder::decode_block: chunk length not a multiple "
        "of symbols per step");
  }
  const std::size_t block_steps = rx.size() / n;
  if (out.size() < block_steps) {
    throw std::invalid_argument(
        "MultiresViterbiDecoder::decode_block: output span smaller than one "
        "bit per step");
  }
  // Batch-quantize the whole chunk at both resolutions up front — two
  // branchless SIMD passes instead of 2n quantize() calls per step.
  if (block_levels_low_.size() < rx.size()) {
    block_levels_low_.resize(rx.size());
    block_levels_high_.resize(rx.size());
  }
  low_.quantize_block(rx, block_levels_low_);
  high_.quantize_block(rx, block_levels_high_);
  const simd::MultiresAcsFn acs = simd::multires_acs();
  std::size_t written = 0;
  for (std::size_t i = 0; i < block_steps; ++i) {
    fill_scaled_low_metric_table(block_levels_low_.data() + i * n);
    const std::uint32_t best_s =
        advance_one_step(block_levels_high_.data() + i * n, acs);
    if (steps_ >= config_.traceback_depth) {
      out[written++] = traceback_bit_from(best_s);
    }
  }
  return written;
}

std::uint32_t MultiresViterbiDecoder::best_state() const {
  return static_cast<std::uint32_t>(
      std::min_element(acc_.begin(), acc_.end()) - acc_.begin());
}

int MultiresViterbiDecoder::traceback_bit_from(std::uint32_t state) const {
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint8_t* pred_bit = trellis_->pred_bits().data();
  int bit = 0;
  for (int d = 0; d < config_.traceback_depth; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const std::uint8_t* row =
        survivors_.data() +
        static_cast<std::size_t>(t % config_.traceback_depth) * states;
    const std::size_t branch = 2 * state + row[state];
    bit = pred_bit[branch];
    state = pred_state[branch];
  }
  return bit;
}

std::vector<int> MultiresViterbiDecoder::flush() {
  const std::int64_t window = config_.traceback_depth;
  const std::int64_t pending = steps_ < window ? steps_ : window - 1;
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  std::vector<int> bits(static_cast<std::size_t>(pending));
  std::uint32_t state = best_state();
  for (std::int64_t d = 0; d < pending; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const std::uint8_t* row =
        survivors_.data() + static_cast<std::size_t>(t % window) * states;
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bits[static_cast<std::size_t>(pending - 1 - d)] = branch.input_bit;
    state = branch.from_state;
  }
  return bits;
}

std::unique_ptr<Decoder> make_multires_decoder(const Trellis& trellis,
                                               const MultiresConfig& config,
                                               double amplitude,
                                               double noise_sigma) {
  return std::make_unique<MultiresViterbiDecoder>(trellis, config, amplitude,
                                                  noise_sigma);
}

}  // namespace metacore::comm
