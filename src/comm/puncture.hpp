// Punctured convolutional codes: higher code rates (2/3, 3/4, ...) derived
// from the mother rate-1/2 code by periodically deleting channel symbols.
// Extends the code-rate (k/n) degree of freedom the paper introduces in
// Section 3.1 beyond the rate-1/2 family used in its experiments.
//
// Decoding reuses the standard Viterbi decoder: deleted positions are
// re-inserted as *erasures* — samples at the quantizer's neutral midpoint
// contribute identical branch metrics to both symbol hypotheses, so they
// carry no information, which is exactly the maximum-likelihood treatment.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace metacore::comm {

/// A puncturing pattern over the mother code's output stream: entry (i, j)
/// tells whether generator j's symbol in period position i is transmitted.
/// Patterns follow the conventional column-major "P1/P2" notation.
struct PuncturePattern {
  int period = 1;                  ///< input bits per pattern period
  std::vector<std::uint8_t> keep;  ///< period * n entries, 1 = transmit

  /// Transmitted symbols per period (popcount of keep).
  int transmitted_per_period() const;
  /// Resulting code rate as (k, n') = (period, transmitted_per_period()).
  double rate(int mother_n = 2) const;

  /// Throws unless the pattern is non-degenerate (at least one kept symbol
  /// per input bit period overall, sizes consistent with mother_n).
  void validate(int mother_n = 2) const;

  std::string label() const;
};

/// Standard DVB/industry patterns for the rate-1/2 mother code.
PuncturePattern rate_2_3_pattern();
PuncturePattern rate_3_4_pattern();
PuncturePattern rate_5_6_pattern();

/// Deletes punctured symbols from an encoded stream (mother rate 1/n).
std::vector<int> puncture(std::span<const int> symbols,
                          const PuncturePattern& pattern, int mother_n = 2);
std::vector<double> puncture(std::span<const double> samples,
                             const PuncturePattern& pattern, int mother_n = 2);

/// Re-inserts erasures (value `neutral`) at punctured positions so the
/// stream regains the mother code's symbol cadence for decoding.
std::vector<double> depuncture(std::span<const double> received,
                               const PuncturePattern& pattern,
                               std::size_t trellis_steps, double neutral = 0.0,
                               int mother_n = 2);

}  // namespace metacore::comm
