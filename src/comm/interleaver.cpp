#include "comm/interleaver.hpp"

#include <stdexcept>

namespace metacore::comm {

BlockInterleaver::BlockInterleaver(int rows, int cols)
    : rows_(rows), cols_(cols) {
  if (rows_ < 1 || cols_ < 1 || rows_ * cols_ > (1 << 24)) {
    throw std::invalid_argument("BlockInterleaver: bad dimensions");
  }
}

template <typename T>
std::vector<T> BlockInterleaver::permute(std::span<const T> input,
                                         bool forward) const {
  if (input.size() % depth() != 0) {
    throw std::invalid_argument(
        "BlockInterleaver: stream length must be a multiple of depth()");
  }
  std::vector<T> out(input.size());
  const std::size_t block = depth();
  for (std::size_t base = 0; base < input.size(); base += block) {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        const std::size_t row_major = static_cast<std::size_t>(r * cols_ + c);
        const std::size_t col_major = static_cast<std::size_t>(c * rows_ + r);
        if (forward) {
          out[base + col_major] = input[base + row_major];
        } else {
          out[base + row_major] = input[base + col_major];
        }
      }
    }
  }
  return out;
}

std::vector<double> BlockInterleaver::interleave(
    std::span<const double> input) const {
  return permute(input, true);
}
std::vector<double> BlockInterleaver::deinterleave(
    std::span<const double> input) const {
  return permute(input, false);
}
std::vector<int> BlockInterleaver::interleave(std::span<const int> input) const {
  return permute(input, true);
}
std::vector<int> BlockInterleaver::deinterleave(
    std::span<const int> input) const {
  return permute(input, false);
}

}  // namespace metacore::comm
