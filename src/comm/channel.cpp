#include "comm/channel.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace metacore::comm {

std::vector<double> BpskModulator::modulate(std::span<const int> bits) const {
  std::vector<double> out;
  out.reserve(bits.size());
  for (int bit : bits) out.push_back(modulate(bit));
  return out;
}

AwgnChannel::AwgnChannel(double esn0_db, double symbol_energy,
                         std::uint64_t seed)
    : esn0_db_(esn0_db),
      esn0_linear_(util::db_to_linear(esn0_db)),
      rng_(seed) {
  if (symbol_energy <= 0.0) {
    throw std::invalid_argument("AwgnChannel: symbol energy must be positive");
  }
  const double n0 = symbol_energy / esn0_linear_;
  sigma_ = std::sqrt(n0 / 2.0);
}

double AwgnChannel::transmit(double symbol) {
  return symbol + rng_.normal(0.0, sigma_);
}

std::vector<double> AwgnChannel::transmit(std::span<const double> symbols) {
  std::vector<double> out;
  out.reserve(symbols.size());
  for (double s : symbols) out.push_back(transmit(s));
  return out;
}

}  // namespace metacore::comm
