// Gilbert-Elliott two-state burst channel: alternates between a good state
// (mild AWGN) and a bad state (deep noise), with geometric sojourn times.
// The AWGN channel of the paper's experiments models the atmospheric-noise
// regime it targets; this model extends the evaluation to bursty
// impairments, where interleaving (see interleaver.hpp) becomes the
// relevant design lever.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace metacore::comm {

struct GilbertElliottParams {
  double good_esn0_db = 6.0;   ///< channel quality in the good state
  double bad_esn0_db = -4.0;   ///< channel quality inside a burst
  double p_good_to_bad = 0.01; ///< per-symbol transition probability
  double p_bad_to_good = 0.2;  ///< per-symbol recovery probability

  /// Stationary probability of the bad state.
  double bad_fraction() const {
    return p_good_to_bad / (p_good_to_bad + p_bad_to_good);
  }

  void validate() const;
};

class GilbertElliottChannel {
 public:
  GilbertElliottChannel(GilbertElliottParams params, double symbol_energy = 1.0,
                        std::uint64_t seed = 1);

  double transmit(double symbol);
  std::vector<double> transmit(std::span<const double> symbols);

  /// Average noise sigma weighted by state occupancy — what an adaptive
  /// quantizer tracking long-term statistics would estimate.
  double average_noise_sigma() const;

  bool in_bad_state() const { return bad_; }
  const GilbertElliottParams& params() const { return params_; }

 private:
  GilbertElliottParams params_;
  double sigma_good_;
  double sigma_bad_;
  bool bad_ = false;
  util::Random rng_;
};

}  // namespace metacore::comm
