// Frame-parallel (lane-parallel) Viterbi decoding: L independent frames
// advance through their trellises in lock-step, with all per-state data
// interleaved lane-major — frame l's path metric for state s lives at
// acc[s * lanes + l] — so one SIMD ACS butterfly updates every frame at
// once from contiguous loads (see comm/simd/acs_kernel.hpp). This is the
// second multiplicative throughput axis on the decode hot path: the
// state-parallel kernels saturate only at large constraint lengths, while
// the lane axis is full-width at any K because the lanes are independent
// streams, the batching idiom production basestation decoders use.
//
// Every lane is bit-identical to a standalone single-frame decoder fed the
// same samples: the kernels replicate the scalar compare-select semantics
// per lane (ties toward branch 0, strict-< first-argmin for the traceback
// start state), renormalization fires per lane on the lane's own floor,
// and the shared lock-step structure (step counter, survivor ring rows,
// bits-emitted count) is identical across lanes by construction. The lane
// count is therefore a pure throughput knob — results never depend on it —
// which is what lets measure_ber regroup its shards into lanes without
// perturbing a single golden value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/multires_viterbi.hpp"
#include "comm/quantizer.hpp"
#include "comm/trellis.hpp"
#include "comm/viterbi.hpp"

namespace metacore::comm {

/// Default lane count for frame-parallel decoding: the METACORE_LANES
/// environment override when set (an integer in [1, 256]; invalid values
/// throw std::invalid_argument — METACORE_LANES=1 is the degenerate
/// single-lane path CI exercises), otherwise the dispatched ISA tier's
/// natural vector width in int32 path metrics (4 / 4 / 8 / 16 for
/// scalar / SSE4.2 / AVX2 / AVX-512).
std::size_t default_frame_lanes();

/// Abstract lock-step decoder over `lanes()` independent frames. All lanes
/// advance together: decode_chunk consumes the same number of trellis
/// steps from every lane and emits the same number of decoded bits to
/// every lane (the lock-step pipeline fill is shared). A lane whose frame
/// is shorter than the chunk being decoded can be fed arbitrary (e.g.
/// zero) samples past its end — its decoded prefix and flush are captured
/// at the moment the frame ends and later garbage never reaches them.
class FrameDecoder {
 public:
  virtual ~FrameDecoder() = default;

  virtual std::size_t lanes() const = 0;

  /// Advances every lane by `steps` trellis steps. `rx[l]` must hold
  /// steps * symbols_per_step raw channel samples for lane l; decoded bits
  /// are appended at out[l][0..written) where `written` (the return value,
  /// identical for all lanes) is at most `steps` and smaller while the
  /// traceback window fills. Chunk boundaries never change the decoded
  /// streams.
  virtual std::size_t decode_chunk(const double* const* rx, std::size_t steps,
                                   int* const* out) = 0;

  /// The bits still held in lane l's decoding window (final traceback from
  /// the lane's best end state) — the lane-parallel analog of
  /// Decoder::flush, except read-only: the same lane can be flushed at any
  /// step boundary and decoding can continue afterwards.
  virtual std::vector<int> flush(std::size_t lane) const = 0;

  virtual void reset() = 0;

  /// Metric renormalizations lane l has performed since reset (test
  /// instrumentation; must match the standalone decoder's count exactly).
  virtual std::int64_t normalizations(std::size_t lane) const = 0;

  virtual const Trellis& trellis() const = 0;
};

/// Frame-parallel counterpart of ViterbiDecoder (hard or soft decision by
/// the configured Quantizer), int32 path metrics with the same
/// renormalization bound and the same int32-envelope constructor check.
class FrameViterbiDecoder final : public FrameDecoder {
 public:
  FrameViterbiDecoder(const Trellis& trellis, int traceback_depth,
                      Quantizer quantizer, std::size_t lanes);

  std::size_t lanes() const override { return lanes_; }
  std::size_t decode_chunk(const double* const* rx, std::size_t steps,
                           int* const* out) override;
  std::vector<int> flush(std::size_t lane) const override;
  void reset() override;
  std::int64_t normalizations(std::size_t lane) const override {
    return normalizations_[lane];
  }
  const Trellis& trellis() const override { return *trellis_; }

  int traceback_depth() const { return traceback_depth_; }

  /// Test hook mirroring ViterbiDecoder's: lowers the renormalization
  /// threshold so equivalence tests can exercise the per-lane renorm path
  /// cheaply.
  void set_normalize_threshold_for_test(std::int64_t threshold) {
    norm_threshold_ = static_cast<std::int32_t>(threshold);
  }

 private:
  void fill_metric_tables(std::size_t step_in_chunk);

  const Trellis* trellis_;
  int traceback_depth_;
  Quantizer quantizer_;
  std::size_t lanes_;

  /// Lane-major path metrics: entry s * lanes + l.
  std::vector<std::int32_t> acc_;
  std::vector<std::int32_t> next_acc_;
  /// Circular survivor store: entry (t % L) * states * lanes + s * lanes + l.
  std::vector<std::uint8_t> survivors_;
  /// Per-lane quantized sub-chunks (lane-major slabs of chunk_cap * n).
  std::vector<int> block_levels_;
  /// Lane-major branch-metric tables: entry pattern * lanes + l.
  std::vector<std::int32_t> metric_by_pattern_;
  std::vector<std::int32_t> best_metric_;  ///< per-lane running minimum
  std::vector<std::uint32_t> best_state_;  ///< per-lane first argmin state
  std::vector<std::uint32_t> tb_state_;    ///< traceback scratch
  std::vector<int> tb_bit_;                ///< traceback scratch
  std::int64_t steps_ = 0;
  std::int32_t norm_threshold_;
  std::vector<std::int64_t> normalizations_;
};

/// Frame-parallel counterpart of MultiresViterbiDecoder: the low-res ACS
/// phase runs through the lane-parallel kernel; the O(M) high-resolution
/// refinement and the correction term stay scalar per lane, replicating
/// the single-frame phase 2 exactly (same partial_sort over the same
/// values, so the same best-M order and the same refined metrics).
class FrameMultiresDecoder final : public FrameDecoder {
 public:
  FrameMultiresDecoder(const Trellis& trellis, const MultiresConfig& config,
                       double amplitude, double noise_sigma,
                       std::size_t lanes);

  std::size_t lanes() const override { return lanes_; }
  std::size_t decode_chunk(const double* const* rx, std::size_t steps,
                           int* const* out) override;
  std::vector<int> flush(std::size_t lane) const override;
  void reset() override;
  std::int64_t normalizations(std::size_t lane) const override {
    return normalizations_[lane];
  }
  const Trellis& trellis() const override { return *trellis_; }

  const MultiresConfig& config() const { return config_; }

  /// Test hook mirroring MultiresViterbiDecoder's.
  void set_normalize_threshold_for_test(double threshold) {
    norm_threshold_ = threshold;
  }

 private:
  int high_branch_metric(std::uint32_t expected_symbols,
                         const int* levels) const;
  void fill_scaled_low_metric_tables(std::size_t step_in_chunk);

  const Trellis* trellis_;
  MultiresConfig config_;
  Quantizer low_;
  Quantizer high_;
  double scale_;
  std::size_t lanes_;

  std::vector<double> acc_;       ///< lane-major: entry s * lanes + l
  std::vector<double> next_acc_;
  std::vector<std::uint8_t> survivors_;
  std::vector<int> block_levels_low_;   ///< per-lane slabs
  std::vector<int> block_levels_high_;  ///< per-lane slabs
  std::vector<double> scaled_low_metric_by_pattern_;  ///< pattern * lanes + l
  std::vector<double> winning_scaled_metric_;         ///< s * lanes + l
  std::vector<std::uint32_t> order_;   ///< per-lane best-M selection scratch
  std::vector<double> high_metrics_;   ///< per-lane phase-2 scratch
  std::vector<std::uint32_t> best_state_;  ///< per-lane traceback start
  std::vector<std::uint32_t> tb_state_;    ///< traceback scratch
  std::vector<int> tb_bit_;                ///< traceback scratch
  std::int64_t steps_ = 0;
  double norm_threshold_;
  std::vector<std::int64_t> normalizations_;
};

}  // namespace metacore::comm
