// Streaming Viterbi decoding (Section 3.2 of the paper): trellis update via
// add-compare-select with quantized branch metrics, sliding-window traceback
// at depth L, and final flush. Covers both hard-decision (1-bit) and
// soft-decision (multi-bit) decoding through the configured Quantizer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "comm/quantizer.hpp"
#include "comm/trellis.hpp"

namespace metacore::comm {

namespace detail {
/// 32-bit path-metric constants shared by the single-frame decoder
/// (viterbi.cpp) and the frame-parallel decoder (frame_decode.cpp). The
/// overflow bound is derived in the ViterbiDecoder class comment below and
/// static_assert-checked in viterbi.cpp; both decoders must use the exact
/// same values for per-lane bit-identity.
inline constexpr std::int32_t kPathMetricUnreachable = std::int32_t{1} << 29;
inline constexpr std::int32_t kPathMetricNormalizeThreshold = std::int32_t{1}
                                                              << 28;

/// Throws std::invalid_argument when the configuration's (symbols per step,
/// metric resolution, constraint length) exceed the int32 path-metric
/// envelope. Called by both decoders' constructors.
void check_int32_envelope(const Trellis& trellis, const Quantizer& quantizer);
}  // namespace detail

/// Abstract streaming decoder: consumed by the BER simulator so that hard,
/// soft, and multiresolution decoders are interchangeable.
class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Consumes one trellis step worth of raw channel samples (n per step for
  /// a rate 1/n code). Returns the decoded bit from `traceback_depth` steps
  /// ago once the decoding window has filled.
  virtual std::optional<int> step(std::span<const double> rx) = 0;

  /// Consumes a whole chunk of raw channel samples (a multiple of n) in one
  /// call, appending decoded bits to `out` as the decoding window produces
  /// them. `out` must have room for one bit per trellis step in `rx` (the
  /// upper bound; fewer are written while the pipeline fills). Returns the
  /// number of bits written. Semantically identical to calling step() once
  /// per trellis step — chunk boundaries never change the decoded stream —
  /// but concrete decoders override it with batched kernels that skip the
  /// per-step virtual dispatch. The base implementation is the step() loop.
  virtual std::size_t decode_block(std::span<const double> rx,
                                   std::span<int> out);

  /// Emits the bits still held in the decoding window (final traceback from
  /// the best end state). The decoder must be reset before reuse.
  virtual std::vector<int> flush() = 0;

  virtual void reset() = 0;

  /// Convenience: step through an entire received stream and flush. The
  /// result has exactly one bit per trellis step.
  std::vector<int> decode(std::span<const double> rx_stream);

  virtual const Trellis& trellis() const = 0;
};

/// Classic single-resolution Viterbi decoder with integer path metrics.
///
/// Path metrics are 32-bit. The in-loop renormalization bounds them: after
/// any renorm the metric floor is 0, the floor grows by at most one
/// per-step branch-metric bound B = n * (2^bits - 1) per trellis step, and
/// a renorm fires as soon as the floor exceeds kNormalizeThreshold — so the
/// floor never exceeds threshold + B. The spread above the floor is bounded
/// by (K-1)*B once the trellis has merged (any state is reachable from the
/// floor state of K-1 steps ago in K-1 steps, and ACS takes the minimum
/// over incoming paths), so every metric, and every in-step candidate
/// (metric + B), stays below threshold + (K+1)*B; before the merge,
/// metrics sit below kUnreachable + (K-1)*B. Both bounds are static_assert-
/// checked against INT32_MAX in viterbi.cpp for the widest representable
/// configuration (K = 16, 8 symbols/step, 8-bit metrics — far beyond the
/// paper's K=9 / 5-bit corner), and the constructor re-checks the actual
/// configuration. tests/comm_kernel_equivalence_test.cpp stress-runs the
/// bound at a lowered threshold over >10^5-step streams.
class ViterbiDecoder final : public Decoder {
 public:
  /// `traceback_depth` is the paper's L parameter (typically a multiple of
  /// K; depths beyond ~7K buy no BER, per Section 4.1).
  ViterbiDecoder(const Trellis& trellis, int traceback_depth,
                 Quantizer quantizer);

  std::optional<int> step(std::span<const double> rx) override;
  /// Batched ACS kernel over the flat trellis view: the whole chunk is
  /// quantized in one pass, then each trellis step runs the dispatched
  /// state-parallel ACS butterfly kernel (scalar / SSE4.2 / AVX2, see
  /// comm/simd/acs_kernel.hpp) with table-lookup branch metrics and the
  /// running minimum tracked inside the kernel. One virtual call per chunk;
  /// bit-identical to the step() loop on every ISA tier.
  std::size_t decode_block(std::span<const double> rx,
                           std::span<int> out) override;
  std::vector<int> flush() override;
  void reset() override;
  const Trellis& trellis() const override { return *trellis_; }

  const Quantizer& quantizer() const { return quantizer_; }
  int traceback_depth() const { return traceback_depth_; }

  /// State with the smallest accumulated error (the traceback candidate).
  std::uint32_t best_state() const;

  /// Accumulated error metric per state (exposed for tests and for the
  /// multiresolution decoder's instrumentation). Widening accessor: the
  /// internal metrics are int32 (see the class comment's overflow bound);
  /// the historical int64 value type is preserved by copying out.
  std::vector<std::int64_t> accumulated_errors() const {
    return std::vector<std::int64_t>(acc_.begin(), acc_.end());
  }

  /// Metric renormalizations performed since construction/reset (test and
  /// benchmark instrumentation for the renorm-in-loop kernel).
  std::int64_t normalizations() const { return normalizations_; }
  /// Test hook: lowers the renormalization threshold so long-stream
  /// equivalence tests can exercise the renorm path without simulating the
  /// ~10^8 steps the production threshold would need.
  void set_normalize_threshold_for_test(std::int64_t threshold) {
    norm_threshold_ = static_cast<std::int32_t>(threshold);
  }

  /// Test hook: the full survivor window (traceback_depth rows of
  /// num_states branch selections) — the dispatch-matrix equivalence test
  /// compares it byte for byte across ISA tiers.
  std::span<const std::uint8_t> survivor_window_for_test() const {
    return survivors_;
  }

 private:
  void fill_metric_table(const int* levels);
  int traceback_bit_from(std::uint32_t state) const;

  const Trellis* trellis_;
  int traceback_depth_;
  Quantizer quantizer_;

  std::vector<std::int32_t> acc_;
  std::vector<std::int32_t> next_acc_;
  /// Flat circular survivor store: entry (t % L) * num_states + state is
  /// the index (0/1) of the winning predecessor branch at step t.
  std::vector<std::uint8_t> survivors_;
  std::vector<int> quantized_;  ///< scratch: quantized symbols for one step
  std::vector<int> block_levels_;  ///< scratch: whole-chunk quantized symbols
  std::vector<std::int32_t> metric_by_pattern_;  ///< scratch: per pattern
  std::int64_t steps_ = 0;
  std::int32_t norm_threshold_;
  std::int64_t normalizations_ = 0;
};

/// Convenience factories matching the paper's decoder taxonomy.
std::unique_ptr<Decoder> make_hard_decoder(const Trellis& trellis,
                                           int traceback_depth,
                                           double amplitude,
                                           double noise_sigma);
std::unique_ptr<Decoder> make_soft_decoder(const Trellis& trellis,
                                           int traceback_depth, int bits,
                                           QuantizationMethod method,
                                           double amplitude,
                                           double noise_sigma);

}  // namespace metacore::comm
