// Streaming Viterbi decoding (Section 3.2 of the paper): trellis update via
// add-compare-select with quantized branch metrics, sliding-window traceback
// at depth L, and final flush. Covers both hard-decision (1-bit) and
// soft-decision (multi-bit) decoding through the configured Quantizer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "comm/quantizer.hpp"
#include "comm/trellis.hpp"

namespace metacore::comm {

/// Abstract streaming decoder: consumed by the BER simulator so that hard,
/// soft, and multiresolution decoders are interchangeable.
class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Consumes one trellis step worth of raw channel samples (n per step for
  /// a rate 1/n code). Returns the decoded bit from `traceback_depth` steps
  /// ago once the decoding window has filled.
  virtual std::optional<int> step(std::span<const double> rx) = 0;

  /// Consumes a whole chunk of raw channel samples (a multiple of n) in one
  /// call, appending decoded bits to `out` as the decoding window produces
  /// them. `out` must have room for one bit per trellis step in `rx` (the
  /// upper bound; fewer are written while the pipeline fills). Returns the
  /// number of bits written. Semantically identical to calling step() once
  /// per trellis step — chunk boundaries never change the decoded stream —
  /// but concrete decoders override it with batched kernels that skip the
  /// per-step virtual dispatch. The base implementation is the step() loop.
  virtual std::size_t decode_block(std::span<const double> rx,
                                   std::span<int> out);

  /// Emits the bits still held in the decoding window (final traceback from
  /// the best end state). The decoder must be reset before reuse.
  virtual std::vector<int> flush() = 0;

  virtual void reset() = 0;

  /// Convenience: step through an entire received stream and flush. The
  /// result has exactly one bit per trellis step.
  std::vector<int> decode(std::span<const double> rx_stream);

  virtual const Trellis& trellis() const = 0;
};

/// Classic single-resolution Viterbi decoder with integer path metrics.
class ViterbiDecoder final : public Decoder {
 public:
  /// `traceback_depth` is the paper's L parameter (typically a multiple of
  /// K; depths beyond ~7K buy no BER, per Section 4.1).
  ViterbiDecoder(const Trellis& trellis, int traceback_depth,
                 Quantizer quantizer);

  std::optional<int> step(std::span<const double> rx) override;
  /// Batched ACS kernel over the flat trellis view: table-lookup branch
  /// metrics, running minimum tracked inside the ACS loop (no separate
  /// renormalization scan), one virtual call per chunk. Bit-identical to
  /// the step() loop.
  std::size_t decode_block(std::span<const double> rx,
                           std::span<int> out) override;
  std::vector<int> flush() override;
  void reset() override;
  const Trellis& trellis() const override { return *trellis_; }

  const Quantizer& quantizer() const { return quantizer_; }
  int traceback_depth() const { return traceback_depth_; }

  /// State with the smallest accumulated error (the traceback candidate).
  std::uint32_t best_state() const;

  /// Accumulated error metric per state (exposed for tests and for the
  /// multiresolution decoder's instrumentation).
  std::span<const std::int64_t> accumulated_errors() const { return acc_; }

  /// Metric renormalizations performed since construction/reset (test and
  /// benchmark instrumentation for the renorm-in-loop kernel).
  std::int64_t normalizations() const { return normalizations_; }
  /// Test hook: lowers the renormalization threshold so long-stream
  /// equivalence tests can exercise the renorm path without simulating the
  /// ~2^50 steps the production threshold would need.
  void set_normalize_threshold_for_test(std::int64_t threshold) {
    norm_threshold_ = threshold;
  }

 private:
  int branch_metric(std::uint32_t expected_symbols) const;
  void fill_metric_table();
  int traceback_bit_from(std::uint32_t state) const;

  const Trellis* trellis_;
  int traceback_depth_;
  Quantizer quantizer_;

  std::vector<std::int64_t> acc_;
  std::vector<std::int64_t> next_acc_;
  /// Flat circular survivor store: entry (t % L) * num_states + state is
  /// the index (0/1) of the winning predecessor branch at step t.
  std::vector<std::uint8_t> survivors_;
  std::vector<int> quantized_;  ///< scratch: quantized symbols for this step
  std::vector<int> metric_by_pattern_;  ///< scratch: metric per symbol pattern
  std::int64_t steps_ = 0;
  std::int64_t norm_threshold_;
  std::int64_t normalizations_ = 0;
};

/// Convenience factories matching the paper's decoder taxonomy.
std::unique_ptr<Decoder> make_hard_decoder(const Trellis& trellis,
                                           int traceback_depth,
                                           double amplitude,
                                           double noise_sigma);
std::unique_ptr<Decoder> make_soft_decoder(const Trellis& trellis,
                                           int traceback_depth, int bits,
                                           QuantizationMethod method,
                                           double amplitude,
                                           double noise_sigma);

}  // namespace metacore::comm
