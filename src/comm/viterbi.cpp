#include "comm/viterbi.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm {

namespace {
// 32-bit path-metric bounds. The overflow argument (see the ViterbiDecoder
// class comment for the derivation):
//   * after any renormalization the floor is 0; it grows by at most B per
//     step and a renorm fires once it exceeds the threshold, so
//     floor <= threshold + B at all times;
//   * once merged (>= K-1 steps), every metric <= floor + (K-1)*B, and an
//     in-step ACS candidate adds one more B;
//   * before the merge, unreached states sit at kUnreachable plus at most
//     (K-1)*B of accumulated branch metrics.
// The static_asserts below instantiate the bound at the widest limits the
// code layer can express (CodeSpec caps K at 16; the quantizer caps
// resolution at 8 bits; 8 symbols per step is far beyond any rate the repo
// models) — the constructor additionally re-checks the decoder's actual
// (n, bits, K) so even out-of-envelope configurations fail loudly instead
// of overflowing.
constexpr std::int32_t kUnreachable = detail::kPathMetricUnreachable;
constexpr std::int32_t kNormalizeThreshold =
    detail::kPathMetricNormalizeThreshold;
constexpr std::int64_t kMaxConstraintLength = 16;   // CodeSpec::validate cap
constexpr std::int64_t kMaxSymbolsPerStep = 8;
constexpr std::int64_t kMaxPerStepMetric =
    kMaxSymbolsPerStep * 255;  // 8 symbols x (2^8 - 1) levels
static_assert(kNormalizeThreshold +
                      (kMaxConstraintLength + 1) * kMaxPerStepMetric <=
                  std::numeric_limits<std::int32_t>::max(),
              "steady-state path metrics must fit int32");
static_assert(kUnreachable + kMaxConstraintLength * kMaxPerStepMetric <=
                  std::numeric_limits<std::int32_t>::max(),
              "pre-merge path metrics must fit int32");
static_assert(kUnreachable > kNormalizeThreshold + 2 * kMaxConstraintLength *
                                                       kMaxPerStepMetric,
              "unreachable sentinel must dominate every real metric");
}  // namespace

void detail::check_int32_envelope(const Trellis& trellis,
                                  const Quantizer& quantizer) {
  const auto n64 = static_cast<std::int64_t>(trellis.symbols_per_step());
  const std::int64_t per_step =
      n64 * static_cast<std::int64_t>(quantizer.max_level());
  const auto k64 = static_cast<std::int64_t>(trellis.spec().constraint_length);
  if (n64 > kMaxSymbolsPerStep || per_step > kMaxPerStepMetric ||
      k64 > kMaxConstraintLength) {
    throw std::invalid_argument(
        "ViterbiDecoder: configuration exceeds the int32 path-metric "
        "envelope (symbols per step / metric resolution / constraint "
        "length)");
  }
}

std::size_t Decoder::decode_block(std::span<const double> rx,
                                  std::span<int> out) {
  const auto n = static_cast<std::size_t>(trellis().symbols_per_step());
  if (rx.size() % n != 0) {
    throw std::invalid_argument(
        "Decoder::decode_block: chunk length not a multiple of symbols per "
        "step");
  }
  if (out.size() < rx.size() / n) {
    throw std::invalid_argument(
        "Decoder::decode_block: output span smaller than one bit per step");
  }
  std::size_t written = 0;
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step(rx.subspan(i, n))) out[written++] = *bit;
  }
  return written;
}

std::vector<int> Decoder::decode(std::span<const double> rx_stream) {
  const int n = trellis().symbols_per_step();
  if (rx_stream.size() % static_cast<std::size_t>(n) != 0) {
    throw std::invalid_argument(
        "Decoder::decode: stream length not a multiple of symbols per step");
  }
  std::vector<int> out(rx_stream.size() / static_cast<std::size_t>(n));
  const std::size_t written = decode_block(rx_stream, out);
  out.resize(written);
  auto tail = flush();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

ViterbiDecoder::ViterbiDecoder(const Trellis& trellis, int traceback_depth,
                               Quantizer quantizer)
    : trellis_(&trellis),
      traceback_depth_(traceback_depth),
      quantizer_(quantizer),
      norm_threshold_(kNormalizeThreshold) {
  if (traceback_depth_ < 1) {
    throw std::invalid_argument("ViterbiDecoder: traceback depth must be >= 1");
  }
  // Re-run the int32 overflow argument on the actual configuration (the
  // static_asserts above cover the widest representable envelope).
  detail::check_int32_envelope(*trellis_, quantizer_);
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  acc_.resize(states);
  next_acc_.resize(states);
  survivors_.assign(static_cast<std::size_t>(traceback_depth_) * states, 0);
  quantized_.resize(static_cast<std::size_t>(trellis_->symbols_per_step()));
  // All 2^n symbol patterns; sized once here so step()/decode_block() never
  // touch the allocator (block_levels_ matches the BER pipeline's 1024-step
  // chunks and only regrows for larger one-shot decodes).
  metric_by_pattern_.resize(std::size_t{1} << quantized_.size());
  block_levels_.reserve(1024 * quantized_.size());
  reset();
}

void ViterbiDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), kUnreachable);
  acc_[0] = 0;  // the encoder starts from the all-zero state
  steps_ = 0;
  normalizations_ = 0;
}

void ViterbiDecoder::fill_metric_table(const int* levels) {
  // Only 2^n distinct branch metrics exist per step (one per expected
  // symbol pattern); precomputing them takes the metric work out of the
  // per-state loop — the same table a hardware ACS array would share. Each
  // entry is a sum of per-symbol lookups in the quantizer's precomputed
  // level x expected_bit table.
  const auto zero_row = quantizer_.metric_table(0);
  const auto one_row = quantizer_.metric_table(1);
  const auto patterns = metric_by_pattern_.size();
  const std::size_t n = quantized_.size();
  for (std::size_t p = 0; p < patterns; ++p) {
    std::int32_t metric = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto level = static_cast<std::size_t>(levels[j]);
      metric += ((p >> j) & 1u) ? one_row[level] : zero_row[level];
    }
    metric_by_pattern_[p] = metric;
  }
}

std::optional<int> ViterbiDecoder::step(std::span<const double> rx) {
  if (rx.size() != quantized_.size()) {
    throw std::invalid_argument("ViterbiDecoder::step: wrong symbol count");
  }
  quantizer_.quantize_block(rx, quantized_);
  fill_metric_table(quantized_.data());

  const int states = trellis_->num_states();
  std::uint8_t* survivor_row =
      survivors_.data() +
      static_cast<std::size_t>(steps_ % traceback_depth_) *
          static_cast<std::size_t>(states);
  // Reference per-state ACS loop over the array-of-structs predecessor
  // view; decode_block() routes the same update through the dispatched
  // state-parallel kernel and the equivalence tests hold them bit-identical.
  for (int s = 0; s < states; ++s) {
    const auto& preds = trellis_->predecessors(static_cast<std::uint32_t>(s));
    const std::int32_t cand0 =
        acc_[preds[0].from_state] + metric_by_pattern_[preds[0].symbols];
    const std::int32_t cand1 =
        acc_[preds[1].from_state] + metric_by_pattern_[preds[1].symbols];
    // Compare-select: ties break toward predecessor 0 deterministically.
    if (cand1 < cand0) {
      next_acc_[static_cast<std::size_t>(s)] = cand1;
      survivor_row[s] = 1;
    } else {
      next_acc_[static_cast<std::size_t>(s)] = cand0;
      survivor_row[s] = 0;
    }
  }
  acc_.swap(next_acc_);
  ++steps_;

  // Keep metrics bounded for indefinite streaming. This is the reference
  // renormalization (separate min_element scan); the batched kernels track
  // the same minimum inside the ACS loop — the equivalence tests hold the
  // two bit-identical.
  const std::int32_t floor = *std::min_element(acc_.begin(), acc_.end());
  if (floor > norm_threshold_) {
    for (auto& a : acc_) a -= floor;
    ++normalizations_;
  }

  if (steps_ < traceback_depth_) return std::nullopt;
  return traceback_bit_from(best_state());
}

std::size_t ViterbiDecoder::decode_block(std::span<const double> rx,
                                         std::span<int> out) {
  const std::size_t n = quantized_.size();
  if (rx.size() % n != 0) {
    throw std::invalid_argument(
        "ViterbiDecoder::decode_block: chunk length not a multiple of "
        "symbols per step");
  }
  const std::size_t block_steps = rx.size() / n;
  if (out.size() < block_steps) {
    throw std::invalid_argument(
        "ViterbiDecoder::decode_block: output span smaller than one bit per "
        "step");
  }

  // Whole-chunk quantization in one vectorized pass (no per-step per-symbol
  // calls); steady-state callers reuse the same chunk size, so this only
  // allocates on the first (or a larger) chunk.
  if (block_levels_.size() < rx.size()) block_levels_.resize(rx.size());
  quantizer_.quantize_block(rx, block_levels_);

  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint32_t* pred_symbols = trellis_->pred_symbols().data();
  const simd::ViterbiAcsFn acs = simd::viterbi_acs();
  std::size_t written = 0;

  for (std::size_t i = 0; i < block_steps; ++i) {
    fill_metric_table(block_levels_.data() + i * n);

    std::uint8_t* survivor_row =
        survivors_.data() +
        static_cast<std::size_t>(steps_ % traceback_depth_) * states;
    // State-parallel ACS butterfly over the flat trellis view, with the
    // running minimum (and its first index, the traceback start state)
    // tracked inside the kernel.
    const simd::AcsStepResult result =
        acs(acc_.data(), next_acc_.data(), pred_state, pred_symbols,
            metric_by_pattern_.data(), survivor_row, states);
    acc_.swap(next_acc_);
    ++steps_;

    if (result.best_metric > norm_threshold_) {
      for (auto& a : acc_) a -= result.best_metric;
      ++normalizations_;
    }

    if (steps_ >= traceback_depth_) {
      out[written++] = traceback_bit_from(result.best_state);
    }
  }
  return written;
}

std::uint32_t ViterbiDecoder::best_state() const {
  return static_cast<std::uint32_t>(
      std::min_element(acc_.begin(), acc_.end()) - acc_.begin());
}

int ViterbiDecoder::traceback_bit_from(std::uint32_t state) const {
  // Walk the survivor memory from the current best state back
  // traceback_depth_ steps; the initial branch of that path is the decoded
  // decision (Section 3.2).
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint8_t* pred_bit = trellis_->pred_bits().data();
  int bit = 0;
  for (int d = 0; d < traceback_depth_; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const std::uint8_t* row =
        survivors_.data() +
        static_cast<std::size_t>(t % traceback_depth_) * states;
    const std::size_t branch = 2 * state + row[state];
    bit = pred_bit[branch];
    state = pred_state[branch];
  }
  return bit;
}

std::vector<int> ViterbiDecoder::flush() {
  // Bits not yet emitted: the most recent min(steps, L-1) decisions (or all
  // of them when the stream was shorter than the window).
  const std::int64_t pending =
      steps_ < traceback_depth_ ? steps_
                                : static_cast<std::int64_t>(traceback_depth_) - 1;
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  std::vector<int> bits(static_cast<std::size_t>(pending));
  std::uint32_t state = best_state();
  for (std::int64_t d = 0; d < pending; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const std::uint8_t* row =
        survivors_.data() +
        static_cast<std::size_t>(t % traceback_depth_) * states;
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bits[static_cast<std::size_t>(pending - 1 - d)] = branch.input_bit;
    state = branch.from_state;
  }
  return bits;
}

std::unique_ptr<Decoder> make_hard_decoder(const Trellis& trellis,
                                           int traceback_depth,
                                           double amplitude,
                                           double noise_sigma) {
  return std::make_unique<ViterbiDecoder>(
      trellis, traceback_depth,
      Quantizer(QuantizationMethod::Hard, 1, amplitude, noise_sigma));
}

std::unique_ptr<Decoder> make_soft_decoder(const Trellis& trellis,
                                           int traceback_depth, int bits,
                                           QuantizationMethod method,
                                           double amplitude,
                                           double noise_sigma) {
  return std::make_unique<ViterbiDecoder>(
      trellis, traceback_depth, Quantizer(method, bits, amplitude, noise_sigma));
}

}  // namespace metacore::comm
