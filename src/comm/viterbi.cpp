#include "comm/viterbi.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace metacore::comm {

namespace {
/// Large-but-safe initial metric for states other than the encoder's known
/// start state; far below the int64 overflow horizon even after long runs.
constexpr std::int64_t kUnreachable = std::int64_t{1} << 40;
/// Renormalize accumulated metrics once they exceed this bound.
constexpr std::int64_t kNormalizeThreshold = std::int64_t{1} << 50;
}  // namespace

std::vector<int> Decoder::decode(std::span<const double> rx_stream) {
  const int n = trellis().symbols_per_step();
  if (rx_stream.size() % static_cast<std::size_t>(n) != 0) {
    throw std::invalid_argument(
        "Decoder::decode: stream length not a multiple of symbols per step");
  }
  std::vector<int> out;
  out.reserve(rx_stream.size() / static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < rx_stream.size(); i += static_cast<std::size_t>(n)) {
    if (auto bit = step(rx_stream.subspan(i, static_cast<std::size_t>(n)))) {
      out.push_back(*bit);
    }
  }
  auto tail = flush();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

ViterbiDecoder::ViterbiDecoder(const Trellis& trellis, int traceback_depth,
                               Quantizer quantizer)
    : trellis_(&trellis),
      traceback_depth_(traceback_depth),
      quantizer_(quantizer) {
  if (traceback_depth_ < 1) {
    throw std::invalid_argument("ViterbiDecoder: traceback depth must be >= 1");
  }
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  acc_.resize(states);
  next_acc_.resize(states);
  survivors_.assign(static_cast<std::size_t>(traceback_depth_),
                    std::vector<std::uint8_t>(states, 0));
  quantized_.resize(static_cast<std::size_t>(trellis_->symbols_per_step()));
  reset();
}

void ViterbiDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), kUnreachable);
  acc_[0] = 0;  // the encoder starts from the all-zero state
  steps_ = 0;
}

int ViterbiDecoder::branch_metric(std::uint32_t expected_symbols) const {
  int metric = 0;
  for (std::size_t j = 0; j < quantized_.size(); ++j) {
    const int expected_bit = static_cast<int>((expected_symbols >> j) & 1u);
    metric += quantizer_.branch_metric(quantized_[j], expected_bit);
  }
  return metric;
}

std::optional<int> ViterbiDecoder::step(std::span<const double> rx) {
  if (rx.size() != quantized_.size()) {
    throw std::invalid_argument("ViterbiDecoder::step: wrong symbol count");
  }
  for (std::size_t j = 0; j < rx.size(); ++j) {
    quantized_[j] = quantizer_.quantize(rx[j]);
  }

  // Only 2^n distinct branch metrics exist per step (one per expected
  // symbol pattern); precomputing them takes the metric work out of the
  // per-state loop — the same table a hardware ACS array would share.
  const int patterns = 1 << quantized_.size();
  metric_by_pattern_.resize(static_cast<std::size_t>(patterns));
  for (int p = 0; p < patterns; ++p) {
    metric_by_pattern_[static_cast<std::size_t>(p)] =
        branch_metric(static_cast<std::uint32_t>(p));
  }

  const int states = trellis_->num_states();
  auto& survivor_row =
      survivors_[static_cast<std::size_t>(steps_ % traceback_depth_)];
  for (int s = 0; s < states; ++s) {
    const auto& preds = trellis_->predecessors(static_cast<std::uint32_t>(s));
    const std::int64_t cand0 =
        acc_[preds[0].from_state] + metric_by_pattern_[preds[0].symbols];
    const std::int64_t cand1 =
        acc_[preds[1].from_state] + metric_by_pattern_[preds[1].symbols];
    // Compare-select: ties break toward predecessor 0 deterministically.
    if (cand1 < cand0) {
      next_acc_[static_cast<std::size_t>(s)] = cand1;
      survivor_row[static_cast<std::size_t>(s)] = 1;
    } else {
      next_acc_[static_cast<std::size_t>(s)] = cand0;
      survivor_row[static_cast<std::size_t>(s)] = 0;
    }
  }
  acc_.swap(next_acc_);
  ++steps_;

  // Keep metrics bounded for indefinite streaming.
  const std::int64_t floor = *std::min_element(acc_.begin(), acc_.end());
  if (floor > kNormalizeThreshold) {
    for (auto& a : acc_) a -= floor;
  }

  if (steps_ < traceback_depth_) return std::nullopt;
  return traceback_bit();
}

std::uint32_t ViterbiDecoder::best_state() const {
  return static_cast<std::uint32_t>(
      std::min_element(acc_.begin(), acc_.end()) - acc_.begin());
}

int ViterbiDecoder::traceback_bit() const {
  // Walk the survivor memory from the current best state back
  // traceback_depth_ steps; the initial branch of that path is the decoded
  // decision (Section 3.2).
  std::uint32_t state = best_state();
  int bit = 0;
  for (int d = 0; d < traceback_depth_; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const auto& row = survivors_[static_cast<std::size_t>(t % traceback_depth_)];
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bit = branch.input_bit;
    state = branch.from_state;
  }
  return bit;
}

std::vector<int> ViterbiDecoder::flush() {
  // Bits not yet emitted: the most recent min(steps, L-1) decisions (or all
  // of them when the stream was shorter than the window).
  const std::int64_t pending =
      steps_ < traceback_depth_ ? steps_
                                : static_cast<std::int64_t>(traceback_depth_) - 1;
  std::vector<int> bits(static_cast<std::size_t>(pending));
  std::uint32_t state = best_state();
  for (std::int64_t d = 0; d < pending; ++d) {
    const std::int64_t t = steps_ - 1 - d;
    const auto& row = survivors_[static_cast<std::size_t>(t % traceback_depth_)];
    const auto& branch = trellis_->predecessors(state)[row[state]];
    bits[static_cast<std::size_t>(pending - 1 - d)] = branch.input_bit;
    state = branch.from_state;
  }
  return bits;
}

std::unique_ptr<Decoder> make_hard_decoder(const Trellis& trellis,
                                           int traceback_depth,
                                           double amplitude,
                                           double noise_sigma) {
  return std::make_unique<ViterbiDecoder>(
      trellis, traceback_depth,
      Quantizer(QuantizationMethod::Hard, 1, amplitude, noise_sigma));
}

std::unique_ptr<Decoder> make_soft_decoder(const Trellis& trellis,
                                           int traceback_depth, int bits,
                                           QuantizationMethod method,
                                           double amplitude,
                                           double noise_sigma) {
  return std::make_unique<ViterbiDecoder>(
      trellis, traceback_depth, Quantizer(method, bits, amplitude, noise_sigma));
}

}  // namespace metacore::comm
