// AVX-512 state-parallel kernels: 16 states (int32 ACS), 8 states (double
// low-res ACS), or 8 samples (quantization) per iteration, using mask
// registers for compare-select and hardware gathers for the path-metric
// and branch-metric table reads. Only AVX512F instructions are used, so
// -mavx512f is the only flag this TU needs; it must only ever be reached
// through the dispatch table after a CPUID check
// (__builtin_cpu_supports("avx512f")).
#include <immintrin.h>

#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

AcsStepResult viterbi_acs_avx512(const std::int32_t* acc,
                                 std::int32_t* next_acc,
                                 const std::uint32_t* pred_state,
                                 const std::uint32_t* pred_symbols,
                                 const std::int32_t* metric_by_pattern,
                                 std::uint8_t* survivor_row,
                                 std::size_t num_states) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  std::uint32_t best_state = 0;

  const std::size_t vec_states = num_states & ~std::size_t{15};
  if (vec_states != 0) {
    __m512i vbest = _mm512_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m512i vbest_idx = _mm512_setzero_si512();
    __m512i vidx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                     13, 14, 15);
    const __m512i vinc = _mm512_set1_epi32(16);
    // Even/odd dword split across two 512-bit loads (branches 2s..2s+31
    // are interleaved: even = branch 0, odd = branch 1).
    const __m512i idx_even = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16,
                                               18, 20, 22, 24, 26, 28, 30);
    const __m512i idx_odd = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17,
                                              19, 21, 23, 25, 27, 29, 31);

    for (std::size_t s = 0; s < vec_states; s += 16) {
      const __m512i lo = _mm512_loadu_si512(pred_state + 2 * s);
      const __m512i hi = _mm512_loadu_si512(pred_state + 2 * s + 16);
      const __m512i st0 = _mm512_permutex2var_epi32(lo, idx_even, hi);
      const __m512i st1 = _mm512_permutex2var_epi32(lo, idx_odd, hi);

      const __m512i slo = _mm512_loadu_si512(pred_symbols + 2 * s);
      const __m512i shi = _mm512_loadu_si512(pred_symbols + 2 * s + 16);
      const __m512i sy0 = _mm512_permutex2var_epi32(slo, idx_even, shi);
      const __m512i sy1 = _mm512_permutex2var_epi32(slo, idx_odd, shi);

      const __m512i a0 = _mm512_i32gather_epi32(st0, acc, 4);
      const __m512i a1 = _mm512_i32gather_epi32(st1, acc, 4);
      const __m512i m0 = _mm512_i32gather_epi32(sy0, metric_by_pattern, 4);
      const __m512i m1 = _mm512_i32gather_epi32(sy1, metric_by_pattern, 4);
      const __m512i cand0 = _mm512_add_epi32(a0, m0);
      const __m512i cand1 = _mm512_add_epi32(a1, m1);

      // sel = cand1 < cand0 (tie -> branch 0). On a tie min picks the
      // equal value, so min + the strict mask reproduce the scalar pair.
      const __mmask16 sel = _mm512_cmpgt_epi32_mask(cand0, cand1);
      const __m512i win = _mm512_min_epi32(cand0, cand1);
      _mm512_storeu_si512(next_acc + s, win);

      // Survivor bytes: 0/1 per lane, narrowed to 16 contiguous bytes.
      const __m512i sel_bits = _mm512_maskz_set1_epi32(sel, 1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(survivor_row + s),
                       _mm512_cvtepi32_epi8(sel_bits));

      // Strict-< running minimum per lane, remembering the first index.
      const __mmask16 better = _mm512_cmpgt_epi32_mask(vbest, win);
      vbest = _mm512_mask_mov_epi32(vbest, better, win);
      vbest_idx = _mm512_mask_mov_epi32(vbest_idx, better, vidx);
      vidx = _mm512_add_epi32(vidx, vinc);
    }
    // Horizontal reduce: min value, and among equal lanes the smallest
    // stored index — each lane's stored index is already the first within
    // that lane, so the smallest across lanes is the global first.
    alignas(64) std::int32_t lane_best[16];
    alignas(64) std::uint32_t lane_idx[16];
    _mm512_store_si512(lane_best, vbest);
    _mm512_store_si512(lane_idx, vbest_idx);
    for (int j = 0; j < 16; ++j) {
      if (lane_best[j] < best ||
          (lane_best[j] == best && lane_idx[j] < best_state)) {
        best = lane_best[j];
        best_state = lane_idx[j];
      }
    }
  }

  // Scalar tail (also covers trellises smaller than one vector).
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const std::int32_t cand0 =
        acc[pred_state[2 * s]] + metric_by_pattern[pred_symbols[2 * s]];
    const std::int32_t cand1 =
        acc[pred_state[2 * s + 1]] + metric_by_pattern[pred_symbols[2 * s + 1]];
    std::int32_t win = cand0;
    std::uint8_t sel = 0;
    if (cand1 < cand0) {
      win = cand1;
      sel = 1;
    }
    next_acc[s] = win;
    survivor_row[s] = sel;
    if (win < best) {
      best = win;
      best_state = static_cast<std::uint32_t>(s);
    }
  }
  return {best, best_state};
}

void multires_acs_avx512(const double* acc, double* next_acc,
                         const std::uint32_t* pred_state,
                         const std::uint32_t* pred_symbols,
                         const double* scaled_metric_by_pattern,
                         std::uint8_t* survivor_row,
                         double* winning_scaled_metric,
                         std::size_t num_states) {
  const std::size_t vec_states = num_states & ~std::size_t{7};
  for (std::size_t s = 0; s < vec_states; s += 8) {
    // Branches 2s..2s+15 in one 512-bit index load; viewing it as 8
    // uint64s, the low dwords are branch 0 and the high dwords branch 1.
    const __m512i pairs = _mm512_loadu_si512(pred_state + 2 * s);
    const __m256i st0 = _mm512_cvtepi64_epi32(pairs);
    const __m256i st1 =
        _mm512_cvtepi64_epi32(_mm512_srli_epi64(pairs, 32));

    const __m512i spairs = _mm512_loadu_si512(pred_symbols + 2 * s);
    const __m256i sy0 = _mm512_cvtepi64_epi32(spairs);
    const __m256i sy1 =
        _mm512_cvtepi64_epi32(_mm512_srli_epi64(spairs, 32));

    const __m512d a0 = _mm512_i32gather_pd(st0, acc, 8);
    const __m512d a1 = _mm512_i32gather_pd(st1, acc, 8);
    const __m512d bm0 = _mm512_i32gather_pd(sy0, scaled_metric_by_pattern, 8);
    const __m512d bm1 = _mm512_i32gather_pd(sy1, scaled_metric_by_pattern, 8);
    const __m512d cand0 = _mm512_add_pd(a0, bm0);
    const __m512d cand1 = _mm512_add_pd(a1, bm1);

    const __mmask8 sel =
        _mm512_cmp_pd_mask(cand1, cand0, _CMP_LT_OQ);  // tie -> branch 0
    _mm512_storeu_pd(next_acc + s, _mm512_mask_blend_pd(sel, cand0, cand1));
    _mm512_storeu_pd(winning_scaled_metric + s,
                     _mm512_mask_blend_pd(sel, bm0, bm1));
    for (int j = 0; j < 8; ++j) {
      survivor_row[s + j] = static_cast<std::uint8_t>((sel >> j) & 1);
    }
  }
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const double bm0 = scaled_metric_by_pattern[pred_symbols[2 * s]];
    const double bm1 = scaled_metric_by_pattern[pred_symbols[2 * s + 1]];
    const double cand0 = acc[pred_state[2 * s]] + bm0;
    const double cand1 = acc[pred_state[2 * s + 1]] + bm1;
    if (cand1 < cand0) {
      next_acc[s] = cand1;
      survivor_row[s] = 1;
      winning_scaled_metric[s] = bm1;
    } else {
      next_acc[s] = cand0;
      survivor_row[s] = 0;
      winning_scaled_metric[s] = bm0;
    }
  }
}

void quantize_block_avx512(const double* rx, int* out, std::size_t count,
                           double step, double offset, int max_level) {
  const __m512d voffset = _mm512_set1_pd(offset);
  const __m512d vstep = _mm512_set1_pd(step);
  const __m512d vtop = _mm512_set1_pd(static_cast<double>(max_level));
  const __m512d vzero = _mm512_setzero_pd();
  const std::size_t vec_count = count & ~std::size_t{7};
  for (std::size_t i = 0; i < vec_count; i += 8) {
    const __m512d v = _mm512_loadu_pd(rx + i);
    const __m512d scaled = _mm512_div_pd(_mm512_sub_pd(v, voffset), vstep);
    // min first so a NaN input lands on the top level, as in every tier.
    const __m512d clamped = _mm512_max_pd(_mm512_min_pd(scaled, vtop), vzero);
    const __m256i levels = _mm512_cvttpd_epi32(clamped);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), levels);
  }
  if (vec_count != count) {
    detail::quantize_block_scalar(rx + vec_count, out + vec_count,
                                  count - vec_count, step, offset, max_level);
  }
}

}  // namespace metacore::comm::simd::detail
