// AVX2 kernels: 8 states (int32 ACS), 4 states (double low-res ACS), or
// 4 samples (quantization) per iteration, with hardware gathers for the
// path-metric and branch-metric table reads. This TU is the only one
// compiled with -mavx2 — it must only ever be reached through the dispatch
// table after a CPUID check.
#include <immintrin.h>
#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

AcsStepResult viterbi_acs_avx2(const std::int32_t* acc, std::int32_t* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const std::int32_t* metric_by_pattern,
                               std::uint8_t* survivor_row,
                               std::size_t num_states) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  std::uint32_t best_state = 0;

  const std::size_t vec_states = num_states & ~std::size_t{7};
  if (vec_states != 0) {
    __m256i vbest = _mm256_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m256i vbest_idx = _mm256_setzero_si256();
    __m256i vidx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i vinc = _mm256_set1_epi32(8);
    // Even/odd split control: dwords (0,2,4,6 | 1,3,5,7) across the whole
    // 256-bit register.
    const __m256i even_odd = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    // Low byte of each int32 lane -> bytes 0..3 within each 128-bit lane.
    const __m256i pack_sel = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i pack_words = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);

    for (std::size_t s = 0; s < vec_states; s += 8) {
      // Branches 2s..2s+15 are interleaved (even = branch 0, odd = branch
      // 1); deinterleave two 8-lane loads into branch-0 / branch-1 vectors.
      const __m256i lo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pred_state + 2 * s));
      const __m256i hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pred_state + 2 * s + 8));
      const __m256i lo_d = _mm256_permutevar8x32_epi32(lo, even_odd);
      const __m256i hi_d = _mm256_permutevar8x32_epi32(hi, even_odd);
      const __m256i st0 = _mm256_permute2x128_si256(lo_d, hi_d, 0x20);
      const __m256i st1 = _mm256_permute2x128_si256(lo_d, hi_d, 0x31);

      const __m256i slo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pred_symbols + 2 * s));
      const __m256i shi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pred_symbols + 2 * s + 8));
      const __m256i slo_d = _mm256_permutevar8x32_epi32(slo, even_odd);
      const __m256i shi_d = _mm256_permutevar8x32_epi32(shi, even_odd);
      const __m256i sy0 = _mm256_permute2x128_si256(slo_d, shi_d, 0x20);
      const __m256i sy1 = _mm256_permute2x128_si256(slo_d, shi_d, 0x31);

      const __m256i a0 = _mm256_i32gather_epi32(acc, st0, 4);
      const __m256i a1 = _mm256_i32gather_epi32(acc, st1, 4);
      const __m256i m0 = _mm256_i32gather_epi32(metric_by_pattern, sy0, 4);
      const __m256i m1 = _mm256_i32gather_epi32(metric_by_pattern, sy1, 4);
      const __m256i cand0 = _mm256_add_epi32(a0, m0);
      const __m256i cand1 = _mm256_add_epi32(a1, m1);

      // sel = cand1 < cand0 (tie -> branch 0), lanes all-ones where true.
      const __m256i sel = _mm256_cmpgt_epi32(cand0, cand1);
      const __m256i win = _mm256_blendv_epi8(cand0, cand1, sel);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(next_acc + s), win);

      // Survivor bytes: 0/1 per lane packed to 8 contiguous bytes (4 per
      // 128-bit lane, then the two words collected side by side).
      const __m256i sel_bits = _mm256_srli_epi32(sel, 31);
      const __m256i packed = _mm256_shuffle_epi8(sel_bits, pack_sel);
      const __m256i words = _mm256_permutevar8x32_epi32(packed, pack_words);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(survivor_row + s),
                       _mm256_castsi256_si128(words));

      // Strict-< running minimum per lane, remembering the first index.
      const __m256i better = _mm256_cmpgt_epi32(vbest, win);
      vbest = _mm256_blendv_epi8(vbest, win, better);
      vbest_idx = _mm256_blendv_epi8(vbest_idx, vidx, better);
      vidx = _mm256_add_epi32(vidx, vinc);
    }
    // Horizontal reduce: min value, and among equal lanes the smallest
    // stored index — each lane's stored index is already the first within
    // that lane, so the smallest across lanes is the global first.
    alignas(32) std::int32_t lane_best[8];
    alignas(32) std::uint32_t lane_idx[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_best), vbest);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), vbest_idx);
    for (int j = 0; j < 8; ++j) {
      if (lane_best[j] < best ||
          (lane_best[j] == best && lane_idx[j] < best_state)) {
        best = lane_best[j];
        best_state = lane_idx[j];
      }
    }
  }

  // Scalar tail (also covers trellises smaller than one vector).
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const std::int32_t cand0 =
        acc[pred_state[2 * s]] + metric_by_pattern[pred_symbols[2 * s]];
    const std::int32_t cand1 =
        acc[pred_state[2 * s + 1]] + metric_by_pattern[pred_symbols[2 * s + 1]];
    std::int32_t win = cand0;
    std::uint8_t sel = 0;
    if (cand1 < cand0) {
      win = cand1;
      sel = 1;
    }
    next_acc[s] = win;
    survivor_row[s] = sel;
    if (win < best) {
      best = win;
      best_state = static_cast<std::uint32_t>(s);
    }
  }
  return {best, best_state};
}

void multires_acs_avx2(const double* acc, double* next_acc,
                       const std::uint32_t* pred_state,
                       const std::uint32_t* pred_symbols,
                       const double* scaled_metric_by_pattern,
                       std::uint8_t* survivor_row,
                       double* winning_scaled_metric,
                       std::size_t num_states) {
  const std::size_t vec_states = num_states & ~std::size_t{3};
  for (std::size_t s = 0; s < vec_states; s += 4) {
    // Branches 2s..2s+7: deinterleave two 4-lane index loads into branch-0
    // / branch-1 vectors, then hardware-gather metrics and accumulators.
    const __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pred_state + 2 * s));
    const __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pred_state + 2 * s + 4));
    const __m128i lo_d = _mm_shuffle_epi32(lo, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i hi_d = _mm_shuffle_epi32(hi, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i st0 = _mm_unpacklo_epi64(lo_d, hi_d);
    const __m128i st1 = _mm_unpackhi_epi64(lo_d, hi_d);

    const __m128i slo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pred_symbols + 2 * s));
    const __m128i shi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pred_symbols + 2 * s + 4));
    const __m128i slo_d = _mm_shuffle_epi32(slo, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i shi_d = _mm_shuffle_epi32(shi, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i sy0 = _mm_unpacklo_epi64(slo_d, shi_d);
    const __m128i sy1 = _mm_unpackhi_epi64(slo_d, shi_d);

    const __m256d a0 = _mm256_i32gather_pd(acc, st0, 8);
    const __m256d a1 = _mm256_i32gather_pd(acc, st1, 8);
    const __m256d bm0 = _mm256_i32gather_pd(scaled_metric_by_pattern, sy0, 8);
    const __m256d bm1 = _mm256_i32gather_pd(scaled_metric_by_pattern, sy1, 8);
    const __m256d cand0 = _mm256_add_pd(a0, bm0);
    const __m256d cand1 = _mm256_add_pd(a1, bm1);

    const __m256d sel = _mm256_cmp_pd(cand1, cand0, _CMP_LT_OQ);  // tie -> 0
    _mm256_storeu_pd(next_acc + s, _mm256_blendv_pd(cand0, cand1, sel));
    _mm256_storeu_pd(winning_scaled_metric + s,
                     _mm256_blendv_pd(bm0, bm1, sel));
    const int mask = _mm256_movemask_pd(sel);
    survivor_row[s] = static_cast<std::uint8_t>(mask & 1);
    survivor_row[s + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    survivor_row[s + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    survivor_row[s + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const double bm0 = scaled_metric_by_pattern[pred_symbols[2 * s]];
    const double bm1 = scaled_metric_by_pattern[pred_symbols[2 * s + 1]];
    const double cand0 = acc[pred_state[2 * s]] + bm0;
    const double cand1 = acc[pred_state[2 * s + 1]] + bm1;
    if (cand1 < cand0) {
      next_acc[s] = cand1;
      survivor_row[s] = 1;
      winning_scaled_metric[s] = bm1;
    } else {
      next_acc[s] = cand0;
      survivor_row[s] = 0;
      winning_scaled_metric[s] = bm0;
    }
  }
}

void quantize_block_avx2(const double* rx, int* out, std::size_t count,
                         double step, double offset, int max_level) {
  const __m256d voffset = _mm256_set1_pd(offset);
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256d vtop = _mm256_set1_pd(static_cast<double>(max_level));
  const __m256d vzero = _mm256_setzero_pd();
  const std::size_t vec_count = count & ~std::size_t{3};
  for (std::size_t i = 0; i < vec_count; i += 4) {
    const __m256d v = _mm256_loadu_pd(rx + i);
    const __m256d scaled = _mm256_div_pd(_mm256_sub_pd(v, voffset), vstep);
    const __m256d clamped = _mm256_max_pd(_mm256_min_pd(scaled, vtop), vzero);
    const __m128i levels = _mm256_cvttpd_epi32(clamped);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), levels);
  }
  if (vec_count != count) {
    detail::quantize_block_scalar(rx + vec_count, out + vec_count,
                                  count - vec_count, step, offset, max_level);
  }
}

}  // namespace metacore::comm::simd::detail
