// Portable scalar reference for the frame-parallel (lane-major) ACS
// kernels. Each lane is an independent frame; the update applied to lane l
// is byte-for-byte the single-frame scalar kernel's update, so a
// frame-parallel decode at any lane count reproduces the per-frame decode
// exactly. The lane loop is the inner loop — for L independent frames the
// compiler can keep the per-lane candidates in registers, and the SIMD
// tiers replace exactly this inner loop with vector-width chunks.
#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

void frame_viterbi_acs_scalar(const std::int32_t* acc, std::int32_t* next_acc,
                              const std::uint32_t* pred_state,
                              const std::uint32_t* pred_symbols,
                              const std::int32_t* metric_by_pattern,
                              std::uint8_t* survivor_row,
                              std::size_t num_states, std::size_t lanes,
                              std::int32_t* best_metric,
                              std::uint32_t* best_state) {
  for (std::size_t l = 0; l < lanes; ++l) {
    best_metric[l] = std::numeric_limits<std::int32_t>::max();
    best_state[l] = 0;
  }
  for (std::size_t s = 0; s < num_states; ++s) {
    const std::int32_t* a0 = acc + pred_state[2 * s] * lanes;
    const std::int32_t* a1 = acc + pred_state[2 * s + 1] * lanes;
    const std::int32_t* m0 = metric_by_pattern + pred_symbols[2 * s] * lanes;
    const std::int32_t* m1 =
        metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
    std::int32_t* next = next_acc + s * lanes;
    std::uint8_t* surv = survivor_row + s * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::int32_t cand0 = a0[l] + m0[l];
      const std::int32_t cand1 = a1[l] + m1[l];
      std::int32_t win = cand0;
      std::uint8_t sel = 0;
      if (cand1 < cand0) {
        win = cand1;
        sel = 1;
      }
      next[l] = win;
      surv[l] = sel;
      if (win < best_metric[l]) {
        best_metric[l] = win;
        best_state[l] = static_cast<std::uint32_t>(s);
      }
    }
  }
}

void frame_multires_acs_scalar(const double* acc, double* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const double* scaled_metric_by_pattern,
                               std::uint8_t* survivor_row,
                               double* winning_scaled_metric,
                               std::size_t num_states, std::size_t lanes) {
  for (std::size_t s = 0; s < num_states; ++s) {
    const double* a0 = acc + pred_state[2 * s] * lanes;
    const double* a1 = acc + pred_state[2 * s + 1] * lanes;
    const double* bm0 =
        scaled_metric_by_pattern + pred_symbols[2 * s] * lanes;
    const double* bm1 =
        scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
    double* next = next_acc + s * lanes;
    double* winning = winning_scaled_metric + s * lanes;
    std::uint8_t* surv = survivor_row + s * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double cand0 = a0[l] + bm0[l];
      const double cand1 = a1[l] + bm1[l];
      if (cand1 < cand0) {
        next[l] = cand1;
        surv[l] = 1;
        winning[l] = bm1[l];
      } else {
        next[l] = cand0;
        surv[l] = 0;
        winning[l] = bm0[l];
      }
    }
  }
}

}  // namespace metacore::comm::simd::detail
