// SSE4.2 kernels: 4 states (int32 ACS), 2 states (double low-res ACS), or
// 2 samples (quantization) per iteration. SSE4 has no gather, so table
// reads are scalar inserts; the compare-select, survivor packing, and
// running-minimum tracking are vectorized. This TU is the only one
// compiled with -msse4.2 — it must only ever be reached through the
// dispatch table after a CPUID check.
#include <cstring>
#include <limits>
#include <smmintrin.h>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

namespace {

/// Gathers four int32 table entries by index (SSE4 scalar-load gather).
inline __m128i gather_epi32(const std::int32_t* table, __m128i idx) {
  const auto i0 = static_cast<std::uint32_t>(_mm_extract_epi32(idx, 0));
  const auto i1 = static_cast<std::uint32_t>(_mm_extract_epi32(idx, 1));
  const auto i2 = static_cast<std::uint32_t>(_mm_extract_epi32(idx, 2));
  const auto i3 = static_cast<std::uint32_t>(_mm_extract_epi32(idx, 3));
  return _mm_setr_epi32(table[i0], table[i1], table[i2], table[i3]);
}

}  // namespace

AcsStepResult viterbi_acs_sse4(const std::int32_t* acc, std::int32_t* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const std::int32_t* metric_by_pattern,
                               std::uint8_t* survivor_row,
                               std::size_t num_states) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  std::uint32_t best_state = 0;

  const std::size_t vec_states = num_states & ~std::size_t{3};
  if (vec_states != 0) {
    __m128i vbest = _mm_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m128i vbest_idx = _mm_setzero_si128();
    __m128i vidx = _mm_setr_epi32(0, 1, 2, 3);
    const __m128i vinc = _mm_set1_epi32(4);
    // Byte-collect control: low byte of each int32 lane -> bytes 0..3.
    const __m128i pack_sel =
        _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                      -1);
    for (std::size_t s = 0; s < vec_states; s += 4) {
      // Branches 2s..2s+7 are interleaved (even = branch 0, odd = branch 1);
      // deinterleave two 4-lane loads into branch-0 / branch-1 index vectors.
      const __m128i lo = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pred_state + 2 * s));
      const __m128i hi = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pred_state + 2 * s + 4));
      const __m128i lo_d = _mm_shuffle_epi32(lo, _MM_SHUFFLE(3, 1, 2, 0));
      const __m128i hi_d = _mm_shuffle_epi32(hi, _MM_SHUFFLE(3, 1, 2, 0));
      const __m128i st0 = _mm_unpacklo_epi64(lo_d, hi_d);
      const __m128i st1 = _mm_unpackhi_epi64(lo_d, hi_d);

      const __m128i slo = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pred_symbols + 2 * s));
      const __m128i shi = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pred_symbols + 2 * s + 4));
      const __m128i slo_d = _mm_shuffle_epi32(slo, _MM_SHUFFLE(3, 1, 2, 0));
      const __m128i shi_d = _mm_shuffle_epi32(shi, _MM_SHUFFLE(3, 1, 2, 0));
      const __m128i sy0 = _mm_unpacklo_epi64(slo_d, shi_d);
      const __m128i sy1 = _mm_unpackhi_epi64(slo_d, shi_d);

      const __m128i cand0 =
          _mm_add_epi32(gather_epi32(acc, st0),
                        gather_epi32(metric_by_pattern, sy0));
      const __m128i cand1 =
          _mm_add_epi32(gather_epi32(acc, st1),
                        gather_epi32(metric_by_pattern, sy1));

      // sel = cand1 < cand0 (tie -> branch 0), lanes all-ones where true.
      const __m128i sel = _mm_cmpgt_epi32(cand0, cand1);
      const __m128i win = _mm_blendv_epi8(cand0, cand1, sel);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(next_acc + s), win);

      // Survivor bytes: 0/1 per lane, packed to the low 4 bytes.
      const __m128i sel_bits = _mm_srli_epi32(sel, 31);
      const __m128i packed = _mm_shuffle_epi8(sel_bits, pack_sel);
      const std::int32_t surv_word = _mm_cvtsi128_si32(packed);
      std::memcpy(survivor_row + s, &surv_word, sizeof(surv_word));

      // Strict-< running minimum per lane, remembering the first index.
      const __m128i better = _mm_cmpgt_epi32(vbest, win);
      vbest = _mm_blendv_epi8(vbest, win, better);
      vbest_idx = _mm_blendv_epi8(vbest_idx, vidx, better);
      vidx = _mm_add_epi32(vidx, vinc);
    }
    // Horizontal reduce: min value, and among equal lanes the smallest
    // stored index — each lane's stored index is already the first within
    // that lane, so the smallest across lanes is the global first.
    alignas(16) std::int32_t lane_best[4];
    alignas(16) std::uint32_t lane_idx[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lane_best), vbest);
    _mm_store_si128(reinterpret_cast<__m128i*>(lane_idx), vbest_idx);
    for (int j = 0; j < 4; ++j) {
      if (lane_best[j] < best ||
          (lane_best[j] == best && lane_idx[j] < best_state)) {
        best = lane_best[j];
        best_state = lane_idx[j];
      }
    }
  }

  // Scalar tail (also covers trellises smaller than one vector).
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const std::int32_t cand0 =
        acc[pred_state[2 * s]] + metric_by_pattern[pred_symbols[2 * s]];
    const std::int32_t cand1 =
        acc[pred_state[2 * s + 1]] + metric_by_pattern[pred_symbols[2 * s + 1]];
    std::int32_t win = cand0;
    std::uint8_t sel = 0;
    if (cand1 < cand0) {
      win = cand1;
      sel = 1;
    }
    next_acc[s] = win;
    survivor_row[s] = sel;
    if (win < best) {
      best = win;
      best_state = static_cast<std::uint32_t>(s);
    }
  }
  return {best, best_state};
}

void multires_acs_sse4(const double* acc, double* next_acc,
                       const std::uint32_t* pred_state,
                       const std::uint32_t* pred_symbols,
                       const double* scaled_metric_by_pattern,
                       std::uint8_t* survivor_row,
                       double* winning_scaled_metric,
                       std::size_t num_states) {
  const std::size_t vec_states = num_states & ~std::size_t{1};
  for (std::size_t s = 0; s < vec_states; s += 2) {
    // Two states per iteration: branches 2s..2s+3 (interleaved).
    const double bm0a = scaled_metric_by_pattern[pred_symbols[2 * s]];
    const double bm1a = scaled_metric_by_pattern[pred_symbols[2 * s + 1]];
    const double bm0b = scaled_metric_by_pattern[pred_symbols[2 * s + 2]];
    const double bm1b = scaled_metric_by_pattern[pred_symbols[2 * s + 3]];
    const __m128d bm0 = _mm_setr_pd(bm0a, bm0b);
    const __m128d bm1 = _mm_setr_pd(bm1a, bm1b);
    const __m128d a0 =
        _mm_setr_pd(acc[pred_state[2 * s]], acc[pred_state[2 * s + 2]]);
    const __m128d a1 =
        _mm_setr_pd(acc[pred_state[2 * s + 1]], acc[pred_state[2 * s + 3]]);
    const __m128d cand0 = _mm_add_pd(a0, bm0);
    const __m128d cand1 = _mm_add_pd(a1, bm1);
    const __m128d sel = _mm_cmplt_pd(cand1, cand0);  // tie -> branch 0
    _mm_storeu_pd(next_acc + s, _mm_blendv_pd(cand0, cand1, sel));
    _mm_storeu_pd(winning_scaled_metric + s, _mm_blendv_pd(bm0, bm1, sel));
    const int mask = _mm_movemask_pd(sel);
    survivor_row[s] = static_cast<std::uint8_t>(mask & 1);
    survivor_row[s + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
  }
  for (std::size_t s = vec_states; s < num_states; ++s) {
    const double bm0 = scaled_metric_by_pattern[pred_symbols[2 * s]];
    const double bm1 = scaled_metric_by_pattern[pred_symbols[2 * s + 1]];
    const double cand0 = acc[pred_state[2 * s]] + bm0;
    const double cand1 = acc[pred_state[2 * s + 1]] + bm1;
    if (cand1 < cand0) {
      next_acc[s] = cand1;
      survivor_row[s] = 1;
      winning_scaled_metric[s] = bm1;
    } else {
      next_acc[s] = cand0;
      survivor_row[s] = 0;
      winning_scaled_metric[s] = bm0;
    }
  }
}

void quantize_block_sse4(const double* rx, int* out, std::size_t count,
                         double step, double offset, int max_level) {
  const __m128d voffset = _mm_set1_pd(offset);
  const __m128d vstep = _mm_set1_pd(step);
  const __m128d vtop = _mm_set1_pd(static_cast<double>(max_level));
  const __m128d vzero = _mm_setzero_pd();
  const std::size_t vec_count = count & ~std::size_t{1};
  for (std::size_t i = 0; i < vec_count; i += 2) {
    const __m128d v = _mm_loadu_pd(rx + i);
    const __m128d scaled = _mm_div_pd(_mm_sub_pd(v, voffset), vstep);
    const __m128d clamped = _mm_max_pd(_mm_min_pd(scaled, vtop), vzero);
    const __m128i levels = _mm_cvttpd_epi32(clamped);  // 2 int32 in lanes 0,1
    out[i] = _mm_cvtsi128_si32(levels);
    out[i + 1] = _mm_extract_epi32(levels, 1);
  }
  if (vec_count != count) {
    detail::quantize_block_scalar(rx + vec_count, out + vec_count,
                                  count - vec_count, step, offset, max_level);
  }
}

}  // namespace metacore::comm::simd::detail
