// State-parallel and frame-parallel decoder kernels with runtime ISA
// dispatch. The decode hot path (Section 3.2's add-compare-select recursion)
// operates on the flat structure-of-arrays trellis view
// (`Trellis::pred_states` / `pred_symbols`) and per-step branch-metric
// tables, so one trellis step is a pure data-parallel butterfly update over
// all states. This layer provides that update as free-function kernels in
// four implementations — a portable scalar reference, SSE4.2, AVX2, and
// AVX-512 — selected once at startup by CPUID (overridable via
// METACORE_SIMD=scalar|sse4|avx2|avx512, or programmatically via force_isa
// for tests and benchmarks). Every implementation is bit-identical to the
// scalar reference: same compare-select tie-breaking (ties toward
// predecessor branch 0), same first-minimum semantics for the traceback
// start state, same survivor bytes.
//
// Two parallelization axes are provided:
//  * State-parallel kernels vectorize one frame's trellis step across its
//    states (gathered table reads; saturate only at large K).
//  * Frame-parallel kernels vectorize one state's update across L
//    *independent frames* whose path metrics are interleaved lane-major
//    (`acc[state * lanes + lane]`), so every vector load is contiguous and
//    small-K trellises still fill the vector width. See comm/frame_decode.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace metacore::comm::simd {

/// Instruction-set tiers, in dispatch preference order (highest wins).
enum class Isa : std::uint8_t { Scalar = 0, Sse4 = 1, Avx2 = 2, Avx512 = 3 };

std::string to_string(Isa isa);

/// True when the kernel TUs for `isa` were compiled into this binary (the
/// SSE4.2/AVX2/AVX-512 TUs are ISA-guarded in CMake and absent on non-x86
/// builds or with compilers lacking the -m flags).
bool isa_compiled(Isa isa);

/// True when `isa` is compiled in AND the running CPU supports it; Scalar
/// is always available.
bool isa_available(Isa isa);

/// The currently dispatched tier. Resolved once on first use: the
/// METACORE_SIMD environment override if set (invalid values throw
/// std::invalid_argument, unavailable tiers throw std::runtime_error),
/// otherwise the best available tier.
Isa dispatched_isa();

/// Re-points the dispatched kernels at `isa` (throws std::runtime_error if
/// unavailable). Test/benchmark hook: the equivalence matrix and the
/// simd-vs-scalar bench pass flip tiers inside one process. Not intended
/// for use while decoders are running on other threads.
void force_isa(Isa isa);

/// Natural frame-lane count for a tier: the number of int32 path metrics
/// one vector register holds (scalar/SSE4.2: 4, AVX2: 8, AVX-512: 16). The
/// frame-parallel decoders use this as the default lane count; any lane
/// count >= 1 is legal on every tier (vector-width chunks plus a scalar
/// tail), and the decoded output is lane-count-invariant by construction.
std::size_t natural_frame_lanes(Isa isa);

/// Result of one full ACS step: the running minimum over the updated path
/// metrics and the first state index achieving it (the traceback start
/// state; "first" matches std::min_element tie-breaking).
struct AcsStepResult {
  std::int32_t best_metric;
  std::uint32_t best_state;
};

/// One Viterbi ACS trellis step over `num_states` states with int32 path
/// metrics. For each state s, candidates are
///   acc[pred_state[2s+b]] + metric_by_pattern[pred_symbols[2s+b]], b=0,1;
/// the smaller wins (tie -> branch 0), the winning metric is written to
/// next_acc[s] and the winning branch index to survivor_row[s].
/// `acc`/`next_acc` must not alias.
using ViterbiAcsFn = AcsStepResult (*)(const std::int32_t* acc,
                                       std::int32_t* next_acc,
                                       const std::uint32_t* pred_state,
                                       const std::uint32_t* pred_symbols,
                                       const std::int32_t* metric_by_pattern,
                                       std::uint8_t* survivor_row,
                                       std::size_t num_states);

/// One multiresolution low-resolution ACS step (phase 1 of Section 3.3)
/// with double path metrics and pre-scaled branch metrics: candidates are
///   acc[pred_state[2s+b]] + scaled_metric_by_pattern[pred_symbols[2s+b]].
/// Besides next_acc and survivor_row, the winning branch's scaled metric is
/// written to winning_scaled_metric[s] (phase 2's correction term needs
/// it). No minimum is tracked: the floor scan runs after the high-res
/// refinement mutates the M best states.
using MultiresAcsFn = void (*)(const double* acc, double* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const double* scaled_metric_by_pattern,
                               std::uint8_t* survivor_row,
                               double* winning_scaled_metric,
                               std::size_t num_states);

/// One frame-parallel Viterbi ACS trellis step: `lanes` independent frames'
/// int32 path metrics interleaved lane-major (frame l's metric for state s
/// at acc[s * lanes + l]; frame l's branch metric for symbol pattern p at
/// metric_by_pattern[p * lanes + l]; survivor byte at
/// survivor_row[s * lanes + l]). The trellis structure (pred_state /
/// pred_symbols, both indexed 2s+b) is shared by every lane, so all vector
/// loads are contiguous — no gathers. Semantics per lane are exactly
/// ViterbiAcsFn's: ties toward branch 0, and the per-lane running minimum /
/// first argmin state land in best_metric[l] / best_state[l].
using FrameViterbiAcsFn = void (*)(const std::int32_t* acc,
                                   std::int32_t* next_acc,
                                   const std::uint32_t* pred_state,
                                   const std::uint32_t* pred_symbols,
                                   const std::int32_t* metric_by_pattern,
                                   std::uint8_t* survivor_row,
                                   std::size_t num_states, std::size_t lanes,
                                   std::int32_t* best_metric,
                                   std::uint32_t* best_state);

/// Frame-parallel multiresolution low-res ACS step: the lane-major layout
/// of FrameViterbiAcsFn with double path metrics and per-lane winning
/// scaled branch metrics (winning_scaled_metric[s * lanes + l]). No minimum
/// is tracked, mirroring MultiresAcsFn.
using FrameMultiresAcsFn = void (*)(const double* acc, double* next_acc,
                                    const std::uint32_t* pred_state,
                                    const std::uint32_t* pred_symbols,
                                    const double* scaled_metric_by_pattern,
                                    std::uint8_t* survivor_row,
                                    double* winning_scaled_metric,
                                    std::size_t num_states, std::size_t lanes);

/// Batch quantization: out[i] = clamp(floor((rx[i] - offset) / step), 0,
/// max_level) for i in [0, count), computed branchlessly (the clamp happens
/// in the double domain before conversion, so the kernel is defined for any
/// finite input). Bit-identical to Quantizer::quantize per sample.
using QuantizeBlockFn = void (*)(const double* rx, int* out, std::size_t count,
                                 double step, double offset, int max_level);

/// The dispatched kernels (resolved per dispatched_isa()/force_isa()).
ViterbiAcsFn viterbi_acs();
MultiresAcsFn multires_acs();
FrameViterbiAcsFn frame_viterbi_acs();
FrameMultiresAcsFn frame_multires_acs();
QuantizeBlockFn quantize_block();

/// Per-tier kernel access for the equivalence tests; throws
/// std::runtime_error when `isa` is not available.
ViterbiAcsFn viterbi_acs(Isa isa);
MultiresAcsFn multires_acs(Isa isa);
FrameViterbiAcsFn frame_viterbi_acs(Isa isa);
FrameMultiresAcsFn frame_multires_acs(Isa isa);
QuantizeBlockFn quantize_block(Isa isa);

namespace detail {
// Kernel entry points per tier. The scalar reference is always compiled;
// the SSE4.2/AVX2/AVX-512 TUs exist only when CMake enabled them (the
// METACORE_SIMD_HAVE_* macros gate the dispatch table, never the callers).
AcsStepResult viterbi_acs_scalar(const std::int32_t* acc,
                                 std::int32_t* next_acc,
                                 const std::uint32_t* pred_state,
                                 const std::uint32_t* pred_symbols,
                                 const std::int32_t* metric_by_pattern,
                                 std::uint8_t* survivor_row,
                                 std::size_t num_states);
void multires_acs_scalar(const double* acc, double* next_acc,
                         const std::uint32_t* pred_state,
                         const std::uint32_t* pred_symbols,
                         const double* scaled_metric_by_pattern,
                         std::uint8_t* survivor_row,
                         double* winning_scaled_metric,
                         std::size_t num_states);
void quantize_block_scalar(const double* rx, int* out, std::size_t count,
                           double step, double offset, int max_level);
void frame_viterbi_acs_scalar(const std::int32_t* acc, std::int32_t* next_acc,
                              const std::uint32_t* pred_state,
                              const std::uint32_t* pred_symbols,
                              const std::int32_t* metric_by_pattern,
                              std::uint8_t* survivor_row,
                              std::size_t num_states, std::size_t lanes,
                              std::int32_t* best_metric,
                              std::uint32_t* best_state);
void frame_multires_acs_scalar(const double* acc, double* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const double* scaled_metric_by_pattern,
                               std::uint8_t* survivor_row,
                               double* winning_scaled_metric,
                               std::size_t num_states, std::size_t lanes);

AcsStepResult viterbi_acs_sse4(const std::int32_t* acc, std::int32_t* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const std::int32_t* metric_by_pattern,
                               std::uint8_t* survivor_row,
                               std::size_t num_states);
void multires_acs_sse4(const double* acc, double* next_acc,
                       const std::uint32_t* pred_state,
                       const std::uint32_t* pred_symbols,
                       const double* scaled_metric_by_pattern,
                       std::uint8_t* survivor_row,
                       double* winning_scaled_metric,
                       std::size_t num_states);
void quantize_block_sse4(const double* rx, int* out, std::size_t count,
                         double step, double offset, int max_level);
void frame_viterbi_acs_sse4(const std::int32_t* acc, std::int32_t* next_acc,
                            const std::uint32_t* pred_state,
                            const std::uint32_t* pred_symbols,
                            const std::int32_t* metric_by_pattern,
                            std::uint8_t* survivor_row,
                            std::size_t num_states, std::size_t lanes,
                            std::int32_t* best_metric,
                            std::uint32_t* best_state);
void frame_multires_acs_sse4(const double* acc, double* next_acc,
                             const std::uint32_t* pred_state,
                             const std::uint32_t* pred_symbols,
                             const double* scaled_metric_by_pattern,
                             std::uint8_t* survivor_row,
                             double* winning_scaled_metric,
                             std::size_t num_states, std::size_t lanes);

AcsStepResult viterbi_acs_avx2(const std::int32_t* acc, std::int32_t* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const std::int32_t* metric_by_pattern,
                               std::uint8_t* survivor_row,
                               std::size_t num_states);
void multires_acs_avx2(const double* acc, double* next_acc,
                       const std::uint32_t* pred_state,
                       const std::uint32_t* pred_symbols,
                       const double* scaled_metric_by_pattern,
                       std::uint8_t* survivor_row,
                       double* winning_scaled_metric,
                       std::size_t num_states);
void quantize_block_avx2(const double* rx, int* out, std::size_t count,
                         double step, double offset, int max_level);
void frame_viterbi_acs_avx2(const std::int32_t* acc, std::int32_t* next_acc,
                            const std::uint32_t* pred_state,
                            const std::uint32_t* pred_symbols,
                            const std::int32_t* metric_by_pattern,
                            std::uint8_t* survivor_row,
                            std::size_t num_states, std::size_t lanes,
                            std::int32_t* best_metric,
                            std::uint32_t* best_state);
void frame_multires_acs_avx2(const double* acc, double* next_acc,
                             const std::uint32_t* pred_state,
                             const std::uint32_t* pred_symbols,
                             const double* scaled_metric_by_pattern,
                             std::uint8_t* survivor_row,
                             double* winning_scaled_metric,
                             std::size_t num_states, std::size_t lanes);

AcsStepResult viterbi_acs_avx512(const std::int32_t* acc,
                                 std::int32_t* next_acc,
                                 const std::uint32_t* pred_state,
                                 const std::uint32_t* pred_symbols,
                                 const std::int32_t* metric_by_pattern,
                                 std::uint8_t* survivor_row,
                                 std::size_t num_states);
void multires_acs_avx512(const double* acc, double* next_acc,
                         const std::uint32_t* pred_state,
                         const std::uint32_t* pred_symbols,
                         const double* scaled_metric_by_pattern,
                         std::uint8_t* survivor_row,
                         double* winning_scaled_metric,
                         std::size_t num_states);
void quantize_block_avx512(const double* rx, int* out, std::size_t count,
                           double step, double offset, int max_level);
void frame_viterbi_acs_avx512(const std::int32_t* acc, std::int32_t* next_acc,
                              const std::uint32_t* pred_state,
                              const std::uint32_t* pred_symbols,
                              const std::int32_t* metric_by_pattern,
                              std::uint8_t* survivor_row,
                              std::size_t num_states, std::size_t lanes,
                              std::int32_t* best_metric,
                              std::uint32_t* best_state);
void frame_multires_acs_avx512(const double* acc, double* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const double* scaled_metric_by_pattern,
                               std::uint8_t* survivor_row,
                               double* winning_scaled_metric,
                               std::size_t num_states, std::size_t lanes);
}  // namespace detail

}  // namespace metacore::comm::simd
