// Portable scalar reference kernels. These define the semantics every SIMD
// tier must reproduce bit for bit: compare-select with ties broken toward
// predecessor branch 0 (`cand1 < cand0` picks branch 1), the running
// minimum tracked with strict `<` so the first state achieving it wins
// (std::min_element semantics), and double-domain clamping in the
// quantizer. They are also the dispatch target on non-x86 builds and under
// METACORE_SIMD=scalar.
#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

AcsStepResult viterbi_acs_scalar(const std::int32_t* acc,
                                 std::int32_t* next_acc,
                                 const std::uint32_t* pred_state,
                                 const std::uint32_t* pred_symbols,
                                 const std::int32_t* metric_by_pattern,
                                 std::uint8_t* survivor_row,
                                 std::size_t num_states) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  std::uint32_t best_state = 0;
  for (std::size_t s = 0; s < num_states; ++s) {
    const std::int32_t cand0 =
        acc[pred_state[2 * s]] + metric_by_pattern[pred_symbols[2 * s]];
    const std::int32_t cand1 =
        acc[pred_state[2 * s + 1]] + metric_by_pattern[pred_symbols[2 * s + 1]];
    std::int32_t win = cand0;
    std::uint8_t sel = 0;
    if (cand1 < cand0) {
      win = cand1;
      sel = 1;
    }
    next_acc[s] = win;
    survivor_row[s] = sel;
    if (win < best) {
      best = win;
      best_state = static_cast<std::uint32_t>(s);
    }
  }
  return {best, best_state};
}

void multires_acs_scalar(const double* acc, double* next_acc,
                         const std::uint32_t* pred_state,
                         const std::uint32_t* pred_symbols,
                         const double* scaled_metric_by_pattern,
                         std::uint8_t* survivor_row,
                         double* winning_scaled_metric,
                         std::size_t num_states) {
  for (std::size_t s = 0; s < num_states; ++s) {
    const double bm0 = scaled_metric_by_pattern[pred_symbols[2 * s]];
    const double bm1 = scaled_metric_by_pattern[pred_symbols[2 * s + 1]];
    const double cand0 = acc[pred_state[2 * s]] + bm0;
    const double cand1 = acc[pred_state[2 * s + 1]] + bm1;
    if (cand1 < cand0) {
      next_acc[s] = cand1;
      survivor_row[s] = 1;
      winning_scaled_metric[s] = bm1;
    } else {
      next_acc[s] = cand0;
      survivor_row[s] = 0;
      winning_scaled_metric[s] = bm0;
    }
  }
}

void quantize_block_scalar(const double* rx, int* out, std::size_t count,
                           double step, double offset, int max_level) {
  const double top = static_cast<double>(max_level);
  for (std::size_t i = 0; i < count; ++i) {
    const double scaled = (rx[i] - offset) / step;
    // Clamp in the double domain before converting, mirroring the vector
    // min/max sequence exactly (min first, so a NaN input lands on the top
    // level on every tier); truncation equals floor for the non-negative
    // clamped value.
    double clamped = scaled < top ? scaled : top;
    clamped = clamped > 0.0 ? clamped : 0.0;
    out[i] = static_cast<int>(clamped);
  }
}

}  // namespace metacore::comm::simd::detail
