// Runtime kernel dispatch: CPUID feature detection, the METACORE_SIMD
// environment override, and the atomically swappable kernel table. The
// selection is resolved once (first use) and cached; force_isa() re-points
// the table for tests and benchmarks. Loads are relaxed — the table entries
// are plain function pointers and the kernels themselves are stateless, so
// there is nothing to synchronize beyond the pointer value itself.
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd {

namespace {

struct KernelTable {
  ViterbiAcsFn viterbi;
  MultiresAcsFn multires;
  FrameViterbiAcsFn frame_viterbi;
  FrameMultiresAcsFn frame_multires;
  QuantizeBlockFn quantize;
};

KernelTable table_for(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return {detail::viterbi_acs_scalar, detail::multires_acs_scalar,
              detail::frame_viterbi_acs_scalar,
              detail::frame_multires_acs_scalar, detail::quantize_block_scalar};
#if METACORE_SIMD_HAVE_SSE4
    case Isa::Sse4:
      return {detail::viterbi_acs_sse4, detail::multires_acs_sse4,
              detail::frame_viterbi_acs_sse4, detail::frame_multires_acs_sse4,
              detail::quantize_block_sse4};
#endif
#if METACORE_SIMD_HAVE_AVX2
    case Isa::Avx2:
      return {detail::viterbi_acs_avx2, detail::multires_acs_avx2,
              detail::frame_viterbi_acs_avx2, detail::frame_multires_acs_avx2,
              detail::quantize_block_avx2};
#endif
#if METACORE_SIMD_HAVE_AVX512
    case Isa::Avx512:
      return {detail::viterbi_acs_avx512, detail::multires_acs_avx512,
              detail::frame_viterbi_acs_avx512,
              detail::frame_multires_acs_avx512, detail::quantize_block_avx512};
#endif
    default:
      throw std::runtime_error("simd: kernel tier not compiled in: " +
                               to_string(isa));
  }
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse4:
      return __builtin_cpu_supports("sse4.2") != 0;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case Isa::Sse4:
    case Isa::Avx2:
    case Isa::Avx512:
      return false;
#endif
  }
  return false;
}

Isa best_available() {
  if (isa_available(Isa::Avx512)) return Isa::Avx512;
  if (isa_available(Isa::Avx2)) return Isa::Avx2;
  if (isa_available(Isa::Sse4)) return Isa::Sse4;
  return Isa::Scalar;
}

/// Startup selection: METACORE_SIMD if set, else the best available tier.
Isa initial_isa() {
  const char* env = std::getenv("METACORE_SIMD");
  if (env == nullptr || *env == '\0') return best_available();
  const std::string value(env);
  Isa requested;
  if (value == "scalar") {
    requested = Isa::Scalar;
  } else if (value == "sse4") {
    requested = Isa::Sse4;
  } else if (value == "avx2") {
    requested = Isa::Avx2;
  } else if (value == "avx512") {
    requested = Isa::Avx512;
  } else {
    throw std::invalid_argument(
        "METACORE_SIMD must be 'scalar', 'sse4', 'avx2', or 'avx512', got '" +
        value + "'");
  }
  if (!isa_available(requested)) {
    throw std::runtime_error("METACORE_SIMD=" + value +
                             " requested but that tier is " +
                             (isa_compiled(requested)
                                  ? "not supported by this CPU"
                                  : "not compiled into this binary"));
  }
  return requested;
}

/// The dispatch state. The Isa enum and the kernel pointers are stored in
/// separate atomics, all written together under force_isa; readers only
/// ever need one pointer at a time, and every tier is bit-identical, so a
/// racing reader observing a mixed table is still correct (it merely runs
/// one step on the previous tier).
struct Dispatch {
  std::atomic<Isa> isa;
  std::atomic<ViterbiAcsFn> viterbi;
  std::atomic<MultiresAcsFn> multires;
  std::atomic<FrameViterbiAcsFn> frame_viterbi;
  std::atomic<FrameMultiresAcsFn> frame_multires;
  std::atomic<QuantizeBlockFn> quantize;

  Dispatch() {
    const Isa selected = initial_isa();
    const KernelTable table = table_for(selected);
    isa.store(selected, std::memory_order_relaxed);
    viterbi.store(table.viterbi, std::memory_order_relaxed);
    multires.store(table.multires, std::memory_order_relaxed);
    frame_viterbi.store(table.frame_viterbi, std::memory_order_relaxed);
    frame_multires.store(table.frame_multires, std::memory_order_relaxed);
    quantize.store(table.quantize, std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;  // thread-safe magic-static init; throws propagate
  return d;
}

KernelTable table_for_checked(Isa isa) {
  if (!isa_available(isa)) {
    throw std::runtime_error("simd: tier unavailable: " + to_string(isa));
  }
  return table_for(isa);
}

}  // namespace

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Sse4:
      return "sse4";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
  }
  return "?";
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Sse4:
#if METACORE_SIMD_HAVE_SSE4
      return true;
#else
      return false;
#endif
    case Isa::Avx2:
#if METACORE_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Isa::Avx512:
#if METACORE_SIMD_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_available(Isa isa) { return isa_compiled(isa) && cpu_supports(isa); }

Isa dispatched_isa() {
  return dispatch().isa.load(std::memory_order_relaxed);
}

void force_isa(Isa isa) {
  if (!isa_available(isa)) {
    throw std::runtime_error("simd::force_isa: tier unavailable: " +
                             to_string(isa));
  }
  const KernelTable table = table_for(isa);
  Dispatch& d = dispatch();
  d.isa.store(isa, std::memory_order_relaxed);
  d.viterbi.store(table.viterbi, std::memory_order_relaxed);
  d.multires.store(table.multires, std::memory_order_relaxed);
  d.frame_viterbi.store(table.frame_viterbi, std::memory_order_relaxed);
  d.frame_multires.store(table.frame_multires, std::memory_order_relaxed);
  d.quantize.store(table.quantize, std::memory_order_relaxed);
}

std::size_t natural_frame_lanes(Isa isa) {
  switch (isa) {
    case Isa::Avx512:
      return 16;  // one ZMM register of int32 path metrics
    case Isa::Avx2:
      return 8;  // one YMM register
    case Isa::Sse4:
    case Isa::Scalar:
      return 4;  // one XMM register; scalar matches so lane counts agree
  }
  return 4;
}

ViterbiAcsFn viterbi_acs() {
  return dispatch().viterbi.load(std::memory_order_relaxed);
}
MultiresAcsFn multires_acs() {
  return dispatch().multires.load(std::memory_order_relaxed);
}
FrameViterbiAcsFn frame_viterbi_acs() {
  return dispatch().frame_viterbi.load(std::memory_order_relaxed);
}
FrameMultiresAcsFn frame_multires_acs() {
  return dispatch().frame_multires.load(std::memory_order_relaxed);
}
QuantizeBlockFn quantize_block() {
  return dispatch().quantize.load(std::memory_order_relaxed);
}

ViterbiAcsFn viterbi_acs(Isa isa) { return table_for_checked(isa).viterbi; }
MultiresAcsFn multires_acs(Isa isa) { return table_for_checked(isa).multires; }
FrameViterbiAcsFn frame_viterbi_acs(Isa isa) {
  return table_for_checked(isa).frame_viterbi;
}
FrameMultiresAcsFn frame_multires_acs(Isa isa) {
  return table_for_checked(isa).frame_multires;
}
QuantizeBlockFn quantize_block(Isa isa) {
  return table_for_checked(isa).quantize;
}

}  // namespace metacore::comm::simd
