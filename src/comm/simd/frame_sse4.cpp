// SSE4.2 frame-parallel kernels: 4 frames (int32 ACS) or 2 frames (double
// low-res ACS) per iteration. Because the lane-major layout puts the L
// frames' metrics for one state side by side and the trellis indices are
// shared across lanes, every load and store is contiguous — the gathers
// that dominate the state-parallel kernels disappear entirely, which is
// what lets small-K trellises profit from the vector width. This TU is the
// only one compiled with -msse4.2 together with acs_sse4.cpp — it must only
// be reached through the dispatch table after a CPUID check.
#include <smmintrin.h>

#include <cstring>
#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

void frame_viterbi_acs_sse4(const std::int32_t* acc, std::int32_t* next_acc,
                            const std::uint32_t* pred_state,
                            const std::uint32_t* pred_symbols,
                            const std::int32_t* metric_by_pattern,
                            std::uint8_t* survivor_row,
                            std::size_t num_states, std::size_t lanes,
                            std::int32_t* best_metric,
                            std::uint32_t* best_state) {
  const std::size_t vec_lanes = lanes & ~std::size_t{3};
  // Low byte of each int32 lane -> 4 contiguous bytes.
  const __m128i pack_sel = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1,
                                         -1, -1, -1, -1, -1, -1);
  for (std::size_t lc = 0; lc < vec_lanes; lc += 4) {
    __m128i vbest = _mm_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m128i vbest_idx = _mm_setzero_si128();
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          acc + pred_state[2 * s] * lanes + lc));
      const __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          acc + pred_state[2 * s + 1] * lanes + lc));
      const __m128i m0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          metric_by_pattern + pred_symbols[2 * s] * lanes + lc));
      const __m128i m1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc));
      const __m128i cand0 = _mm_add_epi32(a0, m0);
      const __m128i cand1 = _mm_add_epi32(a1, m1);

      // sel = cand1 < cand0 (tie -> branch 0), lanes all-ones where true.
      const __m128i sel = _mm_cmpgt_epi32(cand0, cand1);
      const __m128i win = _mm_blendv_epi8(cand0, cand1, sel);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(next_acc + s * lanes + lc), win);

      const __m128i sel_bits = _mm_srli_epi32(sel, 31);
      const __m128i packed = _mm_shuffle_epi8(sel_bits, pack_sel);
      const int surv = _mm_cvtsi128_si32(packed);
      std::memcpy(survivor_row + s * lanes + lc, &surv, 4);

      // Strict-< running minimum per lane; states visited in order, so the
      // kept index is the first state achieving the minimum.
      const __m128i better = _mm_cmpgt_epi32(vbest, win);
      vbest = _mm_blendv_epi8(vbest, win, better);
      vbest_idx = _mm_blendv_epi8(
          vbest_idx, _mm_set1_epi32(static_cast<int>(s)), better);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(best_metric + lc), vbest);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(best_state + lc), vbest_idx);
  }

  // Scalar tail lanes (lane counts need not be a vector multiple).
  if (vec_lanes != lanes) {
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      best_metric[l] = std::numeric_limits<std::int32_t>::max();
      best_state[l] = 0;
    }
    for (std::size_t s = 0; s < num_states; ++s) {
      const std::int32_t* a0 = acc + pred_state[2 * s] * lanes;
      const std::int32_t* a1 = acc + pred_state[2 * s + 1] * lanes;
      const std::int32_t* m0 = metric_by_pattern + pred_symbols[2 * s] * lanes;
      const std::int32_t* m1 =
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const std::int32_t cand0 = a0[l] + m0[l];
        const std::int32_t cand1 = a1[l] + m1[l];
        std::int32_t win = cand0;
        std::uint8_t sel = 0;
        if (cand1 < cand0) {
          win = cand1;
          sel = 1;
        }
        next_acc[s * lanes + l] = win;
        survivor_row[s * lanes + l] = sel;
        if (win < best_metric[l]) {
          best_metric[l] = win;
          best_state[l] = static_cast<std::uint32_t>(s);
        }
      }
    }
  }
}

void frame_multires_acs_sse4(const double* acc, double* next_acc,
                             const std::uint32_t* pred_state,
                             const std::uint32_t* pred_symbols,
                             const double* scaled_metric_by_pattern,
                             std::uint8_t* survivor_row,
                             double* winning_scaled_metric,
                             std::size_t num_states, std::size_t lanes) {
  const std::size_t vec_lanes = lanes & ~std::size_t{1};
  for (std::size_t lc = 0; lc < vec_lanes; lc += 2) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m128d a0 = _mm_loadu_pd(acc + pred_state[2 * s] * lanes + lc);
      const __m128d a1 =
          _mm_loadu_pd(acc + pred_state[2 * s + 1] * lanes + lc);
      const __m128d bm0 = _mm_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes + lc);
      const __m128d bm1 = _mm_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc);
      const __m128d cand0 = _mm_add_pd(a0, bm0);
      const __m128d cand1 = _mm_add_pd(a1, bm1);

      const __m128d sel = _mm_cmplt_pd(cand1, cand0);  // tie -> branch 0
      _mm_storeu_pd(next_acc + s * lanes + lc,
                    _mm_blendv_pd(cand0, cand1, sel));
      _mm_storeu_pd(winning_scaled_metric + s * lanes + lc,
                    _mm_blendv_pd(bm0, bm1, sel));
      const int mask = _mm_movemask_pd(sel);
      survivor_row[s * lanes + lc] = static_cast<std::uint8_t>(mask & 1);
      survivor_row[s * lanes + lc + 1] =
          static_cast<std::uint8_t>((mask >> 1) & 1);
    }
  }
  if (vec_lanes != lanes) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const double* a0 = acc + pred_state[2 * s] * lanes;
      const double* a1 = acc + pred_state[2 * s + 1] * lanes;
      const double* bm0 =
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes;
      const double* bm1 =
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const double cand0 = a0[l] + bm0[l];
        const double cand1 = a1[l] + bm1[l];
        if (cand1 < cand0) {
          next_acc[s * lanes + l] = cand1;
          survivor_row[s * lanes + l] = 1;
          winning_scaled_metric[s * lanes + l] = bm1[l];
        } else {
          next_acc[s * lanes + l] = cand0;
          survivor_row[s * lanes + l] = 0;
          winning_scaled_metric[s * lanes + l] = bm0[l];
        }
      }
    }
  }
}

}  // namespace metacore::comm::simd::detail
