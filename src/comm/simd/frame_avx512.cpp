// AVX-512 frame-parallel kernels: 16 frames (int32 ACS) or 8 frames
// (double low-res ACS) per iteration, using mask registers for the
// compare-select and the survivor-byte extraction. All loads are
// contiguous in the lane-major layout — no gathers. Only AVX512F
// instructions are used, so -mavx512f is the only flag this TU needs; it
// must only be reached through the dispatch table after a CPUID check.
#include <immintrin.h>

#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

void frame_viterbi_acs_avx512(const std::int32_t* acc, std::int32_t* next_acc,
                              const std::uint32_t* pred_state,
                              const std::uint32_t* pred_symbols,
                              const std::int32_t* metric_by_pattern,
                              std::uint8_t* survivor_row,
                              std::size_t num_states, std::size_t lanes,
                              std::int32_t* best_metric,
                              std::uint32_t* best_state) {
  const std::size_t vec_lanes = lanes & ~std::size_t{15};
  for (std::size_t lc = 0; lc < vec_lanes; lc += 16) {
    __m512i vbest = _mm512_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m512i vbest_idx = _mm512_setzero_si512();
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m512i a0 =
          _mm512_loadu_si512(acc + pred_state[2 * s] * lanes + lc);
      const __m512i a1 =
          _mm512_loadu_si512(acc + pred_state[2 * s + 1] * lanes + lc);
      const __m512i m0 = _mm512_loadu_si512(
          metric_by_pattern + pred_symbols[2 * s] * lanes + lc);
      const __m512i m1 = _mm512_loadu_si512(
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc);
      const __m512i cand0 = _mm512_add_epi32(a0, m0);
      const __m512i cand1 = _mm512_add_epi32(a1, m1);

      // sel = cand1 < cand0 (tie -> branch 0). On a tie min picks the
      // equal value, so min + the strict mask reproduce the scalar pair.
      const __mmask16 sel = _mm512_cmpgt_epi32_mask(cand0, cand1);
      const __m512i win = _mm512_min_epi32(cand0, cand1);
      _mm512_storeu_si512(next_acc + s * lanes + lc, win);

      // Survivor bytes: 0/1 per lane, narrowed to 16 contiguous bytes.
      const __m512i sel_bits = _mm512_maskz_set1_epi32(sel, 1);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(survivor_row + s * lanes + lc),
          _mm512_cvtepi32_epi8(sel_bits));

      // Strict-< running minimum per lane; states visited in order, so the
      // kept index is the first state achieving the minimum.
      const __mmask16 better = _mm512_cmpgt_epi32_mask(vbest, win);
      vbest = _mm512_mask_mov_epi32(vbest, better, win);
      vbest_idx = _mm512_mask_mov_epi32(
          vbest_idx, better, _mm512_set1_epi32(static_cast<int>(s)));
    }
    _mm512_storeu_si512(best_metric + lc, vbest);
    _mm512_storeu_si512(best_state + lc, vbest_idx);
  }

  // Scalar tail lanes (at most 15, bit-identical to the reference).
  if (vec_lanes != lanes) {
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      best_metric[l] = std::numeric_limits<std::int32_t>::max();
      best_state[l] = 0;
    }
    for (std::size_t s = 0; s < num_states; ++s) {
      const std::int32_t* a0 = acc + pred_state[2 * s] * lanes;
      const std::int32_t* a1 = acc + pred_state[2 * s + 1] * lanes;
      const std::int32_t* m0 = metric_by_pattern + pred_symbols[2 * s] * lanes;
      const std::int32_t* m1 =
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const std::int32_t cand0 = a0[l] + m0[l];
        const std::int32_t cand1 = a1[l] + m1[l];
        std::int32_t win = cand0;
        std::uint8_t sel = 0;
        if (cand1 < cand0) {
          win = cand1;
          sel = 1;
        }
        next_acc[s * lanes + l] = win;
        survivor_row[s * lanes + l] = sel;
        if (win < best_metric[l]) {
          best_metric[l] = win;
          best_state[l] = static_cast<std::uint32_t>(s);
        }
      }
    }
  }
}

void frame_multires_acs_avx512(const double* acc, double* next_acc,
                               const std::uint32_t* pred_state,
                               const std::uint32_t* pred_symbols,
                               const double* scaled_metric_by_pattern,
                               std::uint8_t* survivor_row,
                               double* winning_scaled_metric,
                               std::size_t num_states, std::size_t lanes) {
  const std::size_t vec_lanes = lanes & ~std::size_t{7};
  for (std::size_t lc = 0; lc < vec_lanes; lc += 8) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m512d a0 =
          _mm512_loadu_pd(acc + pred_state[2 * s] * lanes + lc);
      const __m512d a1 =
          _mm512_loadu_pd(acc + pred_state[2 * s + 1] * lanes + lc);
      const __m512d bm0 = _mm512_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes + lc);
      const __m512d bm1 = _mm512_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc);
      const __m512d cand0 = _mm512_add_pd(a0, bm0);
      const __m512d cand1 = _mm512_add_pd(a1, bm1);

      const __mmask8 sel =
          _mm512_cmp_pd_mask(cand1, cand0, _CMP_LT_OQ);  // tie -> branch 0
      _mm512_storeu_pd(next_acc + s * lanes + lc,
                       _mm512_mask_blend_pd(sel, cand0, cand1));
      _mm512_storeu_pd(winning_scaled_metric + s * lanes + lc,
                       _mm512_mask_blend_pd(sel, bm0, bm1));
      std::uint8_t* surv = survivor_row + s * lanes + lc;
      for (int j = 0; j < 8; ++j) {
        surv[j] = static_cast<std::uint8_t>((sel >> j) & 1);
      }
    }
  }
  if (vec_lanes != lanes) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const double* a0 = acc + pred_state[2 * s] * lanes;
      const double* a1 = acc + pred_state[2 * s + 1] * lanes;
      const double* bm0 =
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes;
      const double* bm1 =
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const double cand0 = a0[l] + bm0[l];
        const double cand1 = a1[l] + bm1[l];
        if (cand1 < cand0) {
          next_acc[s * lanes + l] = cand1;
          survivor_row[s * lanes + l] = 1;
          winning_scaled_metric[s * lanes + l] = bm1[l];
        } else {
          next_acc[s * lanes + l] = cand0;
          survivor_row[s * lanes + l] = 0;
          winning_scaled_metric[s * lanes + l] = bm0[l];
        }
      }
    }
  }
}

}  // namespace metacore::comm::simd::detail
