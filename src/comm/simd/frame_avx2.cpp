// AVX2 frame-parallel kernels: 8 frames (int32 ACS) or 4 frames (double
// low-res ACS) per iteration. All loads are contiguous in the lane-major
// layout (the trellis indices are shared across lanes), so unlike the
// state-parallel AVX2 kernels there are no hardware gathers on this path.
// This TU is compiled with -mavx2 alongside acs_avx2.cpp — it must only be
// reached through the dispatch table after a CPUID check.
#include <immintrin.h>

#include <limits>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm::simd::detail {

void frame_viterbi_acs_avx2(const std::int32_t* acc, std::int32_t* next_acc,
                            const std::uint32_t* pred_state,
                            const std::uint32_t* pred_symbols,
                            const std::int32_t* metric_by_pattern,
                            std::uint8_t* survivor_row,
                            std::size_t num_states, std::size_t lanes,
                            std::int32_t* best_metric,
                            std::uint32_t* best_state) {
  const std::size_t vec_lanes = lanes & ~std::size_t{7};
  // Low byte of each int32 lane -> bytes 0..3 within each 128-bit half,
  // then the two words collected side by side (as in the state kernel).
  const __m256i pack_sel = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i pack_words = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
  for (std::size_t lc = 0; lc < vec_lanes; lc += 8) {
    __m256i vbest = _mm256_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m256i vbest_idx = _mm256_setzero_si256();
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          acc + pred_state[2 * s] * lanes + lc));
      const __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          acc + pred_state[2 * s + 1] * lanes + lc));
      const __m256i m0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          metric_by_pattern + pred_symbols[2 * s] * lanes + lc));
      const __m256i m1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc));
      const __m256i cand0 = _mm256_add_epi32(a0, m0);
      const __m256i cand1 = _mm256_add_epi32(a1, m1);

      // sel = cand1 < cand0 (tie -> branch 0), lanes all-ones where true.
      const __m256i sel = _mm256_cmpgt_epi32(cand0, cand1);
      const __m256i win = _mm256_blendv_epi8(cand0, cand1, sel);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(next_acc + s * lanes + lc), win);

      const __m256i sel_bits = _mm256_srli_epi32(sel, 31);
      const __m256i packed = _mm256_shuffle_epi8(sel_bits, pack_sel);
      const __m256i words = _mm256_permutevar8x32_epi32(packed, pack_words);
      _mm_storel_epi64(
          reinterpret_cast<__m128i*>(survivor_row + s * lanes + lc),
          _mm256_castsi256_si128(words));

      // Strict-< running minimum per lane; states visited in order, so the
      // kept index is the first state achieving the minimum.
      const __m256i better = _mm256_cmpgt_epi32(vbest, win);
      vbest = _mm256_blendv_epi8(vbest, win, better);
      vbest_idx = _mm256_blendv_epi8(
          vbest_idx, _mm256_set1_epi32(static_cast<int>(s)), better);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(best_metric + lc), vbest);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(best_state + lc),
                        vbest_idx);
  }

  // Tail lanes run through the SSE4.2-width path when at least 4 remain,
  // then scalar: delegate to the scalar reference for simplicity (the tail
  // is at most 7 lanes and identical bit for bit).
  if (vec_lanes != lanes) {
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      best_metric[l] = std::numeric_limits<std::int32_t>::max();
      best_state[l] = 0;
    }
    for (std::size_t s = 0; s < num_states; ++s) {
      const std::int32_t* a0 = acc + pred_state[2 * s] * lanes;
      const std::int32_t* a1 = acc + pred_state[2 * s + 1] * lanes;
      const std::int32_t* m0 = metric_by_pattern + pred_symbols[2 * s] * lanes;
      const std::int32_t* m1 =
          metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const std::int32_t cand0 = a0[l] + m0[l];
        const std::int32_t cand1 = a1[l] + m1[l];
        std::int32_t win = cand0;
        std::uint8_t sel = 0;
        if (cand1 < cand0) {
          win = cand1;
          sel = 1;
        }
        next_acc[s * lanes + l] = win;
        survivor_row[s * lanes + l] = sel;
        if (win < best_metric[l]) {
          best_metric[l] = win;
          best_state[l] = static_cast<std::uint32_t>(s);
        }
      }
    }
  }
}

void frame_multires_acs_avx2(const double* acc, double* next_acc,
                             const std::uint32_t* pred_state,
                             const std::uint32_t* pred_symbols,
                             const double* scaled_metric_by_pattern,
                             std::uint8_t* survivor_row,
                             double* winning_scaled_metric,
                             std::size_t num_states, std::size_t lanes) {
  const std::size_t vec_lanes = lanes & ~std::size_t{3};
  for (std::size_t lc = 0; lc < vec_lanes; lc += 4) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const __m256d a0 =
          _mm256_loadu_pd(acc + pred_state[2 * s] * lanes + lc);
      const __m256d a1 =
          _mm256_loadu_pd(acc + pred_state[2 * s + 1] * lanes + lc);
      const __m256d bm0 = _mm256_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes + lc);
      const __m256d bm1 = _mm256_loadu_pd(
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes + lc);
      const __m256d cand0 = _mm256_add_pd(a0, bm0);
      const __m256d cand1 = _mm256_add_pd(a1, bm1);

      const __m256d sel = _mm256_cmp_pd(cand1, cand0, _CMP_LT_OQ);  // tie -> 0
      _mm256_storeu_pd(next_acc + s * lanes + lc,
                       _mm256_blendv_pd(cand0, cand1, sel));
      _mm256_storeu_pd(winning_scaled_metric + s * lanes + lc,
                       _mm256_blendv_pd(bm0, bm1, sel));
      const int mask = _mm256_movemask_pd(sel);
      survivor_row[s * lanes + lc] = static_cast<std::uint8_t>(mask & 1);
      survivor_row[s * lanes + lc + 1] =
          static_cast<std::uint8_t>((mask >> 1) & 1);
      survivor_row[s * lanes + lc + 2] =
          static_cast<std::uint8_t>((mask >> 2) & 1);
      survivor_row[s * lanes + lc + 3] =
          static_cast<std::uint8_t>((mask >> 3) & 1);
    }
  }
  if (vec_lanes != lanes) {
    for (std::size_t s = 0; s < num_states; ++s) {
      const double* a0 = acc + pred_state[2 * s] * lanes;
      const double* a1 = acc + pred_state[2 * s + 1] * lanes;
      const double* bm0 =
          scaled_metric_by_pattern + pred_symbols[2 * s] * lanes;
      const double* bm1 =
          scaled_metric_by_pattern + pred_symbols[2 * s + 1] * lanes;
      for (std::size_t l = vec_lanes; l < lanes; ++l) {
        const double cand0 = a0[l] + bm0[l];
        const double cand1 = a1[l] + bm1[l];
        if (cand1 < cand0) {
          next_acc[s * lanes + l] = cand1;
          survivor_row[s * lanes + l] = 1;
          winning_scaled_metric[s * lanes + l] = bm1[l];
        } else {
          next_acc[s * lanes + l] = cand0;
          survivor_row[s * lanes + l] = 0;
          winning_scaled_metric[s * lanes + l] = bm0[l];
        }
      }
    }
  }
}

}  // namespace metacore::comm::simd::detail
