#include "comm/convolutional.hpp"

#include <bit>
#include <stdexcept>

namespace metacore::comm {

void CodeSpec::validate() const {
  if (constraint_length < 2 || constraint_length > 16) {
    throw std::invalid_argument("CodeSpec: K must be in [2, 16]");
  }
  if (generators.empty()) {
    throw std::invalid_argument("CodeSpec: need at least one generator");
  }
  const std::uint32_t mask = (1u << constraint_length) - 1;
  for (std::uint32_t g : generators) {
    if (g == 0 || (g & ~mask) != 0) {
      throw std::invalid_argument("CodeSpec: generator does not fit in K bits");
    }
  }
  // At least one generator must tap the current input bit, or the code has
  // pure delay and wastes constraint length.
  bool taps_input = false;
  for (std::uint32_t g : generators) {
    taps_input |= (g >> (constraint_length - 1)) & 1u;
  }
  if (!taps_input) {
    throw std::invalid_argument("CodeSpec: no generator taps the input bit");
  }
}

std::string CodeSpec::generators_octal() const {
  std::string out;
  for (std::size_t i = 0; i < generators.size(); ++i) {
    if (i) out += ',';
    // Render in octal without a leading zero, matching the paper's "171,133".
    std::string oct;
    std::uint32_t g = generators[i];
    do {
      oct.insert(oct.begin(), static_cast<char>('0' + (g & 7u)));
      g >>= 3;
    } while (g);
    out += oct;
  }
  return out;
}

CodeSpec best_rate_half_code(int constraint_length) {
  // Octal generator pairs with maximal free distance (Larsen 1973).
  switch (constraint_length) {
    case 3:
      return {3, {07, 05}};
    case 4:
      return {4, {017, 015}};
    case 5:
      return {5, {035, 023}};
    case 6:
      return {6, {075, 053}};
    case 7:
      return {7, {0171, 0133}};
    case 8:
      return {8, {0371, 0247}};
    case 9:
      return {9, {0753, 0561}};
    default:
      throw std::invalid_argument(
          "best_rate_half_code: tabulated only for K in [3, 9]");
  }
}

std::vector<CodeSpec> candidate_rate_half_codes(int constraint_length) {
  std::vector<CodeSpec> out;
  out.push_back(best_rate_half_code(constraint_length));
  // Secondary candidates: good but non-optimal pairs, giving the search a
  // real G axis. Each taps the input bit and the oldest register.
  switch (constraint_length) {
    case 3:
      out.push_back({3, {07, 06}});
      break;
    case 4:
      out.push_back({4, {017, 013}});
      break;
    case 5:
      out.push_back({5, {037, 025}});
      break;
    case 6:
      out.push_back({6, {073, 061}});
      break;
    case 7:
      out.push_back({7, {0165, 0127}});
      break;
    case 8:
      out.push_back({8, {0345, 0237}});
      break;
    case 9:
      out.push_back({9, {0715, 0527}});
      break;
    default:
      break;
  }
  return out;
}

ConvolutionalEncoder::ConvolutionalEncoder(CodeSpec spec)
    : spec_(std::move(spec)) {
  spec_.validate();
}

std::uint32_t ConvolutionalEncoder::encode_bit(int bit) {
  const int k = spec_.constraint_length;
  const std::uint32_t reg =
      (static_cast<std::uint32_t>(bit & 1) << (k - 1)) | state_;
  std::uint32_t out = 0;
  for (std::size_t j = 0; j < spec_.generators.size(); ++j) {
    const auto parity =
        static_cast<std::uint32_t>(std::popcount(reg & spec_.generators[j]) & 1);
    out |= parity << j;
  }
  if (k >= 2) {
    state_ = (state_ >> 1) |
             (static_cast<std::uint32_t>(bit & 1) << (k - 2));
  }
  return out;
}

std::vector<int> ConvolutionalEncoder::encode(std::span<const int> bits) {
  std::vector<int> out;
  out.reserve(bits.size() * spec_.generators.size());
  for (int bit : bits) {
    const std::uint32_t symbols = encode_bit(bit);
    for (std::size_t j = 0; j < spec_.generators.size(); ++j) {
      out.push_back(static_cast<int>((symbols >> j) & 1u));
    }
  }
  return out;
}

}  // namespace metacore::comm
