#include "comm/puncture.hpp"

#include <stdexcept>

namespace metacore::comm {

int PuncturePattern::transmitted_per_period() const {
  int n = 0;
  for (std::uint8_t k : keep) n += k ? 1 : 0;
  return n;
}

double PuncturePattern::rate(int mother_n) const {
  validate(mother_n);
  return static_cast<double>(period) / transmitted_per_period();
}

void PuncturePattern::validate(int mother_n) const {
  if (period < 1) {
    throw std::invalid_argument("PuncturePattern: period must be >= 1");
  }
  if (keep.size() != static_cast<std::size_t>(period * mother_n)) {
    throw std::invalid_argument(
        "PuncturePattern: keep mask size must equal period * n");
  }
  if (transmitted_per_period() < period) {
    // Fewer transmitted symbols than input bits would push the rate above
    // 1 — information-theoretically unusable.
    throw std::invalid_argument(
        "PuncturePattern: pattern punctures below rate 1");
  }
}

std::string PuncturePattern::label() const {
  std::string out = "rate " + std::to_string(period) + "/" +
                    std::to_string(transmitted_per_period());
  return out;
}

// Patterns are stored bit-interleaved per input bit: entry i*n + j is
// generator j at period position i.
PuncturePattern rate_2_3_pattern() {
  // P1 = [1 1], P2 = [1 0]: 3 of 4 symbols transmitted over 2 bits.
  return {2, {1, 1, 1, 0}};
}

PuncturePattern rate_3_4_pattern() {
  // P1 = [1 0 1], P2 = [1 1 0].
  return {3, {1, 1, 0, 1, 1, 0}};
}

PuncturePattern rate_5_6_pattern() {
  // P1 = [1 0 1 0 1], P2 = [1 1 0 1 0].
  return {5, {1, 1, 0, 1, 1, 0, 0, 1, 1, 0}};
}

namespace {

template <typename T>
std::vector<T> puncture_impl(std::span<const T> symbols,
                             const PuncturePattern& pattern, int mother_n) {
  pattern.validate(mother_n);
  if (symbols.size() % static_cast<std::size_t>(mother_n) != 0) {
    throw std::invalid_argument("puncture: stream not a multiple of n");
  }
  std::vector<T> out;
  out.reserve(symbols.size());
  const std::size_t mask_size = pattern.keep.size();
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (pattern.keep[i % mask_size]) out.push_back(symbols[i]);
  }
  return out;
}

}  // namespace

std::vector<int> puncture(std::span<const int> symbols,
                          const PuncturePattern& pattern, int mother_n) {
  return puncture_impl(symbols, pattern, mother_n);
}

std::vector<double> puncture(std::span<const double> samples,
                             const PuncturePattern& pattern, int mother_n) {
  return puncture_impl(samples, pattern, mother_n);
}

std::vector<double> depuncture(std::span<const double> received,
                               const PuncturePattern& pattern,
                               std::size_t trellis_steps, double neutral,
                               int mother_n) {
  pattern.validate(mother_n);
  const std::size_t total = trellis_steps * static_cast<std::size_t>(mother_n);
  const std::size_t mask_size = pattern.keep.size();
  std::vector<double> out(total, neutral);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (pattern.keep[i % mask_size]) {
      if (cursor >= received.size()) {
        throw std::invalid_argument(
            "depuncture: received stream shorter than the pattern implies");
      }
      out[i] = received[cursor++];
    }
  }
  if (cursor != received.size()) {
    throw std::invalid_argument(
        "depuncture: received stream longer than the pattern implies");
  }
  return out;
}

}  // namespace metacore::comm
