#include "comm/sequential.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <stdexcept>

#include "comm/trellis.hpp"

namespace metacore::comm {

namespace {

/// Tree node: paths share prefixes through parent pointers (kept alive by
/// shared ownership so popped-but-referenced prefixes survive).
struct Node {
  std::shared_ptr<const Node> parent;
  int bit = 0;        // branch taken from the parent
  int depth = 0;      // trellis steps consumed
  std::uint32_t encoder_state = 0;
  double metric = 0.0;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<const Node>& a,
                  const std::shared_ptr<const Node>& b) const {
    return a->metric < b->metric;  // max-heap on the Fano metric
  }
};

}  // namespace

SequentialDecoder::SequentialDecoder(CodeSpec code, Quantizer quantizer,
                                     SequentialConfig config)
    : code_(std::move(code)), quantizer_(quantizer), config_(config) {
  code_.validate();
  if (config_.bias <= 0.0) {
    throw std::invalid_argument("SequentialDecoder: bias must be positive");
  }
  if (config_.max_extensions_per_bit < 1.0 || config_.max_stack < 16) {
    throw std::invalid_argument("SequentialDecoder: degenerate work limits");
  }
}

SequentialResult SequentialDecoder::decode(std::span<const double> rx) const {
  const int n = code_.rate_denominator();
  const int k = code_.constraint_length;
  if (rx.size() % static_cast<std::size_t>(n) != 0) {
    throw std::invalid_argument(
        "SequentialDecoder: stream length not a multiple of n");
  }
  const int steps = static_cast<int>(rx.size() / static_cast<std::size_t>(n));
  if (steps < k) {
    throw std::invalid_argument(
        "SequentialDecoder: block shorter than the termination tail");
  }

  // Quantize the whole block once, through the batched branchless kernel.
  std::vector<int> levels(rx.size());
  quantizer_.quantize_block(rx, levels);
  const Trellis trellis(code_);

  // Fano branch gain: sum over symbols of (bias * max_level - distance).
  // Precomputed per (step, expected-symbol pattern) — only 2^n patterns
  // exist per step, so the best-first search's hot loop indexes a flat
  // table instead of recomputing metric sums on every node extension.
  const double per_symbol_bias = config_.bias * quantizer_.max_level();
  const auto zero_row = quantizer_.metric_table(0);
  const auto one_row = quantizer_.metric_table(1);
  const std::size_t patterns = std::size_t{1} << n;
  std::vector<double> gain_table(static_cast<std::size_t>(steps) * patterns);
  for (int step = 0; step < steps; ++step) {
    for (std::size_t p = 0; p < patterns; ++p) {
      double gain = 0.0;
      for (int j = 0; j < n; ++j) {
        const auto level = static_cast<std::size_t>(
            levels[static_cast<std::size_t>(step * n + j)]);
        gain += per_symbol_bias -
                (((p >> j) & 1u) ? one_row[level] : zero_row[level]);
      }
      gain_table[static_cast<std::size_t>(step) * patterns + p] = gain;
    }
  }
  auto branch_gain = [&](int step, std::uint32_t symbols) {
    return gain_table[static_cast<std::size_t>(step) * patterns + symbols];
  };

  const auto max_extensions = static_cast<std::uint64_t>(
      config_.max_extensions_per_bit * static_cast<double>(steps));

  std::priority_queue<std::shared_ptr<const Node>,
                      std::vector<std::shared_ptr<const Node>>, NodeOrder>
      stack;
  stack.push(std::make_shared<Node>());

  SequentialResult result;
  const int tail_start = steps - (k - 1);
  while (!stack.empty()) {
    const auto node = stack.top();
    stack.pop();
    if (node->depth == steps) {
      // Reconstruct the data bits (drop the K-1 tail bits).
      std::vector<int> bits(static_cast<std::size_t>(steps));
      const Node* cur = node.get();
      for (int d = steps; d-- > 0;) {
        bits[static_cast<std::size_t>(d)] = cur->bit;
        cur = cur->parent.get();
      }
      bits.resize(static_cast<std::size_t>(tail_start));
      result.completed = true;
      result.bits = std::move(bits);
      return result;
    }
    if (result.extensions >= max_extensions) {
      return result;  // computational overflow
    }
    ++result.extensions;

    // Terminated tail: only the 0 branch is admissible.
    const int max_bit = node->depth >= tail_start ? 0 : 1;
    for (int bit = 0; bit <= max_bit; ++bit) {
      auto child = std::make_shared<Node>();
      child->parent = node;
      child->bit = bit;
      child->depth = node->depth + 1;
      child->encoder_state = trellis.next_state(node->encoder_state, bit);
      child->metric =
          node->metric +
          branch_gain(node->depth,
                      trellis.output_symbols(node->encoder_state, bit));
      stack.push(std::move(child));
    }
    // Bound the stack: rebuild without the worst entries when oversized.
    if (stack.size() > config_.max_stack) {
      std::vector<std::shared_ptr<const Node>> keep;
      keep.reserve(config_.max_stack / 2);
      while (!stack.empty() && keep.size() < config_.max_stack / 2) {
        keep.push_back(stack.top());
        stack.pop();
      }
      while (!stack.empty()) stack.pop();
      for (auto& node_kept : keep) stack.push(std::move(node_kept));
    }
  }
  return result;
}

}  // namespace metacore::comm
