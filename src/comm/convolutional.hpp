// Convolutional encoding (rate 1/n, constraint length K) and the standard
// maximal-free-distance generator polynomial tables the paper draws its G
// values from ([Lar73], [Ode70]).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace metacore::comm {

/// A rate 1/n convolutional code: each input bit produces one output symbol
/// per generator polynomial.
///
/// Generators are given in the conventional octal notation, e.g. the
/// ubiquitous K=7 code {0171, 0133}. Bit (K-1) of a generator taps the
/// current input bit; bit 0 taps the oldest register.
struct CodeSpec {
  int constraint_length = 3;             ///< K; number of taps including input
  std::vector<std::uint32_t> generators; ///< one mask per output symbol

  int rate_denominator() const { return static_cast<int>(generators.size()); }
  int num_states() const { return 1 << (constraint_length - 1); }

  /// Validates K in [2, 16] and that every generator fits in K bits and taps
  /// the input bit (otherwise the code is catastrophic-by-construction).
  void validate() const;

  /// Renders generators in octal, e.g. "171,133".
  std::string generators_octal() const;

  bool operator==(const CodeSpec&) const = default;
};

/// Best known rate-1/2 maximum-free-distance generators for K = 3..9
/// (Larsen's table, the same family the paper's Table 3 selects from:
/// K=3 -> 7,5; K=5 -> 35,23; K=7 -> 171,133).
CodeSpec best_rate_half_code(int constraint_length);

/// Alternative (non-optimal but valid) rate-1/2 generators per K, giving the
/// search a genuine G degree of freedom when the user unfixes it.
std::vector<CodeSpec> candidate_rate_half_codes(int constraint_length);

/// Feed-forward shift-register encoder for a CodeSpec.
class ConvolutionalEncoder {
 public:
  explicit ConvolutionalEncoder(CodeSpec spec);

  /// Encodes one input bit; returns the n output symbols packed LSB-first
  /// (bit j of the result is generator j's output).
  std::uint32_t encode_bit(int bit);

  /// Encodes a bit vector; output has spec.generators.size() bits per input
  /// bit, in generator order.
  std::vector<int> encode(std::span<const int> bits);

  /// Encoder state = the K-1 most recent input bits (newest in the MSB of
  /// the state word, matching trellis numbering).
  std::uint32_t state() const { return state_; }
  void reset() { state_ = 0; }

  const CodeSpec& spec() const { return spec_; }

 private:
  CodeSpec spec_;
  std::uint32_t state_ = 0;
};

}  // namespace metacore::comm
