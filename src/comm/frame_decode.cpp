#include "comm/frame_decode.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "comm/simd/acs_kernel.hpp"

namespace metacore::comm {

namespace {

/// Internal sub-chunk bound: decode_chunk processes at most this many
/// trellis steps per quantize+ACS sweep, so the per-lane level slabs stay
/// cache-sized regardless of the caller's chunk length. Matches the BER
/// pipeline's 1024-step chunks so that path runs exactly one sweep.
constexpr std::size_t kSubChunkSteps = 1024;

/// Lock-step traceback across lanes: one survivor-memory walk of depth
/// `traceback_depth` per lane, interleaved depth-outer/lane-inner so the L
/// independent pointer chases overlap in the out-of-order core (traceback
/// is the serial tail of the decode and dominates at small K; memory-level
/// parallelism across lanes is where the frame axis wins it back). Each
/// lane's walk is exactly the single-frame traceback_bit_from.
void traceback_lanes(const Trellis& trellis,
                     const std::vector<std::uint8_t>& survivors,
                     int traceback_depth, std::int64_t steps,
                     std::size_t lanes, const std::uint32_t* start_state,
                     std::uint32_t* state, int* bit) {
  const auto states = static_cast<std::size_t>(trellis.num_states());
  const std::uint32_t* pred_state = trellis.pred_states().data();
  const std::uint8_t* pred_bit = trellis.pred_bits().data();
  for (std::size_t l = 0; l < lanes; ++l) state[l] = start_state[l];
  for (int d = 0; d < traceback_depth; ++d) {
    const std::int64_t t = steps - 1 - d;
    const std::uint8_t* row =
        survivors.data() +
        static_cast<std::size_t>(t % traceback_depth) * states * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t branch = 2 * state[l] + row[state[l] * lanes + l];
      bit[l] = pred_bit[branch];
      state[l] = pred_state[branch];
    }
  }
}

/// Final traceback for one lane (the read-only analog of Decoder::flush):
/// the most recent min(steps, L-1) decisions from the lane's best end
/// state, oldest first.
template <typename Acc>
std::vector<int> flush_lane(const Trellis& trellis,
                            const std::vector<std::uint8_t>& survivors,
                            int traceback_depth, std::int64_t steps,
                            std::size_t lanes, std::size_t lane,
                            const std::vector<Acc>& acc) {
  const auto states = static_cast<std::size_t>(trellis.num_states());
  // Strided strict-< first-argmin over the lane's metrics (min_element
  // semantics, matching the single-frame best_state()).
  Acc best = acc[lane];
  std::uint32_t state = 0;
  for (std::size_t s = 1; s < states; ++s) {
    if (acc[s * lanes + lane] < best) {
      best = acc[s * lanes + lane];
      state = static_cast<std::uint32_t>(s);
    }
  }
  const std::int64_t pending =
      steps < traceback_depth ? steps
                              : static_cast<std::int64_t>(traceback_depth) - 1;
  const std::uint32_t* pred_state = trellis.pred_states().data();
  const std::uint8_t* pred_bit = trellis.pred_bits().data();
  std::vector<int> bits(static_cast<std::size_t>(pending));
  for (std::int64_t d = 0; d < pending; ++d) {
    const std::int64_t t = steps - 1 - d;
    const std::uint8_t* row =
        survivors.data() +
        static_cast<std::size_t>(t % traceback_depth) * states * lanes;
    const std::size_t branch = 2 * state + row[state * lanes + lane];
    bits[static_cast<std::size_t>(pending - 1 - d)] = pred_bit[branch];
    state = pred_state[branch];
  }
  return bits;
}

}  // namespace

std::size_t default_frame_lanes() {
  const char* env = std::getenv("METACORE_LANES");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || value < 1 || value > 256) {
      throw std::invalid_argument(
          "METACORE_LANES must be an integer in [1, 256], got '" +
          std::string(env) + "'");
    }
    return static_cast<std::size_t>(value);
  }
  return simd::natural_frame_lanes(simd::dispatched_isa());
}

// ---------------------------------------------------------------------------
// FrameViterbiDecoder

FrameViterbiDecoder::FrameViterbiDecoder(const Trellis& trellis,
                                         int traceback_depth,
                                         Quantizer quantizer,
                                         std::size_t lanes)
    : trellis_(&trellis),
      traceback_depth_(traceback_depth),
      quantizer_(quantizer),
      lanes_(lanes),
      norm_threshold_(detail::kPathMetricNormalizeThreshold) {
  if (traceback_depth_ < 1) {
    throw std::invalid_argument(
        "FrameViterbiDecoder: traceback depth must be >= 1");
  }
  if (lanes_ < 1) {
    throw std::invalid_argument("FrameViterbiDecoder: lanes must be >= 1");
  }
  detail::check_int32_envelope(*trellis_, quantizer_);
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  acc_.resize(states * lanes_);
  next_acc_.resize(states * lanes_);
  survivors_.assign(
      static_cast<std::size_t>(traceback_depth_) * states * lanes_, 0);
  block_levels_.resize(lanes_ * kSubChunkSteps * n);
  metric_by_pattern_.resize((std::size_t{1} << n) * lanes_);
  best_metric_.resize(lanes_);
  best_state_.resize(lanes_);
  tb_state_.resize(lanes_);
  tb_bit_.resize(lanes_);
  normalizations_.resize(lanes_);
  reset();
}

void FrameViterbiDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), detail::kPathMetricUnreachable);
  // The encoder starts from the all-zero state — in every lane.
  for (std::size_t l = 0; l < lanes_; ++l) acc_[l] = 0;
  steps_ = 0;
  std::fill(normalizations_.begin(), normalizations_.end(), 0);
}

void FrameViterbiDecoder::fill_metric_tables(std::size_t step_in_chunk) {
  // Per lane, the same 2^n-entry precompute as the single-frame decoder,
  // scattered lane-major so the ACS kernel reads contiguous per-pattern
  // rows. Lane count and pattern count are both small (<= 16 and <= 2^n),
  // so this stays a negligible slice of the step.
  const auto zero_row = quantizer_.metric_table(0);
  const auto one_row = quantizer_.metric_table(1);
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  const std::size_t patterns = std::size_t{1} << n;
  const std::size_t slab = kSubChunkSteps * n;
  for (std::size_t l = 0; l < lanes_; ++l) {
    const int* levels = block_levels_.data() + l * slab + step_in_chunk * n;
    for (std::size_t p = 0; p < patterns; ++p) {
      std::int32_t metric = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const auto level = static_cast<std::size_t>(levels[j]);
        metric += ((p >> j) & 1u) ? one_row[level] : zero_row[level];
      }
      metric_by_pattern_[p * lanes_ + l] = metric;
    }
  }
}

std::size_t FrameViterbiDecoder::decode_chunk(const double* const* rx,
                                              std::size_t steps,
                                              int* const* out) {
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint32_t* pred_symbols = trellis_->pred_symbols().data();
  const simd::FrameViterbiAcsFn acs = simd::frame_viterbi_acs();
  const std::size_t slab = kSubChunkSteps * n;

  std::size_t written = 0;
  for (std::size_t done = 0; done < steps;) {
    const std::size_t sub = std::min(kSubChunkSteps, steps - done);
    // Whole-sub-chunk quantization per lane (contiguous samples, so this is
    // elementwise-identical to the single-frame whole-chunk pass).
    for (std::size_t l = 0; l < lanes_; ++l) {
      quantizer_.quantize_block(
          std::span<const double>(rx[l] + done * n, sub * n),
          std::span<int>(block_levels_.data() + l * slab, sub * n));
    }
    for (std::size_t i = 0; i < sub; ++i) {
      fill_metric_tables(i);

      std::uint8_t* survivor_row =
          survivors_.data() +
          static_cast<std::size_t>(steps_ % traceback_depth_) * states *
              lanes_;
      acs(acc_.data(), next_acc_.data(), pred_state, pred_symbols,
          metric_by_pattern_.data(), survivor_row, states, lanes_,
          best_metric_.data(), best_state_.data());
      acc_.swap(next_acc_);
      ++steps_;

      // Per-lane renormalization on the lane's own floor — the strided
      // subtraction fires rarely (every ~2^28 metric units of drift), so
      // it never shows on the step profile.
      for (std::size_t l = 0; l < lanes_; ++l) {
        if (best_metric_[l] > norm_threshold_) {
          for (std::size_t s = 0; s < states; ++s) {
            acc_[s * lanes_ + l] -= best_metric_[l];
          }
          ++normalizations_[l];
        }
      }

      if (steps_ >= traceback_depth_) {
        traceback_lanes(*trellis_, survivors_, traceback_depth_, steps_,
                        lanes_, best_state_.data(), tb_state_.data(),
                        tb_bit_.data());
        for (std::size_t l = 0; l < lanes_; ++l) {
          out[l][written] = tb_bit_[l];
        }
        ++written;
      }
    }
    done += sub;
  }
  return written;
}

std::vector<int> FrameViterbiDecoder::flush(std::size_t lane) const {
  return flush_lane(*trellis_, survivors_, traceback_depth_, steps_, lanes_,
                    lane, acc_);
}

// ---------------------------------------------------------------------------
// FrameMultiresDecoder

FrameMultiresDecoder::FrameMultiresDecoder(const Trellis& trellis,
                                           const MultiresConfig& config,
                                           double amplitude,
                                           double noise_sigma,
                                           std::size_t lanes)
    : trellis_(&trellis),
      config_(config),
      // Quantizer construction mirrors MultiresViterbiDecoder exactly:
      // 1-bit R1 degenerates to hard slicing regardless of method.
      low_(config.low_res_bits == 1 ? QuantizationMethod::Hard : config.method,
           config.low_res_bits, amplitude, noise_sigma),
      high_(config.method, config.high_res_bits, amplitude, noise_sigma),
      lanes_(lanes),
      norm_threshold_(detail::kMultiresNormalizeThreshold) {
  config_.validate(trellis_->num_states());
  if (lanes_ < 1) {
    throw std::invalid_argument("FrameMultiresDecoder: lanes must be >= 1");
  }
  scale_ = static_cast<double>(high_.max_level()) /
           static_cast<double>(low_.max_level());
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  acc_.resize(states * lanes_);
  next_acc_.resize(states * lanes_);
  survivors_.assign(
      static_cast<std::size_t>(config_.traceback_depth) * states * lanes_, 0);
  block_levels_low_.resize(lanes_ * kSubChunkSteps * n);
  block_levels_high_.resize(lanes_ * kSubChunkSteps * n);
  scaled_low_metric_by_pattern_.resize((std::size_t{1} << n) * lanes_);
  winning_scaled_metric_.resize(states * lanes_);
  order_.resize(states);
  high_metrics_.resize(static_cast<std::size_t>(config_.num_high_res_paths));
  best_state_.resize(lanes_);
  tb_state_.resize(lanes_);
  tb_bit_.resize(lanes_);
  normalizations_.resize(lanes_);
  reset();
}

void FrameMultiresDecoder::reset() {
  std::fill(acc_.begin(), acc_.end(), detail::kMultiresUnreachable);
  for (std::size_t l = 0; l < lanes_; ++l) acc_[l] = 0.0;
  steps_ = 0;
  std::fill(normalizations_.begin(), normalizations_.end(), 0);
}

int FrameMultiresDecoder::high_branch_metric(std::uint32_t expected_symbols,
                                             const int* levels) const {
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  int metric = 0;
  for (std::size_t j = 0; j < n; ++j) {
    metric += high_.branch_metric(
        levels[j], static_cast<int>((expected_symbols >> j) & 1u));
  }
  return metric;
}

void FrameMultiresDecoder::fill_scaled_low_metric_tables(
    std::size_t step_in_chunk) {
  const auto zero_row = low_.metric_table(0);
  const auto one_row = low_.metric_table(1);
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  const std::size_t patterns = std::size_t{1} << n;
  const std::size_t slab = kSubChunkSteps * n;
  for (std::size_t l = 0; l < lanes_; ++l) {
    const int* levels =
        block_levels_low_.data() + l * slab + step_in_chunk * n;
    for (std::size_t p = 0; p < patterns; ++p) {
      int metric = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const auto level = static_cast<std::size_t>(levels[j]);
        metric += ((p >> j) & 1u) ? one_row[level] : zero_row[level];
      }
      scaled_low_metric_by_pattern_[p * lanes_ + l] = scale_ * metric;
    }
  }
}

std::size_t FrameMultiresDecoder::decode_chunk(const double* const* rx,
                                               std::size_t steps,
                                               int* const* out) {
  const auto states = static_cast<std::size_t>(trellis_->num_states());
  const auto n = static_cast<std::size_t>(trellis_->symbols_per_step());
  const std::uint32_t* pred_state = trellis_->pred_states().data();
  const std::uint32_t* pred_symbols = trellis_->pred_symbols().data();
  const simd::FrameMultiresAcsFn acs = simd::frame_multires_acs();
  const std::size_t slab = kSubChunkSteps * n;
  const int m = config_.num_high_res_paths;

  std::size_t written = 0;
  for (std::size_t done = 0; done < steps;) {
    const std::size_t sub = std::min(kSubChunkSteps, steps - done);
    for (std::size_t l = 0; l < lanes_; ++l) {
      low_.quantize_block(
          std::span<const double>(rx[l] + done * n, sub * n),
          std::span<int>(block_levels_low_.data() + l * slab, sub * n));
      high_.quantize_block(
          std::span<const double>(rx[l] + done * n, sub * n),
          std::span<int>(block_levels_high_.data() + l * slab, sub * n));
    }
    for (std::size_t i = 0; i < sub; ++i) {
      fill_scaled_low_metric_tables(i);

      std::uint8_t* survivor_row =
          survivors_.data() +
          static_cast<std::size_t>(steps_ % config_.traceback_depth) *
              states * lanes_;
      // Phase 1: lane-parallel low-resolution ACS over every frame.
      acs(acc_.data(), next_acc_.data(), pred_state, pred_symbols,
          scaled_low_metric_by_pattern_.data(), survivor_row,
          winning_scaled_metric_.data(), states, lanes_);

      // Phase 2, scalar per lane (it is O(M), not O(states * lanes)): the
      // exact single-frame refinement — same partial_sort over the same
      // metric values yields the same best-M order, high-res recompute,
      // and correction term, so each lane's refined metrics are
      // bit-identical to its standalone decoder's.
      for (std::size_t l = 0; l < lanes_; ++l) {
        const int* high_levels =
            block_levels_high_.data() + l * slab + i * n;
        std::iota(order_.begin(), order_.end(), 0u);
        std::partial_sort(order_.begin(), order_.begin() + m, order_.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                            return next_acc_[a * lanes_ + l] <
                                   next_acc_[b * lanes_ + l];
                          });
        double correction = 0.0;
        for (int idx = 0; idx < m; ++idx) {
          const std::uint32_t s = order_[static_cast<std::size_t>(idx)];
          const std::size_t branch = 2 * s + survivor_row[s * lanes_ + l];
          high_metrics_[static_cast<std::size_t>(idx)] = static_cast<double>(
              high_branch_metric(pred_symbols[branch], high_levels));
          if (idx < config_.normalization_terms) {
            correction += high_metrics_[static_cast<std::size_t>(idx)] -
                          winning_scaled_metric_[s * lanes_ + l];
          }
        }
        correction /= static_cast<double>(config_.normalization_terms);
        for (int idx = 0; idx < m; ++idx) {
          const std::uint32_t s = order_[static_cast<std::size_t>(idx)];
          const std::size_t branch = 2 * s + survivor_row[s * lanes_ + l];
          next_acc_[s * lanes_ + l] =
              acc_[pred_state[branch] * lanes_ + l] +
              high_metrics_[static_cast<std::size_t>(idx)] - correction;
        }
      }

      acc_.swap(next_acc_);
      ++steps_;

      // Per-lane fused floor scan (strict <, first argmin — min_element
      // semantics) and renormalization, exactly the single-frame epilogue.
      for (std::size_t l = 0; l < lanes_; ++l) {
        double floor = std::numeric_limits<double>::infinity();
        std::uint32_t best_s = 0;
        for (std::size_t s = 0; s < states; ++s) {
          if (acc_[s * lanes_ + l] < floor) {
            floor = acc_[s * lanes_ + l];
            best_s = static_cast<std::uint32_t>(s);
          }
        }
        if (floor > norm_threshold_) {
          for (std::size_t s = 0; s < states; ++s) {
            acc_[s * lanes_ + l] -= floor;
          }
          ++normalizations_[l];
        }
        best_state_[l] = best_s;
      }

      if (steps_ >= config_.traceback_depth) {
        traceback_lanes(*trellis_, survivors_, config_.traceback_depth,
                        steps_, lanes_, best_state_.data(), tb_state_.data(),
                        tb_bit_.data());
        for (std::size_t l = 0; l < lanes_; ++l) {
          out[l][written] = tb_bit_[l];
        }
        ++written;
      }
    }
    done += sub;
  }
  return written;
}

std::vector<int> FrameMultiresDecoder::flush(std::size_t lane) const {
  return flush_lane(*trellis_, survivors_, config_.traceback_depth, steps_,
                    lanes_, lane, acc_);
}

}  // namespace metacore::comm
