#include "comm/ber.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "comm/channel.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace metacore::comm {

std::string to_string(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::Hard:
      return "hard";
    case DecoderKind::Soft:
      return "soft";
    case DecoderKind::Multires:
      return "multires";
  }
  return "?";
}

std::unique_ptr<Decoder> DecoderSpec::make_decoder(const Trellis& trellis,
                                                   double amplitude,
                                                   double noise_sigma) const {
  switch (kind) {
    case DecoderKind::Hard:
      return make_hard_decoder(trellis, traceback_depth, amplitude,
                               noise_sigma);
    case DecoderKind::Soft:
      return make_soft_decoder(trellis, traceback_depth, high_res_bits,
                               quantization, amplitude, noise_sigma);
    case DecoderKind::Multires: {
      MultiresConfig config{traceback_depth, low_res_bits, high_res_bits,
                            quantization, num_high_res_paths,
                            normalization_terms};
      return make_multires_decoder(trellis, config, amplitude, noise_sigma);
    }
  }
  throw std::logic_error("DecoderSpec::make_decoder: unknown kind");
}

std::string DecoderSpec::label() const {
  std::string out = to_string(kind);
  out += " K=" + std::to_string(code.constraint_length);
  out += " L=" + std::to_string(traceback_depth);
  if (kind == DecoderKind::Soft) {
    out += " R=" + std::to_string(high_res_bits);
  } else if (kind == DecoderKind::Multires) {
    out += " R1=" + std::to_string(low_res_bits);
    out += " R2=" + std::to_string(high_res_bits);
    out += " M=" + std::to_string(num_high_res_paths);
    out += " N=" + std::to_string(normalization_terms);
  }
  if (kind != DecoderKind::Hard) {
    out += " Q=";
    out += quantization == QuantizationMethod::AdaptiveSoft ? "A" : "F";
  }
  return out;
}

namespace {

/// Counted decoded bits across every run_ber_stream in the process (the
/// benchmark harnesses read it to turn search wall time into a decode
/// throughput figure). Relaxed: it is a statistics counter, never a
/// synchronization point — no code may use it to establish happens-before.
/// Diff exactness for the benchmark harnesses comes from thread-pool join,
/// not from the counter's ordering: measure_ber returns only after its
/// shard tasks complete, and that completion handshake is an
/// acquire/release edge that publishes every relaxed increment made by the
/// shards. See ber_decoded_bits_total() in ber.hpp.
std::atomic<std::uint64_t> g_decoded_bits{0};

/// Trellis steps per decode_block call. Large enough to amortize the
/// per-chunk virtual dispatch and buffer bookkeeping, small enough that a
/// run overshooting its stopping point wastes little work (generated bits
/// past the stop are transmitted but never counted, so the estimate is
/// unaffected — shard RNG streams are independent by construction).
constexpr std::size_t kChunkBits = 1024;

/// One continuous encode -> AWGN -> decode stream with its own RNG state,
/// error counters, and early-stopping rules. This is the historical body of
/// measure_ber, parameterized by seed and budgets so it can serve either as
/// the whole measurement (shards = 1) or as one shard of a parallel one.
///
/// The stream is driven in chunks through Decoder::decode_block with every
/// buffer (tx delay line, rx samples, decoded bits) preallocated up front —
/// the steady-state loop performs no allocation and exactly one virtual
/// call per kChunkBits trellis steps. The per-bit stopping rules of the
/// historical step() loop are replayed bit-for-bit while counting, so the
/// returned estimate is bit-identical to the per-step driver's.
util::ProportionEstimate run_ber_stream(const DecoderSpec& spec,
                                        double esn0_db,
                                        const BerRunConfig& config,
                                        std::uint64_t stream_seed) {
  const Trellis trellis(spec.code);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  constexpr double kAmplitude = 1.0;

  AwgnChannel channel(esn0_db, kAmplitude * kAmplitude, stream_seed);
  util::Random data_rng(stream_seed ^ 0xDA7A'B175ULL);
  BpskModulator modulator(kAmplitude);
  auto decoder =
      spec.make_decoder(trellis, kAmplitude, channel.noise_sigma());

  util::ProportionEstimate errors;

  // Continuous stream decoding: the decoder runs uninterrupted over the
  // whole simulation, so there are no block-boundary traceback artifacts —
  // each decoded bit emerges L steps after its symbols and is compared
  // against the matching transmitted bit through a delay line. The last
  // L-1 bits of the stream are simply not counted.
  ConvolutionalEncoder encoder(spec.code);
  std::vector<int> pending;  // transmitted bits awaiting their decode
  pending.reserve(kChunkBits + 16'384);
  std::size_t pending_head = 0;
  std::vector<double> rx(kChunkBits * n);   // reused chunk of channel samples
  std::vector<int> decoded(kChunkBits);     // reused decode_block output
  std::uint64_t next_decision_check = std::max<std::uint64_t>(
      config.min_bits, 8'192);
  bool stopped = false;
  while (!stopped && errors.trials < config.max_bits &&
         (errors.trials < config.min_bits ||
          errors.successes < config.max_errors)) {
    // Encode/modulate/transmit one chunk into the reusable rx buffer. RNG
    // draws stay in the exact per-bit order of the historical loop: one
    // data bit, then n noise samples.
    for (std::size_t i = 0; i < kChunkBits; ++i) {
      const int bit = data_rng.bit() ? 1 : 0;
      const std::uint32_t symbols = encoder.encode_bit(bit);
      for (std::size_t j = 0; j < n; ++j) {
        rx[i * n + j] = channel.transmit(
            modulator.modulate(static_cast<int>((symbols >> j) & 1u)));
      }
      pending.push_back(bit);
    }
    const std::size_t got = decoder->decode_block(rx, decoded);

    // Count decoded bits one at a time, replaying the per-bit stopping
    // checks the historical loop ran before generating each next bit: the
    // run stops at exactly the same (successes, trials) state it always
    // did; any remaining decoded bits of the chunk are discarded.
    for (std::size_t b = 0; b < got; ++b) {
      if (!(errors.trials < config.max_bits &&
            (errors.trials < config.min_bits ||
             errors.successes < config.max_errors))) {
        stopped = true;
        break;
      }
      if (config.decision_ber > 0.0 && errors.trials >= next_decision_check) {
        const auto interval = errors.wilson();
        if (interval.high < config.decision_ber / 1.5 ||
            interval.low > config.decision_ber * 1.5) {
          stopped = true;  // confidently decided either way
          break;
        }
        next_decision_check += 8'192;
      }
      errors.add(decoded[b] != pending[pending_head++]);
    }
    // Keep the delay line compact on long runs; capacity is retained, so
    // the steady state stays allocation-free.
    if (pending_head > 8'192) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(pending_head));
      pending_head = 0;
    }
  }
  g_decoded_bits.fetch_add(errors.trials, std::memory_order_relaxed);
  return errors;
}

/// Ceiling division of a simulation budget across shards.
std::uint64_t shard_budget(std::uint64_t total, std::uint64_t shards) {
  return (total + shards - 1) / shards;
}

}  // namespace

std::uint64_t ber_decoded_bits_total() {
  return g_decoded_bits.load(std::memory_order_relaxed);
}

BerPoint measure_ber(const DecoderSpec& spec, double esn0_db,
                     const BerRunConfig& config) {
  if (config.max_bits == 0) {
    throw std::invalid_argument("measure_ber: max_bits must be positive");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("measure_ber: shards must be >= 1");
  }
  // Derive a distinct seed per (spec, channel point) so curves are
  // reproducible yet independent across points.
  const std::uint64_t point_seed =
      config.seed ^ (static_cast<std::uint64_t>(
                         std::llround(esn0_db * 1000.0 + 1e6))
                     << 20) ^
      (static_cast<std::uint64_t>(spec.code.constraint_length) << 8) ^
      static_cast<std::uint64_t>(spec.traceback_depth);

  BerPoint point;
  point.esn0_db = esn0_db;

  if (config.shards == 1) {
    point.errors = run_ber_stream(spec, esn0_db, config, point_seed);
    return point;
  }

  // Sharded Monte-Carlo: independent streams with 1/shards of each budget,
  // keyed by counter-based substreams of the point seed. Shard results
  // depend only on (config, shard index), never on scheduling, and the
  // reduction walks shards in index order — bit-identical at any thread
  // count.
  const auto shards = static_cast<std::uint64_t>(config.shards);
  BerRunConfig shard_cfg = config;
  shard_cfg.max_bits = shard_budget(config.max_bits, shards);
  shard_cfg.min_bits = shard_budget(config.min_bits, shards);
  shard_cfg.max_errors =
      std::max<std::uint64_t>(1, shard_budget(config.max_errors, shards));

  std::vector<util::ProportionEstimate> per_shard(shards);
  exec::parallel_for(per_shard.size(), [&](std::size_t s) {
    per_shard[s] = run_ber_stream(
        spec, esn0_db, shard_cfg,
        util::substream_key(point_seed, static_cast<std::uint64_t>(s)));
  });
  for (const auto& shard : per_shard) point.errors.merge(shard);
  return point;
}

std::vector<BerPoint> measure_ber_curve(
    const DecoderSpec& spec, const std::vector<double>& esn0_db_points,
    const BerRunConfig& config) {
  // Channel points are seeded independently of one another, so the curve
  // fans out across the pool; with a serial pool (or from inside other pool
  // work) this degenerates to the historical in-order loop.
  std::vector<BerPoint> curve(esn0_db_points.size());
  exec::parallel_for(curve.size(), [&](std::size_t i) {
    curve[i] = measure_ber(spec, esn0_db_points[i], config);
  });
  return curve;
}

}  // namespace metacore::comm
