#include "comm/ber.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/channel.hpp"
#include "util/rng.hpp"

namespace metacore::comm {

std::string to_string(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::Hard:
      return "hard";
    case DecoderKind::Soft:
      return "soft";
    case DecoderKind::Multires:
      return "multires";
  }
  return "?";
}

std::unique_ptr<Decoder> DecoderSpec::make_decoder(const Trellis& trellis,
                                                   double amplitude,
                                                   double noise_sigma) const {
  switch (kind) {
    case DecoderKind::Hard:
      return make_hard_decoder(trellis, traceback_depth, amplitude,
                               noise_sigma);
    case DecoderKind::Soft:
      return make_soft_decoder(trellis, traceback_depth, high_res_bits,
                               quantization, amplitude, noise_sigma);
    case DecoderKind::Multires: {
      MultiresConfig config{traceback_depth, low_res_bits, high_res_bits,
                            quantization, num_high_res_paths,
                            normalization_terms};
      return make_multires_decoder(trellis, config, amplitude, noise_sigma);
    }
  }
  throw std::logic_error("DecoderSpec::make_decoder: unknown kind");
}

std::string DecoderSpec::label() const {
  std::string out = to_string(kind);
  out += " K=" + std::to_string(code.constraint_length);
  out += " L=" + std::to_string(traceback_depth);
  if (kind == DecoderKind::Soft) {
    out += " R=" + std::to_string(high_res_bits);
  } else if (kind == DecoderKind::Multires) {
    out += " R1=" + std::to_string(low_res_bits);
    out += " R2=" + std::to_string(high_res_bits);
    out += " M=" + std::to_string(num_high_res_paths);
    out += " N=" + std::to_string(normalization_terms);
  }
  if (kind != DecoderKind::Hard) {
    out += " Q=";
    out += quantization == QuantizationMethod::AdaptiveSoft ? "A" : "F";
  }
  return out;
}

BerPoint measure_ber(const DecoderSpec& spec, double esn0_db,
                     const BerRunConfig& config) {
  if (config.max_bits == 0) {
    throw std::invalid_argument("measure_ber: max_bits must be positive");
  }
  const Trellis trellis(spec.code);
  const int n = trellis.symbols_per_step();
  constexpr double kAmplitude = 1.0;

  // Derive a distinct seed per (spec, channel point) so curves are
  // reproducible yet independent across points.
  const std::uint64_t point_seed =
      config.seed ^ (static_cast<std::uint64_t>(
                         std::llround(esn0_db * 1000.0 + 1e6))
                     << 20) ^
      (static_cast<std::uint64_t>(spec.code.constraint_length) << 8) ^
      static_cast<std::uint64_t>(spec.traceback_depth);

  AwgnChannel channel(esn0_db, kAmplitude * kAmplitude, point_seed);
  util::Random data_rng(point_seed ^ 0xDA7A'B175ULL);
  BpskModulator modulator(kAmplitude);
  auto decoder =
      spec.make_decoder(trellis, kAmplitude, channel.noise_sigma());

  BerPoint point;
  point.esn0_db = esn0_db;

  // Continuous stream decoding: the decoder runs uninterrupted over the
  // whole simulation, so there are no block-boundary traceback artifacts —
  // each decoded bit emerges L steps after its symbols and is compared
  // against the matching transmitted bit through a delay line. The last
  // L-1 bits of the stream are simply not counted.
  ConvolutionalEncoder encoder(spec.code);
  std::vector<int> pending;  // transmitted bits awaiting their decode
  std::size_t pending_head = 0;
  std::vector<double> rx(static_cast<std::size_t>(n));
  std::uint64_t next_decision_check = std::max<std::uint64_t>(
      config.min_bits, 8'192);
  while (point.errors.trials < config.max_bits &&
         (point.errors.trials < config.min_bits ||
          point.errors.successes < config.max_errors)) {
    if (config.decision_ber > 0.0 &&
        point.errors.trials >= next_decision_check) {
      const auto interval = point.errors.wilson();
      if (interval.high < config.decision_ber / 1.5 ||
          interval.low > config.decision_ber * 1.5) {
        break;  // confidently decided either way
      }
      next_decision_check += 8'192;
    }
    const int bit = data_rng.bit() ? 1 : 0;
    const std::uint32_t symbols = encoder.encode_bit(bit);
    for (int j = 0; j < n; ++j) {
      rx[static_cast<std::size_t>(j)] = channel.transmit(
          modulator.modulate(static_cast<int>((symbols >> j) & 1u)));
    }
    pending.push_back(bit);
    if (const auto decoded = decoder->step(rx)) {
      point.errors.add(*decoded != pending[pending_head++]);
    }
    // Keep the delay line compact on long runs.
    if (pending_head > 8'192) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(pending_head));
      pending_head = 0;
    }
  }
  return point;
}

std::vector<BerPoint> measure_ber_curve(
    const DecoderSpec& spec, const std::vector<double>& esn0_db_points,
    const BerRunConfig& config) {
  std::vector<BerPoint> curve;
  curve.reserve(esn0_db_points.size());
  for (double esn0 : esn0_db_points) {
    curve.push_back(measure_ber(spec, esn0, config));
  }
  return curve;
}

}  // namespace metacore::comm
