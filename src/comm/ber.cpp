#include "comm/ber.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "comm/channel.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace metacore::comm {

std::string to_string(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::Hard:
      return "hard";
    case DecoderKind::Soft:
      return "soft";
    case DecoderKind::Multires:
      return "multires";
  }
  return "?";
}

std::unique_ptr<Decoder> DecoderSpec::make_decoder(const Trellis& trellis,
                                                   double amplitude,
                                                   double noise_sigma) const {
  switch (kind) {
    case DecoderKind::Hard:
      return make_hard_decoder(trellis, traceback_depth, amplitude,
                               noise_sigma);
    case DecoderKind::Soft:
      return make_soft_decoder(trellis, traceback_depth, high_res_bits,
                               quantization, amplitude, noise_sigma);
    case DecoderKind::Multires: {
      MultiresConfig config{traceback_depth, low_res_bits, high_res_bits,
                            quantization, num_high_res_paths,
                            normalization_terms};
      return make_multires_decoder(trellis, config, amplitude, noise_sigma);
    }
  }
  throw std::logic_error("DecoderSpec::make_decoder: unknown kind");
}

std::unique_ptr<FrameDecoder> DecoderSpec::make_frame_decoder(
    const Trellis& trellis, double amplitude, double noise_sigma,
    std::size_t lanes) const {
  if (lanes == 0) lanes = default_frame_lanes();
  switch (kind) {
    case DecoderKind::Hard:
      return std::make_unique<FrameViterbiDecoder>(
          trellis, traceback_depth,
          Quantizer(QuantizationMethod::Hard, 1, amplitude, noise_sigma),
          lanes);
    case DecoderKind::Soft:
      return std::make_unique<FrameViterbiDecoder>(
          trellis, traceback_depth,
          Quantizer(quantization, high_res_bits, amplitude, noise_sigma),
          lanes);
    case DecoderKind::Multires: {
      MultiresConfig config{traceback_depth, low_res_bits, high_res_bits,
                            quantization, num_high_res_paths,
                            normalization_terms};
      return std::make_unique<FrameMultiresDecoder>(trellis, config, amplitude,
                                                    noise_sigma, lanes);
    }
  }
  throw std::logic_error("DecoderSpec::make_frame_decoder: unknown kind");
}

std::string DecoderSpec::label() const {
  std::string out = to_string(kind);
  out += " K=" + std::to_string(code.constraint_length);
  out += " L=" + std::to_string(traceback_depth);
  if (kind == DecoderKind::Soft) {
    out += " R=" + std::to_string(high_res_bits);
  } else if (kind == DecoderKind::Multires) {
    out += " R1=" + std::to_string(low_res_bits);
    out += " R2=" + std::to_string(high_res_bits);
    out += " M=" + std::to_string(num_high_res_paths);
    out += " N=" + std::to_string(normalization_terms);
  }
  if (kind != DecoderKind::Hard) {
    out += " Q=";
    out += quantization == QuantizationMethod::AdaptiveSoft ? "A" : "F";
  }
  return out;
}

namespace {

/// Counted decoded bits across every run_ber_stream in the process (the
/// benchmark harnesses read it to turn search wall time into a decode
/// throughput figure). Relaxed: it is a statistics counter, never a
/// synchronization point — no code may use it to establish happens-before.
/// Diff exactness for the benchmark harnesses comes from thread-pool join,
/// not from the counter's ordering: measure_ber returns only after its
/// shard tasks complete, and that completion handshake is an
/// acquire/release edge that publishes every relaxed increment made by the
/// shards. See ber_decoded_bits_total() in ber.hpp.
std::atomic<std::uint64_t> g_decoded_bits{0};

/// Trellis steps per decode_block call. Large enough to amortize the
/// per-chunk virtual dispatch and buffer bookkeeping, small enough that a
/// run overshooting its stopping point wastes little work (generated bits
/// past the stop are transmitted but never counted, so the estimate is
/// unaffected — shard RNG streams are independent by construction).
constexpr std::size_t kChunkBits = 1024;

/// One continuous encode -> AWGN -> decode stream with its own RNG state,
/// error counters, and early-stopping rules. This is the historical body of
/// measure_ber, parameterized by seed and budgets so it can serve either as
/// the whole measurement (shards = 1) or as one shard of a parallel one.
///
/// The stream is driven in chunks through Decoder::decode_block with every
/// buffer (tx delay line, rx samples, decoded bits) preallocated up front —
/// the steady-state loop performs no allocation and exactly one virtual
/// call per kChunkBits trellis steps. The per-bit stopping rules of the
/// historical step() loop are replayed bit-for-bit while counting, so the
/// returned estimate is bit-identical to the per-step driver's.
util::ProportionEstimate run_ber_stream(const DecoderSpec& spec,
                                        double esn0_db,
                                        const BerRunConfig& config,
                                        std::uint64_t stream_seed) {
  const Trellis trellis(spec.code);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  constexpr double kAmplitude = 1.0;

  AwgnChannel channel(esn0_db, kAmplitude * kAmplitude, stream_seed);
  util::Random data_rng(stream_seed ^ 0xDA7A'B175ULL);
  BpskModulator modulator(kAmplitude);
  auto decoder =
      spec.make_decoder(trellis, kAmplitude, channel.noise_sigma());

  util::ProportionEstimate errors;

  // Continuous stream decoding: the decoder runs uninterrupted over the
  // whole simulation, so there are no block-boundary traceback artifacts —
  // each decoded bit emerges L steps after its symbols and is compared
  // against the matching transmitted bit through a delay line. The last
  // L-1 bits of the stream are simply not counted.
  ConvolutionalEncoder encoder(spec.code);
  std::vector<int> pending;  // transmitted bits awaiting their decode
  pending.reserve(kChunkBits + 16'384);
  std::size_t pending_head = 0;
  std::vector<double> rx(kChunkBits * n);   // reused chunk of channel samples
  std::vector<int> decoded(kChunkBits);     // reused decode_block output
  std::uint64_t next_decision_check = std::max<std::uint64_t>(
      config.min_bits, 8'192);
  bool stopped = false;
  while (!stopped && errors.trials < config.max_bits &&
         (errors.trials < config.min_bits ||
          errors.successes < config.max_errors)) {
    // Encode/modulate/transmit one chunk into the reusable rx buffer. RNG
    // draws stay in the exact per-bit order of the historical loop: one
    // data bit, then n noise samples.
    for (std::size_t i = 0; i < kChunkBits; ++i) {
      const int bit = data_rng.bit() ? 1 : 0;
      const std::uint32_t symbols = encoder.encode_bit(bit);
      for (std::size_t j = 0; j < n; ++j) {
        rx[i * n + j] = channel.transmit(
            modulator.modulate(static_cast<int>((symbols >> j) & 1u)));
      }
      pending.push_back(bit);
    }
    const std::size_t got = decoder->decode_block(rx, decoded);

    // Count decoded bits one at a time, replaying the per-bit stopping
    // checks the historical loop ran before generating each next bit: the
    // run stops at exactly the same (successes, trials) state it always
    // did; any remaining decoded bits of the chunk are discarded.
    for (std::size_t b = 0; b < got; ++b) {
      if (!(errors.trials < config.max_bits &&
            (errors.trials < config.min_bits ||
             errors.successes < config.max_errors))) {
        stopped = true;
        break;
      }
      if (config.decision_ber > 0.0 && errors.trials >= next_decision_check) {
        const auto interval = errors.wilson();
        if (interval.high < config.decision_ber / 1.5 ||
            interval.low > config.decision_ber * 1.5) {
          stopped = true;  // confidently decided either way
          break;
        }
        next_decision_check += 8'192;
      }
      errors.add(decoded[b] != pending[pending_head++]);
    }
    // Keep the delay line compact on long runs; capacity is retained, so
    // the steady state stays allocation-free.
    if (pending_head > 8'192) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(pending_head));
      pending_head = 0;
    }
  }
  g_decoded_bits.fetch_add(errors.trials, std::memory_order_relaxed);
  return errors;
}

/// Per-lane stream state for the lane-parallel variant of run_ber_stream:
/// one independent encode -> AWGN pipeline plus error counters and
/// early-stopping bookkeeping, all seeded exactly as run_ber_stream seeds
/// a standalone stream.
struct LaneStream {
  AwgnChannel channel;
  util::Random data_rng;
  ConvolutionalEncoder encoder;
  std::vector<int> pending;  ///< transmitted bits awaiting their decode
  std::size_t pending_head = 0;
  util::ProportionEstimate errors;
  std::uint64_t next_decision_check;
  bool stopped = false;

  LaneStream(const DecoderSpec& spec, double esn0_db, double amplitude,
             std::uint64_t seed, std::uint64_t min_bits)
      : channel(esn0_db, amplitude * amplitude, seed),
        data_rng(seed ^ 0xDA7A'B175ULL),
        encoder(spec.code),
        next_decision_check(std::max<std::uint64_t>(min_bits, 8'192)) {
    pending.reserve(kChunkBits + 16'384);
  }
};

/// Lane-parallel run_ber_stream: decodes |seeds| independent shard streams
/// through ONE frame-parallel decoder, one stream per SIMD lane, in
/// lock-step kChunkBits chunks. Each lane's RNG draws, decoded bits, and
/// per-bit stopping replay are exactly run_ber_stream's for that seed, so
/// the returned estimates are bit-identical to |seeds| standalone runs —
/// the lane axis is invisible in the results and the goldens hold at every
/// lane count. A lane that hits its stopping rule stops generating (no
/// further RNG draws, matching the standalone early exit); its lane keeps
/// decoding a shared zero buffer, which costs nothing extra because the
/// SIMD step is constant-width, and its counters are frozen.
std::vector<util::ProportionEstimate> run_ber_streams(
    const DecoderSpec& spec, double esn0_db, const BerRunConfig& config,
    const std::vector<std::uint64_t>& seeds) {
  const Trellis trellis(spec.code);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  constexpr double kAmplitude = 1.0;
  const std::size_t lanes = seeds.size();

  std::vector<LaneStream> streams;
  streams.reserve(lanes);
  for (const std::uint64_t seed : seeds) {
    streams.emplace_back(spec, esn0_db, kAmplitude, seed, config.min_bits);
  }
  auto decoder = spec.make_frame_decoder(
      trellis, kAmplitude, streams.front().channel.noise_sigma(), lanes);
  BpskModulator modulator(kAmplitude);

  std::vector<double> rx(lanes * kChunkBits * n);
  std::vector<double> zeros(kChunkBits * n, 0.0);
  std::vector<int> decoded(lanes * kChunkBits);
  std::vector<int> dump(kChunkBits);  // decode sink for stopped lanes
  std::vector<const double*> rx_ptrs(lanes);
  std::vector<int*> out_ptrs(lanes);
  std::vector<char> generated(lanes);

  const auto wants_more = [&](const LaneStream& st) {
    return !st.stopped && st.errors.trials < config.max_bits &&
           (st.errors.trials < config.min_bits ||
            st.errors.successes < config.max_errors);
  };

  while (true) {
    bool any_active = false;
    for (std::size_t l = 0; l < lanes; ++l) {
      LaneStream& st = streams[l];
      if (wants_more(st)) {
        any_active = true;
        generated[l] = 1;
        // Exact per-bit RNG order of run_ber_stream: one data bit, then n
        // noise samples.
        double* lane_rx = rx.data() + l * kChunkBits * n;
        for (std::size_t i = 0; i < kChunkBits; ++i) {
          const int bit = st.data_rng.bit() ? 1 : 0;
          const std::uint32_t symbols = st.encoder.encode_bit(bit);
          for (std::size_t j = 0; j < n; ++j) {
            lane_rx[i * n + j] = st.channel.transmit(
                modulator.modulate(static_cast<int>((symbols >> j) & 1u)));
          }
          st.pending.push_back(bit);
        }
        rx_ptrs[l] = lane_rx;
        out_ptrs[l] = decoded.data() + l * kChunkBits;
      } else {
        st.stopped = true;
        generated[l] = 0;
        rx_ptrs[l] = zeros.data();
        out_ptrs[l] = dump.data();
      }
    }
    if (!any_active) break;

    const std::size_t got =
        decoder->decode_chunk(rx_ptrs.data(), kChunkBits, out_ptrs.data());

    // Per-lane counting with the per-bit stopping replay of
    // run_ber_stream, byte for byte.
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!generated[l]) continue;
      LaneStream& st = streams[l];
      const int* lane_decoded = decoded.data() + l * kChunkBits;
      for (std::size_t b = 0; b < got; ++b) {
        if (!(st.errors.trials < config.max_bits &&
              (st.errors.trials < config.min_bits ||
               st.errors.successes < config.max_errors))) {
          st.stopped = true;
          break;
        }
        if (config.decision_ber > 0.0 &&
            st.errors.trials >= st.next_decision_check) {
          const auto interval = st.errors.wilson();
          if (interval.high < config.decision_ber / 1.5 ||
              interval.low > config.decision_ber * 1.5) {
            st.stopped = true;  // confidently decided either way
            break;
          }
          st.next_decision_check += 8'192;
        }
        st.errors.add(lane_decoded[b] != st.pending[st.pending_head++]);
      }
      if (st.pending_head > 8'192) {
        st.pending.erase(
            st.pending.begin(),
            st.pending.begin() + static_cast<std::ptrdiff_t>(st.pending_head));
        st.pending_head = 0;
      }
    }
  }

  std::vector<util::ProportionEstimate> out(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    g_decoded_bits.fetch_add(streams[l].errors.trials,
                             std::memory_order_relaxed);
    out[l] = streams[l].errors;
  }
  return out;
}

/// Ceiling division of a simulation budget across shards.
std::uint64_t shard_budget(std::uint64_t total, std::uint64_t shards) {
  return (total + shards - 1) / shards;
}

}  // namespace

std::uint64_t ber_decoded_bits_total() {
  return g_decoded_bits.load(std::memory_order_relaxed);
}

std::vector<std::vector<int>> decode_frames(
    const DecoderSpec& spec, const Trellis& trellis, double amplitude,
    double noise_sigma, std::span<const std::span<const double>> frames,
    std::size_t lanes) {
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  if (lanes == 0) lanes = default_frame_lanes();
  if (frames.empty()) return {};

  std::vector<std::size_t> frame_steps(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames[i].size() % n != 0) {
      throw std::invalid_argument(
          "decode_frames: frame length not a multiple of symbols per step");
    }
    frame_steps[i] = frames[i].size() / n;
  }

  // Group similar-length frames into lane groups: stable sort by descending
  // step count, so each group of `lanes` frames wastes the least lock-step
  // work on its ragged tail. Stability keeps the grouping (and thus the
  // work schedule — never the results, which are per-frame exact) a pure
  // function of the input.
  std::vector<std::size_t> order(frames.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return frame_steps[a] > frame_steps[b];
                   });

  auto decoder = spec.make_frame_decoder(trellis, amplitude, noise_sigma,
                                         lanes);
  std::vector<std::vector<int>> result(frames.size());

  // A lane whose frame has ended keeps marching on shared zero samples (the
  // lock-step kernel is constant-width, so this is free); its decoded bits
  // go to a sink and its real output was captured by flush() at the
  // boundary. kSegmentSteps only bounds the zero/sink buffers — chunk
  // boundaries never affect decoded streams.
  constexpr std::size_t kSegmentSteps = 1024;
  const std::vector<double> zeros(kSegmentSteps * n, 0.0);
  std::vector<int> dump(kSegmentSteps);
  std::vector<const double*> rx_ptrs(lanes, zeros.data());
  std::vector<int*> out_ptrs(lanes, dump.data());

  for (std::size_t g = 0; g < order.size(); g += lanes) {
    const std::size_t group = std::min(lanes, order.size() - g);
    decoder->reset();
    const std::size_t max_steps = frame_steps[order[g]];  // sorted descending

    // Lock-step emission: every lane receives the same bit count, an upper
    // bound of max_steps; each frame's valid prefix is whatever had been
    // emitted when its own samples ran out.
    std::vector<std::vector<int>> bits(group);
    for (auto& b : bits) b.resize(max_steps);
    std::vector<char> ended(group, 0);
    std::size_t emitted = 0;
    std::size_t cur = 0;

    const auto finalize = [&](std::size_t j) {
      const std::size_t idx = order[g + j];
      auto& out = result[idx];
      out.assign(bits[j].begin(),
                 bits[j].begin() + static_cast<std::ptrdiff_t>(emitted));
      const std::vector<int> tail = decoder->flush(j);
      out.insert(out.end(), tail.begin(), tail.end());
      ended[j] = 1;
    };

    while (cur < max_steps) {
      // Capture every frame ending exactly here, then decode up to the next
      // frame boundary in bounded segments.
      for (std::size_t j = 0; j < group; ++j) {
        if (!ended[j] && frame_steps[order[g + j]] == cur) finalize(j);
      }
      std::size_t boundary = max_steps;
      for (std::size_t j = 0; j < group; ++j) {
        const std::size_t fs = frame_steps[order[g + j]];
        if (fs > cur) boundary = std::min(boundary, fs);
      }
      while (cur < boundary) {
        const std::size_t seg = std::min(kSegmentSteps, boundary - cur);
        for (std::size_t j = 0; j < group; ++j) {
          if (frame_steps[order[g + j]] > cur) {
            rx_ptrs[j] = frames[order[g + j]].data() + cur * n;
            out_ptrs[j] = bits[j].data() + emitted;
          } else {
            rx_ptrs[j] = zeros.data();
            out_ptrs[j] = dump.data();
          }
        }
        for (std::size_t j = group; j < lanes; ++j) {
          rx_ptrs[j] = zeros.data();
          out_ptrs[j] = dump.data();
        }
        emitted += decoder->decode_chunk(rx_ptrs.data(), seg, out_ptrs.data());
        cur += seg;
      }
    }
    for (std::size_t j = 0; j < group; ++j) {
      if (!ended[j]) finalize(j);
    }
  }
  return result;
}

BerPoint measure_ber(const DecoderSpec& spec, double esn0_db,
                     const BerRunConfig& config) {
  if (config.max_bits == 0) {
    throw std::invalid_argument("measure_ber: max_bits must be positive");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("measure_ber: shards must be >= 1");
  }
  if (config.lanes < 0) {
    throw std::invalid_argument("measure_ber: lanes must be >= 0");
  }
  // Derive a distinct seed per (spec, channel point) so curves are
  // reproducible yet independent across points.
  const std::uint64_t point_seed =
      config.seed ^ (static_cast<std::uint64_t>(
                         std::llround(esn0_db * 1000.0 + 1e6))
                     << 20) ^
      (static_cast<std::uint64_t>(spec.code.constraint_length) << 8) ^
      static_cast<std::uint64_t>(spec.traceback_depth);

  BerPoint point;
  point.esn0_db = esn0_db;

  if (config.shards == 1) {
    point.errors = run_ber_stream(spec, esn0_db, config, point_seed);
    return point;
  }

  // Sharded Monte-Carlo: independent streams with 1/shards of each budget,
  // keyed by counter-based substreams of the point seed. Shard results
  // depend only on (config, shard index), never on scheduling or grouping,
  // and the reduction walks shards in index order — bit-identical at any
  // thread count and any lane count.
  const auto shards = static_cast<std::size_t>(config.shards);
  BerRunConfig shard_cfg = config;
  shard_cfg.max_bits = shard_budget(config.max_bits, shards);
  shard_cfg.min_bits = shard_budget(config.min_bits, shards);
  shard_cfg.max_errors =
      std::max<std::uint64_t>(1, shard_budget(config.max_errors, shards));

  // Group shards into SIMD lanes of one frame-parallel decoder each
  // (frames x threads x lanes). The group size fills the thread pool
  // first — groups never drop below the pool's parallelism — and only the
  // surplus shards widen into lanes, so a many-core / few-shard run keeps
  // its thread-level speedup. Group size depends on the configured pool
  // size, never on runtime load, and per-shard results are lane-invariant,
  // so the measurement stays deterministic.
  const std::size_t lane_cap = config.lanes > 0
                                   ? static_cast<std::size_t>(config.lanes)
                                   : default_frame_lanes();
  const std::size_t pool_threads =
      std::max<std::size_t>(1, exec::ThreadPool::global().size());
  const std::size_t group_size = std::max<std::size_t>(
      1, std::min(lane_cap, (shards + pool_threads - 1) / pool_threads));
  const std::size_t num_groups = (shards + group_size - 1) / group_size;

  std::vector<util::ProportionEstimate> per_shard(shards);
  exec::parallel_for(num_groups, [&](std::size_t g) {
    const std::size_t lo = g * group_size;
    const std::size_t hi = std::min(shards, lo + group_size);
    std::vector<std::uint64_t> seeds(hi - lo);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      seeds[i] =
          util::substream_key(point_seed, static_cast<std::uint64_t>(lo + i));
    }
    const auto results = run_ber_streams(spec, esn0_db, shard_cfg, seeds);
    std::copy(results.begin(), results.end(),
              per_shard.begin() + static_cast<std::ptrdiff_t>(lo));
  });
  for (const auto& shard : per_shard) point.errors.merge(shard);
  return point;
}

std::vector<BerPoint> measure_ber_curve(
    const DecoderSpec& spec, const std::vector<double>& esn0_db_points,
    const BerRunConfig& config) {
  // Channel points are seeded independently of one another, so the curve
  // fans out across the pool; with a serial pool (or from inside other pool
  // work) this degenerates to the historical in-order loop.
  std::vector<BerPoint> curve(esn0_db_points.size());
  exec::parallel_for(curve.size(), [&](std::size_t i) {
    curve[i] = measure_ber(spec, esn0_db_points[i], config);
  });
  return curve;
}

}  // namespace metacore::comm
