// The decoder-side trellis: the convolutional encoder's state-transition
// diagram unrolled in time (Figure 3 of the paper). Precomputes, for every
// (state, input-bit) pair, the successor state and expected channel symbols,
// plus the reverse predecessor view the add-compare-select step iterates.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/convolutional.hpp"

namespace metacore::comm {

class Trellis {
 public:
  explicit Trellis(CodeSpec spec);

  const CodeSpec& spec() const { return spec_; }
  int num_states() const { return num_states_; }
  int symbols_per_step() const { return symbols_per_step_; }

  /// Successor of `state` on input `bit`.
  std::uint32_t next_state(std::uint32_t state, int bit) const {
    return next_state_[(state << 1) | static_cast<std::uint32_t>(bit & 1)];
  }

  /// Expected channel symbols (packed LSB-first, one bit per generator) on
  /// the branch leaving `state` with input `bit`.
  std::uint32_t output_symbols(std::uint32_t state, int bit) const {
    return output_[(state << 1) | static_cast<std::uint32_t>(bit & 1)];
  }

  /// A branch entering a state in the predecessor view.
  struct Predecessor {
    std::uint32_t from_state;   ///< state the branch leaves
    int input_bit;              ///< encoder input that takes the branch
    std::uint32_t symbols;      ///< expected channel symbols on the branch
  };

  /// Every state in a binary-input trellis has exactly two predecessors.
  const std::array<Predecessor, 2>& predecessors(std::uint32_t state) const {
    return predecessors_[state];
  }

  /// Flat structure-of-arrays predecessor view in butterfly order: entry
  /// 2*state + branch mirrors predecessors(state)[branch]. The decoder ACS
  /// inner loops walk these contiguous arrays instead of the array-of-structs
  /// view, the layout a hardware ACS butterfly array would use; the
  /// kernel-equivalence tests assert both views agree branch for branch.
  std::span<const std::uint32_t> pred_states() const { return pred_state_; }
  /// Expected channel symbols per flat branch (index into a per-step
  /// branch-metric table of 2^n entries).
  std::span<const std::uint32_t> pred_symbols() const { return pred_symbols_; }
  /// Encoder input bit per flat branch (the traceback decision).
  std::span<const std::uint8_t> pred_bits() const { return pred_bit_; }

  /// Text rendering of the state-transition structure (one line per
  /// branch, grouped by state) — the textual analog of the paper's
  /// Figure 3 trellis diagram.
  std::string to_string() const;

 private:
  CodeSpec spec_;
  int num_states_ = 0;
  int symbols_per_step_ = 0;
  std::vector<std::uint32_t> next_state_;  ///< indexed by (state<<1)|bit
  std::vector<std::uint32_t> output_;      ///< indexed by (state<<1)|bit
  std::vector<std::array<Predecessor, 2>> predecessors_;
  // Flattened predecessor view, indexed by (state<<1)|branch.
  std::vector<std::uint32_t> pred_state_;
  std::vector<std::uint32_t> pred_symbols_;
  std::vector<std::uint8_t> pred_bit_;
};

/// Text rendering of the shift-register encoder (taps per generator) — the
/// textual analog of the paper's Figure 2.
std::string describe_encoder(const CodeSpec& spec);

}  // namespace metacore::comm
