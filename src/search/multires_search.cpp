#include "search/multires_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "robust/checkpoint.hpp"

namespace metacore::search {

MultiresolutionSearch::MultiresolutionSearch(DesignSpace space,
                                             Objective objective,
                                             EvaluateFn evaluate,
                                             SearchConfig config)
    : space_(std::move(space)),
      objective_(std::move(objective)),
      evaluate_(std::move(evaluate)),
      config_(config) {
  if (!evaluate_) {
    throw std::invalid_argument("MultiresolutionSearch: null evaluator");
  }
  if (config_.initial_points_per_dim < 1) {
    throw std::invalid_argument(
        "MultiresolutionSearch: initial_points_per_dim must be >= 1 (got " +
        std::to_string(config_.initial_points_per_dim) + ")");
  }
  if (config_.max_initial_evaluations < 1) {
    throw std::invalid_argument(
        "MultiresolutionSearch: max_initial_evaluations must be >= 1 (got " +
        std::to_string(config_.max_initial_evaluations) + ")");
  }
  if (config_.max_resolution < 0) {
    throw std::invalid_argument(
        "MultiresolutionSearch: max_resolution must be >= 0 (got " +
        std::to_string(config_.max_resolution) + ")");
  }
  if (config_.regions_per_level < 1) {
    throw std::invalid_argument(
        "MultiresolutionSearch: regions_per_level must be >= 1 (got " +
        std::to_string(config_.regions_per_level) + ")");
  }
  if (config_.refined_points_per_dim < 2) {
    throw std::invalid_argument(
        "MultiresolutionSearch: refined_points_per_dim must be >= 2 (got " +
        std::to_string(config_.refined_points_per_dim) + ")");
  }
  if (config_.max_evaluations == 0) {
    throw std::invalid_argument(
        "MultiresolutionSearch: max_evaluations must be > 0");
  }
  if (config_.store && config_.store_fingerprint.empty()) {
    throw std::invalid_argument(
        "MultiresolutionSearch: store_fingerprint must identify the "
        "evaluator when a persistent store is attached");
  }
  if (config_.guard_evaluations) {
    guard_.emplace(evaluate_, config_.retry);
  }
  if (!config_.probabilistic_metric.empty()) {
    for (const auto& c : objective_.constraints) {
      if (c.metric == config_.probabilistic_metric &&
          c.kind == Constraint::Kind::UpperBound) {
        has_probabilistic_ = true;
        probabilistic_bound_ = c.bound;
        break;
      }
    }
  }
}

std::vector<std::vector<int>> MultiresolutionSearch::sample_grid(
    const Region& region, int points_per_dim, std::size_t cap) const {
  const std::size_t dims = space_.dimensions();
  std::vector<std::vector<int>> per_dim(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const auto [lo, hi] = region.ranges[d];
    const int span = hi - lo;
    const int k = std::min(points_per_dim, span + 1);
    std::set<int> picks;
    if (k == 1) {
      picks.insert(lo + span / 2);
    } else {
      for (int i = 0; i < k; ++i) {
        picks.insert(lo + (span * i) / (k - 1));
      }
    }
    per_dim[d].assign(picks.begin(), picks.end());
  }
  // Respect the evaluation cap by thinning the densest dimensions first.
  auto total = [&] {
    std::size_t t = 1;
    for (const auto& v : per_dim) {
      if (t > cap * 4) return t;  // avoid overflow; already way over
      t *= v.size();
    }
    return t;
  };
  while (total() > cap) {
    // Thin the densest dimension; among ties prefer the *last* one so that
    // dimensions listed first (by convention the most influential, e.g. K
    // before M for the Viterbi space) keep their midpoints longest.
    auto densest = per_dim.begin();
    for (auto it = per_dim.begin(); it != per_dim.end(); ++it) {
      if (it->size() >= densest->size()) densest = it;
    }
    if (densest->size() <= 1) break;
    // Drop every other interior point, keeping the endpoints.
    std::vector<int> thinned;
    for (std::size_t i = 0; i < densest->size(); ++i) {
      if (i == 0 || i + 1 == densest->size() || i % 2 == 0) {
        thinned.push_back((*densest)[i]);
      }
    }
    if (thinned.size() == densest->size()) thinned.pop_back();
    *densest = std::move(thinned);
  }

  // Cartesian product.
  std::vector<std::vector<int>> grid;
  std::vector<std::size_t> cursor(dims, 0);
  while (true) {
    std::vector<int> point(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      point[d] = per_dim[d][cursor[d]];
    }
    grid.push_back(std::move(point));
    std::size_t d = 0;
    while (d < dims && ++cursor[d] == per_dim[d].size()) {
      cursor[d] = 0;
      ++d;
    }
    if (d == dims) break;
  }
  return grid;
}

const Evaluation* MultiresolutionSearch::cached_evaluation(
    const std::vector<int>& indices, int fidelity) const {
  const auto entry = cache_.find(indices);
  if (entry == cache_.end()) return nullptr;
  // A higher-fidelity result supersedes lower ones.
  const auto it = entry->second.lower_bound(fidelity);
  return it == entry->second.end() ? nullptr : &it->second;
}

void MultiresolutionSearch::absorb_evaluation(const std::vector<int>& indices,
                                              int fidelity, Evaluation eval,
                                              SearchResult& result) {
  ++result.evaluations;
  journal_.push_back({indices, fidelity});
  if (has_probabilistic_ && eval.has_metric(config_.probabilistic_metric)) {
    ber_predictor_.add(space_.normalized(indices),
                       eval.metric(config_.probabilistic_metric),
                       std::max(1.0, eval.confidence_weight));
  }
  if (!objective_.minimize.empty() && eval.feasible &&
      eval.has_metric(objective_.minimize)) {
    objective_estimator_.add(space_.normalized(indices),
                             eval.metric(objective_.minimize));
  }
  cache_[indices].emplace(fidelity, std::move(eval));
}

MultiresolutionSearch::Region MultiresolutionSearch::region_around(
    const std::vector<int>& center, const std::vector<std::vector<int>>& grid,
    const Region& parent) const {
  // Per dimension: the interval between the sampled grid coordinates
  // adjacent to the center.
  const std::size_t dims = space_.dimensions();
  Region out;
  out.ranges.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::set<int> coords;
    for (const auto& p : grid) coords.insert(p[d]);
    int lo = parent.ranges[d].first;
    int hi = parent.ranges[d].second;
    auto it = coords.find(center[d]);
    if (it != coords.end()) {
      // Halve toward the sampled neighbors so each level genuinely narrows:
      // the subregion spans from the midpoint to the previous sample to the
      // midpoint to the next sample.
      if (it != coords.begin()) {
        lo = std::max(lo, (*std::prev(it) + *it + 1) / 2);
      }
      if (std::next(it) != coords.end()) {
        hi = std::min(hi, (*it + *std::next(it)) / 2);
      }
    }
    lo = std::min(lo, center[d]);
    hi = std::max(hi, center[d]);
    out.ranges[d] = {lo, hi};
  }
  return out;
}

void MultiresolutionSearch::search_region(const Region& region, int resolution,
                                          SearchResult& result) {
  if (result.evaluations >= config_.max_evaluations) return;
  const std::size_t cap =
      resolution == 0
          ? static_cast<std::size_t>(config_.max_initial_evaluations)
          : static_cast<std::size_t>(config_.max_initial_evaluations);
  const int ppd = resolution == 0 ? config_.initial_points_per_dim
                                  : config_.refined_points_per_dim;
  const std::vector<std::vector<int>> grid = sample_grid(region, ppd, cap);
  result.levels_executed = std::max(result.levels_executed, resolution + 1);

  // Batch evaluation, phase 1: walk the grid in index order replaying the
  // serial budget rule — a point enters the level only while the evaluation
  // budget is unspent, and only cache misses consume budget. This fixes the
  // exact work-set up front, independent of how it is later scheduled.
  std::vector<std::size_t> admitted;  // grid indices this level will score
  std::vector<std::size_t> misses;    // subset needing a fresh evaluation
  std::size_t planned_evals = result.evaluations;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (planned_evals >= config_.max_evaluations) break;
    admitted.push_back(i);
    if (cached_evaluation(grid[i], resolution) == nullptr) {
      misses.push_back(i);
      ++planned_evals;
    }
  }
  result.cache_hits += admitted.size() - misses.size();

  // Phase 2: fan the cache misses out across the thread pool. The evaluator
  // must be safe to call concurrently (the MetaCore evaluators build all
  // their simulation state per call). Results land in a dense index-ordered
  // buffer, so scheduling order cannot leak into anything downstream.
  // Misses recorded in a restored checkpoint journal are satisfied from it
  // instead of re-invoking the evaluator — a resumed search replays its
  // past for free and only pays for the work beyond the checkpoint — and
  // misses covered by the persistent store are absorbed straight from it,
  // which is what turns a repeat search against a warm store into
  // near-zero evaluator calls.
  std::vector<Evaluation> fresh(misses.size());
  std::vector<std::size_t> live;  // misses no journal or store can satisfy
  live.reserve(misses.size());
  for (std::size_t j = 0; j < misses.size(); ++j) {
    if (!replay_cache_.empty()) {
      const auto it = replay_cache_.find({grid[misses[j]], resolution});
      if (it != replay_cache_.end()) {
        fresh[j] = std::move(it->second);
        replay_cache_.erase(it);
        continue;
      }
    }
    if (config_.store) {
      auto hit = config_.store->lookup(config_.store_fingerprint,
                                       grid[misses[j]], resolution);
      if (hit) {
        fresh[j] = std::move(*hit);
        ++result.store_hits;
        continue;
      }
    }
    live.push_back(j);
  }
  exec::parallel_for(live.size(), [&](std::size_t k) {
    const std::size_t j = live[k];
    const std::vector<double> values = space_.values_at(grid[misses[j]]);
    fresh[j] =
        guard_ ? (*guard_)(values, resolution) : evaluate_(values, resolution);
  });
  // Feed the store in grid order so its append journal is deterministic.
  if (config_.store) {
    for (const std::size_t j : live) {
      config_.store->record(config_.store_fingerprint, grid[misses[j]],
                            resolution, fresh[j]);
    }
  }

  // Phase 3: merge in grid order — cache inserts, predictor evidence, and
  // the evaluation counter all advance deterministically. (Relative to the
  // historical fully-serial loop, the Bayesian predictor now sees the whole
  // level's evidence before any of the level's points are scored, which
  // only sharpens the pruning decisions below.)
  for (std::size_t j = 0; j < misses.size(); ++j) {
    absorb_evaluation(grid[misses[j]], resolution, std::move(fresh[j]),
                      result);
  }
  // Level completed with new evidence: flush the checkpoint so a kill from
  // here on loses at most the next level's in-flight batch.
  if (!config_.checkpoint_path.empty() && !misses.empty()) {
    flush_checkpoint();
  }

  // Phase 4: score the admitted points in grid order, exactly as the serial
  // loop did.
  struct Scored {
    std::vector<int> indices;
    const Evaluation* eval;
    double score;
  };
  std::vector<Scored> scored;
  for (const std::size_t i : admitted) {
    const std::vector<int>& indices = grid[i];
    const Evaluation& eval = *cached_evaluation(indices, resolution);
    // Track the global best.
    if (result.best.indices.empty() ||
        objective_.better(eval, result.best.eval)) {
      result.best = {indices, space_.values_at(indices), eval, resolution};
      result.found_feasible = objective_.feasible(eval);
    }
    if (!eval.feasible) continue;

    // Score for refinement: objective metric deflated by the probability
    // of meeting the probabilistic constraint near this point.
    double prob = 1.0;
    if (has_probabilistic_) {
      prob = ber_predictor_.probability_below(space_.normalized(indices),
                                              probabilistic_bound_);
      if (prob < config_.probability_keep_threshold) continue;
    }
    double metric = std::numeric_limits<double>::infinity();
    if (!objective_.minimize.empty() && eval.has_metric(objective_.minimize)) {
      metric = eval.metric(objective_.minimize);
    }
    // All deterministic constraints must hold for the region to be worth
    // refining; probabilistic ones are handled by `prob`.
    bool deterministic_ok = true;
    for (const auto& c : objective_.constraints) {
      if (c.metric == config_.probabilistic_metric) continue;
      if (!c.satisfied(eval)) {
        deterministic_ok = false;
        break;
      }
    }
    if (!deterministic_ok) continue;
    scored.push_back({indices, &eval, metric / std::max(prob, 1e-6)});
  }

  if (resolution >= config_.max_resolution) return;
  if (scored.empty()) return;

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score < b.score; });

  int refined = 0;
  std::vector<Region> chosen;
  for (const auto& s : scored) {
    if (refined >= config_.regions_per_level) break;
    Region sub = region_around(s.indices, grid, region);
    // Skip regions identical to an already-chosen one.
    bool duplicate = false;
    for (const auto& c : chosen) {
      if (c.ranges == sub.ranges) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    chosen.push_back(sub);
    ++refined;
  }
  for (const auto& sub : chosen) {
    search_region(sub, resolution + 1, result);
  }
}

SearchResult MultiresolutionSearch::run() {
  SearchResult result;
  const std::size_t divergent_before =
      config_.store ? config_.store->divergent_duplicates() : 0;
  // Resume: load the journal once (a second run() on the same engine is
  // already warm) and replay it instead of re-evaluating.
  if (!config_.checkpoint_path.empty() && cache_.empty() &&
      robust::checkpoint_exists(config_.checkpoint_path)) {
    restore_from_checkpoint();
  }
  Region full;
  full.ranges.reserve(space_.dimensions());
  for (const auto& p : space_.parameters()) {
    full.ranges.push_back({0, static_cast<int>(p.values.size()) - 1});
  }
  search_region(full, 0, result);
  result.failures = current_failures();
  if (config_.store) {
    result.divergent_duplicates =
        config_.store->divergent_duplicates() - divergent_before;
  }
  // Final flush: a completed run leaves a complete checkpoint, and resuming
  // from it replays to the identical result with zero evaluator calls.
  if (!config_.checkpoint_path.empty()) {
    flush_checkpoint();
  }

  // Final history: the best-fidelity evaluation of each distinct point.
  result.history.reserve(cache_.size());
  for (const auto& [indices, by_fidelity] : cache_) {
    const auto& [fid, eval] = *by_fidelity.rbegin();
    result.history.push_back(
        {indices, space_.values_at(indices), eval, fid});
  }
  return result;
}

std::map<std::string, double> MultiresolutionSearch::config_fingerprint()
    const {
  return {
      {"initial_points_per_dim",
       static_cast<double>(config_.initial_points_per_dim)},
      {"max_initial_evaluations",
       static_cast<double>(config_.max_initial_evaluations)},
      {"max_resolution", static_cast<double>(config_.max_resolution)},
      {"regions_per_level", static_cast<double>(config_.regions_per_level)},
      {"refined_points_per_dim",
       static_cast<double>(config_.refined_points_per_dim)},
      {"max_evaluations", static_cast<double>(config_.max_evaluations)},
      {"probability_keep_threshold", config_.probability_keep_threshold},
  };
}

robust::FailureCounters MultiresolutionSearch::current_failures() const {
  robust::FailureCounters out = restored_failures_;
  if (guard_) out += guard_->counters();
  return out;
}

void MultiresolutionSearch::restore_from_checkpoint() {
  robust::SearchCheckpoint cp =
      robust::load_checkpoint(config_.checkpoint_path);
  if (cp.dimensions != space_.dimensions()) {
    throw std::runtime_error(
        "MultiresolutionSearch: checkpoint dimensionality (" +
        std::to_string(cp.dimensions) + ") does not match the design space (" +
        std::to_string(space_.dimensions()) + ")");
  }
  if (cp.probabilistic_metric != config_.probabilistic_metric ||
      cp.fingerprint != config_fingerprint()) {
    throw std::runtime_error(
        "MultiresolutionSearch: checkpoint " + config_.checkpoint_path +
        " was written under a different search configuration; delete it to "
        "start fresh");
  }
  restored_failures_ = cp.failures;
  for (auto& rec : cp.journal) {
    space_.check_indices(rec.indices);
    replay_cache_.emplace(
        std::make_pair(std::move(rec.indices), rec.fidelity),
        std::move(rec.eval));
  }
}

void MultiresolutionSearch::flush_checkpoint() const {
  robust::SearchCheckpoint cp;
  cp.dimensions = space_.dimensions();
  cp.probabilistic_metric = config_.probabilistic_metric;
  cp.fingerprint = config_fingerprint();
  cp.failures = current_failures();
  cp.journal.reserve(journal_.size());
  for (const auto& [indices, fidelity] : journal_) {
    cp.journal.push_back({indices, fidelity, cache_.at(indices).at(fidelity)});
  }
  robust::save_checkpoint(config_.checkpoint_path, cp);
}

SearchResult exhaustive_search(const DesignSpace& space,
                               const Objective& objective,
                               const EvaluateFn& evaluate, int fidelity,
                               std::size_t max_points) {
  if (space.size() > max_points) {
    throw std::invalid_argument(
        "exhaustive_search: design space exceeds the point budget");
  }
  SearchResult result;
  const std::size_t dims = space.dimensions();

  // Enumerate the full factorial up front, then fan the evaluations out
  // across the pool; the best-point reduction walks enumeration order, so
  // ties resolve exactly as the historical serial loop did.
  std::vector<std::vector<int>> points;
  points.reserve(space.size());
  std::vector<int> cursor(dims, 0);
  while (true) {
    points.push_back(cursor);
    std::size_t d = 0;
    while (d < dims) {
      if (++cursor[d] <
          static_cast<int>(space.parameters()[d].values.size())) {
        break;
      }
      cursor[d] = 0;
      ++d;
    }
    if (d == dims) break;
  }

  result.history.resize(points.size());
  exec::parallel_for(points.size(), [&](std::size_t i) {
    const std::vector<double> values = space.values_at(points[i]);
    Evaluation eval = evaluate(values, fidelity);
    result.history[i] =
        EvaluatedPoint{std::move(points[i]), values, std::move(eval), fidelity};
  });
  result.evaluations = result.history.size();
  for (const auto& point : result.history) {
    if (result.best.indices.empty() ||
        objective.better(point.eval, result.best.eval)) {
      result.best = point;
      result.found_feasible = objective.feasible(point.eval);
    }
  }
  result.levels_executed = 1;
  return result;
}

SearchResult verify_top_candidates(SearchResult result,
                                   const DesignSpace& space,
                                   const Objective& objective,
                                   const EvaluateFn& evaluate, int top_k,
                                   int fidelity, EvaluationStoreBase* store,
                                   const std::string& store_fingerprint) {
  if (top_k < 1) {
    throw std::invalid_argument("verify_top_candidates: top_k must be >= 1");
  }
  if (store != nullptr && store_fingerprint.empty()) {
    throw std::invalid_argument(
        "verify_top_candidates: store_fingerprint must identify the "
        "evaluator when a persistent store is attached");
  }
  const std::size_t divergent_before =
      store != nullptr ? store->divergent_duplicates() : 0;
  // Re-evaluations use the candidates' stored values directly; the space
  // parameter documents (and future-proofs) the coordinate system.
  (void)space;
  // Store-aware re-evaluation: consult the persistent store first, record
  // fresh results back. `result.evaluations` counts store hits exactly
  // like the search proper, so warm and cold runs report the same count.
  const auto evaluate_at = [&](const std::vector<int>& indices,
                               const std::vector<double>& values) {
    if (store != nullptr) {
      auto hit = store->lookup(store_fingerprint, indices, fidelity);
      if (hit) {
        ++result.store_hits;
        return *hit;
      }
    }
    Evaluation eval = evaluate(values, fidelity);
    if (store != nullptr) {
      store->record(store_fingerprint, indices, fidelity, eval);
    }
    return eval;
  };
  std::vector<const EvaluatedPoint*> ranked;
  ranked.reserve(result.history.size());
  for (const auto& p : result.history) ranked.push_back(&p);
  std::sort(ranked.begin(), ranked.end(),
            [&](const EvaluatedPoint* a, const EvaluatedPoint* b) {
              return objective.better(a->eval, b->eval);
            });

  // Walk the ranked list, re-verifying candidates at high fidelity, until
  // a few have been *confirmed* feasible (noisy screening estimates put
  // lucky-but-bad points at the top; they must not exhaust the budget).
  constexpr int kStopAfterConfirmed = 3;
  bool have_best = false;
  int confirmed = 0;
  EvaluatedPoint best;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (static_cast<int>(i) >= top_k && confirmed > 0) break;
    if (static_cast<int>(i) >= 4 * top_k) break;  // give up eventually
    const EvaluatedPoint* cand = ranked[i];
    Evaluation eval = cand->fidelity >= fidelity
                          ? cand->eval
                          : evaluate_at(cand->indices, cand->values);
    if (cand->fidelity < fidelity) ++result.evaluations;
    const bool feasible = objective.feasible(eval);
    if (!have_best || objective.better(eval, best.eval)) {
      best = {cand->indices, cand->values, std::move(eval), fidelity};
      have_best = true;
    }
    if (feasible && ++confirmed >= kStopAfterConfirmed) break;
  }
  if (have_best) {
    result.best = std::move(best);
    result.found_feasible = objective.feasible(result.best.eval);
  }
  if (store != nullptr) {
    result.divergent_duplicates +=
        store->divergent_duplicates() - divergent_before;
  }
  return result;
}

}  // namespace metacore::search
