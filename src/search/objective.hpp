// Objective functions and constraints (component (ii) of the MetaCore
// approach): named metrics produced by an evaluation, bound constraints on
// them, and a single metric to minimize — e.g. "minimize area subject to
// BER <= target and throughput >= target" for the Viterbi MetaCore.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace metacore::search {

/// The result of evaluating one design point at some fidelity. `metrics`
/// hold named quantities ("ber", "area_mm2", ...); `feasible` covers
/// intrinsic failures (e.g. no hardware configuration meets throughput).
struct Evaluation {
  bool feasible = true;
  std::map<std::string, double> metrics;
  /// For probabilistic metrics: how much evidence backs them (e.g. bits
  /// simulated); used by the Bayesian predictor to weight observations.
  double confidence_weight = 1.0;
  /// Non-empty when a guarded evaluator (robust::GuardedEvaluator)
  /// converted a failure into this infeasible evaluation: "<kind>:
  /// <message>", e.g. "non-convergence: schedule_block: scheduler failed to
  /// converge". Empty for ordinary evaluations.
  std::string failure_reason;

  double metric(const std::string& name) const;
  bool has_metric(const std::string& name) const;
};

/// Evaluation callback. `point` holds one value per design-space dimension;
/// `fidelity` scales simulation effort (0 = cheapest screening run; each
/// additional level buys longer, more accurate simulation — the paper's
/// "more accurate simulation results (longer run times)").
using EvaluateFn =
    std::function<Evaluation(const std::vector<double>& point, int fidelity)>;

struct Constraint {
  enum class Kind { UpperBound, LowerBound } kind = Kind::UpperBound;
  std::string metric;
  double bound = 0.0;

  bool satisfied(const Evaluation& eval) const;
  /// Signed violation (<= 0 when satisfied), normalized by the bound.
  double violation(const Evaluation& eval) const;
};

struct Objective {
  std::string minimize;  ///< metric to minimize among feasible points
  std::vector<Constraint> constraints;

  bool feasible(const Evaluation& eval) const;

  /// Totally ordered comparison: feasibility first, then constraint
  /// violation, then the objective metric. Returns true when `a` is better.
  bool better(const Evaluation& a, const Evaluation& b) const;
};

}  // namespace metacore::search
