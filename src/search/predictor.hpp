// Metric prediction between evaluated grid points (Section 4.4): smooth
// metrics (area, throughput) are interpolated; the probabilistic BER metric
// gets a Bayesian treatment — observed values act as evidence whose weight
// decays with distance, yielding a posterior mean and uncertainty that the
// search converts into "probability this point meets the BER constraint".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace metacore::search {

/// Inverse-distance-weighted kernel regressor for smooth metrics on
/// normalized [0,1]^d coordinates. Exact at evaluated points.
class SmoothEstimator {
 public:
  void add(std::vector<double> coords, double value);

  /// Shepard interpolation with p=2; returns 0 with no observations.
  double predict(std::span<const double> coords) const;

  std::size_t observations() const { return coords_.size(); }

 private:
  std::vector<std::vector<double>> coords_;
  std::vector<double> values_;
};

/// Bayesian predictor for log10(BER). Each observation carries an evidence
/// weight (bits simulated); the posterior at a query point combines
/// neighbor observations with weights w_i = evidence_i * k(d_i), giving a
/// precision-weighted mean and a variance that grows with distance from
/// the evidence — the conditional-probability neighborhood model of the
/// paper's Refine_Grid step.
class BerPredictor {
 public:
  /// `ber` is clamped to [1e-12, 1]; `trials` is the number of decoded bits
  /// backing the estimate.
  void add(std::vector<double> coords, double ber, double trials);

  struct Prediction {
    double log10_mean = 0.0;
    double log10_sigma = 1.0;
  };
  Prediction predict(std::span<const double> coords) const;

  /// Posterior probability that BER at `coords` is below `threshold`
  /// (Gaussian posterior on log10 BER). With no evidence returns 0.5.
  double probability_below(std::span<const double> coords,
                           double threshold) const;

  std::size_t observations() const { return coords_.size(); }

 private:
  std::vector<std::vector<double>> coords_;
  std::vector<double> log_ber_;
  std::vector<double> evidence_;
};

}  // namespace metacore::search
