// Baseline search strategies for ablation against the multiresolution
// search: uniform random sampling and a plain fixed-grid pass (the
// "initial grid only" strategy, i.e. the multiresolution search with zero
// refinement levels).
#pragma once

#include <cstdint>

#include "search/multires_search.hpp"

namespace metacore::search {

/// Uniform random sampling of the design space: `budget` evaluations at the
/// given fidelity, best point returned. The canonical "no structure
/// exploited" baseline.
SearchResult random_search(const DesignSpace& space, const Objective& objective,
                           const EvaluateFn& evaluate, std::size_t budget,
                           int fidelity = 0, std::uint64_t seed = 1);

/// Single sparse-grid pass (no refinement): what the multiresolution search
/// degenerates to with max_resolution = 0. Provided as a named baseline for
/// readability in ablation tables.
SearchResult grid_search(const DesignSpace& space, const Objective& objective,
                         const EvaluateFn& evaluate, int points_per_dim,
                         std::size_t max_evaluations);

/// Simulated annealing over the index lattice: single-coordinate moves,
/// geometric cooling, Metropolis acceptance on a penalized objective
/// (constraint violations added to the minimized metric). The classic
/// stochastic-search comparison point for the greedy multiresolution
/// refinement.
struct AnnealingConfig {
  std::size_t budget = 500;        ///< evaluations
  double initial_temperature = 1.0;
  double cooling = 0.98;           ///< temperature factor per move
  double violation_penalty = 10.0; ///< weight on constraint violations
  std::uint64_t seed = 1;
};
SearchResult annealing_search(const DesignSpace& space,
                              const Objective& objective,
                              const EvaluateFn& evaluate,
                              AnnealingConfig config = {}, int fidelity = 0);

}  // namespace metacore::search
