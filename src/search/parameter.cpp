#include "search/parameter.hpp"

#include <limits>
#include <stdexcept>

namespace metacore::search {

std::string to_string(Correlation c) {
  switch (c) {
    case Correlation::NonCorrelated:
      return "non-correlated";
    case Correlation::Monotonic:
      return "monotonic";
    case Correlation::Smooth:
      return "smooth";
    case Correlation::Probabilistic:
      return "probabilistic";
  }
  return "?";
}

void ParameterDef::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("ParameterDef: unnamed parameter");
  }
  if (values.empty()) {
    throw std::invalid_argument("ParameterDef '" + name + "': empty domain");
  }
}

DesignSpace::DesignSpace(std::vector<ParameterDef> params)
    : params_(std::move(params)) {
  if (params_.empty()) {
    throw std::invalid_argument("DesignSpace: no parameters");
  }
  for (const auto& p : params_) p.validate();
}

std::uint64_t DesignSpace::size() const {
  std::uint64_t total = 1;
  for (const auto& p : params_) {
    const auto n = static_cast<std::uint64_t>(p.values.size());
    if (total > std::numeric_limits<std::uint64_t>::max() / n) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    total *= n;
  }
  return total;
}

void DesignSpace::check_indices(const std::vector<int>& indices) const {
  if (indices.size() != params_.size()) {
    throw std::out_of_range("DesignSpace: index dimensionality mismatch");
  }
  for (std::size_t d = 0; d < params_.size(); ++d) {
    if (indices[d] < 0 ||
        static_cast<std::size_t>(indices[d]) >= params_[d].values.size()) {
      throw std::out_of_range("DesignSpace: index out of range for '" +
                              params_[d].name + "'");
    }
  }
}

std::vector<double> DesignSpace::values_at(
    const std::vector<int>& indices) const {
  check_indices(indices);
  std::vector<double> out(params_.size());
  for (std::size_t d = 0; d < params_.size(); ++d) {
    out[d] = params_[d].values[static_cast<std::size_t>(indices[d])];
  }
  return out;
}

std::vector<double> DesignSpace::normalized(
    const std::vector<int>& indices) const {
  check_indices(indices);
  std::vector<double> out(params_.size());
  for (std::size_t d = 0; d < params_.size(); ++d) {
    const auto n = params_[d].values.size();
    out[d] = n > 1 ? static_cast<double>(indices[d]) /
                         static_cast<double>(n - 1)
                   : 0.0;
  }
  return out;
}

int DesignSpace::find(const std::string& name) const {
  for (std::size_t d = 0; d < params_.size(); ++d) {
    if (params_[d].name == name) return static_cast<int>(d);
  }
  return -1;
}

}  // namespace metacore::search
