// Pareto-front extraction over search histories: the paper's objective is
// single-metric-under-constraints, but the underlying trade-off (e.g. BER
// vs area for the Viterbi MetaCore) is two-dimensional; exposing the front
// lets users pick operating points without re-running the search.
#pragma once

#include <string>
#include <vector>

#include "search/multires_search.hpp"

namespace metacore::search {

/// Returns the subset of `history` that is Pareto-optimal when *minimizing*
/// both named metrics. Points missing either metric or flagged infeasible
/// are skipped. The result is sorted by the first metric ascending.
std::vector<EvaluatedPoint> pareto_front(
    const std::vector<EvaluatedPoint>& history, const std::string& metric_x,
    const std::string& metric_y);

/// Hypervolume indicator (2D, minimization) of a front against a reference
/// point — a scalar quality measure for search-strategy ablations. Points
/// beyond the reference contribute nothing.
double hypervolume_2d(const std::vector<EvaluatedPoint>& front,
                      const std::string& metric_x, const std::string& metric_y,
                      double ref_x, double ref_y);

}  // namespace metacore::search
