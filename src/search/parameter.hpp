// Design-space formulation (component (i) of the MetaCore approach): typed
// parameter definitions with the classification of Section 4.4 — discrete
// vs continuous, correlated vs non-correlated, and the structure of the
// correlation (monotonic/smooth/probabilistic) that tells the search which
// estimator may be trusted between evaluated points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metacore::search {

/// How a metric responds along this parameter axis.
enum class Correlation : int {
  NonCorrelated,  ///< no exploitable structure; must be enumerated
  Monotonic,      ///< ordered influence (e.g. quantizer bits -> BER)
  Smooth,         ///< interpolation-friendly (e.g. traceback depth -> area)
  Probabilistic,  ///< noisy/statistical (e.g. BER estimates)
};

std::string to_string(Correlation c);

struct ParameterDef {
  std::string name;
  /// The ordered discrete domain. Continuous parameters are represented by
  /// a fine discretization of their range (the paper's solution space is a
  /// discrete 8-dimensional matrix, Section 4.1).
  std::vector<double> values;
  bool continuous = false;
  Correlation correlation = Correlation::Smooth;

  void validate() const;
};

/// A full design space: the cross product of the parameter domains.
class DesignSpace {
 public:
  explicit DesignSpace(std::vector<ParameterDef> params);

  const std::vector<ParameterDef>& parameters() const { return params_; }
  std::size_t dimensions() const { return params_.size(); }

  /// Total number of points (can be astronomically large; saturates at
  /// UINT64_MAX).
  std::uint64_t size() const;

  /// Maps an index vector (one index per dimension) to parameter values.
  std::vector<double> values_at(const std::vector<int>& indices) const;

  /// Normalizes an index vector into [0,1]^d for distance computations.
  std::vector<double> normalized(const std::vector<int>& indices) const;

  /// Throws std::out_of_range unless every index addresses its domain.
  void check_indices(const std::vector<int>& indices) const;

  /// Index of `name` or -1.
  int find(const std::string& name) const;

 private:
  std::vector<ParameterDef> params_;
};

}  // namespace metacore::search
