#include "search/store.hpp"

namespace metacore::search {

EvaluationStoreBase::~EvaluationStoreBase() = default;

}  // namespace metacore::search
