// The multiresolution design-space search of Section 4.4 / Figure 6:
// evaluate a sparse grid, identify promising regions using interpolation
// (smooth metrics) and Bayesian BER prediction (probabilistic metrics),
// then recurse on those regions with a finer grid and higher simulation
// fidelity, up to a maximum resolution.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "robust/counters.hpp"
#include "robust/guarded_evaluator.hpp"
#include "search/objective.hpp"
#include "search/parameter.hpp"
#include "search/predictor.hpp"
#include "search/store.hpp"

namespace metacore::search {

struct SearchConfig {
  /// Grid density of the initial sparse pass; the total initial evaluation
  /// count is capped (the paper evaluates "up to 256 instances").
  int initial_points_per_dim = 3;
  int max_initial_evaluations = 256;
  /// Number of refinement levels after the initial grid (Figure 6's
  /// MAX_SEARCH_RESOLUTION).
  int max_resolution = 3;
  /// Promising regions refined per level (Refine_Grid output size).
  int regions_per_level = 4;
  int refined_points_per_dim = 3;
  /// Hard evaluation budget across all levels.
  std::size_t max_evaluations = 5000;
  /// Name of the probabilistic metric guarded by the Bayesian predictor
  /// (empty = none). Must appear as an UpperBound constraint to guide
  /// pruning.
  std::string probabilistic_metric;
  /// Regions whose probability of meeting the probabilistic constraint
  /// falls below this are pruned without refinement.
  double probability_keep_threshold = 0.05;
  /// Fault tolerance: when true (the default), the evaluator runs inside a
  /// robust::GuardedEvaluator — thrown or NaN/Inf-metric evaluations become
  /// infeasible points with a recorded failure reason (and transient faults
  /// are retried deterministically) instead of aborting the whole search.
  /// With a well-behaved evaluator the guard is a pure pass-through, so
  /// results are bit-identical either way.
  bool guard_evaluations = true;
  /// Retry policy for transient evaluation faults (guarded mode only).
  robust::RetryPolicy retry{};
  /// When non-empty, the evaluation journal is flushed to this versioned
  /// JSON checkpoint after every level that evaluated new points, and
  /// run() resumes from the file if it exists: the journal is replayed
  /// (zero evaluator calls for completed work, bit-identical trajectory)
  /// and the search continues where it stopped. A checkpoint written under
  /// a different search configuration is rejected with std::runtime_error.
  std::string checkpoint_path;
  /// Persistent cross-run evaluation store (serve::EvaluationStore or any
  /// other EvaluationStoreBase). When set, every cache miss first consults
  /// the store under `store_fingerprint` — a hit is absorbed without
  /// invoking the evaluator (counted in SearchResult::store_hits) — and
  /// every fresh evaluation is recorded back. Because stored evaluations
  /// round-trip bit-exactly and the absorb order is unchanged, a warm
  /// store reproduces the cold search's trajectory and result exactly.
  /// Unlike `checkpoint_path`, the store is shared *across* searches and
  /// configurations: the fingerprint scopes entries to an evaluator, not
  /// to a search trajectory.
  std::shared_ptr<EvaluationStoreBase> store;
  /// Content fingerprint of the evaluator (requirements + design space +
  /// measurement definition). Required when `store` is set; the MetaCore
  /// entry points (core::ViterbiMetaCore::search / IirMetaCore::search)
  /// fill it in automatically.
  std::string store_fingerprint;
};

struct EvaluatedPoint {
  std::vector<int> indices;
  std::vector<double> values;
  Evaluation eval;
  int fidelity = 0;
};

struct SearchResult {
  bool found_feasible = false;
  EvaluatedPoint best{};
  /// Budget-consuming evaluations absorbed by the search: every level
  /// cache miss, whether satisfied by the evaluator, a checkpoint replay,
  /// or a persistent-store hit — identical for cold and warm runs of the
  /// same search (actual evaluator invocations = evaluations - store_hits
  /// - checkpoint-replayed work).
  std::size_t evaluations = 0;
  /// Level grid points satisfied by the in-run evaluation cache (points
  /// revisited across levels/fidelities); these never consume budget.
  std::size_t cache_hits = 0;
  /// Cache misses satisfied by SearchConfig::store instead of the
  /// evaluator. Run-local diagnostic: a cold run reports 0, a warm rerun
  /// reports (up to) the cold run's evaluation count.
  std::size_t store_hits = 0;
  /// Store keys this run tried to record that already existed with a
  /// *different* evaluation (delta of the store's counter across run()):
  /// evidence of evaluator non-determinism or a stale store. 0 without a
  /// store.
  std::size_t divergent_duplicates = 0;
  int levels_executed = 0;
  /// Every distinct point evaluated (highest-fidelity result per point) —
  /// the population behind the paper's "average case" comparisons.
  std::vector<EvaluatedPoint> history;
  /// Failure/retry accounting from the guarded evaluator (all zero when
  /// guarding is disabled or nothing failed). On a resumed search this
  /// includes the counters restored from the checkpoint.
  robust::FailureCounters failures;
};

/// The search engine. Each level collects its uncached grid points and fans
/// them out across the exec thread pool (METACORE_THREADS), merging results
/// back into the cache and predictors in grid-index order — the search
/// trajectory and SearchResult are therefore bit-identical at any thread
/// count. The evaluator must be safe to call concurrently from multiple
/// threads (the MetaCore evaluators are: they build all simulation state
/// per call).
class MultiresolutionSearch {
 public:
  MultiresolutionSearch(DesignSpace space, Objective objective,
                        EvaluateFn evaluate, SearchConfig config = {});

  SearchResult run();

 private:
  struct Region {
    /// Inclusive index range per dimension.
    std::vector<std::pair<int, int>> ranges;
  };

  std::vector<std::vector<int>> sample_grid(const Region& region,
                                            int points_per_dim,
                                            std::size_t cap) const;
  /// Best cached evaluation at fidelity >= `fidelity`, or nullptr.
  const Evaluation* cached_evaluation(const std::vector<int>& indices,
                                      int fidelity) const;
  /// Records a fresh evaluation: cache insert, predictor evidence, counter.
  void absorb_evaluation(const std::vector<int>& indices, int fidelity,
                         Evaluation eval, SearchResult& result);
  void search_region(const Region& region, int resolution,
                     SearchResult& result);
  Region region_around(const std::vector<int>& center,
                       const std::vector<std::vector<int>>& grid,
                       const Region& parent) const;
  /// Loads config_.checkpoint_path (if present) into the replay journal so
  /// the next run() walks the recorded trajectory without evaluator calls.
  void restore_from_checkpoint();
  /// Writes the evaluation journal + counters to config_.checkpoint_path.
  void flush_checkpoint() const;
  /// The trajectory-shaping config knobs, for checkpoint validation.
  std::map<std::string, double> config_fingerprint() const;
  /// Counters restored from a checkpoint plus the live guard's counters.
  robust::FailureCounters current_failures() const;

  DesignSpace space_;
  Objective objective_;
  EvaluateFn evaluate_;
  SearchConfig config_;
  /// Wraps evaluate_ when config_.guard_evaluations is set.
  std::optional<robust::GuardedEvaluator> guard_;

  std::map<std::vector<int>, std::map<int, Evaluation>> cache_;
  /// Absorption order of every cache entry — the replayable journal that
  /// makes checkpoints bit-exact (predictor evidence order included).
  std::vector<std::pair<std::vector<int>, int>> journal_;
  /// Evaluations restored from a checkpoint, keyed by (indices, fidelity);
  /// consumed (instead of calling the evaluator) as the resumed search
  /// re-walks the recorded trajectory.
  std::map<std::pair<std::vector<int>, int>, Evaluation> replay_cache_;
  robust::FailureCounters restored_failures_;
  BerPredictor ber_predictor_;
  /// Interpolator over the (smooth) objective metric, maintained for
  /// callers that want post-hoc surface estimates (the paper's smooth-
  /// metric interpolation); predictive *reordering* of grid evaluations was
  /// measured to perturb refinement trajectories on noisy landscapes for
  /// no quality gain, so the search itself only accumulates it.
  SmoothEstimator objective_estimator_;
  double probabilistic_bound_ = 0.0;
  bool has_probabilistic_ = false;

 public:
  /// Read access to the accumulated objective-surface interpolator.
  const SmoothEstimator& objective_estimator() const {
    return objective_estimator_;
  }
};

/// Exhaustive full-factorial baseline at a fixed fidelity — the comparison
/// point for the greedy-vs-exhaustive ablation. Throws std::invalid_argument
/// when the space exceeds `max_points`.
SearchResult exhaustive_search(const DesignSpace& space,
                               const Objective& objective,
                               const EvaluateFn& evaluate, int fidelity,
                               std::size_t max_points = 2'000'000);

/// Final verification pass: re-evaluates the `top_k` best points of a
/// finished search at `fidelity` (typically higher than the search used)
/// and re-selects the winner — the "longer simulation times" refinement
/// the paper applies to surviving candidates. Returns the updated result;
/// `result.evaluations` grows by the re-evaluations performed. When
/// `store` is non-null, re-evaluations consult and feed it under
/// `store_fingerprint` exactly like the search proper (hits land in
/// `result.store_hits`), so a warm store also covers the verification
/// pass.
SearchResult verify_top_candidates(SearchResult result,
                                   const DesignSpace& space,
                                   const Objective& objective,
                                   const EvaluateFn& evaluate, int top_k,
                                   int fidelity,
                                   EvaluationStoreBase* store = nullptr,
                                   const std::string& store_fingerprint = {});

}  // namespace metacore::search
