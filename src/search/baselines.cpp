#include "search/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace metacore::search {

SearchResult random_search(const DesignSpace& space, const Objective& objective,
                           const EvaluateFn& evaluate, std::size_t budget,
                           int fidelity, std::uint64_t seed) {
  if (!evaluate) {
    throw std::invalid_argument("random_search: null evaluator");
  }
  util::Random rng(seed);
  SearchResult result;
  std::map<std::vector<int>, bool> seen;
  // Allow some re-draw slack for small spaces, then stop.
  std::size_t attempts = 0;
  while (result.evaluations < budget && attempts < budget * 4) {
    ++attempts;
    std::vector<int> indices(space.dimensions());
    for (std::size_t d = 0; d < space.dimensions(); ++d) {
      indices[d] = static_cast<int>(rng.uniform_index(
          space.parameters()[d].values.size()));
    }
    if (!seen.emplace(indices, true).second) continue;
    const std::vector<double> values = space.values_at(indices);
    Evaluation eval = evaluate(values, fidelity);
    ++result.evaluations;
    EvaluatedPoint point{indices, values, std::move(eval), fidelity};
    if (result.best.indices.empty() ||
        objective.better(point.eval, result.best.eval)) {
      result.best = point;
      result.found_feasible = objective.feasible(point.eval);
    }
    result.history.push_back(std::move(point));
  }
  result.levels_executed = 1;
  return result;
}

SearchResult annealing_search(const DesignSpace& space,
                              const Objective& objective,
                              const EvaluateFn& evaluate,
                              AnnealingConfig config, int fidelity) {
  if (!evaluate) {
    throw std::invalid_argument("annealing_search: null evaluator");
  }
  if (config.budget < 1 || config.cooling <= 0.0 || config.cooling >= 1.0 ||
      config.initial_temperature <= 0.0) {
    throw std::invalid_argument("annealing_search: degenerate configuration");
  }
  util::Random rng(config.seed);
  SearchResult result;

  // Penalized energy: minimized metric plus weighted constraint violations;
  // hard-infeasible points get a large constant offset.
  const auto energy = [&](const Evaluation& eval) {
    double e = 0.0;
    if (!objective.minimize.empty() && eval.has_metric(objective.minimize)) {
      e += eval.metric(objective.minimize);
    }
    if (!eval.feasible) e += 100.0 * config.violation_penalty;
    for (const auto& c : objective.constraints) {
      e += config.violation_penalty * std::max(0.0, c.violation(eval));
    }
    return e;
  };

  // Start in the middle of the lattice.
  std::vector<int> current(space.dimensions());
  for (std::size_t d = 0; d < space.dimensions(); ++d) {
    current[d] = static_cast<int>(space.parameters()[d].values.size()) / 2;
  }
  Evaluation current_eval = evaluate(space.values_at(current), fidelity);
  ++result.evaluations;
  double current_energy = energy(current_eval);
  result.best = {current, space.values_at(current), current_eval, fidelity};
  result.found_feasible = objective.feasible(current_eval);
  result.history.push_back(result.best);

  double temperature = config.initial_temperature;
  while (result.evaluations < config.budget) {
    // Single-coordinate neighbor move.
    std::vector<int> candidate = current;
    const auto dim = static_cast<std::size_t>(
        rng.uniform_index(space.dimensions()));
    const int domain =
        static_cast<int>(space.parameters()[dim].values.size());
    if (domain > 1) {
      const int step = rng.bit() ? 1 : -1;
      candidate[dim] =
          std::clamp(candidate[dim] + step, 0, domain - 1);
    }
    if (candidate == current) {
      temperature *= config.cooling;
      continue;
    }
    Evaluation cand_eval = evaluate(space.values_at(candidate), fidelity);
    ++result.evaluations;
    const double cand_energy = energy(cand_eval);
    EvaluatedPoint point{candidate, space.values_at(candidate), cand_eval,
                         fidelity};
    if (objective.better(point.eval, result.best.eval)) {
      result.best = point;
      result.found_feasible = objective.feasible(point.eval);
    }
    result.history.push_back(std::move(point));

    const double delta = cand_energy - current_energy;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current = candidate;
      current_energy = cand_energy;
    }
    temperature *= config.cooling;
  }
  result.levels_executed = 1;
  return result;
}

SearchResult grid_search(const DesignSpace& space, const Objective& objective,
                         const EvaluateFn& evaluate, int points_per_dim,
                         std::size_t max_evaluations) {
  SearchConfig config;
  config.initial_points_per_dim = points_per_dim;
  config.max_initial_evaluations = static_cast<int>(max_evaluations);
  config.max_evaluations = max_evaluations;
  config.max_resolution = 0;
  MultiresolutionSearch engine(space, objective, evaluate, config);
  return engine.run();
}

}  // namespace metacore::search
