// Pluggable persistent evaluation storage for the search engines. The
// search layer only sees this interface; the concrete content-addressed
// JSONL store lives in serve/ (serve::EvaluationStore) so the persistence
// format can evolve without touching the search. Keys are
// (fingerprint, grid indices, fidelity): the fingerprint identifies the
// *evaluator* — requirements, design space, measurement definition — so
// evaluations recorded by one search are reusable by any later search or
// service query over the same evaluator, regardless of search-trajectory
// configuration.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "search/objective.hpp"

namespace metacore::search {

class EvaluationStoreBase {
 public:
  virtual ~EvaluationStoreBase();

  /// Returns the stored evaluation for the key, or nullopt. Must be safe
  /// to call concurrently with other lookup() calls; callers serialize
  /// lookups against record() per the implementation's discipline
  /// (serve::EvaluationStore allows fully concurrent lookups and
  /// internally serializes writers).
  virtual std::optional<Evaluation> lookup(const std::string& fingerprint,
                                           const std::vector<int>& indices,
                                           int fidelity) = 0;

  /// Records one evaluation under the key. Implementations may ignore
  /// duplicate keys (first write wins) — the search only records keys it
  /// failed to look up.
  virtual void record(const std::string& fingerprint,
                      const std::vector<int>& indices, int fidelity,
                      const Evaluation& eval) = 0;

  /// Count of record() calls (or load-time duplicates) whose key already
  /// existed with a *different* evaluation — upstream determinism drift
  /// that first-write-wins would otherwise mask. Stores that don't track
  /// it report 0.
  virtual std::size_t divergent_duplicates() const { return 0; }
};

}  // namespace metacore::search
