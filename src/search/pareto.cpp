#include "search/pareto.hpp"

#include <algorithm>
#include <limits>

namespace metacore::search {

std::vector<EvaluatedPoint> pareto_front(
    const std::vector<EvaluatedPoint>& history, const std::string& metric_x,
    const std::string& metric_y) {
  std::vector<const EvaluatedPoint*> candidates;
  for (const auto& p : history) {
    if (p.eval.feasible && p.eval.has_metric(metric_x) &&
        p.eval.has_metric(metric_y)) {
      candidates.push_back(&p);
    }
  }
  // Metric ties are broken by grid indices (lowest wins): the order is
  // total, so the staircase below — which keeps exactly one point per
  // coincident (x, y) — deduplicates deterministically regardless of
  // history order or std::sort's handling of equivalent elements.
  std::sort(candidates.begin(), candidates.end(),
            [&](const EvaluatedPoint* a, const EvaluatedPoint* b) {
              const double ax = a->eval.metric(metric_x);
              const double bx = b->eval.metric(metric_x);
              if (ax != bx) return ax < bx;
              const double ay = a->eval.metric(metric_y);
              const double by = b->eval.metric(metric_y);
              if (ay != by) return ay < by;
              return a->indices < b->indices;
            });
  std::vector<EvaluatedPoint> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const EvaluatedPoint* p : candidates) {
    const double y = p->eval.metric(metric_y);
    if (y < best_y) {
      front.push_back(*p);
      best_y = y;
    }
  }
  return front;
}

double hypervolume_2d(const std::vector<EvaluatedPoint>& front,
                      const std::string& metric_x, const std::string& metric_y,
                      double ref_x, double ref_y) {
  // `front` need not be pre-filtered; re-derive the staircase, then sweep
  // it left to right: each point covers [x_i, min(next_x, ref_x)) in x and
  // [y_i, ref_y) in y (minimization convention).
  const std::vector<EvaluatedPoint> staircase =
      pareto_front(front, metric_x, metric_y);
  double volume = 0.0;
  for (std::size_t i = 0; i < staircase.size(); ++i) {
    const double x = staircase[i].eval.metric(metric_x);
    const double y = staircase[i].eval.metric(metric_y);
    if (x >= ref_x || y >= ref_y) continue;
    double next_x = ref_x;
    for (std::size_t j = i + 1; j < staircase.size(); ++j) {
      const double xj = staircase[j].eval.metric(metric_x);
      const double yj = staircase[j].eval.metric(metric_y);
      if (xj >= ref_x || yj >= ref_y) continue;
      next_x = xj;
      break;
    }
    volume += (std::min(next_x, ref_x) - x) * (ref_y - y);
  }
  return volume;
}

}  // namespace metacore::search
