#include "search/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::search {

double Evaluation::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    throw std::invalid_argument("Evaluation: missing metric '" + name + "'");
  }
  return it->second;
}

bool Evaluation::has_metric(const std::string& name) const {
  return metrics.find(name) != metrics.end();
}

bool Constraint::satisfied(const Evaluation& eval) const {
  return violation(eval) <= 0.0;
}

double Constraint::violation(const Evaluation& eval) const {
  if (!eval.has_metric(metric)) return 1.0;  // unknown counts as violated
  const double value = eval.metric(metric);
  const double scale = bound != 0.0 ? std::abs(bound) : 1.0;
  switch (kind) {
    case Kind::UpperBound:
      return (value - bound) / scale;
    case Kind::LowerBound:
      return (bound - value) / scale;
  }
  return 1.0;
}

bool Objective::feasible(const Evaluation& eval) const {
  if (!eval.feasible) return false;
  for (const auto& c : constraints) {
    if (!c.satisfied(eval)) return false;
  }
  return true;
}

bool Objective::better(const Evaluation& a, const Evaluation& b) const {
  const bool fa = feasible(a);
  const bool fb = feasible(b);
  if (fa != fb) return fa;
  if (!fa) {
    // Both infeasible: smaller total violation wins.
    double va = a.feasible ? 0.0 : 1e9;
    double vb = b.feasible ? 0.0 : 1e9;
    for (const auto& c : constraints) {
      va += std::max(0.0, c.violation(a));
      vb += std::max(0.0, c.violation(b));
    }
    return va < vb;
  }
  if (minimize.empty()) return false;
  if (!a.has_metric(minimize) || !b.has_metric(minimize)) {
    return a.has_metric(minimize);
  }
  return a.metric(minimize) < b.metric(minimize);
}

}  // namespace metacore::search
