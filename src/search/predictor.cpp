#include "search/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace metacore::search {

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("predictor: coordinate dimension mismatch");
  }
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

/// Standard normal CDF.
double phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Evidence must be finite: a single NaN/Inf observation would poison every
/// later prediction through the weighted sums (NaN propagates; Inf collapses
/// all weight onto one point), so reject it at the door with the offender
/// named.
void check_finite_coords(const char* who, const std::vector<double>& coords) {
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (!std::isfinite(coords[i])) {
      throw std::invalid_argument(std::string(who) +
                                  ": non-finite coordinate at dimension " +
                                  std::to_string(i));
    }
  }
}

}  // namespace

void SmoothEstimator::add(std::vector<double> coords, double value) {
  check_finite_coords("SmoothEstimator::add", coords);
  if (!std::isfinite(value)) {
    throw std::invalid_argument("SmoothEstimator::add: non-finite value");
  }
  coords_.push_back(std::move(coords));
  values_.push_back(value);
}

double SmoothEstimator::predict(std::span<const double> coords) const {
  if (coords_.empty()) return 0.0;
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const double d2 = sq_distance(coords_[i], coords);
    if (d2 < 1e-18) return values_[i];  // exact at evaluated points
    const double w = 1.0 / d2;
    wsum += w;
    vsum += w * values_[i];
  }
  return vsum / wsum;
}

void BerPredictor::add(std::vector<double> coords, double ber, double trials) {
  check_finite_coords("BerPredictor::add", coords);
  if (!std::isfinite(ber)) {
    throw std::invalid_argument("BerPredictor::add: non-finite BER");
  }
  if (trials <= 0.0) {
    throw std::invalid_argument("BerPredictor: non-positive evidence");
  }
  if (!std::isfinite(trials)) {
    throw std::invalid_argument("BerPredictor::add: non-finite evidence");
  }
  coords_.push_back(std::move(coords));
  log_ber_.push_back(std::log10(std::clamp(ber, 1e-12, 1.0)));
  evidence_.push_back(trials);
}

BerPredictor::Prediction BerPredictor::predict(
    std::span<const double> coords) const {
  Prediction p;
  if (coords_.empty()) {
    p.log10_sigma = 3.0;  // essentially uninformative
    return p;
  }
  // Gaussian kernel on distance, scaled by the evidence weight. The
  // length-scale is set to a quarter of the normalized cube diagonal so a
  // handful of grid neighbors dominate each prediction.
  const double length_scale =
      0.25 * std::sqrt(static_cast<double>(coords.size()));
  double wsum = 0.0, mean = 0.0;
  double min_d2 = 1e300;
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const double d2 = sq_distance(coords_[i], coords);
    min_d2 = std::min(min_d2, d2);
    const double w = std::log1p(evidence_[i]) *
                     std::exp(-d2 / (2.0 * length_scale * length_scale));
    wsum += w;
    mean += w * log_ber_[i];
  }
  if (wsum <= 0.0) {
    p.log10_sigma = 3.0;
    return p;
  }
  mean /= wsum;
  double var = 0.0;
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const double d2 = sq_distance(coords_[i], coords);
    const double w = std::log1p(evidence_[i]) *
                     std::exp(-d2 / (2.0 * length_scale * length_scale));
    const double diff = log_ber_[i] - mean;
    var += w * diff * diff;
  }
  var = var / wsum;
  // Epistemic floor: even with consistent neighbors, uncertainty grows with
  // distance to the nearest evidence.
  const double distance_sigma = std::sqrt(min_d2) / length_scale * 0.5;
  p.log10_mean = mean;
  p.log10_sigma = std::sqrt(var + 0.04) + distance_sigma;
  return p;
}

double BerPredictor::probability_below(std::span<const double> coords,
                                       double threshold) const {
  if (coords_.empty()) return 0.5;
  const Prediction p = predict(coords);
  const double log_thr = std::log10(std::clamp(threshold, 1e-12, 1.0));
  return phi((log_thr - p.log10_mean) / p.log10_sigma);
}

}  // namespace metacore::search
