// Digital IIR filter design: analog prototype -> frequency/band transform
// -> bilinear transform with prewarping. This is the front half of the
// paper's IIR design flow (the part SPW/MATLAB provided), producing the
// transfer functions the structure realizations and the HYPER-substitute
// synthesis estimator consume.
#pragma once

#include "dsp/prototypes.hpp"
#include "dsp/transfer_function.hpp"

namespace metacore::dsp {

enum class BandType : int { Lowpass, Highpass, Bandpass, Bandstop };

std::string to_string(BandType band);

/// Frequencies in units of pi rad/sample, i.e. 1.0 is the Nyquist rate —
/// the paper's omega/pi convention (Section 5.3). For Lowpass/Highpass
/// only `pass_hi`/`stop_hi` (Lowpass) or `pass_lo`/`stop_lo` (Highpass)
/// are used.
struct FilterSpec {
  BandType band = BandType::Lowpass;
  FilterFamily family = FilterFamily::Elliptic;
  double pass_lo = 0.0;
  double pass_hi = 0.0;
  double stop_lo = 0.0;
  double stop_hi = 0.0;
  double passband_ripple_db = 0.1;
  double stopband_atten_db = 40.0;
  /// 0 = derive the minimum order from the spec; otherwise force this
  /// prototype order (a degree of freedom the MetaCore search exercises).
  int order_override = 0;

  void validate() const;
};

/// Converts the paper's linear ripple values (epsilon_p, epsilon_s — peak
/// deviations of |H| from 1 in the passband and from 0 in the stopband)
/// into the dB quantities the design routines use.
double passband_ripple_db_from_eps(double eps_p);
double stopband_atten_db_from_eps(double eps_s);

struct DesignedFilter {
  FilterSpec spec;
  int prototype_order = 0;  ///< analog lowpass prototype order
  Zpk zpk;                  ///< digital poles/zeros
  TransferFunction tf;      ///< digital coefficients, a[0] == 1
};

DesignedFilter design_filter(const FilterSpec& spec);

// --- Analog-domain helpers (exposed for unit testing). ---------------------

/// Lowpass -> lowpass rescale to cutoff w0.
Zpk lp_to_lp(const Zpk& proto, double w0);
/// Lowpass -> highpass at cutoff w0.
Zpk lp_to_hp(const Zpk& proto, double w0);
/// Lowpass -> bandpass, center w0 = sqrt(w1 w2), bandwidth bw = w2 - w1.
Zpk lp_to_bp(const Zpk& proto, double w0, double bw);
/// Lowpass -> bandstop.
Zpk lp_to_bs(const Zpk& proto, double w0, double bw);
/// Bilinear transform s = (z - 1)/(z + 1); inputs must be prewarped with
/// Omega = tan(omega/2).
Zpk bilinear(const Zpk& analog);

}  // namespace metacore::dsp
