#include "dsp/structures.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::dsp {

namespace {

/// A second-order (or lower) direct-form-II section.
struct Biquad {
  // y/x = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)
  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
  double w1 = 0.0, w2 = 0.0;  // state

  double process(double x) {
    const double w0 = x - a1 * w1 - a2 * w2;
    const double y = b0 * w0 + b1 * w1 + b2 * w2;
    w2 = w1;
    w1 = w0;
    return y;
  }
  void reset() { w1 = w2 = 0.0; }

  TransferFunction tf() const {
    return {{b0, b1, b2}, {1.0, a1, a2}};
  }
};

/// Pads b and a to the same length.
void equalize(std::vector<double>& b, std::vector<double>& a) {
  const std::size_t n = std::max(b.size(), a.size());
  b.resize(n, 0.0);
  a.resize(n, 0.0);
}

TransferFunction normalized_copy(const TransferFunction& tf) {
  TransferFunction out = tf;
  out.normalize();
  if (out.b.empty()) out.b = {0.0};
  return out;
}

int nonzero_coefficients(const std::vector<double>& v) {
  int n = 0;
  for (double c : v) {
    if (c != 0.0) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Direct forms
// ---------------------------------------------------------------------------

class DirectForm1 final : public Realization {
 public:
  explicit DirectForm1(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    b_ = norm.b;
    a_ = norm.a;
    equalize(b_, a_);
    x_hist_.assign(b_.size(), 0.0);
    y_hist_.assign(a_.size(), 0.0);
  }

  StructureKind kind() const override { return StructureKind::DirectForm1; }

  double process(double x) override {
    // Shift histories (index 0 = newest).
    std::rotate(x_hist_.rbegin(), x_hist_.rbegin() + 1, x_hist_.rend());
    x_hist_[0] = x;
    double y = 0.0;
    for (std::size_t i = 0; i < b_.size(); ++i) y += b_[i] * x_hist_[i];
    for (std::size_t i = 1; i < a_.size(); ++i) y -= a_[i] * y_hist_[i - 1];
    std::rotate(y_hist_.rbegin(), y_hist_.rbegin() + 1, y_hist_.rend());
    y_hist_[0] = y;
    return y;
  }

  void reset() override {
    std::fill(x_hist_.begin(), x_hist_.end(), 0.0);
    std::fill(y_hist_.begin(), y_hist_.end(), 0.0);
  }

  OpCost cost() const override {
    const int n = static_cast<int>(b_.size()) - 1;
    return {2 * n + 1, 2 * n, 2 * n,
            nonzero_coefficients(b_) + nonzero_coefficients(a_) - 1};
  }

  TransferFunction effective_tf() const override { return {b_, a_}; }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    TransferFunction tf{quantize_coefficients(b_, word_bits),
                        quantize_coefficients(a_, word_bits)};
    return std::make_unique<DirectForm1>(tf);
  }

 private:
  std::vector<double> b_, a_;
  std::vector<double> x_hist_, y_hist_;
};

class DirectForm2 final : public Realization {
 public:
  explicit DirectForm2(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    b_ = norm.b;
    a_ = norm.a;
    equalize(b_, a_);
    w_.assign(b_.size(), 0.0);
  }

  StructureKind kind() const override { return StructureKind::DirectForm2; }

  double process(double x) override {
    double w0 = x;
    for (std::size_t i = 1; i < a_.size(); ++i) w0 -= a_[i] * w_[i - 1];
    double y = b_[0] * w0;
    for (std::size_t i = 1; i < b_.size(); ++i) y += b_[i] * w_[i - 1];
    std::rotate(w_.rbegin(), w_.rbegin() + 1, w_.rend());
    w_[0] = w0;
    return y;
  }

  void reset() override { std::fill(w_.begin(), w_.end(), 0.0); }

  OpCost cost() const override {
    const int n = static_cast<int>(b_.size()) - 1;
    return {2 * n + 1, 2 * n, n,
            nonzero_coefficients(b_) + nonzero_coefficients(a_) - 1};
  }

  TransferFunction effective_tf() const override { return {b_, a_}; }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    TransferFunction tf{quantize_coefficients(b_, word_bits),
                        quantize_coefficients(a_, word_bits)};
    return std::make_unique<DirectForm2>(tf);
  }

 private:
  std::vector<double> b_, a_;
  std::vector<double> w_;  // w_[i] = w(n - 1 - i)
};

class DirectForm2Transposed final : public Realization {
 public:
  explicit DirectForm2Transposed(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    b_ = norm.b;
    a_ = norm.a;
    equalize(b_, a_);
    s_.assign(b_.size(), 0.0);  // one extra slot simplifies the update
  }

  StructureKind kind() const override {
    return StructureKind::DirectForm2Transposed;
  }

  double process(double x) override {
    const double y = b_[0] * x + s_[0];
    for (std::size_t i = 0; i + 1 < s_.size(); ++i) {
      s_[i] = b_[i + 1] * x - a_[i + 1] * y + s_[i + 1];
    }
    if (!s_.empty()) s_[s_.size() - 1] = 0.0;
    return y;
  }

  void reset() override { std::fill(s_.begin(), s_.end(), 0.0); }

  OpCost cost() const override {
    const int n = static_cast<int>(b_.size()) - 1;
    return {2 * n + 1, 2 * n, n,
            nonzero_coefficients(b_) + nonzero_coefficients(a_) - 1};
  }

  TransferFunction effective_tf() const override { return {b_, a_}; }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    TransferFunction tf{quantize_coefficients(b_, word_bits),
                        quantize_coefficients(a_, word_bits)};
    return std::make_unique<DirectForm2Transposed>(tf);
  }

 private:
  std::vector<double> b_, a_;
  std::vector<double> s_;
};

// ---------------------------------------------------------------------------
// Cascade of second-order sections
// ---------------------------------------------------------------------------

/// Splits conjugate-paired roots into quadratic (and possibly one linear)
/// real factors: returns vector of (c1, c2) for x^2 + c1 x + c2 — or for a
/// linear leftover, (c1, 0) meaning x + c1 — in the *z* domain.
struct RealFactor {
  bool quadratic = true;
  double c1 = 0.0, c2 = 0.0;
};

std::vector<RealFactor> real_factors(std::vector<Complex> roots) {
  sort_conjugate_pairs(roots);
  std::vector<RealFactor> factors;
  std::vector<Complex> reals;
  for (std::size_t i = 0; i < roots.size();) {
    if (std::abs(roots[i].imag()) > 1e-9) {
      if (i + 1 >= roots.size()) {
        throw std::runtime_error("real_factors: unpaired complex root");
      }
      const Complex r = roots[i];
      factors.push_back({true, -2.0 * r.real(), std::norm(r)});
      i += 2;
    } else {
      reals.push_back(roots[i]);
      ++i;
    }
  }
  // Pair real roots two at a time; a leftover becomes a linear factor.
  std::sort(reals.begin(), reals.end(),
            [](const Complex& a, const Complex& b) { return a.real() < b.real(); });
  for (std::size_t i = 0; i + 1 < reals.size(); i += 2) {
    const double r1 = reals[i].real(), r2 = reals[i + 1].real();
    factors.push_back({true, -(r1 + r2), r1 * r2});
  }
  if (reals.size() % 2 == 1) {
    factors.push_back({false, -reals.back().real(), 0.0});
  }
  return factors;
}

/// Shared cascade decomposition: pairs pole factors with nearest zero
/// factors and spreads the gain evenly across sections.
std::vector<Biquad> build_biquads(std::vector<Complex> zeros,
                                  std::vector<Complex> poles, double gain) {
  std::vector<Biquad> sections_;
  {
    auto zero_factors = real_factors(std::move(zeros));
    auto pole_factors = real_factors(std::move(poles));

    // Order pole sections by radius (closest to the unit circle last) and
    // greedily pair each pole factor with the nearest remaining zero
    // factor — the standard pairing heuristic that minimizes section gain
    // spread.
    std::sort(pole_factors.begin(), pole_factors.end(),
              [](const RealFactor& a, const RealFactor& b) {
                return a.c2 < b.c2;  // c2 = |p|^2 for quadratic factors
              });
    const std::size_t sections =
        std::max(zero_factors.size(), pole_factors.size());
    std::vector<bool> zero_used(zero_factors.size(), false);
    const double section_gain =
        sections > 0 ? std::copysign(
                           std::pow(std::abs(gain), 1.0 / sections), gain)
                     : gain;
    for (std::size_t s = 0; s < sections; ++s) {
      Biquad bq;
      double a1 = 0.0, a2 = 0.0;
      if (s < pole_factors.size()) {
        a1 = pole_factors[s].c1;
        a2 = pole_factors[s].quadratic ? pole_factors[s].c2 : 0.0;
        if (!pole_factors[s].quadratic) a2 = 0.0;
      }
      // Nearest unused zero factor by |c1| + |c2| distance.
      int pick = -1;
      double best = 1e300;
      for (std::size_t z = 0; z < zero_factors.size(); ++z) {
        if (zero_used[z]) continue;
        const double d = std::abs(zero_factors[z].c1 - a1) +
                         std::abs(zero_factors[z].c2 - a2);
        if (d < best) {
          best = d;
          pick = static_cast<int>(z);
        }
      }
      double b1 = 0.0, b2 = 0.0;
      bool have_zero = false;
      bool zero_quadratic = false;
      if (pick >= 0) {
        zero_used[static_cast<std::size_t>(pick)] = true;
        b1 = zero_factors[static_cast<std::size_t>(pick)].c1;
        b2 = zero_factors[static_cast<std::size_t>(pick)].c2;
        zero_quadratic = zero_factors[static_cast<std::size_t>(pick)].quadratic;
        have_zero = true;
      }
      // z-domain factor (z^2 + c1 z + c2) corresponds to z^-1-domain
      // (1 + c1 z^-1 + c2 z^-2); a linear factor (z + c1) to (1 + c1 z^-1).
      bq.b0 = section_gain;
      bq.b1 = have_zero ? section_gain * b1 : 0.0;
      bq.b2 = have_zero && zero_quadratic ? section_gain * b2 : 0.0;
      bq.a1 = a1;
      bq.a2 = a2;
      sections_.push_back(bq);
    }
    if (sections_.empty()) {
      Biquad bq;
      bq.b0 = gain;
      sections_.push_back(bq);
    }
  }
  return sections_;
}

class Cascade final : public Realization {
 public:
  explicit Cascade(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    // In z (not z^-1) the leading coefficient of z^N B(z^-1) is b[0].
    sections_ = build_biquads(norm.zeros(), norm.poles(),
                              norm.b.empty() ? 0.0 : norm.b.front());
  }

  Cascade(std::vector<Complex> zeros, std::vector<Complex> poles, double gain)
      : sections_(build_biquads(std::move(zeros), std::move(poles), gain)) {}

  explicit Cascade(std::vector<Biquad> sections)
      : sections_(std::move(sections)) {}

  StructureKind kind() const override { return StructureKind::Cascade; }

  double process(double x) override {
    double v = x;
    for (auto& s : sections_) v = s.process(v);
    return v;
  }

  void reset() override {
    for (auto& s : sections_) s.reset();
  }

  OpCost cost() const override {
    OpCost cost;
    for (const auto& s : sections_) {
      for (double c : {s.b0, s.b1, s.b2, s.a1, s.a2}) {
        if (c != 0.0) {
          ++cost.multiplies;
          ++cost.coefficients;
        }
      }
      cost.additions += 4;
      cost.delays += 2;
    }
    return cost;
  }

  TransferFunction effective_tf() const override {
    TransferFunction tf{{1.0}, {1.0}};
    for (const auto& s : sections_) {
      const TransferFunction st = s.tf();
      tf.b = poly_mul(tf.b, st.b);
      tf.a = poly_mul(tf.a, st.a);
    }
    tf.normalize();
    return tf;
  }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    std::vector<Biquad> q;
    for (const auto& s : sections_) {
      // Numerator and denominator coefficients have different dynamic
      // ranges; each group shares one fixed-point format per section.
      const std::vector<double> num =
          quantize_coefficients({s.b0, s.b1, s.b2}, word_bits);
      const std::vector<double> den =
          quantize_coefficients({s.a1, s.a2}, word_bits);
      Biquad bq;
      bq.b0 = num[0];
      bq.b1 = num[1];
      bq.b2 = num[2];
      bq.a1 = den[0];
      bq.a2 = den[1];
      q.push_back(bq);
    }
    return std::make_unique<Cascade>(std::move(q));
  }

 private:
  std::vector<Biquad> sections_;
};

// ---------------------------------------------------------------------------
// Parallel (partial fractions)
// ---------------------------------------------------------------------------

class Parallel final : public Realization {
 public:
  explicit Parallel(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    // Work in x = z^-1: H(x) = B(x) / A(x), A(0) = 1.
    std::vector<double> b = norm.b;
    std::vector<double> a = norm.a;
    equalize(b, a);
    const std::size_t n = a.size() - 1;

    // Extract the direct term: with deg B == deg A == n, H = c + R(x)/A(x)
    // where c = b[n]/a[n] (leading coefficients in x).
    std::vector<double> r = b;
    direct_ = 0.0;
    if (n > 0 && a[n] != 0.0) {
      direct_ = b[n] / a[n];
      for (std::size_t i = 0; i <= n; ++i) r[i] -= direct_ * a[i];
    } else if (n == 0) {
      direct_ = a[0] != 0.0 ? b[0] / a[0] : 0.0;
      return;
    }

    // Roots of A in x; poles of H(z) are 1/x_i.
    std::vector<Complex> xroots = poly_roots(a);
    // Residues of R/A at simple roots: res_i = R(x_i) / A'(x_i).
    std::vector<double> aprime(n);
    for (std::size_t i = 1; i <= n; ++i) {
      aprime[i - 1] = a[i] * static_cast<double>(i);
    }
    std::vector<Complex> residues;
    for (const Complex& x : xroots) {
      const Complex denom = poly_eval(std::span<const double>(aprime), x);
      if (std::abs(denom) < 1e-12) {
        throw std::runtime_error(
            "Parallel: repeated poles; partial fraction expansion is not "
            "supported for multiple poles");
      }
      residues.push_back(poly_eval(std::span<const double>(r), x) / denom);
    }

    // Pair conjugate roots into real second-order sections:
    //   res/(x - xi) + conj terms
    //     = (p0 + p1 x) / (q0 + q1 x + q2 x^2), normalized so q0 = 1.
    std::vector<bool> used(xroots.size(), false);
    for (std::size_t i = 0; i < xroots.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      const Complex xi = xroots[i];
      const Complex res = residues[i];
      if (std::abs(xi.imag()) < 1e-9) {
        // Real root: res/(x - xi) = (-res/xi) / (1 - x/xi).
        Biquad bq;
        bq.b0 = (-res / xi).real();
        bq.a1 = (-1.0 / xi).real();
        sections_.push_back(bq);
        continue;
      }
      // Find the conjugate partner.
      std::size_t partner = xroots.size();
      for (std::size_t j = i + 1; j < xroots.size(); ++j) {
        if (!used[j] && std::abs(xroots[j] - std::conj(xi)) < 1e-6) {
          partner = j;
          break;
        }
      }
      if (partner == xroots.size()) {
        throw std::runtime_error("Parallel: complex root without conjugate");
      }
      used[partner] = true;
      // res/(x-xi) + conj(res)/(x-conj(xi))
      //  = (2 Re(res) x - 2 Re(res conj(xi))) / (x^2 - 2 Re(xi) x + |xi|^2).
      const double num1 = 2.0 * res.real();
      const double num0 = -2.0 * (res * std::conj(xi)).real();
      const double den0 = std::norm(xi);
      const double den1 = -2.0 * xi.real();
      // Normalize by den0 so the section reads (b0 + b1 x)/(1 + a1 x + a2 x^2).
      Biquad bq;
      bq.b0 = num0 / den0;
      bq.b1 = num1 / den0;
      bq.a1 = den1 / den0;
      bq.a2 = 1.0 / den0;
      sections_.push_back(bq);
    }
  }

  Parallel(double direct, std::vector<Biquad> sections)
      : direct_(direct), sections_(std::move(sections)) {}

  StructureKind kind() const override { return StructureKind::Parallel; }

  double process(double x) override {
    double y = direct_ * x;
    for (auto& s : sections_) y += s.process(x);
    return y;
  }

  void reset() override {
    for (auto& s : sections_) s.reset();
  }

  OpCost cost() const override {
    OpCost cost;
    if (direct_ != 0.0) {
      ++cost.multiplies;
      ++cost.coefficients;
    }
    for (const auto& s : sections_) {
      for (double c : {s.b0, s.b1, s.b2, s.a1, s.a2}) {
        if (c != 0.0) {
          ++cost.multiplies;
          ++cost.coefficients;
        }
      }
      cost.additions += 4;  // 3 internal + 1 output accumulation
      cost.delays += 2;
    }
    return cost;
  }

  TransferFunction effective_tf() const override {
    // Sum of sections plus the direct term over a common denominator.
    std::vector<double> num{direct_};
    std::vector<double> den{1.0};
    for (const auto& s : sections_) {
      const TransferFunction st = s.tf();
      // num/den + st.b/st.a = (num*st.a + st.b*den) / (den*st.a)
      std::vector<double> new_num = poly_mul(num, st.a);
      const std::vector<double> cross = poly_mul(st.b, den);
      if (cross.size() > new_num.size()) new_num.resize(cross.size(), 0.0);
      for (std::size_t i = 0; i < cross.size(); ++i) new_num[i] += cross[i];
      num = std::move(new_num);
      den = poly_mul(den, st.a);
    }
    TransferFunction tf{num, den};
    tf.normalize();
    return tf;
  }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    std::vector<Biquad> q;
    for (const auto& s : sections_) {
      const std::vector<double> num =
          quantize_coefficients({s.b0, s.b1, s.b2}, word_bits);
      const std::vector<double> den =
          quantize_coefficients({s.a1, s.a2}, word_bits);
      Biquad bq;
      bq.b0 = num[0];
      bq.b1 = num[1];
      bq.b2 = num[2];
      bq.a1 = den[0];
      bq.a2 = den[1];
      q.push_back(bq);
    }
    const double qdirect =
        direct_ != 0.0 ? quantize_coefficients({direct_}, word_bits)[0] : 0.0;
    return std::make_unique<Parallel>(qdirect, std::move(q));
  }

 private:
  double direct_ = 0.0;
  std::vector<Biquad> sections_;
};

// ---------------------------------------------------------------------------
// Lattice-ladder (Gray-Markel)
// ---------------------------------------------------------------------------

class LatticeLadder final : public Realization {
 public:
  explicit LatticeLadder(const TransferFunction& tf) {
    const TransferFunction norm = normalized_copy(tf);
    std::vector<double> b = norm.b;
    std::vector<double> a = norm.a;
    equalize(b, a);
    const std::size_t n = a.size() - 1;

    // Reflection coefficients via the Levinson down-recursion.
    k_.assign(n, 0.0);
    std::vector<std::vector<double>> A(n + 1);
    A[n] = a;
    for (std::size_t m = n; m >= 1; --m) {
      const double km = A[m][m];
      k_[m - 1] = km;
      if (std::abs(km) >= 1.0) {
        throw std::runtime_error(
            "LatticeLadder: reflection coefficient at or beyond 1 (unstable "
            "or borderline transfer function)");
      }
      A[m - 1].assign(m, 0.0);
      const double denom = 1.0 - km * km;
      for (std::size_t i = 0; i < m; ++i) {
        A[m - 1][i] = (A[m][i] - km * A[m][m - i]) / denom;
      }
    }

    // Ladder taps: v_m with B(x) = sum_m v_m * rev(A_m)(x).
    v_.assign(n + 1, 0.0);
    std::vector<double> btmp = b;
    for (std::size_t m = n + 1; m-- > 0;) {
      v_[m] = btmp[m];
      // Subtract v_m * rev(A_m) from btmp: rev(A_m)[i] = A_m[m - i].
      for (std::size_t i = 0; i <= m; ++i) {
        btmp[i] -= v_[m] * A[m][m - i];
      }
    }
    g_.assign(n + 1, 0.0);
  }

  LatticeLadder(std::vector<double> k, std::vector<double> v)
      : k_(std::move(k)), v_(std::move(v)) {
    g_.assign(v_.size(), 0.0);
  }

  StructureKind kind() const override { return StructureKind::LatticeLadder; }

  double process(double x) override {
    const std::size_t n = k_.size();
    // Downward f recursion using previous-time g values.
    std::vector<double> f(n + 1);
    f[n] = x;
    for (std::size_t m = n; m >= 1; --m) {
      f[m - 1] = f[m] - k_[m - 1] * g_[m - 1];
    }
    // Upward g update from old g values, then commit.
    std::vector<double> g_new(n + 1);
    g_new[0] = f[0];
    for (std::size_t m = 1; m <= n; ++m) {
      g_new[m] = k_[m - 1] * f[m - 1] + g_[m - 1];
    }
    g_ = std::move(g_new);
    double y = 0.0;
    for (std::size_t m = 0; m <= n; ++m) y += v_[m] * g_[m];
    return y;
  }

  void reset() override { std::fill(g_.begin(), g_.end(), 0.0); }

  OpCost cost() const override {
    const int n = static_cast<int>(k_.size());
    return {2 * n + nonzero_coefficients(v_), 2 * n + n, n,
            n + nonzero_coefficients(v_)};
  }

  TransferFunction effective_tf() const override {
    // Rebuild A_m upward from the reflection coefficients, then B from the
    // ladder taps.
    const std::size_t n = k_.size();
    // Up-recursion: A_m[i] = A_{m-1}[i] + k_m * A_{m-1}[m - i], with
    // out-of-range coefficients treated as zero.
    std::vector<std::vector<double>> A(n + 1);
    A[0] = {1.0};
    for (std::size_t m = 1; m <= n; ++m) {
      A[m].assign(m + 1, 0.0);
      for (std::size_t i = 0; i <= m; ++i) {
        const double prev = i <= m - 1 ? A[m - 1][i] : 0.0;
        const double rev = (m - i) <= (m - 1) ? A[m - 1][m - i] : 0.0;
        A[m][i] = prev + k_[m - 1] * rev;
      }
    }
    std::vector<double> b(n + 1, 0.0);
    for (std::size_t m = 0; m <= n; ++m) {
      for (std::size_t i = 0; i <= m; ++i) {
        b[i] += v_[m] * A[m][m - i];
      }
    }
    TransferFunction tf{b, A[n]};
    tf.normalize();
    return tf;
  }

  std::unique_ptr<Realization> quantized(int word_bits) const override {
    // Reflection coefficients share one format (all |k| < 1); each ladder
    // tap gets its own scale, matching per-tap scaled multiplier hardware —
    // the taps span orders of magnitude and a shared exponent would waste
    // most of the word.
    std::vector<double> qv;
    qv.reserve(v_.size());
    for (double tap : v_) {
      qv.push_back(quantize_coefficients({tap}, word_bits)[0]);
    }
    return std::make_unique<LatticeLadder>(
        quantize_coefficients(k_, word_bits), std::move(qv));
  }

 private:
  std::vector<double> k_;  ///< reflection coefficients, k_[m-1] for stage m
  std::vector<double> v_;  ///< ladder taps v_0..v_n
  std::vector<double> g_;  ///< backward prediction states
};

}  // namespace

std::string to_string(StructureKind kind) {
  switch (kind) {
    case StructureKind::DirectForm1:
      return "direct-form-I";
    case StructureKind::DirectForm2:
      return "direct-form-II";
    case StructureKind::DirectForm2Transposed:
      return "direct-form-II-transposed";
    case StructureKind::Cascade:
      return "cascade";
    case StructureKind::Parallel:
      return "parallel";
    case StructureKind::LatticeLadder:
      return "ladder";
  }
  return "?";
}

std::vector<StructureKind> all_structures() {
  return {StructureKind::DirectForm1,  StructureKind::DirectForm2,
          StructureKind::DirectForm2Transposed, StructureKind::Cascade,
          StructureKind::Parallel,     StructureKind::LatticeLadder};
}

std::vector<double> Realization::process(std::span<const double> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (double x : samples) out.push_back(process(x));
  return out;
}

double quantize_value(double value, int frac_bits) {
  const double scale = std::ldexp(1.0, frac_bits);
  return std::round(value * scale) / scale;
}

std::vector<double> quantize_coefficients(const std::vector<double>& coeffs,
                                          int word_bits) {
  if (word_bits < 2 || word_bits > 32) {
    throw std::invalid_argument("quantize_coefficients: word size out of range");
  }
  double max_mag = 0.0;
  for (double c : coeffs) max_mag = std::max(max_mag, std::abs(c));
  if (max_mag == 0.0) return coeffs;
  // Shared exponent: integer bits to cover max_mag, remainder fractional.
  const int int_bits =
      std::max(0, static_cast<int>(std::ceil(std::log2(max_mag + 1e-12))));
  const int frac_bits = word_bits - 1 - int_bits;
  std::vector<double> out;
  out.reserve(coeffs.size());
  for (double c : coeffs) out.push_back(quantize_value(c, frac_bits));
  return out;
}

std::vector<SosSection> to_sos(const Zpk& zpk) {
  std::vector<SosSection> out;
  for (const Biquad& bq : build_biquads(zpk.zeros, zpk.poles, zpk.gain)) {
    out.push_back({bq.b0, bq.b1, bq.b2, bq.a1, bq.a2});
  }
  return out;
}

std::unique_ptr<Realization> realize(const Zpk& zpk, StructureKind kind) {
  if (zpk.poles.empty() && zpk.zeros.empty()) {
    throw std::invalid_argument("realize: empty pole/zero set");
  }
  if (kind == StructureKind::Cascade) {
    // Use the exact roots; factoring the expanded polynomial would smear
    // multiple zeros (e.g. the bilinear (z+1)^N clusters).
    return std::make_unique<Cascade>(zpk.zeros, zpk.poles, zpk.gain);
  }
  return realize(zpk.to_tf(), kind);
}

std::unique_ptr<Realization> realize(const TransferFunction& tf,
                                     StructureKind kind) {
  if (tf.a.empty() || tf.a[0] == 0.0) {
    throw std::invalid_argument("realize: transfer function a[0] must be nonzero");
  }
  switch (kind) {
    case StructureKind::DirectForm1:
      return std::make_unique<DirectForm1>(tf);
    case StructureKind::DirectForm2:
      return std::make_unique<DirectForm2>(tf);
    case StructureKind::DirectForm2Transposed:
      return std::make_unique<DirectForm2Transposed>(tf);
    case StructureKind::Cascade:
      return std::make_unique<Cascade>(tf);
    case StructureKind::Parallel:
      return std::make_unique<Parallel>(tf);
    case StructureKind::LatticeLadder:
      return std::make_unique<LatticeLadder>(tf);
  }
  throw std::logic_error("realize: unknown structure kind");
}

}  // namespace metacore::dsp
