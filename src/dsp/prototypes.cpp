#include "dsp/prototypes.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/elliptic.hpp"

namespace metacore::dsp {

namespace {

double ripple_eps(double ripple_db) {
  return std::sqrt(std::pow(10.0, ripple_db / 10.0) - 1.0);
}

Zpk butterworth(int order) {
  Zpk zpk;
  for (int k = 0; k < order; ++k) {
    const double theta = M_PI * (2.0 * k + 1.0) / (2.0 * order) + M_PI / 2.0;
    zpk.poles.push_back(Complex{std::cos(theta), std::sin(theta)});
  }
  // Unity DC gain: H(0) = gain / prod(-p) = 1.
  Complex prod{1.0, 0.0};
  for (const Complex& p : zpk.poles) prod *= -p;
  zpk.gain = prod.real();
  return zpk;
}

Zpk chebyshev1(int order, double rp_db) {
  const double eps = ripple_eps(rp_db);
  const double mu = std::asinh(1.0 / eps) / order;
  Zpk zpk;
  for (int k = 0; k < order; ++k) {
    const double theta = M_PI * (2.0 * k + 1.0) / (2.0 * order);
    zpk.poles.push_back(Complex{-std::sinh(mu) * std::sin(theta),
                                std::cosh(mu) * std::cos(theta)});
  }
  Complex prod{1.0, 0.0};
  for (const Complex& p : zpk.poles) prod *= -p;
  zpk.gain = prod.real();
  if (order % 2 == 0) {
    // Even-order Chebyshev-I has gain 1/sqrt(1+eps^2) at DC.
    zpk.gain /= std::sqrt(1.0 + eps * eps);
  }
  return zpk;
}

Zpk chebyshev2(int order, double rs_db) {
  // Inverse Chebyshev: equiripple stopband starting at Omega = 1; we then
  // rescale so the *passband* edge sits at 1 like the other families (the
  // band transform code assumes a unity passband edge). The passband edge
  // for a -3 dB crossing would require rp; instead we keep the standard
  // convention of stopband edge at 1/k handled by minimum_order, and place
  // the equiripple stopband edge at 1 * (no rescale). Downstream design
  // code treats Chebyshev-II prototypes as stopband-normalized.
  const double eps = 1.0 / std::sqrt(std::pow(10.0, rs_db / 10.0) - 1.0);
  const double mu = std::asinh(1.0 / eps) / order;
  Zpk zpk;
  for (int k = 0; k < order; ++k) {
    const double theta = M_PI * (2.0 * k + 1.0) / (2.0 * order);
    const Complex p{-std::sinh(mu) * std::sin(theta),
                    std::cosh(mu) * std::cos(theta)};
    zpk.poles.push_back(1.0 / p);  // inversion maps Cheb-I poles to Cheb-II
    const double zero_im = 1.0 / std::cos(theta);
    if (std::isfinite(zero_im) && std::abs(std::cos(theta)) > 1e-12) {
      if (order % 2 == 1 && k == (order - 1) / 2) {
        continue;  // middle term has its zero at infinity
      }
      zpk.zeros.push_back(Complex{0.0, zero_im});
    }
  }
  Complex pp{1.0, 0.0};
  for (const Complex& p : zpk.poles) pp *= -p;
  Complex zz{1.0, 0.0};
  for (const Complex& z : zpk.zeros) zz *= -z;
  zpk.gain = (pp / zz).real();
  return zpk;
}

Zpk elliptic(int order, double rp_db, double rs_db) {
  const double eps_p = ripple_eps(rp_db);
  const double eps_s = ripple_eps(rs_db);
  const double k1 = eps_p / eps_s;
  const double k = solve_degree_equation(order, k1);
  const int half = order / 2;
  const bool odd = order % 2 == 1;

  Zpk zpk;
  // Normalized pole offset v0 from the passband ripple.
  const Complex j{0.0, 1.0};
  const Complex v0 = -j * asne(j / eps_p, k1) / static_cast<double>(order);

  for (int i = 1; i <= half; ++i) {
    const double u = (2.0 * i - 1.0) / order;
    // Transmission zeros on the imaginary axis.
    const double zeta = cde(Complex{u, 0.0}, k).real();
    const Complex zero = j / (k * zeta);
    zpk.zeros.push_back(zero);
    zpk.zeros.push_back(std::conj(zero));
    // Poles: j * cd((u - j v0) K, k).
    const Complex pole = j * cde(Complex{u, 0.0} - j * v0, k);
    zpk.poles.push_back(pole);
    zpk.poles.push_back(std::conj(pole));
  }
  if (odd) {
    const Complex pole = j * sne(j * v0, k);
    zpk.poles.push_back(Complex{pole.real(), 0.0});
  }

  Complex pp{1.0, 0.0};
  for (const Complex& p : zpk.poles) pp *= -p;
  Complex zz{1.0, 0.0};
  for (const Complex& z : zpk.zeros) zz *= -z;
  double gain = (pp / zz).real();
  if (!odd) gain /= std::sqrt(1.0 + eps_p * eps_p);  // equiripple at DC
  zpk.gain = gain;
  return zpk;
}

}  // namespace

std::string to_string(FilterFamily family) {
  switch (family) {
    case FilterFamily::Butterworth:
      return "butterworth";
    case FilterFamily::Chebyshev1:
      return "chebyshev1";
    case FilterFamily::Chebyshev2:
      return "chebyshev2";
    case FilterFamily::Elliptic:
      return "elliptic";
  }
  return "?";
}

Zpk analog_lowpass_prototype(FilterFamily family, int order,
                             double passband_ripple_db,
                             double stopband_atten_db) {
  if (order < 1 || order > 24) {
    throw std::invalid_argument(
        "analog_lowpass_prototype: order out of supported range [1, 24]");
  }
  if (passband_ripple_db <= 0.0) {
    throw std::invalid_argument(
        "analog_lowpass_prototype: passband ripple must be positive dB");
  }
  switch (family) {
    case FilterFamily::Butterworth: {
      // The classic prototype is 3-dB-normalized; rescale the cutoff so the
      // attenuation at Omega = 1 is exactly the requested passband ripple:
      // |H(1)|^2 = 1 / (1 + (1/wc)^2N) = 1 / (1 + eps^2)  =>  wc = eps^(-1/N).
      Zpk proto = butterworth(order);
      const double eps = ripple_eps(passband_ripple_db);
      const double wc = std::pow(eps, -1.0 / order);
      Zpk scaled;
      for (const Complex& p : proto.poles) scaled.poles.push_back(p * wc);
      scaled.gain = proto.gain * std::pow(wc, order);
      return scaled;
    }
    case FilterFamily::Chebyshev1:
      return chebyshev1(order, passband_ripple_db);
    case FilterFamily::Chebyshev2:
      return chebyshev2(order, stopband_atten_db);
    case FilterFamily::Elliptic:
      return elliptic(order, passband_ripple_db, stopband_atten_db);
  }
  throw std::logic_error("analog_lowpass_prototype: unknown family");
}

int minimum_order(FilterFamily family, double wp, double ws, double rp_db,
                  double rs_db) {
  if (!(wp > 0.0 && ws > wp)) {
    throw std::invalid_argument("minimum_order: need 0 < wp < ws");
  }
  const double selectivity = ws / wp;
  const double discrim = (std::pow(10.0, rs_db / 10.0) - 1.0) /
                         (std::pow(10.0, rp_db / 10.0) - 1.0);
  switch (family) {
    case FilterFamily::Butterworth:
      return static_cast<int>(
          std::ceil(std::log10(discrim) / (2.0 * std::log10(selectivity))));
    case FilterFamily::Chebyshev1:
    case FilterFamily::Chebyshev2:
      return static_cast<int>(std::ceil(std::acosh(std::sqrt(discrim)) /
                                        std::acosh(selectivity)));
    case FilterFamily::Elliptic: {
      const double k = wp / ws;
      const double k1 = 1.0 / std::sqrt(discrim);
      return elliptic_min_order(k, k1);
    }
  }
  throw std::logic_error("minimum_order: unknown family");
}

}  // namespace metacore::dsp
