#include "dsp/design.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::dsp {

namespace {

double prewarp(double f_pi_units) { return std::tan(M_PI * f_pi_units / 2.0); }

/// Real part of prod(c - roots) — used for gain bookkeeping in transforms.
double real_prod_offset(const std::vector<Complex>& roots, Complex c) {
  Complex prod{1.0, 0.0};
  for (const Complex& r : roots) prod *= c - r;
  return prod.real();
}

}  // namespace

std::string to_string(BandType band) {
  switch (band) {
    case BandType::Lowpass:
      return "lowpass";
    case BandType::Highpass:
      return "highpass";
    case BandType::Bandpass:
      return "bandpass";
    case BandType::Bandstop:
      return "bandstop";
  }
  return "?";
}

void FilterSpec::validate() const {
  auto in_range = [](double f) { return f > 0.0 && f < 1.0; };
  switch (band) {
    case BandType::Lowpass:
      if (!in_range(pass_hi) || !in_range(stop_hi) || pass_hi >= stop_hi) {
        throw std::invalid_argument("FilterSpec: need 0 < pass_hi < stop_hi < 1");
      }
      break;
    case BandType::Highpass:
      if (!in_range(pass_lo) || !in_range(stop_lo) || stop_lo >= pass_lo) {
        throw std::invalid_argument("FilterSpec: need 0 < stop_lo < pass_lo < 1");
      }
      break;
    case BandType::Bandpass:
      if (!in_range(stop_lo) || !in_range(stop_hi) || !in_range(pass_lo) ||
          !in_range(pass_hi) || !(stop_lo < pass_lo && pass_lo < pass_hi &&
                                  pass_hi < stop_hi)) {
        throw std::invalid_argument(
            "FilterSpec: need stop_lo < pass_lo < pass_hi < stop_hi");
      }
      break;
    case BandType::Bandstop:
      if (!in_range(stop_lo) || !in_range(stop_hi) || !in_range(pass_lo) ||
          !in_range(pass_hi) || !(pass_lo < stop_lo && stop_lo < stop_hi &&
                                  stop_hi < pass_hi)) {
        throw std::invalid_argument(
            "FilterSpec: need pass_lo < stop_lo < stop_hi < pass_hi");
      }
      break;
  }
  if (passband_ripple_db <= 0.0 || stopband_atten_db <= 0.0) {
    throw std::invalid_argument("FilterSpec: ripple/attenuation must be > 0 dB");
  }
  if (order_override < 0 || order_override > 24) {
    throw std::invalid_argument("FilterSpec: order override out of range");
  }
}

double passband_ripple_db_from_eps(double eps_p) {
  if (eps_p <= 0.0 || eps_p >= 1.0) {
    throw std::invalid_argument("passband eps must be in (0, 1)");
  }
  return -20.0 * std::log10(1.0 - eps_p);
}

double stopband_atten_db_from_eps(double eps_s) {
  if (eps_s <= 0.0 || eps_s >= 1.0) {
    throw std::invalid_argument("stopband eps must be in (0, 1)");
  }
  return -20.0 * std::log10(eps_s);
}

Zpk lp_to_lp(const Zpk& proto, double w0) {
  Zpk out;
  for (const Complex& z : proto.zeros) out.zeros.push_back(z * w0);
  for (const Complex& p : proto.poles) out.poles.push_back(p * w0);
  const int excess =
      static_cast<int>(proto.poles.size()) - static_cast<int>(proto.zeros.size());
  out.gain = proto.gain * std::pow(w0, excess);
  return out;
}

Zpk lp_to_hp(const Zpk& proto, double w0) {
  Zpk out;
  for (const Complex& z : proto.zeros) out.zeros.push_back(w0 / z);
  for (const Complex& p : proto.poles) out.poles.push_back(w0 / p);
  // Excess poles become zeros at s = 0.
  const int excess =
      static_cast<int>(proto.poles.size()) - static_cast<int>(proto.zeros.size());
  for (int i = 0; i < excess; ++i) out.zeros.push_back(Complex{0.0, 0.0});
  // Gain: lim_{s->inf} requires prod(-z)/prod(-p) bookkeeping.
  out.gain = proto.gain * (real_prod_offset(proto.zeros, Complex{0.0, 0.0}) /
                           real_prod_offset(proto.poles, Complex{0.0, 0.0}));
  return out;
}

namespace {
/// Applies the quadratic bandpass root map s -> roots of
/// s_bp^2 - (bw * s) s_bp + w0^2 = 0 to each root.
void bp_map(const std::vector<Complex>& roots, double w0, double bw,
            std::vector<Complex>& out) {
  for (const Complex& r : roots) {
    const Complex half = r * (bw / 2.0);
    const Complex disc = std::sqrt(half * half - w0 * w0);
    out.push_back(half + disc);
    out.push_back(half - disc);
  }
}
}  // namespace

Zpk lp_to_bp(const Zpk& proto, double w0, double bw) {
  Zpk out;
  bp_map(proto.zeros, w0, bw, out.zeros);
  bp_map(proto.poles, w0, bw, out.poles);
  const int excess =
      static_cast<int>(proto.poles.size()) - static_cast<int>(proto.zeros.size());
  // Excess poles contribute zeros at s = 0.
  for (int i = 0; i < excess; ++i) out.zeros.push_back(Complex{0.0, 0.0});
  out.gain = proto.gain * std::pow(bw, excess);
  return out;
}

Zpk lp_to_bs(const Zpk& proto, double w0, double bw) {
  // s -> bw * s / (s^2 + w0^2): first invert the prototype (lp->hp at 1),
  // then apply the bandpass map; algebraically identical to the direct
  // bandstop substitution.
  Zpk inverted = lp_to_hp(proto, 1.0);
  Zpk out;
  bp_map(inverted.zeros, w0, bw, out.zeros);
  bp_map(inverted.poles, w0, bw, out.poles);
  const int excess = static_cast<int>(inverted.poles.size()) -
                     static_cast<int>(inverted.zeros.size());
  for (int i = 0; i < excess; ++i) {
    out.zeros.push_back(Complex{0.0, w0});
    out.zeros.push_back(Complex{0.0, -w0});
  }
  out.gain = inverted.gain;
  return out;
}

Zpk bilinear(const Zpk& analog) {
  Zpk out;
  const Complex one{1.0, 0.0};
  Complex gain_num{1.0, 0.0};
  Complex gain_den{1.0, 0.0};
  for (const Complex& z : analog.zeros) {
    out.zeros.push_back((one + z) / (one - z));
    gain_num *= one - z;
  }
  for (const Complex& p : analog.poles) {
    out.poles.push_back((one + p) / (one - p));
    gain_den *= one - p;
  }
  // Excess poles map zeros at z = -1 (s = infinity).
  const int excess = static_cast<int>(analog.poles.size()) -
                     static_cast<int>(analog.zeros.size());
  for (int i = 0; i < excess; ++i) out.zeros.push_back(Complex{-1.0, 0.0});
  out.gain = analog.gain * (gain_num / gain_den).real();
  return out;
}

DesignedFilter design_filter(const FilterSpec& spec) {
  spec.validate();
  DesignedFilter result;
  result.spec = spec;

  // Prewarped analog band edges.
  const double wp_lo = prewarp(spec.pass_lo);
  const double wp_hi = prewarp(spec.pass_hi);
  const double ws_lo = prewarp(spec.stop_lo);
  const double ws_hi = prewarp(spec.stop_hi);

  // Reduce to an equivalent analog lowpass selectivity (passband at 1).
  double selectivity = 0.0;  // Omega_s of the equivalent lowpass
  double w0 = 0.0, bw = 0.0;
  switch (spec.band) {
    case BandType::Lowpass:
      selectivity = ws_hi / wp_hi;
      break;
    case BandType::Highpass:
      selectivity = wp_lo / ws_lo;
      break;
    case BandType::Bandpass: {
      w0 = std::sqrt(wp_lo * wp_hi);
      bw = wp_hi - wp_lo;
      const double s1 =
          std::abs((ws_lo * ws_lo - w0 * w0) / (bw * ws_lo));
      const double s2 =
          std::abs((ws_hi * ws_hi - w0 * w0) / (bw * ws_hi));
      selectivity = std::min(s1, s2);
      break;
    }
    case BandType::Bandstop: {
      w0 = std::sqrt(wp_lo * wp_hi);
      bw = wp_hi - wp_lo;
      // Equivalent-lowpass frequency of a bandstop edge w is
      // |bw * w / (w0^2 - w^2)|; the binding stopband edge is the smaller.
      const double s1 =
          std::abs((bw * ws_lo) / (w0 * w0 - ws_lo * ws_lo));
      const double s2 =
          std::abs((bw * ws_hi) / (w0 * w0 - ws_hi * ws_hi));
      selectivity = std::min(s1, s2);
      break;
    }
  }
  if (selectivity <= 1.0) {
    throw std::invalid_argument(
        "design_filter: degenerate spec (stopband inside passband after "
        "warping)");
  }

  const int order =
      spec.order_override > 0
          ? spec.order_override
          : minimum_order(spec.family, 1.0, selectivity,
                          spec.passband_ripple_db, spec.stopband_atten_db);
  result.prototype_order = order;

  Zpk proto = analog_lowpass_prototype(spec.family, order,
                                       spec.passband_ripple_db,
                                       spec.stopband_atten_db);
  // Chebyshev-II prototypes are stopband-normalized: rescale so that the
  // equivalent-lowpass stopband edge lands at `selectivity`.
  if (spec.family == FilterFamily::Chebyshev2) {
    proto = lp_to_lp(proto, selectivity);
  }

  Zpk analog;
  switch (spec.band) {
    case BandType::Lowpass:
      analog = lp_to_lp(proto, wp_hi);
      break;
    case BandType::Highpass:
      analog = lp_to_hp(proto, wp_lo);
      break;
    case BandType::Bandpass:
      analog = lp_to_bp(proto, w0, bw);
      break;
    case BandType::Bandstop:
      analog = lp_to_bs(proto, w0, bw);
      break;
  }

  result.zpk = bilinear(analog);
  result.tf = result.zpk.to_tf();
  return result;
}

}  // namespace metacore::dsp
