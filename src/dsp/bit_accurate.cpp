#include "dsp/bit_accurate.hpp"

#include <stdexcept>

#include "dsp/signal.hpp"

namespace metacore::dsp {

BitAccurateCascade::BitAccurateCascade(const Zpk& zpk,
                                       BitAccurateConfig config)
    : config_(config) {
  config_.signal_format.validate();
  config_.coefficient_format.validate();
  const auto sos = to_sos(zpk);
  if (sos.empty()) {
    throw std::invalid_argument("BitAccurateCascade: empty decomposition");
  }
  const auto& cf = config_.coefficient_format;
  const auto& sf = config_.signal_format;
  for (const auto& s : sos) {
    Section section{
        util::Fixed(s.b0, cf), util::Fixed(s.b1, cf), util::Fixed(s.b2, cf),
        util::Fixed(s.a1, cf), util::Fixed(s.a2, cf),
        util::Fixed(0.0, sf),  util::Fixed(0.0, sf)};
    // A coefficient that saturates its ROM format makes the filter
    // structurally wrong, not merely noisy — reject outright.
    if (section.b0.saturated() || section.b1.saturated() ||
        section.b2.saturated() || section.a1.saturated() ||
        section.a2.saturated()) {
      throw std::invalid_argument(
          "BitAccurateCascade: coefficient exceeds the coefficient format "
          "range (" + cf.label() + ")");
    }
    sections_.push_back(section);
  }
}

double BitAccurateCascade::process(double x) {
  const auto& sf = config_.signal_format;
  util::Fixed v(x, sf);
  if (v.saturated()) ++saturations_;
  for (auto& s : sections_) {
    // Direct form II, every product rounded into the signal format and
    // every sum saturating — one rounding site per hardware multiplier.
    const util::Fixed a1w1 = s.w1.mul(s.a1);
    const util::Fixed a2w2 = s.w2.mul(s.a2);
    const util::Fixed w0 = v.sub(a1w1.add(a2w2));
    const util::Fixed y =
        w0.mul(s.b0).add(s.w1.mul(s.b1)).add(s.w2.mul(s.b2));
    saturations_ += (a1w1.saturated() || a2w2.saturated() || w0.saturated() ||
                     y.saturated())
                        ? 1
                        : 0;
    s.w2 = s.w1;
    s.w1 = w0;
    v = y;
  }
  return v.to_double();
}

std::vector<double> BitAccurateCascade::process(
    std::span<const double> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (double x : samples) out.push_back(process(x));
  return out;
}

void BitAccurateCascade::reset() {
  const auto& sf = config_.signal_format;
  for (auto& s : sections_) {
    s.w1 = util::Fixed(0.0, sf);
    s.w2 = util::Fixed(0.0, sf);
  }
  saturations_ = 0;
}

double bit_accurate_snr_db(const Zpk& zpk, const BitAccurateConfig& config,
                           std::span<const double> stimulus) {
  BitAccurateCascade fixed(zpk, config);
  auto reference = realize(zpk, StructureKind::Cascade);
  std::vector<double> ref_out;
  ref_out.reserve(stimulus.size());
  for (double x : stimulus) ref_out.push_back(reference->process(x));
  const std::vector<double> fixed_out = fixed.process(stimulus);
  return output_snr_db(ref_out, fixed_out);
}

}  // namespace metacore::dsp
