// Analog lowpass prototype design (passband edge normalized to 1 rad/s) for
// the four classical approximation families, in pole-zero-gain form.
#pragma once

#include <string>

#include "dsp/transfer_function.hpp"

namespace metacore::dsp {

enum class FilterFamily : int { Butterworth, Chebyshev1, Chebyshev2, Elliptic };

std::string to_string(FilterFamily family);

/// Analog lowpass prototype of the given order.
///
/// Conventions: the passband edge is at Omega = 1 rad/s with at most
/// `passband_ripple_db` attenuation there; `stopband_atten_db` is used by
/// the Chebyshev-II and elliptic families (ignored by Butterworth and
/// Chebyshev-I). For elliptic prototypes the stopband edge follows from
/// the degree equation.
Zpk analog_lowpass_prototype(FilterFamily family, int order,
                             double passband_ripple_db,
                             double stopband_atten_db);

/// Minimum order meeting (Omega_p = wp, Omega_s = ws, rp dB, rs dB) for the
/// family; wp < ws required.
int minimum_order(FilterFamily family, double wp, double ws, double rp_db,
                  double rs_db);

}  // namespace metacore::dsp
