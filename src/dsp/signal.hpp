// Test-signal generation and signal-quality measurement: the utilities an
// SPW-style simulation flow provides around the filter itself — sine/chirp/
// noise stimuli, output SNR against a reference implementation, and group
// delay of a transfer function.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/transfer_function.hpp"

namespace metacore::dsp {

/// sin(omega n + phase), omega in rad/sample.
std::vector<double> sine_wave(std::size_t samples, double omega,
                              double amplitude = 1.0, double phase = 0.0);

/// Linear chirp from omega_start to omega_end (rad/sample) across the
/// buffer — sweeps the whole band in one stimulus.
std::vector<double> linear_chirp(std::size_t samples, double omega_start,
                                 double omega_end, double amplitude = 1.0);

/// White Gaussian noise with the given standard deviation (seedable).
std::vector<double> white_noise(std::size_t samples, double stddev,
                                std::uint64_t seed = 1);

/// Signal-to-noise ratio (dB) of `actual` against `reference`:
/// 10 log10(sum ref^2 / sum (ref - actual)^2). Returns +inf-like large
/// value (clamped to 300 dB) for exact matches. Requires equal lengths.
double output_snr_db(std::span<const double> reference,
                     std::span<const double> actual);

/// Group delay -d(arg H)/d(omega) at `omega`, via central differences on
/// the unwrapped phase. Units: samples.
double group_delay(const TransferFunction& tf, double omega,
                   double step = 1e-4);

}  // namespace metacore::dsp
