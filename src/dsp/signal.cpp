#include "dsp/signal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace metacore::dsp {

std::vector<double> sine_wave(std::size_t samples, double omega,
                              double amplitude, double phase) {
  std::vector<double> out(samples);
  for (std::size_t n = 0; n < samples; ++n) {
    out[n] = amplitude * std::sin(omega * static_cast<double>(n) + phase);
  }
  return out;
}

std::vector<double> linear_chirp(std::size_t samples, double omega_start,
                                 double omega_end, double amplitude) {
  if (samples < 2) {
    throw std::invalid_argument("linear_chirp: need at least two samples");
  }
  std::vector<double> out(samples);
  const double slope =
      (omega_end - omega_start) / static_cast<double>(samples - 1);
  double phase = 0.0;
  for (std::size_t n = 0; n < samples; ++n) {
    out[n] = amplitude * std::sin(phase);
    phase += omega_start + slope * static_cast<double>(n);
  }
  return out;
}

std::vector<double> white_noise(std::size_t samples, double stddev,
                                std::uint64_t seed) {
  util::Random rng(seed);
  std::vector<double> out(samples);
  for (auto& s : out) s = rng.normal(0.0, stddev);
  return out;
}

double output_snr_db(std::span<const double> reference,
                     std::span<const double> actual) {
  if (reference.size() != actual.size() || reference.empty()) {
    throw std::invalid_argument("output_snr_db: size mismatch or empty");
  }
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = reference[i] - actual[i];
    noise += e * e;
  }
  if (signal <= 0.0) {
    throw std::invalid_argument("output_snr_db: zero reference energy");
  }
  if (noise <= signal * 1e-30) return 300.0;
  return 10.0 * std::log10(signal / noise);
}

double group_delay(const TransferFunction& tf, double omega, double step) {
  // Unwrapped phase difference over a small interval; the small step keeps
  // us inside one phase branch except exactly at zeros of H, where group
  // delay is ill-defined anyway.
  const double lo = std::max(step, omega - step);
  const double hi = std::min(M_PI - step, omega + step);
  const Complex h_lo = tf.response(lo);
  const Complex h_hi = tf.response(hi);
  double dphase = std::arg(h_hi) - std::arg(h_lo);
  while (dphase > M_PI) dphase -= 2.0 * M_PI;
  while (dphase < -M_PI) dphase += 2.0 * M_PI;
  return -dphase / (hi - lo);
}

}  // namespace metacore::dsp
