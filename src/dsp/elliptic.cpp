#include "dsp/elliptic.hpp"

#include <cmath>
#include <stdexcept>

namespace metacore::dsp {

namespace {
using Cx = std::complex<double>;
}  // namespace

std::vector<double> landen_sequence(double k, double tol) {
  if (k < 0.0 || k >= 1.0) {
    throw std::invalid_argument("landen_sequence: modulus must be in [0, 1)");
  }
  std::vector<double> seq;
  double kn = k;
  // Each descending Landen step roughly squares the (small) modulus, so a
  // couple dozen iterations is far more than double precision ever needs.
  for (int i = 0; i < 32 && kn > tol; ++i) {
    const double kp = std::sqrt(1.0 - kn * kn);
    kn = (1.0 - kp) / (1.0 + kp);
    seq.push_back(kn);
  }
  return seq;
}

double ellipk(double k) {
  if (k < 0.0 || k >= 1.0) {
    throw std::invalid_argument("ellipk: modulus must be in [0, 1)");
  }
  // K(k) = pi/2 * prod (1 + k_n) over the descending Landen sequence.
  double product = 1.0;
  for (double kn : landen_sequence(k)) product *= 1.0 + kn;
  return M_PI / 2.0 * product;
}

Cx cde(Cx u, double k) {
  const std::vector<double> seq = landen_sequence(k);
  Cx w = std::cos(u * (M_PI / 2.0));
  // Ascend through the Gauss transformation from modulus ~0 back to k:
  // cd_n = (1 + k_{n+1}) cd_{n+1} / (1 + k_{n+1} cd_{n+1}^2).
  for (std::size_t i = seq.size(); i-- > 0;) {
    const double kn = seq[i];
    w = (1.0 + kn) * w / (1.0 + kn * w * w);
  }
  return w;
}

Cx sne(Cx u, double k) {
  const std::vector<double> seq = landen_sequence(k);
  Cx w = std::sin(u * (M_PI / 2.0));
  for (std::size_t i = seq.size(); i-- > 0;) {
    const double kn = seq[i];
    w = (1.0 + kn) * w / (1.0 + kn * w * w);
  }
  return w;
}

Cx asne(Cx w, double k) {
  const Cx target = w;
  const std::vector<double> seq = landen_sequence(k);
  // Descend: invert the Gauss step w_prev = (1+kn) w / (1 + kn w^2) for w,
  // choosing the root continuous with w at kn -> 0.
  for (double kn : seq) {
    if (kn == 0.0) break;
    const Cx s = std::sqrt((1.0 + kn) * (1.0 + kn) - 4.0 * kn * w * w);
    w = (std::abs(w) < 1e-300) ? w : ((1.0 + kn) - s) / (2.0 * kn * w);
  }
  // At modulus ~0, sn(u K, 0) = sin(u pi / 2).
  Cx u = std::asin(w) * (2.0 / M_PI);
  // Newton polish on sne(u) = target: the branch arithmetic above is only
  // accurate to ~1e-4 for large |w|; two or three corrections restore full
  // double precision via numeric differentiation.
  for (int iter = 0; iter < 4; ++iter) {
    const Cx f = sne(u, k) - target;
    if (std::abs(f) < 1e-13 * std::max(1.0, std::abs(target))) break;
    const Cx h{1e-7, 0.0};
    const Cx df = (sne(u + h, k) - sne(u - h, k)) / (2.0 * h);
    if (std::abs(df) < 1e-30) break;
    u -= f / df;
  }
  return u;
}

double solve_degree_equation(int order, double k1) {
  if (order < 1) {
    throw std::invalid_argument("solve_degree_equation: order must be >= 1");
  }
  if (k1 <= 0.0 || k1 >= 1.0) {
    throw std::invalid_argument("solve_degree_equation: k1 must be in (0, 1)");
  }
  // Work through the complementary moduli: with k1' = sqrt(1 - k1^2),
  //   k' = (k1')^N * prod_i sne(u_i, k1')^4,  u_i = (2i - 1) / N,
  // and then k = sqrt(1 - k'^2).
  const double k1p = std::sqrt(1.0 - k1 * k1);
  const int half = order / 2;
  double kp = std::pow(k1p, order);
  for (int i = 1; i <= half; ++i) {
    const double u = (2.0 * i - 1.0) / order;
    const double s = sne(Cx{u, 0.0}, k1p).real();
    kp *= s * s * s * s;
  }
  const double k = std::sqrt(std::max(0.0, 1.0 - kp * kp));
  return k;
}

int elliptic_min_order(double k, double k1) {
  if (k <= 0.0 || k >= 1.0 || k1 <= 0.0 || k1 >= 1.0) {
    throw std::invalid_argument("elliptic_min_order: moduli must be in (0, 1)");
  }
  const double kp = std::sqrt(1.0 - k * k);
  const double k1p = std::sqrt(1.0 - k1 * k1);
  const double n =
      (ellipk(k) / ellipk(kp)) * (ellipk(k1p) / ellipk(k1));
  return static_cast<int>(std::ceil(n - 1e-9));
}

}  // namespace metacore::dsp
