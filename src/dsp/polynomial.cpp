#include "dsp/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::dsp {

Complex poly_eval(std::span<const double> coeffs, Complex x) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

Complex poly_eval(std::span<const Complex> coeffs, Complex x) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

Poly poly_mul(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  Poly out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

CPoly poly_mul(std::span<const Complex> a, std::span<const Complex> b) {
  if (a.empty() || b.empty()) return {};
  CPoly out(a.size() + b.size() - 1, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

CPoly poly_from_roots(std::span<const Complex> roots) {
  CPoly poly{Complex{1.0, 0.0}};
  for (const Complex& root : roots) {
    const CPoly factor{-root, Complex{1.0, 0.0}};
    poly = poly_mul(poly, factor);
  }
  return poly;
}

Poly real_poly_from_roots(std::span<const Complex> roots, double gain,
                          double tol) {
  const CPoly cpoly = poly_from_roots(roots);
  Poly out(cpoly.size());
  double scale = 0.0;
  for (const Complex& c : cpoly) scale = std::max(scale, std::abs(c));
  for (std::size_t i = 0; i < cpoly.size(); ++i) {
    if (std::abs(cpoly[i].imag()) > tol * std::max(1.0, scale)) {
      throw std::invalid_argument(
          "real_poly_from_roots: root set is not conjugate-closed");
    }
    out[i] = gain * cpoly[i].real();
  }
  return out;
}

std::vector<Complex> poly_roots(std::span<const double> coeffs,
                                int max_iterations, double tol) {
  // Trim leading (highest-power) zeros.
  std::size_t degree_plus_one = coeffs.size();
  while (degree_plus_one > 0 && coeffs[degree_plus_one - 1] == 0.0) {
    --degree_plus_one;
  }
  if (degree_plus_one == 0) {
    throw std::invalid_argument("poly_roots: zero polynomial");
  }
  const std::size_t degree = degree_plus_one - 1;
  if (degree == 0) return {};

  // Normalize to monic complex coefficients.
  CPoly monic(degree_plus_one);
  const double lead = coeffs[degree];
  for (std::size_t i = 0; i < degree_plus_one; ++i) {
    monic[i] = Complex{coeffs[i] / lead, 0.0};
  }

  // Durand-Kerner from non-real, non-symmetric initial guesses on a circle
  // whose radius follows the Cauchy root bound.
  double bound = 0.0;
  for (std::size_t i = 0; i < degree; ++i) {
    bound = std::max(bound, std::abs(monic[i]));
  }
  const double radius = 1.0 + bound;
  std::vector<Complex> roots(degree);
  for (std::size_t i = 0; i < degree; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(degree) + 0.4;
    roots[i] = radius * Complex{std::cos(angle), std::sin(angle)};
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < degree; ++i) {
      Complex denom{1.0, 0.0};
      for (std::size_t j = 0; j < degree; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      if (std::abs(denom) < 1e-300) {
        // Perturb coincident estimates and continue.
        roots[i] += Complex{1e-8, 1e-8};
        max_step = 1.0;
        continue;
      }
      const Complex step = poly_eval(std::span<const Complex>(monic), roots[i]) / denom;
      roots[i] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < tol) break;
  }
  return roots;
}

void sort_conjugate_pairs(std::vector<Complex>& roots) {
  std::sort(roots.begin(), roots.end(), [](const Complex& a, const Complex& b) {
    const double ia = std::abs(a.imag());
    const double ib = std::abs(b.imag());
    if (std::abs(ia - ib) > 1e-12) return ia < ib;
    if (std::abs(a.real() - b.real()) > 1e-12) return a.real() < b.real();
    return a.imag() > b.imag();
  });
}

}  // namespace metacore::dsp
