// Bit-accurate fixed-point simulation of a cascade-of-biquads datapath:
// unlike Realization::quantized(), which only quantizes *coefficients*,
// this models the full hardware word-level behaviour — signal quantization
// at the input, rounding after every multiply, and saturating accumulation
// — so the round-off-noise component of the word-length trade-off can be
// measured (the second half of the classic word-length story).
#pragma once

#include <vector>

#include "dsp/structures.hpp"
#include "dsp/transfer_function.hpp"
#include "util/fixed.hpp"

namespace metacore::dsp {

struct BitAccurateConfig {
  util::QFormat signal_format{16, 13};       ///< input/state/output format
  util::QFormat coefficient_format{16, 14};  ///< coefficient ROM format
};

/// A cascade of second-order sections evaluated entirely in fixed point.
/// Constructed from a designed filter's pole/zero form (the same
/// decomposition Realization uses for StructureKind::Cascade).
class BitAccurateCascade {
 public:
  BitAccurateCascade(const Zpk& zpk, BitAccurateConfig config);

  /// Processes one sample through every section in fixed point.
  double process(double x);
  std::vector<double> process(std::span<const double> samples);

  void reset();

  /// Number of saturation events observed since construction/reset —
  /// nonzero counts indicate the signal format lacks integer headroom.
  std::uint64_t saturation_events() const { return saturations_; }

  int sections() const { return static_cast<int>(sections_.size()); }
  const BitAccurateConfig& config() const { return config_; }

 private:
  struct Section {
    // Coefficients in the coefficient format.
    util::Fixed b0, b1, b2, a1, a2;
    // State in the signal format.
    util::Fixed w1, w2;
  };

  BitAccurateConfig config_;
  std::vector<Section> sections_;
  std::uint64_t saturations_ = 0;
};

/// Round-off + quantization SNR of the bit-accurate datapath against the
/// double-precision reference on the given stimulus (dB).
double bit_accurate_snr_db(const Zpk& zpk, const BitAccurateConfig& config,
                           std::span<const double> stimulus);

}  // namespace metacore::dsp
