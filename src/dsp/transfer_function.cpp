#include "dsp/transfer_function.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metacore::dsp {

int TransferFunction::order() const {
  const auto deg = [](const std::vector<double>& p) {
    std::size_t d = p.size();
    while (d > 1 && p[d - 1] == 0.0) --d;
    return static_cast<int>(d) - 1;
  };
  return std::max(deg(b), deg(a));
}

void TransferFunction::normalize() {
  if (a.empty() || a[0] == 0.0) {
    throw std::invalid_argument("TransferFunction: a[0] must be nonzero");
  }
  const double a0 = a[0];
  for (auto& c : a) c /= a0;
  for (auto& c : b) c /= a0;
}

Complex TransferFunction::response(double omega) const {
  // Polynomials are in z^-1, so evaluate at e^{-j omega}.
  const Complex zinv = std::polar(1.0, -omega);
  const Complex num = poly_eval(std::span<const double>(b), zinv);
  const Complex den = poly_eval(std::span<const double>(a), zinv);
  return num / den;
}

double TransferFunction::magnitude_db(double omega) const {
  const double mag = magnitude(omega);
  return 20.0 * std::log10(std::max(mag, 1e-300));
}

std::vector<Complex> TransferFunction::poles() const {
  // A(z^-1) = sum a[k] z^-k; poles are roots of z^N A(z^-1) = sum a[k] z^{N-k}.
  std::vector<double> reversed(a.rbegin(), a.rend());
  return poly_roots(reversed);
}

std::vector<Complex> TransferFunction::zeros() const {
  std::vector<double> reversed(b.rbegin(), b.rend());
  return poly_roots(reversed);
}

bool TransferFunction::is_stable(double margin) const {
  for (const Complex& p : poles()) {
    if (std::abs(p) >= 1.0 - margin) return false;
  }
  return true;
}

TransferFunction Zpk::to_tf(double tol) const {
  TransferFunction tf;
  tf.b = real_poly_from_roots(zeros, gain, tol);
  tf.a = real_poly_from_roots(poles, 1.0, tol);
  // real_poly_from_roots returns lowest power of z first for a polynomial in
  // z; convert to powers of z^-1. For H(z) = g * prod(z - zi) / prod(z - pi)
  // with equal numerator/denominator length, dividing both by z^N turns the
  // polynomial in z (lowest power first) into a polynomial in z^-1 with the
  // coefficient order reversed.
  while (tf.b.size() < tf.a.size()) tf.b.push_back(0.0);
  while (tf.a.size() < tf.b.size()) tf.a.push_back(0.0);
  std::reverse(tf.b.begin(), tf.b.end());
  std::reverse(tf.a.begin(), tf.a.end());
  tf.normalize();
  return tf;
}

Complex Zpk::response(Complex z) const {
  Complex num{gain, 0.0};
  for (const Complex& zero : zeros) num *= z - zero;
  Complex den{1.0, 0.0};
  for (const Complex& pole : poles) den *= z - pole;
  return num / den;
}

BandMetrics measure_bandpass(const TransferFunction& tf, double pass_lo,
                             double pass_hi, double stop_lo, double stop_hi,
                             int grid_points) {
  if (!(0.0 <= stop_lo && stop_lo < pass_lo && pass_lo < pass_hi &&
        pass_hi < stop_hi && stop_hi <= 1.0)) {
    throw std::invalid_argument("measure_bandpass: band edges out of order");
  }
  BandMetrics metrics;
  double min_pass = 1e300, max_pass = -1e300;
  for (int i = 0; i < grid_points; ++i) {
    const double f =
        pass_lo + (pass_hi - pass_lo) * i / static_cast<double>(grid_points - 1);
    const double mag = tf.magnitude_db(f * M_PI);
    min_pass = std::min(min_pass, mag);
    max_pass = std::max(max_pass, mag);
  }
  metrics.min_passband_gain_db = min_pass;
  metrics.passband_ripple_db = max_pass - min_pass;

  double max_stop = -1e300;
  for (int i = 0; i < grid_points; ++i) {
    const double lo_f = stop_lo * i / static_cast<double>(grid_points - 1);
    max_stop = std::max(max_stop, tf.magnitude_db(lo_f * M_PI));
    const double hi_f =
        stop_hi + (1.0 - stop_hi) * i / static_cast<double>(grid_points - 1);
    max_stop = std::max(max_stop, tf.magnitude_db(hi_f * M_PI));
  }
  metrics.max_stopband_gain_db = max_stop;

  // 3-dB bandwidth: scan outward from the passband *peak* to the first
  // crossings below (peak - 3 dB).
  double peak = -1e300;
  double center = 0.5 * (pass_lo + pass_hi);
  for (int i = 0; i < grid_points; ++i) {
    const double f =
        pass_lo + (pass_hi - pass_lo) * i / static_cast<double>(grid_points - 1);
    const double mag = tf.magnitude_db(f * M_PI);
    if (mag > peak) {
      peak = mag;
      center = f;
    }
  }
  const double target = peak - 3.0;
  const double step = 1.0 / 8192.0;
  double lo_edge = 0.0, hi_edge = 1.0;
  for (double f = center; f > 0.0; f -= step) {
    if (tf.magnitude_db(f * M_PI) < target) {
      lo_edge = f;
      break;
    }
  }
  for (double f = center; f < 1.0; f += step) {
    if (tf.magnitude_db(f * M_PI) < target) {
      hi_edge = f;
      break;
    }
  }
  metrics.bandwidth_3db = (hi_edge - lo_edge) * M_PI;
  return metrics;
}

}  // namespace metacore::dsp
