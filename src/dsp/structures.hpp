// Topological realization structures for IIR transfer functions — the
// primary algorithmic degree of freedom of the paper's IIR MetaCore
// (Section 3.4 lists direct form, cascade, parallel, ladder, ...). Each
// structure realizes the same transfer function but differs in multiplies,
// adds, registers, and — critically for the word-length degree of freedom —
// coefficient sensitivity under fixed-point quantization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsp/transfer_function.hpp"

namespace metacore::dsp {

enum class StructureKind : int {
  DirectForm1,
  DirectForm2,
  DirectForm2Transposed,
  Cascade,
  Parallel,
  LatticeLadder,
};

std::string to_string(StructureKind kind);

/// All supported structures, in a stable enumeration order.
std::vector<StructureKind> all_structures();

/// Per-sample hardware-relevant operation counts for a realization.
struct OpCost {
  int multiplies = 0;
  int additions = 0;
  int delays = 0;        ///< state registers
  int coefficients = 0;  ///< distinct coefficient words to store
};

/// A concrete filter realization: streaming simulation plus the metadata
/// the synthesis estimator and the MetaCore search consume.
class Realization {
 public:
  virtual ~Realization() = default;

  virtual StructureKind kind() const = 0;

  /// Processes one input sample (double-precision datapath; coefficient
  /// quantization is applied at construction via `quantized()`).
  virtual double process(double x) = 0;

  virtual void reset() = 0;

  virtual OpCost cost() const = 0;

  /// The transfer function actually implemented — differs from the design
  /// target once coefficients are quantized.
  virtual TransferFunction effective_tf() const = 0;

  /// A copy of this realization with every coefficient rounded to a
  /// fixed-point format of `word_bits` total bits (sign included). Each
  /// coefficient group shares one scaling exponent, as a hardware
  /// implementation would.
  virtual std::unique_ptr<Realization> quantized(int word_bits) const = 0;

  /// Convenience: run a sample stream.
  std::vector<double> process(std::span<const double> samples);
};

/// Builds a realization of `tf` with the given topology. Throws
/// std::invalid_argument for degenerate transfer functions (empty, a[0]=0)
/// and std::runtime_error when a decomposition fails (e.g. parallel form
/// with repeated poles).
///
/// Note: the cascade decomposition must factor the numerator; recovering
/// highly multiple zeros (e.g. the (z+1)^N (z-1)^N of a bilinear-designed
/// bandpass) from expanded coefficients is ill-conditioned. When the
/// pole-zero-gain form is available — as it is for every filter produced by
/// design_filter — prefer the Zpk overload below.
std::unique_ptr<Realization> realize(const TransferFunction& tf,
                                     StructureKind kind);

/// Builds a realization from exact poles/zeros/gain (numerically preferred
/// for cascade forms; other structures convert via the transfer function).
std::unique_ptr<Realization> realize(const Zpk& zpk, StructureKind kind);

/// One second-order section in z^-1 form:
/// (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2).
struct SosSection {
  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// Second-order-section decomposition with the same pairing/gain policy the
/// cascade realization uses (pole pairs matched to nearest zero pairs,
/// gain spread evenly across sections).
std::vector<SosSection> to_sos(const Zpk& zpk);

/// Rounds `value` to `frac_bits` fractional bits (used by the quantizers;
/// exposed for tests).
double quantize_value(double value, int frac_bits);

/// Shared-exponent quantization of a coefficient vector to `word_bits`
/// total bits: the exponent is chosen so the largest magnitude fits.
std::vector<double> quantize_coefficients(const std::vector<double>& coeffs,
                                          int word_bits);

}  // namespace metacore::dsp
