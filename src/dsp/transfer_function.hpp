// Discrete-time transfer functions H(z) = B(z^-1)/A(z^-1): the compact,
// complete description of an IIR filter's functionality (Section 3.4 of the
// paper). Provides frequency-response evaluation, the characteristics the
// paper measures with SPW (gain, 3-dB bandwidth, passband ripple, stopband
// attenuation), and stability checking.
#pragma once

#include <complex>
#include <vector>

#include "dsp/polynomial.hpp"

namespace metacore::dsp {

/// Coefficients in powers of z^-1: b[0] + b[1] z^-1 + ... A(z^-1) is
/// normalized so a[0] == 1.
struct TransferFunction {
  std::vector<double> b;  ///< numerator
  std::vector<double> a;  ///< denominator, a[0] == 1 after normalize()

  int order() const;

  /// Divides through by a[0]. Throws if a is empty or a[0] == 0.
  void normalize();

  /// H(e^{j omega}); omega in radians/sample, [0, pi].
  Complex response(double omega) const;

  double magnitude(double omega) const { return std::abs(response(omega)); }
  double magnitude_db(double omega) const;

  /// All poles strictly inside the unit circle (with `margin` slack).
  bool is_stable(double margin = 1e-9) const;

  std::vector<Complex> poles() const;
  std::vector<Complex> zeros() const;
};

/// Pole-zero-gain form, the native output of analog prototype design.
struct Zpk {
  std::vector<Complex> zeros;
  std::vector<Complex> poles;
  double gain = 1.0;

  TransferFunction to_tf(double tol = 1e-6) const;
  Complex response(Complex z) const;
};

/// Measured characteristics of a filter over a frequency band, mirroring
/// what the paper extracts from SPW simulation runs.
struct BandMetrics {
  double passband_ripple_db = 0.0;     ///< max deviation from unity in band
  double min_passband_gain_db = 0.0;
  double max_stopband_gain_db = 0.0;   ///< worst-case stopband leakage
  double bandwidth_3db = 0.0;          ///< 3-dB bandwidth in rad/sample
};

/// Frequencies are in units of pi rad/sample (the paper's omega/pi
/// convention). Sweeps `grid_points` frequencies per band.
BandMetrics measure_bandpass(const TransferFunction& tf, double pass_lo,
                             double pass_hi, double stop_lo, double stop_hi,
                             int grid_points = 512);

}  // namespace metacore::dsp
