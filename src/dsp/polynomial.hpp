// Real- and complex-coefficient polynomial utilities for filter design:
// multiplication, evaluation, root finding (Durand-Kerner), and
// reconstruction of real polynomials from conjugate-closed root sets.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace metacore::dsp {

using Complex = std::complex<double>;

/// Coefficients are stored lowest power first: p[k] multiplies x^k.
using Poly = std::vector<double>;
using CPoly = std::vector<Complex>;

/// Evaluates a real polynomial at a complex point (Horner).
Complex poly_eval(std::span<const double> coeffs, Complex x);
Complex poly_eval(std::span<const Complex> coeffs, Complex x);

/// Polynomial product.
Poly poly_mul(std::span<const double> a, std::span<const double> b);
CPoly poly_mul(std::span<const Complex> a, std::span<const Complex> b);

/// Builds the monic polynomial with the given roots (complex coefficients).
CPoly poly_from_roots(std::span<const Complex> roots);

/// Builds a real polynomial from a conjugate-closed root multiset, scaled by
/// `gain`. Throws if the imaginary residue exceeds `tol`.
Poly real_poly_from_roots(std::span<const Complex> roots, double gain,
                          double tol = 1e-6);

/// All roots of a polynomial via Durand-Kerner iteration. Leading zero
/// coefficients are trimmed; the zero polynomial is rejected. Degree-0
/// polynomials return no roots.
std::vector<Complex> poly_roots(std::span<const double> coeffs,
                                int max_iterations = 500, double tol = 1e-12);

/// Sorts roots into conjugate pairs (ascending imaginary magnitude, then
/// real part) so pair-wise grouping (e.g. second-order sections) is stable.
void sort_conjugate_pairs(std::vector<Complex>& roots);

}  // namespace metacore::dsp
