// Jacobi elliptic function machinery for elliptic (Cauer) filter design,
// following the Landen-transformation formulation of Orfanidis' classic
// elliptic-design notes: complete elliptic integrals via the descending
// Landen sequence, the normalized sn/cd functions and the inverse sn for
// complex arguments, and the exact degree equation.
#pragma once

#include <complex>
#include <vector>

namespace metacore::dsp {

/// Complete elliptic integral of the first kind K(k), modulus convention
/// (not parameter m = k^2). Valid for 0 <= k < 1.
double ellipk(double k);

/// Descending Landen sequence k_1, k_2, ... starting from k_0 = k, iterated
/// until k_n < tol (typically 5-8 steps for double precision).
std::vector<double> landen_sequence(double k, double tol = 1e-16);

/// cd(u*K(k), k) for normalized complex argument u (in units of the quarter
/// period K).
std::complex<double> cde(std::complex<double> u, double k);

/// sn(u*K(k), k) for normalized complex argument u.
std::complex<double> sne(std::complex<double> u, double k);

/// Inverse of sne: returns normalized u with sne(u, k) == w.
std::complex<double> asne(std::complex<double> w, double k);

/// The elliptic degree equation: given the filter order N and the
/// discrimination factor k1 = eps_p / eps_s, returns the exact selectivity
/// k = Omega_p / Omega_s achievable (Orfanidis eq. 47, solved through the
/// complementary moduli).
double solve_degree_equation(int order, double k1);

/// Minimum order from selectivity k and discrimination k1 (degree equation
/// N >= (K(k)/K'(k)) * (K'(k1)/K(k1))).
int elliptic_min_order(double k, double k1);

}  // namespace metacore::dsp
