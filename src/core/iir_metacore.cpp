#include "core/iir_metacore.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace metacore::core {

namespace {

constexpr int kDimStructure = 0;
constexpr int kDimExtraOrder = 1;
constexpr int kDimWordBits = 2;
constexpr int kDimRippleFraction = 3;
constexpr int kDimFamily = 4;

}  // namespace

IirRequirements paper_bandpass_requirements(double sample_period_us) {
  IirRequirements req;
  req.filter.band = dsp::BandType::Bandpass;
  req.filter.family = dsp::FilterFamily::Elliptic;
  req.filter.pass_lo = 0.411111;
  req.filter.pass_hi = 0.466667;
  req.filter.stop_lo = 0.3487015;
  req.filter.stop_hi = 0.494444;
  req.filter.passband_ripple_db =
      dsp::passband_ripple_db_from_eps(0.015782);
  req.filter.stopband_atten_db =
      dsp::stopband_atten_db_from_eps(0.0157816);
  req.sample_period_us = sample_period_us;
  return req;
}

IirMetaCore::IirMetaCore(IirRequirements requirements)
    : requirements_(requirements) {
  requirements_.filter.validate();
  if (requirements_.sample_period_us <= 0.0) {
    throw std::invalid_argument("IirMetaCore: sample period must be positive");
  }
}

dsp::StructureKind IirMetaCore::structure_at(int index) {
  const auto all = dsp::all_structures();
  if (index < 0 || static_cast<std::size_t>(index) >= all.size()) {
    throw std::invalid_argument("IirMetaCore: structure index out of range");
  }
  return all[static_cast<std::size_t>(index)];
}

search::DesignSpace IirMetaCore::design_space() const {
  using search::Correlation;
  using search::ParameterDef;
  std::vector<ParameterDef> params(5);
  std::vector<double> structures;
  for (std::size_t i = 0; i < dsp::all_structures().size(); ++i) {
    structures.push_back(static_cast<double>(i));
  }
  params[kDimStructure] = {"structure", structures, false,
                           Correlation::NonCorrelated};
  params[kDimExtraOrder] = {"extra_order", {0, 1, 2}, false,
                            Correlation::Monotonic};
  params[kDimWordBits] = {"word_bits",
                          {8, 9, 10, 11, 12, 14, 16, 18, 20, 22, 24},
                          false, Correlation::Monotonic};
  params[kDimRippleFraction] = {"ripple_fraction", {0.4, 0.7, 1.0}, true,
                                Correlation::Smooth};
  // Approximation family: fixed to the requirement's family unless the
  // user opted into exploring it (algorithm selection, [Pot99]).
  params[kDimFamily] = {
      "family",
      requirements_.explore_family
          ? std::vector<double>{0, 1, 2, 3}
          : std::vector<double>{
                static_cast<double>(requirements_.filter.family)},
      false, Correlation::NonCorrelated};
  return search::DesignSpace(std::move(params));
}

search::Objective IirMetaCore::objective() const {
  search::Objective obj;
  obj.minimize = "area_mm2";
  obj.constraints.push_back({search::Constraint::Kind::UpperBound,
                             "passband_ripple_db",
                             requirements_.filter.passband_ripple_db});
  obj.constraints.push_back({search::Constraint::Kind::UpperBound,
                             "stopband_gain_db",
                             -requirements_.filter.stopband_atten_db});
  return obj;
}

const dsp::DesignedFilter& IirMetaCore::designed(dsp::FilterFamily family,
                                                 double ripple_fraction,
                                                 int extra_order) const {
  const int frac_key = static_cast<int>(std::lround(ripple_fraction * 100));
  const auto key =
      std::make_tuple(static_cast<int>(family), frac_key, extra_order);
  auto it = design_cache_.find(key);
  if (it != design_cache_.end()) return it->second;

  dsp::FilterSpec spec = requirements_.filter;
  spec.family = family;
  // Allocate only a fraction of the ripple budget to the nominal design;
  // the remainder absorbs coefficient quantization error.
  spec.passband_ripple_db *= ripple_fraction;
  // Stopband margin scales the same way (extra attenuation designed in).
  spec.stopband_atten_db += -20.0 * std::log10(ripple_fraction);
  dsp::DesignedFilter base = dsp::design_filter(spec);
  if (extra_order > 0) {
    spec.order_override = base.prototype_order + extra_order;
    base = dsp::design_filter(spec);
  }
  return design_cache_.emplace(key, std::move(base)).first->second;
}

search::Evaluation IirMetaCore::evaluate(const std::vector<double>& point,
                                         int fidelity) const {
  if (point.size() != 5) {
    throw std::invalid_argument("IirMetaCore: point must have 5 values");
  }
  const auto structure =
      structure_at(static_cast<int>(std::lround(point[kDimStructure])));
  const int extra_order = static_cast<int>(std::lround(point[kDimExtraOrder]));
  const int word_bits = static_cast<int>(std::lround(point[kDimWordBits]));
  const double ripple_fraction = point[kDimRippleFraction];
  const auto family =
      static_cast<dsp::FilterFamily>(std::lround(point[kDimFamily]));

  search::Evaluation eval;
  const dsp::DesignedFilter* design = nullptr;
  std::unique_ptr<dsp::Realization> quantized;
  try {
    design = &designed(family, ripple_fraction, extra_order);
    const auto realization = dsp::realize(design->zpk, structure);
    quantized = realization->quantized(word_bits);
  } catch (const std::exception&) {
    // Degenerate decomposition (e.g. repeated poles in parallel form) or
    // an unstable lattice conversion: the point is simply infeasible.
    eval.feasible = false;
    return eval;
  }

  const dsp::TransferFunction tf = quantized->effective_tf();
  if (!tf.is_stable()) {
    eval.feasible = false;
    eval.metrics["stable"] = 0.0;
    return eval;
  }
  const int grid = 128 << std::min(fidelity, 4);
  const dsp::BandMetrics metrics = dsp::measure_bandpass(
      tf, requirements_.filter.pass_lo, requirements_.filter.pass_hi,
      requirements_.filter.stop_lo, requirements_.filter.stop_hi, grid);

  synth::IirCostQuery query;
  query.structure = structure;
  query.order = tf.order();
  query.word_bits = word_bits;
  query.sample_period_us = requirements_.sample_period_us;
  query.tech = requirements_.tech;
  const synth::IirCostResult cost = synth::evaluate_iir_cost(query);

  eval.feasible = cost.feasible;
  eval.metrics["stable"] = 1.0;
  eval.metrics["passband_ripple_db"] = metrics.passband_ripple_db;
  eval.metrics["stopband_gain_db"] = metrics.max_stopband_gain_db;
  eval.metrics["bandwidth_3db"] = metrics.bandwidth_3db;
  if (cost.feasible) {
    eval.metrics["area_mm2"] = cost.area_mm2;
    eval.metrics["latency_us"] = cost.latency_us;
    eval.metrics["throughput_period_us"] = cost.throughput_period_us;
    eval.metrics["multipliers"] = cost.allocation.multipliers;
    eval.metrics["alus"] = cost.allocation.alus;
    eval.metrics["registers"] = cost.registers;
  }
  return eval;
}

search::EvaluateFn IirMetaCore::evaluator() const {
  return [this](const std::vector<double>& point, int fidelity) {
    return evaluate(point, fidelity);
  };
}

std::string IirMetaCore::evaluation_fingerprint() const {
  const dsp::FilterSpec& f = requirements_.filter;
  std::ostringstream os;
  os.precision(17);
  os << "iir|band=" << static_cast<int>(f.band)
     << "|family=" << static_cast<int>(f.family) << "|edges=" << f.pass_lo
     << ',' << f.pass_hi << ',' << f.stop_lo << ',' << f.stop_hi
     << "|ripple=" << f.passband_ripple_db << "|atten=" << f.stopband_atten_db
     << "|order=" << f.order_override
     << "|period=" << requirements_.sample_period_us
     << "|tech=" << requirements_.tech.base_feature_um << ','
     << requirements_.tech.feature_um << ','
     << requirements_.tech.base_clock_mhz
     << "|explore=" << requirements_.explore_family;
  return os.str();
}

search::SearchResult IirMetaCore::search(search::SearchConfig config) const {
  if (config.store && config.store_fingerprint.empty()) {
    config.store_fingerprint = evaluation_fingerprint();
  }
  search::MultiresolutionSearch engine(design_space(), objective(),
                                       evaluator(), config);
  return engine.run();
}

}  // namespace metacore::core
