// Reporting helpers: uniform rendering of search results and evaluation
// histories as text tables or CSV, so examples and benchmark harnesses all
// narrate outcomes the same way (and downstream users can feed the CSV to
// their plotting of choice).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "search/multires_search.hpp"
#include "util/table.hpp"

namespace metacore::core {

/// One-paragraph summary of a finished search: evaluations, levels,
/// feasibility, and the winning metrics.
std::string summarize(const search::SearchResult& result,
                      const search::Objective& objective);

/// Table of the best `top_k` evaluated points (by the objective's ordering)
/// with one column per metric in `metric_columns`.
util::TextTable ranking_table(const search::SearchResult& result,
                              const search::Objective& objective,
                              const std::vector<std::string>& metric_columns,
                              std::size_t top_k = 10);

/// Dumps the full evaluation history as CSV: one row per point, columns =
/// design-space parameter names then `metric_columns` (missing metrics
/// render empty). Intended for offline analysis/plotting.
void write_history_csv(std::ostream& os, const search::SearchResult& result,
                       const search::DesignSpace& space,
                       const std::vector<std::string>& metric_columns);

}  // namespace metacore::core
