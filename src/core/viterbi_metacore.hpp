// The Viterbi MetaCore: the paper's primary case study. Wraps the
// 8-dimensional parameter space of Table 2, the coupled BER + area/
// throughput evaluator (software simulation + the Trimaran-substitute cost
// engine), the objective ("minimize area subject to BER and throughput"),
// and the multiresolution search — i.e., everything behind Table 3.
#pragma once

#include <string>

#include "comm/ber.hpp"
#include "cost/viterbi_cost.hpp"
#include "search/multires_search.hpp"

namespace metacore::core {

/// A design request, one row of the paper's Table 3: a BER target at a
/// reference channel point plus a throughput requirement.
struct ViterbiRequirements {
  double target_ber = 1e-4;
  double esn0_db = 1.0;          ///< channel point the BER target refers to
  double throughput_mbps = 1.0;
  cost::TechnologyParams tech{};
  /// The paper fixes G (generator polynomial) and N (normalization) "to
  /// speed up the search process"; unfixing them widens the space.
  bool fix_polynomial = true;
  bool fix_normalization = true;
  /// Monte-Carlo BER shards per evaluation (see BerRunConfig::shards).
  /// Part of the measurement definition, not a tuning knob: results are
  /// bit-identical at any thread count for a fixed shard count. 1 restores
  /// the single-stream measurement.
  int ber_shards = 8;
  /// SIMD lane cap for grouping those shards into frame-parallel decoders
  /// (see BerRunConfig::lanes; 0 = auto). Unlike ber_shards this is pure
  /// throughput — it never changes the measurement, so it is deliberately
  /// excluded from the evaluation fingerprint and stored results stay
  /// valid across lane settings.
  int ber_lanes = 0;
};

class ViterbiMetaCore {
 public:
  /// `ber_base` is the fidelity-0 screening budget; pass {} to derive it
  /// from the BER target via recommended_ber_config().
  explicit ViterbiMetaCore(ViterbiRequirements requirements,
                           comm::BerRunConfig ber_base);
  explicit ViterbiMetaCore(ViterbiRequirements requirements);

  /// Screening-run simulation budget scaled to the target: roughly 20
  /// expected errors at the target BER, with early termination for clearly
  /// failing points.
  static comm::BerRunConfig recommended_ber_config(double target_ber);

  const ViterbiRequirements& requirements() const { return requirements_; }

  /// The solution space of Table 2: K, L/K, G, R1, R2, Q, N, M (M encoded
  /// as a fraction of the 2^(K-1) states so one axis serves every K).
  search::DesignSpace design_space() const;

  search::Objective objective() const;

  /// Maps a design-space point to a concrete decoder specification.
  /// Degenerate combinations are repaired deterministically (R2 := max(R1,
  /// R2); N := min(N, M)) so every point is evaluable.
  comm::DecoderSpec decode_point(const std::vector<double>& point) const;

  /// Full evaluation: Monte-Carlo BER at the requirement's channel point
  /// (simulation length scales 4x per fidelity level) plus the cheapest
  /// feasible hardware implementation. Metrics: "ber", "area_mm2",
  /// "cycles_per_bit", "required_clock_mhz", "cores".
  search::Evaluation evaluate(const std::vector<double>& point,
                              int fidelity) const;

  search::EvaluateFn evaluator() const;

  /// Stable content fingerprint of this metacore's evaluator: the
  /// requirements, the design-space shape they induce, and the BER
  /// measurement definition. Two ViterbiMetaCores with equal fingerprints
  /// produce bit-identical evaluations for every (point, fidelity), so the
  /// fingerprint is the persistence scope of serve::EvaluationStore
  /// entries and Pareto archives (the design-query service's entry point
  /// into this metacore).
  std::string evaluation_fingerprint() const;

  /// Runs the multiresolution search with Viterbi-appropriate defaults
  /// (BER as the Bayesian-guarded probabilistic metric). When
  /// `config.store` is set and `config.store_fingerprint` is empty, the
  /// fingerprint is filled in from evaluation_fingerprint() and the
  /// verification pass shares the store — a warm store answers repeat
  /// searches with near-zero evaluator calls.
  search::SearchResult search(search::SearchConfig config = {}) const;

 private:
  ViterbiRequirements requirements_;
  comm::BerRunConfig ber_base_;
};

/// Human-readable one-line summary of a decoder spec + area, in the format
/// of the paper's Table 3 rows.
std::string describe(const comm::DecoderSpec& spec, double area_mm2);

}  // namespace metacore::core
