#include "core/viterbi_metacore.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace metacore::core {

namespace {

using comm::DecoderKind;
using comm::DecoderSpec;
using comm::QuantizationMethod;

constexpr int kDimK = 0;
constexpr int kDimLMult = 1;
constexpr int kDimG = 2;
constexpr int kDimR1 = 3;
constexpr int kDimR2 = 4;
constexpr int kDimQ = 5;
constexpr int kDimN = 6;
constexpr int kDimMFrac = 7;

}  // namespace

ViterbiMetaCore::ViterbiMetaCore(ViterbiRequirements requirements,
                                 comm::BerRunConfig ber_base)
    : requirements_(requirements), ber_base_(ber_base) {
  if (requirements_.target_ber <= 0.0 || requirements_.target_ber >= 1.0) {
    throw std::invalid_argument("ViterbiMetaCore: BER target out of (0, 1)");
  }
  if (requirements_.throughput_mbps <= 0.0) {
    throw std::invalid_argument("ViterbiMetaCore: throughput must be positive");
  }
}

ViterbiMetaCore::ViterbiMetaCore(ViterbiRequirements requirements)
    : ViterbiMetaCore(requirements,
                      recommended_ber_config(requirements.target_ber)) {}

comm::BerRunConfig ViterbiMetaCore::recommended_ber_config(double target_ber) {
  comm::BerRunConfig cfg;
  const double wanted = 20.0 / std::max(target_ber, 1e-9);
  cfg.max_bits = static_cast<std::uint64_t>(
      std::clamp(wanted, 10'000.0, 400'000.0));
  cfg.min_bits = 8'000;
  // A point that is clearly failing accumulates errors fast and stops early.
  cfg.max_errors = 100;
  return cfg;
}

search::DesignSpace ViterbiMetaCore::design_space() const {
  using search::Correlation;
  using search::ParameterDef;
  std::vector<ParameterDef> params(8);
  params[kDimK] = {"K", {3, 4, 5, 6, 7, 8, 9}, false, Correlation::Monotonic};
  params[kDimLMult] = {"L_mult", {2, 3, 4, 5, 6, 7}, false,
                       Correlation::Smooth};
  params[kDimG] = {"G",
                   requirements_.fix_polynomial
                       ? std::vector<double>{0}
                       : std::vector<double>{0, 1},
                   false, Correlation::NonCorrelated};
  params[kDimR1] = {"R1", {1, 2, 3}, false, Correlation::Monotonic};
  params[kDimR2] = {"R2", {2, 3, 4, 5}, false, Correlation::Monotonic};
  params[kDimQ] = {"Q", {0, 1}, false, Correlation::NonCorrelated};
  params[kDimN] = {"N",
                   requirements_.fix_normalization
                       ? std::vector<double>{1}
                       : std::vector<double>{1, 2, 3, 4},
                   false, Correlation::Smooth};
  params[kDimMFrac] = {"M_frac", {0.0, 0.125, 0.25, 0.5, 1.0}, false,
                       Correlation::Monotonic};
  return search::DesignSpace(std::move(params));
}

DecoderSpec ViterbiMetaCore::decode_point(
    const std::vector<double>& point) const {
  if (point.size() != 8) {
    throw std::invalid_argument("ViterbiMetaCore: point must have 8 values");
  }
  const int k = static_cast<int>(std::lround(point[kDimK]));
  const int l_mult = static_cast<int>(std::lround(point[kDimLMult]));
  const int g_variant = static_cast<int>(std::lround(point[kDimG]));
  const int r1 = static_cast<int>(std::lround(point[kDimR1]));
  int r2 = static_cast<int>(std::lround(point[kDimR2]));
  const int q = static_cast<int>(std::lround(point[kDimQ]));
  int n_norm = static_cast<int>(std::lround(point[kDimN]));
  const double m_frac = point[kDimMFrac];

  DecoderSpec spec;
  const auto candidates = comm::candidate_rate_half_codes(k);
  spec.code = candidates[static_cast<std::size_t>(
      std::min<int>(g_variant, static_cast<int>(candidates.size()) - 1))];
  spec.traceback_depth = l_mult * k;
  spec.quantization =
      q == 0 ? QuantizationMethod::FixedSoft : QuantizationMethod::AdaptiveSoft;

  if (m_frac <= 0.0) {
    // Single-resolution decoding at R1 bits.
    if (r1 <= 1) {
      spec.kind = DecoderKind::Hard;
    } else {
      spec.kind = DecoderKind::Soft;
      spec.high_res_bits = r1;
    }
  } else {
    spec.kind = DecoderKind::Multires;
    spec.low_res_bits = r1;
    spec.high_res_bits = std::max(r1, r2);
    const int states = spec.code.num_states();
    spec.num_high_res_paths = std::clamp(
        static_cast<int>(std::lround(m_frac * states)), 1, states);
    spec.normalization_terms = std::clamp(n_norm, 1, spec.num_high_res_paths);
  }
  return spec;
}

search::Objective ViterbiMetaCore::objective() const {
  search::Objective obj;
  obj.minimize = "area_mm2";
  obj.constraints.push_back({search::Constraint::Kind::UpperBound, "ber",
                             requirements_.target_ber});
  return obj;
}

search::Evaluation ViterbiMetaCore::evaluate(const std::vector<double>& point,
                                             int fidelity) const {
  const DecoderSpec spec = decode_point(point);

  comm::BerRunConfig ber_cfg = ber_base_;
  // Decision-directed simulation: points clearly passing or failing the
  // requirement stop as soon as the confidence interval separates.
  if (ber_cfg.decision_ber == 0.0) {
    ber_cfg.decision_ber = requirements_.target_ber;
  }
  if (ber_cfg.shards == 1) {
    ber_cfg.shards = std::max(1, requirements_.ber_shards);
  }
  // Lane cap is throughput-only (lane-invariant results), so it rides along
  // unconditionally and stays out of evaluation_fingerprint().
  ber_cfg.lanes = std::max(0, requirements_.ber_lanes);
  const double scale = std::pow(4.0, std::max(0, fidelity));
  // The 2M-bit ceiling keeps even the deepest verification runs tractable.
  ber_cfg.max_bits = static_cast<std::uint64_t>(
      std::min(ber_cfg.max_bits * scale, 2'000'000.0));
  ber_cfg.min_bits = static_cast<std::uint64_t>(
      std::min(ber_cfg.min_bits * scale, 500'000.0));
  const comm::BerPoint ber =
      comm::measure_ber(spec, requirements_.esn0_db, ber_cfg);

  cost::ViterbiCostQuery query;
  query.spec = spec;
  query.throughput_mbps = requirements_.throughput_mbps;
  query.tech = requirements_.tech;
  const cost::ViterbiCostResult cost = cost::evaluate_viterbi_cost(query);

  search::Evaluation eval;
  eval.feasible = cost.feasible;
  eval.confidence_weight = static_cast<double>(ber.errors.trials);
  // Certified BER: a finite simulation can only demonstrate rates down to
  // ~3/trials (the rule of three) — without this floor a short zero-error
  // run would "certify" any target, including the paper's infeasible
  // 1e-9 row.
  const double floor_ber =
      3.0 / static_cast<double>(std::max<std::uint64_t>(ber.errors.trials, 1));
  eval.metrics["ber"] = std::max(ber.ber(), floor_ber);
  eval.metrics["ber_observed"] = ber.ber();
  if (cost.feasible) {
    eval.metrics["area_mm2"] = cost.area_mm2;
    eval.metrics["cycles_per_bit"] = cost.cycles_per_bit;
    eval.metrics["required_clock_mhz"] = cost.required_clock_mhz;
    eval.metrics["cores"] = cost.cores;
    eval.metrics["datapath_bits"] = cost.datapath_bits;
  }
  return eval;
}

search::EvaluateFn ViterbiMetaCore::evaluator() const {
  return [this](const std::vector<double>& point, int fidelity) {
    return evaluate(point, fidelity);
  };
}

std::string ViterbiMetaCore::evaluation_fingerprint() const {
  std::ostringstream os;
  os.precision(17);
  os << "viterbi|ber=" << requirements_.target_ber
     << "|esn0=" << requirements_.esn0_db
     << "|mbps=" << requirements_.throughput_mbps
     << "|fixG=" << requirements_.fix_polynomial
     << "|fixN=" << requirements_.fix_normalization
     << "|shards=" << requirements_.ber_shards
     << "|tech=" << requirements_.tech.base_feature_um << ','
     << requirements_.tech.feature_um << ','
     << requirements_.tech.base_clock_mhz
     << "|sim=" << ber_base_.max_bits << ',' << ber_base_.min_bits << ','
     << ber_base_.max_errors << ',' << ber_base_.seed << ','
     << ber_base_.decision_ber << ',' << ber_base_.shards;
  return os.str();
}

search::SearchResult ViterbiMetaCore::search(
    search::SearchConfig config) const {
  config.probabilistic_metric = "ber";
  if (config.store && config.store_fingerprint.empty()) {
    config.store_fingerprint = evaluation_fingerprint();
  }
  search::MultiresolutionSearch engine(design_space(), objective(),
                                       evaluator(), config);
  search::SearchResult result = engine.run();
  // Final pass at one fidelity level above the deepest search level: the
  // BER estimates that picked the winner are noisy, so the few surviving
  // candidates get the long-simulation treatment before selection.
  return search::verify_top_candidates(std::move(result), design_space(),
                                       objective(), evaluator(), 5,
                                       config.max_resolution + 1,
                                       config.store.get(),
                                       config.store_fingerprint);
}

std::string describe(const comm::DecoderSpec& spec, double area_mm2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " area=%.2f mm^2", area_mm2);
  return spec.label() + " G=" + spec.code.generators_octal() + buf;
}

}  // namespace metacore::core
