#include "core/report.hpp"

#include <algorithm>

namespace metacore::core {

namespace {

/// Failure accounting suffix for summarize(); empty when nothing failed.
std::string failure_summary(const robust::FailureCounters& f) {
  if (f.total_faults() == 0) return "";
  std::string out = "; faults: " + std::to_string(f.failed_evaluations) +
                    " failed evaluation(s) (" +
                    std::to_string(f.invalid_point) + " invalid-point, " +
                    std::to_string(f.non_convergence) + " non-convergence, " +
                    std::to_string(f.non_finite) + " non-finite-metric)";
  if (f.transient_faults > 0) {
    out += ", " + std::to_string(f.transient_faults) +
           " transient fault(s), " + std::to_string(f.retries) +
           " retried, " + std::to_string(f.recovered) + " recovered";
  }
  return out;
}

}  // namespace

std::string summarize(const search::SearchResult& result,
                      const search::Objective& objective) {
  std::string out = "search: " + std::to_string(result.evaluations) +
                    " evaluations, " + std::to_string(result.levels_executed) +
                    " resolution level(s), " +
                    std::to_string(result.history.size()) + " distinct points";
  if (result.cache_hits > 0) {
    out += ", " + std::to_string(result.cache_hits) + " cache hit(s)";
  }
  if (result.store_hits > 0) {
    out += ", " + std::to_string(result.store_hits) + " store hit(s)";
  }
  if (result.divergent_duplicates > 0) {
    out += ", " + std::to_string(result.divergent_duplicates) +
           " DIVERGENT store duplicate(s)";
  }
  out += "; ";
  if (!result.found_feasible) {
    return out + "no feasible design found" +
           failure_summary(result.failures);
  }
  out += "best";
  if (!objective.minimize.empty() &&
      result.best.eval.has_metric(objective.minimize)) {
    out += " " + objective.minimize + " = " +
           util::format_double(result.best.eval.metric(objective.minimize), 3);
  }
  for (const auto& c : objective.constraints) {
    if (result.best.eval.has_metric(c.metric)) {
      out += ", " + c.metric + " = " +
             util::format_scientific(result.best.eval.metric(c.metric), 2);
    }
  }
  return out + failure_summary(result.failures);
}

util::TextTable ranking_table(const search::SearchResult& result,
                              const search::Objective& objective,
                              const std::vector<std::string>& metric_columns,
                              std::size_t top_k) {
  std::vector<const search::EvaluatedPoint*> ranked;
  ranked.reserve(result.history.size());
  for (const auto& p : result.history) ranked.push_back(&p);
  std::sort(ranked.begin(), ranked.end(),
            [&](const search::EvaluatedPoint* a,
                const search::EvaluatedPoint* b) {
              return objective.better(a->eval, b->eval);
            });

  std::vector<std::string> headers{"rank", "point"};
  headers.insert(headers.end(), metric_columns.begin(), metric_columns.end());
  util::TextTable table(std::move(headers));
  for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    std::string point = "(";
    for (std::size_t d = 0; d < ranked[i]->values.size(); ++d) {
      if (d) point += ", ";
      point += util::format_double(ranked[i]->values[d], 3);
    }
    point += ")";
    row.push_back(std::move(point));
    for (const auto& metric : metric_columns) {
      row.push_back(ranked[i]->eval.has_metric(metric)
                        ? util::format_scientific(
                              ranked[i]->eval.metric(metric), 3)
                        : "");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void write_history_csv(std::ostream& os, const search::SearchResult& result,
                       const search::DesignSpace& space,
                       const std::vector<std::string>& metric_columns) {
  for (std::size_t d = 0; d < space.dimensions(); ++d) {
    if (d) os << ',';
    os << space.parameters()[d].name;
  }
  for (const auto& metric : metric_columns) os << ',' << metric;
  os << ",feasible\n";
  for (const auto& p : result.history) {
    for (std::size_t d = 0; d < p.values.size(); ++d) {
      if (d) os << ',';
      os << p.values[d];
    }
    for (const auto& metric : metric_columns) {
      os << ',';
      if (p.eval.has_metric(metric)) os << p.eval.metric(metric);
    }
    os << ',' << (p.eval.feasible ? 1 : 0) << '\n';
  }
}

}  // namespace metacore::core
