// The IIR MetaCore: the paper's validation example (Sections 4.5 and 5.3).
// Degrees of freedom: topological structure, number of stages (prototype
// order above the minimum), word length, and the passband-ripple allocation
// between design margin and quantization margin. Performance is measured
// from the (quantized-coefficient) frequency response; area/throughput/
// latency come from the HYPER-substitute synthesis estimator.
#pragma once

#include <map>
#include <string>

#include "dsp/design.hpp"
#include "dsp/structures.hpp"
#include "search/multires_search.hpp"
#include "synth/area.hpp"

namespace metacore::core {

struct IirRequirements {
  dsp::FilterSpec filter{};        ///< band edges + ripple/attenuation spec
  double sample_period_us = 1.0;   ///< required throughput (Table 4 axis)
  cost::TechnologyParams tech = synth::hyper_era_technology();
  /// When true, the approximation family (Butterworth/Chebyshev/elliptic)
  /// becomes a search dimension — algorithm selection in the sense of
  /// [Pot99], which the paper cites as the closest prior approach. When
  /// false (default, matching Section 5.3) the family in `filter` is fixed.
  bool explore_family = false;
};

/// The paper's Section 5.3 bandpass specification.
IirRequirements paper_bandpass_requirements(double sample_period_us);

class IirMetaCore {
 public:
  explicit IirMetaCore(IirRequirements requirements);

  const IirRequirements& requirements() const { return requirements_; }

  /// Dimensions: structure (enumeration), extra stages (prototype order
  /// above minimum), word length, ripple design fraction, and the
  /// approximation family (a singleton unless explore_family is set).
  search::DesignSpace design_space() const;

  search::Objective objective() const;

  search::Evaluation evaluate(const std::vector<double>& point,
                              int fidelity) const;

  search::EvaluateFn evaluator() const;

  /// Stable content fingerprint of this metacore's evaluator (filter spec,
  /// throughput requirement, technology, family exploration) — the
  /// persistence scope for serve::EvaluationStore entries and Pareto
  /// archives; see ViterbiMetaCore::evaluation_fingerprint.
  std::string evaluation_fingerprint() const;

  /// When `config.store` is set and `config.store_fingerprint` is empty,
  /// the fingerprint is filled in from evaluation_fingerprint().
  search::SearchResult search(search::SearchConfig config = {}) const;

  /// The structure encoded at design-space position `index`.
  static dsp::StructureKind structure_at(int index);

 private:
  /// Designs (and caches) the filter for a (family, ripple fraction, extra
  /// order) combination; shared by every structure/word-length evaluation.
  const dsp::DesignedFilter& designed(dsp::FilterFamily family,
                                      double ripple_fraction,
                                      int extra_order) const;

  IirRequirements requirements_;
  mutable std::map<std::tuple<int, int, int>, dsp::DesignedFilter>
      design_cache_;
};

}  // namespace metacore::core
