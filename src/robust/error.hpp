// Error taxonomy for cost-engine evaluations. The engines fail in a small
// number of recognizable ways — degenerate corners of the design space throw
// std::invalid_argument/std::domain_error from validation, the VLIW and
// synthesis list schedulers throw std::logic_error on non-convergence, and
// fault injection produces deliberately transient errors — and the search
// treats each kind differently (retry vs quarantine vs record-and-skip).
#pragma once

#include <stdexcept>
#include <string>

namespace metacore::robust {

enum class EvalErrorKind {
  InvalidPoint,       ///< degenerate design point rejected by validation
  NonConvergence,     ///< an iterative engine exceeded its iteration bound
  NonFiniteMetric,    ///< the evaluation produced NaN/Inf metrics
  InjectedTransient,  ///< deliberately injected transient fault (tests/ablations)
};

/// Stable kebab-case names, used in failure reasons and checkpoints.
const char* to_string(EvalErrorKind kind) noexcept;

/// Only transient kinds are worth retrying: the engines are deterministic,
/// so a genuine invalid-point or non-convergence failure repeats verbatim
/// on every attempt.
constexpr bool is_transient(EvalErrorKind kind) noexcept {
  return kind == EvalErrorKind::InjectedTransient;
}

/// A classified evaluation failure.
struct EvalError {
  EvalErrorKind kind = EvalErrorKind::NonConvergence;
  std::string message;
};

/// Exception that carries its own classification. Thrown by fault injectors
/// and available to evaluators that know their failure kind precisely.
class EvalException : public std::runtime_error {
 public:
  EvalException(EvalErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  EvalErrorKind kind() const noexcept { return kind_; }

 private:
  EvalErrorKind kind_;
};

/// Classifies the exception currently being handled (call from inside a
/// catch block). EvalException reports its own kind; validation errors
/// (std::invalid_argument, std::domain_error, std::out_of_range) and other
/// std::runtime_errors — the engines use those for degenerate inputs like
/// unstable transfer functions — map to InvalidPoint; std::logic_error (the
/// schedulers' non-convergence guards) maps to NonConvergence, as does any
/// unrecognized exception.
EvalError classify_current_exception();

}  // namespace metacore::robust
