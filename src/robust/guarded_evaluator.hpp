// GuardedEvaluator: wraps any search::EvaluateFn so that evaluation
// failures become data instead of aborting the caller. Thrown exceptions
// are classified (robust/error.hpp), transient faults are retried with a
// bounded, deterministic policy (immediate re-invocation — no wall-clock
// backoff, so results are bit-identical at any thread count), NaN/Inf
// metrics are quarantined, and terminal failures are converted into
// infeasible Evaluations with a recorded failure reason.
#pragma once

#include <memory>
#include <vector>

#include "robust/counters.hpp"
#include "search/objective.hpp"

namespace metacore::robust {

/// Bounded deterministic retry for transient faults. Attempts are issued
/// immediately (the evaluators are CPU-bound simulations, not flaky I/O);
/// the attempt number is published via current_attempt() so deterministic
/// fault injectors can key per-attempt counter-RNG draws on it.
struct RetryPolicy {
  /// Total attempts per evaluation, including the first (>= 1). Transient
  /// faults beyond the last attempt become terminal failures.
  int max_attempts = 3;
};

/// Zero-based attempt number of the guarded evaluation currently running on
/// this thread (0 on the first attempt and outside guarded evaluations).
int current_attempt() noexcept;

class GuardedEvaluator {
 public:
  /// Throws std::invalid_argument on a null evaluator or max_attempts < 1.
  explicit GuardedEvaluator(search::EvaluateFn inner, RetryPolicy policy = {});

  /// Evaluates `point`, absorbing failures. Never throws evaluator errors:
  /// terminal failures return an infeasible Evaluation whose failure_reason
  /// records "<kind>: <message>"; non-finite metric values are erased from
  /// the result (so downstream predictors cannot be poisoned) and the
  /// evaluation is marked infeasible. Safe to call concurrently; the
  /// counters are shared atomics.
  search::Evaluation operator()(const std::vector<double>& point,
                                int fidelity) const;

  /// The guard as an EvaluateFn (shares this instance's counter state).
  search::EvaluateFn fn() const;

  /// Snapshot of the failure counters accumulated so far.
  FailureCounters counters() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
  search::EvaluateFn inner_;
  RetryPolicy policy_;
};

}  // namespace metacore::robust
