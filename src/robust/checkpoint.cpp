#include "robust/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace metacore::robust {

namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "nan";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "inf" : "-inf");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

void write_record(std::ostream& os, const CheckpointRecord& rec) {
  os << "{\"indices\":[";
  for (std::size_t d = 0; d < rec.indices.size(); ++d) {
    if (d) os << ',';
    os << rec.indices[d];
  }
  os << "],\"fidelity\":" << rec.fidelity
     << ",\"feasible\":" << (rec.eval.feasible ? "true" : "false")
     << ",\"confidence_weight\":";
  write_double(os, rec.eval.confidence_weight);
  os << ",\"failure_reason\":";
  write_escaped(os, rec.eval.failure_reason);
  os << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : rec.eval.metrics) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':';
    write_double(os, value);
  }
  os << "}}";
}

// ---------------------------------------------------------------------------
// Parser: a minimal recursive-descent JSON reader covering the checkpoint
// schema (objects, arrays, strings, numbers incl. inf/nan tokens, booleans).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("checkpoint: parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_token(const char* token) {
    const std::size_t len = std::char_traits<char>::length(token);
    if (text_.compare(pos_, len, token) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      default: break;
    }
    JsonValue v;
    if (consume_token("true")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_token("false")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = false;
      return v;
    }
    if (consume_token("null")) return v;
    // Number, including the writer's non-finite tokens.
    v.type = JsonValue::Type::Number;
    if (consume_token("nan")) {
      v.number = std::nan("");
      return v;
    }
    if (consume_token("inf")) {
      v.number = HUGE_VAL;
      return v;
    }
    if (consume_token("-inf")) {
      v.number = -HUGE_VAL;
      return v;
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    v.number = std::strtod(start, &end);
    if (end == start) fail("malformed value");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only escapes control characters, so a single byte
          // suffices; reject anything wider rather than mis-decode it.
          if (code > 0x7F) fail("unsupported \\u escape above 0x7F");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw std::runtime_error("checkpoint: missing field \"" + key + "\"");
  }
  if (v->type != type) {
    throw std::runtime_error("checkpoint: field \"" + key +
                             "\" has the wrong type");
  }
  return *v;
}

std::size_t require_count(const JsonValue& obj, const std::string& key) {
  const double n = require(obj, key, JsonValue::Type::Number).number;
  if (!(n >= 0.0) || n != std::floor(n)) {
    throw std::runtime_error("checkpoint: field \"" + key +
                             "\" is not a non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

CheckpointRecord parse_record(const JsonValue& obj) {
  if (obj.type != JsonValue::Type::Object) {
    throw std::runtime_error("checkpoint: journal entry is not an object");
  }
  CheckpointRecord rec;
  const JsonValue& indices = require(obj, "indices", JsonValue::Type::Array);
  rec.indices.reserve(indices.array.size());
  for (const JsonValue& idx : indices.array) {
    if (idx.type != JsonValue::Type::Number) {
      throw std::runtime_error("checkpoint: non-numeric grid index");
    }
    rec.indices.push_back(static_cast<int>(std::llround(idx.number)));
  }
  rec.fidelity = static_cast<int>(
      std::llround(require(obj, "fidelity", JsonValue::Type::Number).number));
  rec.eval.feasible = require(obj, "feasible", JsonValue::Type::Bool).boolean;
  rec.eval.confidence_weight =
      require(obj, "confidence_weight", JsonValue::Type::Number).number;
  rec.eval.failure_reason =
      require(obj, "failure_reason", JsonValue::Type::String).string;
  const JsonValue& metrics = require(obj, "metrics", JsonValue::Type::Object);
  for (const auto& [name, value] : metrics.object) {
    if (value.type != JsonValue::Type::Number) {
      throw std::runtime_error("checkpoint: non-numeric metric \"" + name +
                               "\"");
    }
    rec.eval.metrics[name] = value.number;
  }
  return rec;
}

constexpr const char* kMagic = "metacore-search-checkpoint";

}  // namespace

void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("checkpoint: cannot open " + tmp +
                               " for writing");
    }
    os << "{\n\"magic\":\"" << kMagic << "\",\n"
       << "\"version\":" << checkpoint.version << ",\n"
       << "\"dimensions\":" << checkpoint.dimensions << ",\n"
       << "\"probabilistic_metric\":";
    write_escaped(os, checkpoint.probabilistic_metric);
    os << ",\n\"fingerprint\":{";
    bool first = true;
    for (const auto& [key, value] : checkpoint.fingerprint) {
      if (!first) os << ',';
      first = false;
      write_escaped(os, key);
      os << ':';
      write_double(os, value);
    }
    os << "},\n\"counters\":{"
       << "\"invalid_point\":" << checkpoint.failures.invalid_point
       << ",\"non_convergence\":" << checkpoint.failures.non_convergence
       << ",\"non_finite\":" << checkpoint.failures.non_finite
       << ",\"transient_faults\":" << checkpoint.failures.transient_faults
       << ",\"retries\":" << checkpoint.failures.retries
       << ",\"recovered\":" << checkpoint.failures.recovered
       << ",\"failed_evaluations\":" << checkpoint.failures.failed_evaluations
       << "},\n\"journal\":[";
    for (std::size_t i = 0; i < checkpoint.journal.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n");
      write_record(os, checkpoint.journal[i]);
    }
    os << "\n]}\n";
    os.flush();
    if (!os) {
      throw std::runtime_error("checkpoint: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename " + tmp + " -> " + path +
                             " failed");
  }
}

SearchCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const JsonValue root = Parser(text).parse();
  if (root.type != JsonValue::Type::Object) {
    throw std::runtime_error("checkpoint: document is not an object");
  }
  if (require(root, "magic", JsonValue::Type::String).string != kMagic) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not a metacore search checkpoint");
  }
  SearchCheckpoint cp;
  cp.version = static_cast<int>(
      std::llround(require(root, "version", JsonValue::Type::Number).number));
  if (cp.version != kCheckpointVersion) {
    throw std::runtime_error(
        "checkpoint: unsupported version " + std::to_string(cp.version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        ")");
  }
  cp.dimensions = require_count(root, "dimensions");
  cp.probabilistic_metric =
      require(root, "probabilistic_metric", JsonValue::Type::String).string;
  const JsonValue& fp = require(root, "fingerprint", JsonValue::Type::Object);
  for (const auto& [key, value] : fp.object) {
    if (value.type != JsonValue::Type::Number) {
      throw std::runtime_error("checkpoint: non-numeric fingerprint entry \"" +
                               key + "\"");
    }
    cp.fingerprint[key] = value.number;
  }
  const JsonValue& counters =
      require(root, "counters", JsonValue::Type::Object);
  cp.failures.invalid_point = require_count(counters, "invalid_point");
  cp.failures.non_convergence = require_count(counters, "non_convergence");
  cp.failures.non_finite = require_count(counters, "non_finite");
  cp.failures.transient_faults = require_count(counters, "transient_faults");
  cp.failures.retries = require_count(counters, "retries");
  cp.failures.recovered = require_count(counters, "recovered");
  cp.failures.failed_evaluations =
      require_count(counters, "failed_evaluations");
  const JsonValue& journal = require(root, "journal", JsonValue::Type::Array);
  cp.journal.reserve(journal.array.size());
  for (const JsonValue& entry : journal.array) {
    cp.journal.push_back(parse_record(entry));
  }
  return cp;
}

bool checkpoint_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace metacore::robust
