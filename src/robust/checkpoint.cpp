#include "robust/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "robust/journal.hpp"
#include "robust/json.hpp"

namespace metacore::robust {

namespace {

constexpr const char* kMagic = "metacore-search-checkpoint";
constexpr const char* kWhat = "checkpoint";

}  // namespace

void write_eval_record(std::ostream& os, const CheckpointRecord& rec) {
  os << "{\"indices\":[";
  for (std::size_t d = 0; d < rec.indices.size(); ++d) {
    if (d) os << ',';
    os << rec.indices[d];
  }
  os << "],\"fidelity\":" << rec.fidelity
     << ",\"feasible\":" << (rec.eval.feasible ? "true" : "false")
     << ",\"confidence_weight\":";
  write_double(os, rec.eval.confidence_weight);
  os << ",\"failure_reason\":";
  write_escaped(os, rec.eval.failure_reason);
  os << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : rec.eval.metrics) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':';
    write_double(os, value);
  }
  os << "}}";
}

CheckpointRecord parse_eval_record(const JsonValue& obj,
                                   const std::string& what) {
  if (obj.type != JsonValue::Type::Object) {
    throw std::runtime_error(what + ": evaluation record is not an object");
  }
  CheckpointRecord rec;
  const JsonValue& indices =
      require(obj, "indices", JsonValue::Type::Array, what);
  rec.indices.reserve(indices.array.size());
  for (const JsonValue& idx : indices.array) {
    if (idx.type != JsonValue::Type::Number) {
      throw std::runtime_error(what + ": non-numeric grid index");
    }
    rec.indices.push_back(static_cast<int>(std::llround(idx.number)));
  }
  rec.fidelity = static_cast<int>(std::llround(
      require(obj, "fidelity", JsonValue::Type::Number, what).number));
  rec.eval.feasible =
      require(obj, "feasible", JsonValue::Type::Bool, what).boolean;
  rec.eval.confidence_weight =
      require(obj, "confidence_weight", JsonValue::Type::Number, what).number;
  rec.eval.failure_reason =
      require(obj, "failure_reason", JsonValue::Type::String, what).string;
  const JsonValue& metrics =
      require(obj, "metrics", JsonValue::Type::Object, what);
  for (const auto& [name, value] : metrics.object) {
    if (value.type != JsonValue::Type::Number) {
      throw std::runtime_error(what + ": non-numeric metric \"" + name +
                               "\"");
    }
    rec.eval.metrics[name] = value.number;
  }
  return rec;
}

void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint) {
  std::ostringstream os;
  {
    os << "{\n\"magic\":\"" << kMagic << "\",\n"
       << "\"version\":" << checkpoint.version << ",\n"
       << "\"dimensions\":" << checkpoint.dimensions << ",\n"
       << "\"probabilistic_metric\":";
    write_escaped(os, checkpoint.probabilistic_metric);
    os << ",\n\"fingerprint\":{";
    bool first = true;
    for (const auto& [key, value] : checkpoint.fingerprint) {
      if (!first) os << ',';
      first = false;
      write_escaped(os, key);
      os << ':';
      write_double(os, value);
    }
    os << "},\n\"counters\":{"
       << "\"invalid_point\":" << checkpoint.failures.invalid_point
       << ",\"non_convergence\":" << checkpoint.failures.non_convergence
       << ",\"non_finite\":" << checkpoint.failures.non_finite
       << ",\"transient_faults\":" << checkpoint.failures.transient_faults
       << ",\"retries\":" << checkpoint.failures.retries
       << ",\"recovered\":" << checkpoint.failures.recovered
       << ",\"failed_evaluations\":" << checkpoint.failures.failed_evaluations
       << "},\n\"journal\":[";
    for (std::size_t i = 0; i < checkpoint.journal.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n");
      write_eval_record(os, checkpoint.journal[i]);
    }
    os << "\n]}\n";
  }

  // The checkpoint document travels as one CRC32C-guarded journal frame,
  // published with a durable atomic replace (tmp + fsync + rename): a kill
  // at any byte of the flush leaves either the previous complete
  // checkpoint or the new one — never a truncated or torn file that the
  // fingerprint check would then reject, forcing a full restart.
  const std::string doc = os.str();
  std::string contents =
      journal_header_line(JournalHeader{kMagic, kCheckpointVersion});
  contents += frame_record(doc);
  atomic_replace_file(path, contents, DurabilityConfig::from_env(),
                      "checkpoint", kWhat);
}

SearchCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::string doc;
  if (looks_like_journal(text)) {
    const JournalReadResult framed = read_journal_text(text, kWhat);
    if (framed.header.kind != kMagic) {
      throw std::runtime_error("checkpoint: " + path +
                               " is not a metacore search checkpoint");
    }
    if (framed.header.kind_version != kCheckpointVersion) {
      throw std::runtime_error(
          "checkpoint: unsupported version " +
          std::to_string(framed.header.kind_version) +
          " (this build reads version " + std::to_string(kCheckpointVersion) +
          ")");
    }
    if (framed.records.size() != 1) {
      std::string detail = framed.skip_reasons.empty()
                               ? std::string("truncated or torn file")
                               : framed.skip_reasons.front();
      throw std::runtime_error(
          "checkpoint: " + path + " does not hold one intact record (" +
          detail + ") — save_checkpoint publishes atomically, so this is "
          "external damage, refusing to guess");
    }
    doc = framed.records.front();
  } else {
    // Legacy (pre-journal) checkpoints: one bare JSON document.
    doc = text;
  }

  const JsonValue root = parse_json(doc, kWhat);
  if (root.type != JsonValue::Type::Object) {
    throw std::runtime_error("checkpoint: document is not an object");
  }
  if (require(root, "magic", JsonValue::Type::String, kWhat).string !=
      kMagic) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not a metacore search checkpoint");
  }
  SearchCheckpoint cp;
  cp.version = static_cast<int>(std::llround(
      require(root, "version", JsonValue::Type::Number, kWhat).number));
  if (cp.version != kCheckpointVersion) {
    throw std::runtime_error(
        "checkpoint: unsupported version " + std::to_string(cp.version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        ")");
  }
  cp.dimensions = require_count(root, "dimensions", kWhat);
  cp.probabilistic_metric =
      require(root, "probabilistic_metric", JsonValue::Type::String, kWhat)
          .string;
  const JsonValue& fp =
      require(root, "fingerprint", JsonValue::Type::Object, kWhat);
  for (const auto& [key, value] : fp.object) {
    if (value.type != JsonValue::Type::Number) {
      throw std::runtime_error("checkpoint: non-numeric fingerprint entry \"" +
                               key + "\"");
    }
    cp.fingerprint[key] = value.number;
  }
  const JsonValue& counters =
      require(root, "counters", JsonValue::Type::Object, kWhat);
  cp.failures.invalid_point = require_count(counters, "invalid_point", kWhat);
  cp.failures.non_convergence =
      require_count(counters, "non_convergence", kWhat);
  cp.failures.non_finite = require_count(counters, "non_finite", kWhat);
  cp.failures.transient_faults =
      require_count(counters, "transient_faults", kWhat);
  cp.failures.retries = require_count(counters, "retries", kWhat);
  cp.failures.recovered = require_count(counters, "recovered", kWhat);
  cp.failures.failed_evaluations =
      require_count(counters, "failed_evaluations", kWhat);
  const JsonValue& journal =
      require(root, "journal", JsonValue::Type::Array, kWhat);
  cp.journal.reserve(journal.array.size());
  for (const JsonValue& entry : journal.array) {
    cp.journal.push_back(parse_eval_record(entry, kWhat));
  }
  return cp;
}

bool checkpoint_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace metacore::robust
