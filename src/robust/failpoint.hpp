// Deterministic fail points for the persistence layer. Every journal write,
// fsync, and rename boundary calls failpoint("<tag>.<op>", ...); a test arms
// a point by name to fire at an exact hit number — crashing (by throwing
// CrashInjected after an exact number of bytes reached the file) or failing
// with an injected transient I/O error — so the crash matrix can enumerate
// "die after byte k of record n / before the rename" without ever killing
// the process for real.
//
// Production cost: the instrumentation hook is compiled to nothing unless
// the build defines METACORE_FAILPOINTS (CMake option METACORE_FAILPOINTS,
// ON by default for development/test builds, OFF for release deployments).
// Even when compiled in, an unarmed registry is a mutex-guarded counter
// bump per I/O boundary — noise next to the write() beside it.
//
// Arming is programmatic (FailPoints::instance().arm(...)) or via the
// environment: METACORE_FAILPOINT="name:crash@H;name2:crash@H+B;n3:io@H*C"
// arms point `name` to crash at hit H (after B bytes of that write, default
// all), and `n3` to fail C consecutive hits with injected I/O errors
// starting at hit H.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace metacore::robust {

/// Thrown by an armed crash fail point: simulates the process dying at an
/// exact I/O boundary. Everything the instrumented writer put on disk
/// before the throw stays; nothing after it happens. Tests catch this,
/// abandon the writer object, and reopen the file as a restarted process
/// would. Never caught by the persistence layer itself (unlike injected
/// I/O errors, which feed the retry/degraded paths).
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& point)
      : std::runtime_error("crash injected at fail point " + point) {}
};

struct FailPointSpec {
  enum class Action { Crash, IoError };
  Action action = Action::Crash;
  /// 1-based hit index at which the action fires.
  std::size_t trigger_hit = 1;
  /// Crash only: bytes of the instrumented write that reach the file
  /// before the crash (SIZE_MAX = the whole write lands, die just after).
  std::size_t partial_bytes = SIZE_MAX;
  /// IoError only: consecutive hits that fail starting at trigger_hit
  /// (SIZE_MAX = the device never comes back).
  std::size_t error_count = 1;
};

/// Verdict for one instrumented boundary crossing.
struct FailPointResult {
  bool crash = false;     ///< write partial_bytes, then throw CrashInjected
  bool io_error = false;  ///< this attempt fails with an injected I/O error
  std::size_t partial_bytes = SIZE_MAX;
};

class FailPoints {
 public:
  /// Process-wide registry. On first use, arms any specs found in the
  /// METACORE_FAILPOINT environment variable (builds without
  /// METACORE_FAILPOINTS ignore the variable entirely).
  static FailPoints& instance();

  void arm(const std::string& name, FailPointSpec spec);
  /// Parses one "name:crash@H", "name:crash@H+B", or "name:io@H*C" spec
  /// (';'-separated lists accepted). Throws std::invalid_argument on a
  /// malformed spec.
  void arm_from_string(const std::string& specs);
  void disarm(const std::string& name);
  /// Disarms everything and zeroes all hit counters.
  void reset();

  /// Hits recorded for `name` so far (armed or not) — how a test
  /// enumerates the write boundaries of a recorded session.
  std::size_t hits(const std::string& name) const;

  /// Called by instrumented code at each boundary; counts the hit and
  /// returns the action verdict. Prefer the failpoint() free function,
  /// which compiles away without METACORE_FAILPOINTS.
  FailPointResult on_hit(const std::string& name);

 private:
  FailPoints();
  struct Impl;
  Impl* impl_;  // leaked singleton: usable during static destruction
};

#ifdef METACORE_FAILPOINTS
inline FailPointResult failpoint(const char* name) {
  return FailPoints::instance().on_hit(name);
}
#else
inline FailPointResult failpoint(const char*) { return {}; }
#endif

}  // namespace metacore::robust
