#include "robust/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "robust/failpoint.hpp"
#include "robust/json.hpp"
#include "util/crc32c.hpp"

namespace metacore::robust {

namespace {

constexpr const char* kMagic = "metacore-journal";
// '#' + 8-hex length + '|' + 8-hex crc + '|'  ... payload ... '\n'
constexpr std::size_t kFramePrefix = 19;
constexpr std::size_t kFrameOverhead = kFramePrefix + 1;
constexpr std::size_t kNoneBufferLimit = 64 * 1024;
constexpr int kMaxIoAttempts = 4;

void backoff(int attempt) {
  // Deterministic bounded backoff for transient I/O errors; short enough
  // that the injected-error tests stay instant.
  std::this_thread::sleep_for(std::chrono::microseconds(50L << attempt));
}

void append_hex8(std::string& out, std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(digits[(v >> shift) & 0xF]);
  }
}

bool parse_hex8(const char* p, std::uint32_t& out) {
  std::uint32_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = p[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace

DurabilityConfig DurabilityConfig::parse(const std::string& spec) {
  DurabilityConfig config;
  if (spec == "none") {
    config.policy = DurabilityPolicy::None;
  } else if (spec == "flush") {
    config.policy = DurabilityPolicy::Flush;
  } else if (spec == "fsync-on-close") {
    config.policy = DurabilityPolicy::FsyncOnClose;
  } else if (spec.rfind("fsync-every-", 0) == 0) {
    config.policy = DurabilityPolicy::FsyncEveryN;
    const std::string n = spec.substr(12);
    std::size_t pos = 0;
    unsigned long long interval = 0;
    try {
      interval = std::stoull(n, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != n.size() || interval == 0) {
      throw std::invalid_argument(
          "durability: fsync-every-N needs a positive integer N, got \"" +
          spec + "\"");
    }
    config.fsync_interval = static_cast<std::size_t>(interval);
  } else {
    throw std::invalid_argument(
        "durability: unknown policy \"" + spec +
        "\" (want none | flush | fsync-every-N | fsync-on-close)");
  }
  return config;
}

DurabilityConfig DurabilityConfig::from_env() {
  const char* env = std::getenv("METACORE_DURABILITY");
  if (env == nullptr || env[0] == '\0') return DurabilityConfig{};
  return parse(env);
}

std::string DurabilityConfig::to_string() const {
  switch (policy) {
    case DurabilityPolicy::None:
      return "none";
    case DurabilityPolicy::Flush:
      return "flush";
    case DurabilityPolicy::FsyncEveryN:
      return "fsync-every-" + std::to_string(fsync_interval);
    case DurabilityPolicy::FsyncOnClose:
      return "fsync-on-close";
  }
  return "flush";
}

std::string journal_header_line(const JournalHeader& header) {
  std::ostringstream os;
  os << "{\"magic\":\"" << kMagic
     << "\",\"version\":" << kJournalFormatVersion << ",\"kind\":";
  write_escaped(os, header.kind);
  os << ",\"kind_version\":" << header.kind_version << "}\n";
  return os.str();
}

std::string frame_record(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + kFrameOverhead);
  frame.push_back('#');
  append_hex8(frame, static_cast<std::uint32_t>(payload.size()));
  frame.push_back('|');
  append_hex8(frame, util::crc32c(payload));
  frame.push_back('|');
  frame.append(payload);
  frame.push_back('\n');
  return frame;
}

bool looks_like_journal(std::string_view text) {
  const std::string_view prefix = "{\"magic\":\"metacore-journal\"";
  return text.substr(0, prefix.size()) == prefix;
}

JournalWriter::JournalWriter(std::string path, JournalHeader header,
                             DurabilityConfig durability, bool truncate,
                             std::string failpoint_tag)
    : path_(std::move(path)),
      tag_(std::move(failpoint_tag)),
      durability_(durability) {
  const int flags =
      truncate ? (O_WRONLY | O_CREAT | O_TRUNC) : (O_WRONLY | O_CREAT | O_APPEND);
  fd_ = ::open(path_.c_str(), flags | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw JournalIoError("journal: cannot open " + path_ + ": " +
                         std::strerror(errno));
  }
  if (truncate) {
    const std::string line = journal_header_line(header);
    write_all(line.data(), line.size(), (tag_ + ".header").c_str());
  }
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (...) {
    // Destructor cleanup must not throw; an explicit close() is where
    // callers observe boundaries and terminal errors.
  }
}

void JournalWriter::write_all(const char* data, std::size_t size,
                              const char* point) {
  if (fd_ < 0) {
    throw JournalIoError("journal: " + path_ + " writer is closed");
  }
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    const FailPointResult fp = failpoint(point);
    if (fp.crash) {
      // Simulated process death after an exact byte count of this write:
      // put that prefix on disk, then die. Everything already written
      // stays; nothing else happens.
      std::size_t put = std::min(fp.partial_bytes, size);
      const char* p = data;
      while (put > 0) {
        const ssize_t n = ::write(fd_, p, put);
        if (n <= 0) break;
        p += n;
        put -= static_cast<std::size_t>(n);
      }
      throw CrashInjected(point);
    }
    if (!fp.io_error) {
      const char* p = data;
      std::size_t left = size;
      bool failed = false;
      while (left > 0) {
        const ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
          if (errno == EINTR) continue;
          failed = true;
          break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
      }
      if (!failed) return;
    }
    // Injected or real transient failure: back off and retry; the final
    // attempt's failure is terminal.
    if (attempt + 1 < kMaxIoAttempts) {
      ++io_retries_;
      backoff(attempt);
    }
  }
  throw JournalIoError("journal: write to " + path_ + " failed after " +
                       std::to_string(kMaxIoAttempts) + " attempts");
}

void JournalWriter::fsync_now(const char* point) {
  if (fd_ < 0) return;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    const FailPointResult fp = failpoint(point);
    if (fp.crash) {
      throw CrashInjected(point);
    }
    if (!fp.io_error && ::fsync(fd_) == 0) return;
    if (attempt + 1 < kMaxIoAttempts) {
      ++io_retries_;
      backoff(attempt);
    }
  }
  throw JournalIoError("journal: fsync of " + path_ + " failed after " +
                       std::to_string(kMaxIoAttempts) + " attempts");
}

void JournalWriter::drain_buffer() {
  if (buffer_.empty()) return;
  // Swap first: if the drain crashes or fails terminally, the bytes are
  // gone — exactly what the none policy promises about a buffered tail.
  std::string pending;
  pending.swap(buffer_);
  write_all(pending.data(), pending.size(), (tag_ + ".append").c_str());
}

void JournalWriter::append(std::string_view payload) {
  if (fd_ < 0) {
    throw JournalIoError("journal: " + path_ + " writer is closed");
  }
  const std::string frame = frame_record(payload);
  if (durability_.policy == DurabilityPolicy::None) {
    buffer_.append(frame);
    if (buffer_.size() >= kNoneBufferLimit) drain_buffer();
  } else {
    write_all(frame.data(), frame.size(), (tag_ + ".append").c_str());
  }
  ++appends_;
  if (durability_.policy == DurabilityPolicy::FsyncEveryN &&
      ++appends_since_sync_ >= durability_.fsync_interval) {
    appends_since_sync_ = 0;
    fsync_now((tag_ + ".sync").c_str());
  }
}

void JournalWriter::sync() {
  drain_buffer();
  fsync_now((tag_ + ".sync").c_str());
  appends_since_sync_ = 0;
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  drain_buffer();
  if (durability_.policy == DurabilityPolicy::FsyncOnClose) {
    fsync_now((tag_ + ".sync").c_str());
  }
  ::close(fd_);
  fd_ = -1;
}

namespace {

/// Reader-side damage bookkeeping shared by the frame scan below.
void note_skip(JournalReadResult& result, std::string reason) {
  ++result.skipped_records;
  constexpr std::size_t kMaxReasons = 100;
  if (result.skip_reasons.size() < kMaxReasons) {
    result.skip_reasons.push_back(std::move(reason));
  } else if (result.skip_reasons.size() == kMaxReasons) {
    result.skip_reasons.push_back("(further skip reasons elided)");
  }
}

}  // namespace

JournalReadResult read_journal_text(const std::string& text,
                                    const std::string& what) {
  JournalReadResult result;
  const std::size_t size = text.size();

  const std::size_t header_nl = text.find('\n');
  if (header_nl == std::string::npos) {
    // Crash while writing the very first (header) line: nothing complete
    // was ever in this file.
    result.recovered_tail_bytes = size;
    return result;
  }

  JsonValue header;
  try {
    header = parse_json(text.substr(0, header_nl), what);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(what + ": unreadable journal header line: " +
                             e.what());
  }
  if (header.type != JsonValue::Type::Object ||
      require(header, "magic", JsonValue::Type::String, what).string !=
          kMagic) {
    throw std::runtime_error(what + ": not a metacore journal");
  }
  const auto version = static_cast<int>(
      require(header, "version", JsonValue::Type::Number, what).number);
  if (version != kJournalFormatVersion) {
    throw std::runtime_error(
        what + ": unsupported journal format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kJournalFormatVersion) + ")");
  }
  result.header.kind =
      require(header, "kind", JsonValue::Type::String, what).string;
  result.header.kind_version = static_cast<int>(
      require(header, "kind_version", JsonValue::Type::Number, what).number);

  std::size_t offset = header_nl + 1;
  result.good_end = offset;
  std::size_t record_index = 0;

  // Resync after broken framing: the next frame boundary is "\n#" (frames
  // are newline-terminated and payloads never place '#' right after a
  // newline — JSON payload lines open with '{', '"', digits, or brackets).
  const auto resync = [&](std::size_t from, const std::string& why) -> bool {
    const std::size_t next = text.find("\n#", from);
    if (next != std::string::npos) {
      note_skip(result, what + ": " + why + " at offset " +
                            std::to_string(from) + " (resynced at offset " +
                            std::to_string(next + 1) + ")");
      offset = next + 1;
      return true;
    }
    if (!text.empty() && text.back() == '\n') {
      // Damage runs to EOF but is newline-terminated: that is not the
      // signature of a crashed append (appends end with '\n' atomically
      // within one frame), so count it as damage rather than a tail.
      note_skip(result, what + ": " + why + " at offset " +
                            std::to_string(from) +
                            " (terminated damage through end of file)");
      offset = size;
      return true;
    }
    result.recovered_tail_bytes = size - from;
    offset = size;
    return false;
  };

  while (offset < size) {
    const std::size_t start = offset;
    std::uint32_t declared_len = 0;
    std::uint32_t declared_crc = 0;
    const bool prefix_complete = start + kFramePrefix <= size;
    const bool prefix_valid =
        prefix_complete && text[start] == '#' &&
        parse_hex8(text.data() + start + 1, declared_len) &&
        text[start + 9] == '|' &&
        parse_hex8(text.data() + start + 10, declared_crc) &&
        text[start + 18] == '|';

    if (!prefix_valid) {
      if (!prefix_complete && text[start] == '#' &&
          text.find("\n#", start) == std::string::npos) {
        // Incomplete frame prefix at EOF: crashed append.
        result.recovered_tail_bytes = size - start;
        break;
      }
      if (!resync(start, "broken record framing")) break;
      continue;
    }

    const std::size_t payload_at = start + kFramePrefix;
    const std::size_t frame_end = payload_at + declared_len;  // '\n' here
    if (frame_end + 1 > size) {
      if (text.find("\n#", start) != std::string::npos) {
        // The frame claims more bytes than remain, yet a later frame
        // exists: a corrupted length field, not a crashed append.
        if (!resync(start, "frame length overruns the file")) break;
        continue;
      }
      result.recovered_tail_bytes = size - start;
      break;
    }
    if (text[frame_end] != '\n') {
      if (!resync(start, "frame terminator missing")) break;
      continue;
    }
    const std::string_view payload(text.data() + payload_at, declared_len);
    const std::uint32_t actual_crc = util::crc32c(payload);
    ++record_index;
    if (actual_crc != declared_crc) {
      note_skip(result,
                what + ": CRC32C mismatch on record " +
                    std::to_string(record_index) + " at offset " +
                    std::to_string(start) + " (stored " +
                    std::to_string(declared_crc) + ", computed " +
                    std::to_string(actual_crc) + ")");
      offset = frame_end + 1;
      continue;
    }
    result.records.emplace_back(payload);
    offset = frame_end + 1;
    result.good_end = offset;
  }

  return result;
}

namespace {

/// One fail-point-instrumented, retrying raw write (shared by
/// atomic_replace_file; JournalWriter has its own copy with stats).
void replace_write(int fd, const char* data, std::size_t size,
                   const std::string& point, const std::string& tmp,
                   const std::string& what) {
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    const FailPointResult fp = failpoint(point.c_str());
    if (fp.crash) {
      std::size_t put = std::min(fp.partial_bytes, size);
      const char* p = data;
      while (put > 0) {
        const ssize_t n = ::write(fd, p, put);
        if (n <= 0) break;
        p += n;
        put -= static_cast<std::size_t>(n);
      }
      throw CrashInjected(point);
    }
    if (!fp.io_error) {
      const char* p = data;
      std::size_t left = size;
      bool failed = false;
      while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
          if (errno == EINTR) continue;
          failed = true;
          break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
      }
      if (!failed) return;
    }
    if (attempt + 1 < kMaxIoAttempts) backoff(attempt);
  }
  throw JournalIoError(what + ": write to " + tmp + " failed after " +
                       std::to_string(kMaxIoAttempts) + " attempts");
}

void fsync_directory_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Best effort: the rename itself is atomic; the directory fsync only
    // narrows the power-loss window in which the rename is forgotten.
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

void atomic_replace_file(const std::string& path, std::string_view contents,
                         const DurabilityConfig& durability,
                         const std::string& failpoint_tag,
                         const std::string& what) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw JournalIoError(what + ": cannot open " + tmp + ": " +
                         std::strerror(errno));
  }
  try {
    replace_write(fd, contents.data(), contents.size(),
                  failpoint_tag + ".write", tmp, what);
    if (durability.policy != DurabilityPolicy::None) {
      // fsync before rename, else the rename can publish an empty or
      // partial file after power loss (rename-before-data).
      for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
        const FailPointResult fp = failpoint((failpoint_tag + ".sync").c_str());
        if (fp.crash) throw CrashInjected(failpoint_tag + ".sync");
        if (!fp.io_error && ::fsync(fd) == 0) break;
        if (attempt + 1 == kMaxIoAttempts) {
          throw JournalIoError(what + ": fsync of " + tmp + " failed after " +
                               std::to_string(kMaxIoAttempts) + " attempts");
        }
        backoff(attempt);
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  if (failpoint((failpoint_tag + ".rename").c_str()).crash) {
    // Crash before the rename: the old file (if any) is untouched and the
    // complete tmp file is left behind for the next open to ignore.
    throw CrashInjected(failpoint_tag + ".rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw JournalIoError(what + ": rename " + tmp + " -> " + path +
                         " failed: " + std::strerror(errno));
  }
  if (failpoint((failpoint_tag + ".renamed").c_str()).crash) {
    throw CrashInjected(failpoint_tag + ".renamed");
  }
  if (durability.policy != DurabilityPolicy::None) {
    fsync_directory_of(path);
  }
}

}  // namespace metacore::robust
