#include "robust/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

namespace metacore::robust {

struct FailPoints::Impl {
  mutable std::mutex mutex;
  std::map<std::string, FailPointSpec> armed;
  std::map<std::string, std::size_t> hit_counts;
};

FailPoints::FailPoints() : impl_(new Impl) {
#ifdef METACORE_FAILPOINTS
  if (const char* env = std::getenv("METACORE_FAILPOINT");
      env != nullptr && env[0] != '\0') {
    arm_from_string(env);
  }
#endif
}

FailPoints& FailPoints::instance() {
  static FailPoints* singleton = new FailPoints;  // leaked deliberately
  return *singleton;
}

void FailPoints::arm(const std::string& name, FailPointSpec spec) {
  if (name.empty()) {
    throw std::invalid_argument("failpoint: name must be non-empty");
  }
  if (spec.trigger_hit == 0) {
    throw std::invalid_argument("failpoint: trigger_hit is 1-based");
  }
  if (spec.action == FailPointSpec::Action::IoError && spec.error_count == 0) {
    throw std::invalid_argument(
        "failpoint: io error_count must be >= 1 (SIZE_MAX = forever)");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->armed[name] = spec;
}

void FailPoints::arm_from_string(const std::string& specs) {
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t end = specs.find(';', start);
    if (end == std::string::npos) end = specs.size();
    const std::string one = specs.substr(start, end - start);
    start = end + 1;
    if (one.empty()) continue;

    const std::size_t colon = one.rfind(':');
    const std::size_t at = one.find('@', colon == std::string::npos ? 0 : colon);
    if (colon == std::string::npos || at == std::string::npos || colon == 0) {
      throw std::invalid_argument(
          "failpoint: malformed spec \"" + one +
          "\" (want name:crash@H, name:crash@H+B, or name:io@H*C)");
    }
    const std::string name = one.substr(0, colon);
    const std::string action = one.substr(colon + 1, at - colon - 1);
    const std::string rest = one.substr(at + 1);

    FailPointSpec spec;
    std::size_t pos = 0;
    try {
      spec.trigger_hit = std::stoull(rest, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint: bad hit number in \"" + one +
                                  "\"");
    }
    if (action == "crash") {
      spec.action = FailPointSpec::Action::Crash;
      if (pos < rest.size()) {
        if (rest[pos] != '+') {
          throw std::invalid_argument("failpoint: bad crash spec \"" + one +
                                      "\"");
        }
        spec.partial_bytes = std::stoull(rest.substr(pos + 1));
      }
    } else if (action == "io") {
      spec.action = FailPointSpec::Action::IoError;
      if (pos < rest.size()) {
        if (rest[pos] != '*') {
          throw std::invalid_argument("failpoint: bad io spec \"" + one +
                                      "\"");
        }
        spec.error_count = std::stoull(rest.substr(pos + 1));
      }
    } else {
      throw std::invalid_argument("failpoint: unknown action \"" + action +
                                  "\" in \"" + one + "\"");
    }
    arm(name, spec);
  }
}

void FailPoints::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->armed.erase(name);
}

void FailPoints::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->armed.clear();
  impl_->hit_counts.clear();
}

std::size_t FailPoints::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->hit_counts.find(name);
  return it == impl_->hit_counts.end() ? 0 : it->second;
}

FailPointResult FailPoints::on_hit(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t hit = ++impl_->hit_counts[name];
  const auto it = impl_->armed.find(name);
  FailPointResult result;
  if (it == impl_->armed.end()) return result;
  const FailPointSpec& spec = it->second;
  switch (spec.action) {
    case FailPointSpec::Action::Crash:
      if (hit == spec.trigger_hit) {
        result.crash = true;
        result.partial_bytes = spec.partial_bytes;
      }
      break;
    case FailPointSpec::Action::IoError:
      if (hit >= spec.trigger_hit &&
          (spec.error_count == SIZE_MAX ||
           hit < spec.trigger_hit + spec.error_count)) {
        result.io_error = true;
      }
      break;
  }
  return result;
}

}  // namespace metacore::robust
