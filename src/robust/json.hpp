// Minimal JSON machinery shared by the persistence layers (search
// checkpoints in robust/, the evaluation store and design-query service in
// serve/): a recursive-descent reader covering objects, arrays, strings,
// booleans, and numbers — including the bare non-finite tokens inf/-inf/nan,
// a deliberate, documented superset of JSON our own writers emit — plus the
// matching write helpers (escaped strings, round-trip doubles).
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace metacore::robust {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses one complete JSON document. Throws std::runtime_error on
/// malformed input or trailing content; `what` prefixes the error message
/// so callers can attribute failures ("checkpoint", "store", ...).
JsonValue parse_json(const std::string& text, const std::string& what);

/// Member access with schema checking: throws std::runtime_error (prefixed
/// with `what`) when `key` is absent or has the wrong type.
const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const std::string& what);

/// require() for non-negative integer-valued numbers (counters, sizes).
std::size_t require_count(const JsonValue& obj, const std::string& key,
                          const std::string& what);

/// Writes `s` as a JSON string literal, escaping quotes, backslashes, and
/// control characters.
void write_escaped(std::ostream& os, const std::string& s);

/// Writes a double with round-trip (%.17g) precision; non-finite values
/// use the bare tokens inf/-inf/nan that parse_json reads back.
void write_double(std::ostream& os, double v);

}  // namespace metacore::robust
