// Versioned JSON checkpoints for long-running searches. A checkpoint is
// the search's evaluation journal — every (indices, fidelity, Evaluation)
// absorbed, in absorption order — plus the failure counters and a config
// fingerprint. Replaying the journal in order reconstructs the evaluation
// cache AND the predictors' evidence sequences bit-for-bit (floating-point
// accumulation order included), so a resumed search walks the exact
// trajectory of an uninterrupted one without re-invoking the evaluator for
// completed work.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "robust/counters.hpp"
#include "robust/json.hpp"
#include "search/objective.hpp"

namespace metacore::robust {

/// One absorbed evaluation: the grid indices of the point, the fidelity it
/// was evaluated at, and the full result.
struct CheckpointRecord {
  std::vector<int> indices;
  int fidelity = 0;
  search::Evaluation eval;
};

inline constexpr int kCheckpointVersion = 1;

struct SearchCheckpoint {
  int version = kCheckpointVersion;
  /// Design-space dimensionality, validated on resume.
  std::size_t dimensions = 0;
  /// Name of the probabilistic metric the writing search was configured
  /// with (part of the trajectory-shaping configuration).
  std::string probabilistic_metric;
  /// Numeric configuration knobs that shape the search trajectory; a resume
  /// with a different configuration is rejected rather than silently
  /// diverging.
  std::map<std::string, double> fingerprint;
  /// Failure counters at the time of the flush.
  FailureCounters failures;
  /// Absorbed evaluations in absorption order.
  std::vector<CheckpointRecord> journal;
};

/// Serializes `checkpoint` to `path` as one CRC32C-guarded journal frame
/// (robust/journal.hpp), published with a durable atomic replace (tmp file
/// + fsync per METACORE_DURABILITY + rename): a crash at any byte of the
/// flush leaves either the previous complete checkpoint or the new one,
/// never a torn file. Doubles are written with round-trip precision;
/// non-finite values use the bare tokens inf/-inf/nan (a deliberate,
/// documented superset of JSON — our own reader accepts them). Throws
/// CrashInjected (armed fail point) or std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint);

/// Parses a checkpoint written by save_checkpoint (this framed format or
/// the legacy bare-JSON one). Throws std::runtime_error on I/O failure, a
/// checksum mismatch, malformed JSON, a missing field, or a version
/// mismatch.
SearchCheckpoint load_checkpoint(const std::string& path);

bool checkpoint_exists(const std::string& path);

/// Writes `rec` as one JSON object — the checkpoint journal-entry schema,
/// which is also the per-line evaluation schema of the serve/ evaluation
/// store (the store prepends its own addressing fields).
void write_eval_record(std::ostream& os, const CheckpointRecord& rec);

/// Parses a JSON object in the write_eval_record schema. Throws
/// std::runtime_error (prefixed with `what`) on a missing or mistyped
/// field.
CheckpointRecord parse_eval_record(const JsonValue& obj,
                                   const std::string& what);

}  // namespace metacore::robust
