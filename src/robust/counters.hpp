// Failure accounting for the fault-tolerant evaluation layer (src/robust/):
// a plain counter struct shared by GuardedEvaluator, SearchResult, the
// search report, and checkpoints. Kept dependency-free so every layer can
// pass it around by value.
#pragma once

#include <cstddef>

namespace metacore::robust {

/// Counts of evaluation failures observed by a GuardedEvaluator. Every
/// terminal failure (an evaluation converted into an infeasible result) is
/// tallied both under its kind and in `failed_evaluations`; transient
/// faults that a retry cleared end up in `recovered` instead.
struct FailureCounters {
  std::size_t invalid_point = 0;    ///< terminal invalid-point failures
  std::size_t non_convergence = 0;  ///< terminal non-convergence failures
  std::size_t non_finite = 0;       ///< evaluations quarantined for NaN/Inf metrics
  std::size_t transient_faults = 0; ///< individual transient throws observed
  std::size_t retries = 0;          ///< re-invocations after a transient fault
  std::size_t recovered = 0;        ///< evaluations that succeeded after retrying
  std::size_t failed_evaluations = 0;  ///< evaluations converted to infeasible

  /// Total individual fault events (not evaluations): terminal failures by
  /// kind plus every transient throw, recovered or not.
  std::size_t total_faults() const noexcept {
    return invalid_point + non_convergence + non_finite + transient_faults;
  }

  FailureCounters& operator+=(const FailureCounters& other) noexcept {
    invalid_point += other.invalid_point;
    non_convergence += other.non_convergence;
    non_finite += other.non_finite;
    transient_faults += other.transient_faults;
    retries += other.retries;
    recovered += other.recovered;
    failed_evaluations += other.failed_evaluations;
    return *this;
  }

  friend FailureCounters operator+(FailureCounters a,
                                   const FailureCounters& b) noexcept {
    a += b;
    return a;
  }

  friend bool operator==(const FailureCounters&,
                         const FailureCounters&) = default;
};

}  // namespace metacore::robust
