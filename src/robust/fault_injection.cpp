#include "robust/fault_injection.hpp"

#include <atomic>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "robust/guarded_evaluator.hpp"
#include "util/rng.hpp"

namespace metacore::robust {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

double uniform01(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Stream key derived from the point's coordinate bit patterns and the
/// fidelity — a pure function, identical across threads, runs, and retries.
std::uint64_t point_key(std::uint64_t seed, const std::vector<double>& point,
                        int fidelity) noexcept {
  std::uint64_t key =
      util::substream_key(seed, static_cast<std::uint64_t>(fidelity) + 1);
  for (const double v : point) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    key = util::substream_key(key, bits);
  }
  return key;
}

/// Per-kind substream indices under the point key.
enum : std::uint64_t {
  kStreamInvalid = 1,
  kStreamNonConvergence = 2,
  kStreamNonFinite = 3,
  kStreamTransient = 4,
};

bool fires(std::uint64_t key, std::uint64_t kind_stream, std::uint64_t counter,
           double probability) noexcept {
  if (probability <= 0.0) return false;
  const std::uint64_t draw =
      util::CounterRng::at(util::substream_key(key, kind_stream), counter);
  return uniform01(draw) < probability;
}

void check_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultInjector: ") + name +
                                " probability must be in [0, 1]");
  }
}

}  // namespace

struct FaultInjector::State {
  std::atomic<std::size_t> invalid_point{0};
  std::atomic<std::size_t> non_convergence{0};
  std::atomic<std::size_t> non_finite{0};
  std::atomic<std::size_t> transient{0};
};

FaultInjector::FaultInjector(search::EvaluateFn inner,
                             FaultInjectionConfig config)
    : state_(std::make_shared<State>()),
      inner_(std::move(inner)),
      config_(config) {
  if (!inner_) {
    throw std::invalid_argument("FaultInjector: null evaluator");
  }
  check_probability(config_.invalid_point, "invalid_point");
  check_probability(config_.non_convergence, "non_convergence");
  check_probability(config_.non_finite, "non_finite");
  check_probability(config_.transient, "transient");
}

search::Evaluation FaultInjector::operator()(const std::vector<double>& point,
                                             int fidelity) const {
  const std::uint64_t key = point_key(config_.seed, point, fidelity);
  if (fires(key, kStreamInvalid, 0, config_.invalid_point)) {
    state_->invalid_point.fetch_add(1, relaxed);
    throw EvalException(EvalErrorKind::InvalidPoint, "injected invalid point");
  }
  if (fires(key, kStreamNonConvergence, 0, config_.non_convergence)) {
    state_->non_convergence.fetch_add(1, relaxed);
    throw EvalException(EvalErrorKind::NonConvergence,
                        "injected non-convergence");
  }
  if (fires(key, kStreamTransient,
            static_cast<std::uint64_t>(current_attempt()),
            config_.transient)) {
    state_->transient.fetch_add(1, relaxed);
    throw EvalException(EvalErrorKind::InjectedTransient,
                        "injected transient fault");
  }
  search::Evaluation eval = inner_(point, fidelity);
  if (fires(key, kStreamNonFinite, 0, config_.non_finite)) {
    state_->non_finite.fetch_add(1, relaxed);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    if (eval.metrics.empty()) {
      eval.metrics["injected_non_finite"] = nan;
    } else {
      eval.metrics.begin()->second = nan;
    }
  }
  return eval;
}

search::EvaluateFn FaultInjector::fn() const {
  FaultInjector copy = *this;
  return [copy](const std::vector<double>& point, int fidelity) {
    return copy(point, fidelity);
  };
}

FaultInjectionCounts FaultInjector::counts() const {
  FaultInjectionCounts out;
  out.invalid_point = state_->invalid_point.load(relaxed);
  out.non_convergence = state_->non_convergence.load(relaxed);
  out.non_finite = state_->non_finite.load(relaxed);
  out.transient = state_->transient.load(relaxed);
  return out;
}

}  // namespace metacore::robust
