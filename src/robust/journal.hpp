// Crash-consistent record journal: the shared persistence substrate under
// both durable paths (the serve/ evaluation store and the search
// checkpoints). A journal file is
//
//   header line:  {"magic":"metacore-journal","version":1,
//                  "kind":"<client>","kind_version":N}\n
//   record frame: '#' <len:8 hex> '|' <crc:8 hex> '|' <payload bytes> '\n'
//
// where len is the payload byte count and crc is CRC32C of the payload.
// Length-prefixed frames make parsing byte-driven (payloads may contain
// newlines); the per-record checksum turns "mid-file damage" from a
// refuse-the-whole-file event into a skip-this-record-with-a-counted-reason
// event, while still distinguishing a crashed append (an incomplete frame
// at EOF — silently recoverable, nothing complete was lost) from real
// corruption.
//
// Durability is a policy, not a hard-coded flush: none (in-process
// buffering, fastest, a crash may lose the buffered tail), flush
// (write-through per record — the default, matching the store's historical
// behavior), fsync-every-N (bounded data loss under power failure), and
// fsync-on-close. Overridable process-wide with METACORE_DURABILITY.
//
// Every write/fsync/rename boundary consults a named fail point
// (robust/failpoint.hpp), so tests enumerate exact crash points and
// injected transient I/O errors; real and injected write errors share one
// retry-with-backoff path, and a terminal failure surfaces as
// JournalIoError for the caller's degraded-mode handling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace metacore::robust {

/// Terminal I/O failure: the write/fsync/rename still failed after the
/// bounded retry-with-backoff. Callers decide policy (the store degrades to
/// read-only; checkpoint flushes propagate).
class JournalIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class DurabilityPolicy { None, Flush, FsyncEveryN, FsyncOnClose };

struct DurabilityConfig {
  DurabilityPolicy policy = DurabilityPolicy::Flush;
  /// FsyncEveryN only: fsync after every N appended records (N >= 1).
  std::size_t fsync_interval = 1;

  /// Parses "none" | "flush" | "fsync-every-N" | "fsync-on-close".
  /// Throws std::invalid_argument on anything else.
  static DurabilityConfig parse(const std::string& spec);
  /// METACORE_DURABILITY when set (and non-empty), else the default
  /// (flush). Throws on a malformed value — a misspelled durability knob
  /// must never silently weaken guarantees.
  static DurabilityConfig from_env();
  std::string to_string() const;
};

inline constexpr int kJournalFormatVersion = 1;

/// Client identification carried in the header line.
struct JournalHeader {
  std::string kind;
  int kind_version = 1;
};

std::string journal_header_line(const JournalHeader& header);

/// Frames one payload ('#' len '|' crc '|' payload '\n').
std::string frame_record(std::string_view payload);

/// True when `text` starts with a journal header (terminated or not) —
/// the format sniff callers use before read_journal_text.
bool looks_like_journal(std::string_view text);

/// Append-oriented framed writer over a POSIX fd. Not internally
/// synchronized: callers serialize appends (the store holds its writer
/// mutex; searches flush checkpoints from one thread).
class JournalWriter {
 public:
  /// `truncate` starts a fresh journal (writes the header); otherwise
  /// appends to an existing, already-validated file. `failpoint_tag`
  /// namespaces this writer's boundaries: "<tag>.append", "<tag>.sync".
  /// Throws JournalIoError when the file cannot be opened or the header
  /// cannot be written.
  JournalWriter(std::string path, JournalHeader header,
                DurabilityConfig durability, bool truncate,
                std::string failpoint_tag);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frames and appends one record, applying the durability policy.
  /// Throws CrashInjected (armed fail point) or JournalIoError (terminal
  /// write failure after retries).
  void append(std::string_view payload);

  /// Drains the in-process buffer (none policy) and fsyncs.
  void sync();

  /// Drains, applies fsync-on-close, and closes the fd. Idempotent.
  void close();

  std::size_t appends() const { return appends_; }
  std::size_t io_retries() const { return io_retries_; }
  const std::string& path() const { return path_; }

 private:
  void write_all(const char* data, std::size_t size, const char* point);
  void drain_buffer();
  void fsync_now(const char* point);

  std::string path_;
  std::string tag_;
  DurabilityConfig durability_;
  int fd_ = -1;
  std::string buffer_;  // used by DurabilityPolicy::None only
  std::size_t appends_ = 0;
  std::size_t appends_since_sync_ = 0;
  std::size_t io_retries_ = 0;
};

struct JournalReadResult {
  JournalHeader header;
  /// Payloads of every frame whose length and CRC32C checked out, in file
  /// order.
  std::vector<std::string> records;
  /// Complete-but-damaged frames skipped (CRC mismatch, broken framing
  /// mid-file); one descriptive reason per skip in skip_reasons.
  std::size_t skipped_records = 0;
  std::vector<std::string> skip_reasons;
  /// Bytes of an incomplete frame at EOF — the signature of a crashed
  /// append; dropped silently (nothing complete was lost).
  std::size_t recovered_tail_bytes = 0;
  /// Byte offset one past the last good frame (where a truncating
  /// recovery rewrite would cut).
  std::size_t good_end = 0;
};

/// Parses journal `text`. Throws std::runtime_error (prefixed with `what`)
/// only for header-level problems: not a journal, an unreadable header, or
/// an unsupported journal format version — record-level damage is returned
/// as skips/tail, never thrown. Callers validate header.kind themselves.
JournalReadResult read_journal_text(const std::string& text,
                                    const std::string& what);

/// Durable atomic replace: writes `contents` to `path + ".tmp"`, fsyncs it
/// (policies other than none), renames it over `path`, and fsyncs the
/// parent directory — so the file at `path` is always either the old or
/// the new complete contents, even across power loss. Fail points:
/// "<tag>.write" (byte-partial crashes), "<tag>.sync", "<tag>.rename"
/// (before), "<tag>.renamed" (after). Throws CrashInjected or
/// JournalIoError (prefixed with `what`).
void atomic_replace_file(const std::string& path, std::string_view contents,
                         const DurabilityConfig& durability,
                         const std::string& failpoint_tag,
                         const std::string& what);

}  // namespace metacore::robust
