#include "robust/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace metacore::robust {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& what)
      : text_(text), what_(what) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(what_ + ": parse error at byte " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_token(const char* token) {
    const std::size_t len = std::char_traits<char>::length(token);
    if (text_.compare(pos_, len, token) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      default: break;
    }
    JsonValue v;
    if (consume_token("true")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_token("false")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = false;
      return v;
    }
    if (consume_token("null")) return v;
    // Number, including the writer's non-finite tokens.
    v.type = JsonValue::Type::Number;
    if (consume_token("nan")) {
      v.number = std::nan("");
      return v;
    }
    if (consume_token("inf")) {
      v.number = HUGE_VAL;
      return v;
    }
    if (consume_token("-inf")) {
      v.number = -HUGE_VAL;
      return v;
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    v.number = std::strtod(start, &end);
    if (end == start) fail("malformed value");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only escape control characters, so a single byte
          // suffices; reject anything wider rather than mis-decode it.
          if (code > 0x7F) fail("unsupported \\u escape above 0x7F");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  const std::string& what_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& what) {
  return Parser(text, what).parse();
}

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const std::string& what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw std::runtime_error(what + ": missing field \"" + key + "\"");
  }
  if (v->type != type) {
    throw std::runtime_error(what + ": field \"" + key +
                             "\" has the wrong type");
  }
  return *v;
}

std::size_t require_count(const JsonValue& obj, const std::string& key,
                          const std::string& what) {
  const double n = require(obj, key, JsonValue::Type::Number, what).number;
  if (!(n >= 0.0) || n != std::floor(n)) {
    throw std::runtime_error(what + ": field \"" + key +
                             "\" is not a non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "nan";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "inf" : "-inf");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

}  // namespace metacore::robust
