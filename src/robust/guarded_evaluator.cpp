#include "robust/guarded_evaluator.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "robust/error.hpp"

namespace metacore::robust {

namespace {

thread_local int tls_attempt = 0;

}  // namespace

int current_attempt() noexcept { return tls_attempt; }

struct GuardedEvaluator::State {
  std::atomic<std::size_t> invalid_point{0};
  std::atomic<std::size_t> non_convergence{0};
  std::atomic<std::size_t> non_finite{0};
  std::atomic<std::size_t> transient_faults{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> recovered{0};
  std::atomic<std::size_t> failed_evaluations{0};
};

GuardedEvaluator::GuardedEvaluator(search::EvaluateFn inner, RetryPolicy policy)
    : state_(std::make_shared<State>()),
      inner_(std::move(inner)),
      policy_(policy) {
  if (!inner_) {
    throw std::invalid_argument("GuardedEvaluator: null evaluator");
  }
  if (policy_.max_attempts < 1) {
    throw std::invalid_argument(
        "GuardedEvaluator: RetryPolicy::max_attempts must be >= 1 (got " +
        std::to_string(policy_.max_attempts) + ")");
  }
}

search::Evaluation GuardedEvaluator::operator()(
    const std::vector<double>& point, int fidelity) const {
  constexpr auto relaxed = std::memory_order_relaxed;
  for (int attempt = 0;; ++attempt) {
    tls_attempt = attempt;
    try {
      search::Evaluation eval = inner_(point, fidelity);
      tls_attempt = 0;

      // Quarantine non-finite values: erase them so they can never reach a
      // predictor or an objective comparison, and mark the point infeasible.
      std::string bad;
      for (auto it = eval.metrics.begin(); it != eval.metrics.end();) {
        if (!std::isfinite(it->second)) {
          if (!bad.empty()) bad += ", ";
          bad += it->first;
          it = eval.metrics.erase(it);
        } else {
          ++it;
        }
      }
      if (!std::isfinite(eval.confidence_weight)) {
        if (!bad.empty()) bad += ", ";
        bad += "confidence_weight";
        eval.confidence_weight = 1.0;
      }
      if (!bad.empty()) {
        state_->non_finite.fetch_add(1, relaxed);
        state_->failed_evaluations.fetch_add(1, relaxed);
        eval.feasible = false;
        eval.failure_reason =
            std::string(to_string(EvalErrorKind::NonFiniteMetric)) + ": " + bad;
        return eval;
      }
      if (attempt > 0) state_->recovered.fetch_add(1, relaxed);
      return eval;
    } catch (...) {
      const EvalError err = classify_current_exception();
      if (is_transient(err.kind)) {
        state_->transient_faults.fetch_add(1, relaxed);
        if (attempt + 1 < policy_.max_attempts) {
          state_->retries.fetch_add(1, relaxed);
          continue;
        }
      } else if (err.kind == EvalErrorKind::InvalidPoint) {
        state_->invalid_point.fetch_add(1, relaxed);
      } else {
        state_->non_convergence.fetch_add(1, relaxed);
      }
      tls_attempt = 0;
      state_->failed_evaluations.fetch_add(1, relaxed);
      search::Evaluation eval;
      eval.feasible = false;
      eval.failure_reason =
          std::string(to_string(err.kind)) + ": " + err.message;
      return eval;
    }
  }
}

search::EvaluateFn GuardedEvaluator::fn() const {
  GuardedEvaluator copy = *this;
  return [copy](const std::vector<double>& point, int fidelity) {
    return copy(point, fidelity);
  };
}

FailureCounters GuardedEvaluator::counters() const {
  constexpr auto relaxed = std::memory_order_relaxed;
  FailureCounters out;
  out.invalid_point = state_->invalid_point.load(relaxed);
  out.non_convergence = state_->non_convergence.load(relaxed);
  out.non_finite = state_->non_finite.load(relaxed);
  out.transient_faults = state_->transient_faults.load(relaxed);
  out.retries = state_->retries.load(relaxed);
  out.recovered = state_->recovered.load(relaxed);
  out.failed_evaluations = state_->failed_evaluations.load(relaxed);
  return out;
}

}  // namespace metacore::robust
