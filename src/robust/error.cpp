#include "robust/error.hpp"

namespace metacore::robust {

const char* to_string(EvalErrorKind kind) noexcept {
  switch (kind) {
    case EvalErrorKind::InvalidPoint:
      return "invalid-point";
    case EvalErrorKind::NonConvergence:
      return "non-convergence";
    case EvalErrorKind::NonFiniteMetric:
      return "non-finite-metric";
    case EvalErrorKind::InjectedTransient:
      return "injected-transient";
  }
  return "unknown";
}

EvalError classify_current_exception() {
  try {
    throw;
  } catch (const EvalException& e) {
    return {e.kind(), e.what()};
  } catch (const std::invalid_argument& e) {
    return {EvalErrorKind::InvalidPoint, e.what()};
  } catch (const std::domain_error& e) {
    return {EvalErrorKind::InvalidPoint, e.what()};
  } catch (const std::out_of_range& e) {
    return {EvalErrorKind::InvalidPoint, e.what()};
  } catch (const std::logic_error& e) {
    return {EvalErrorKind::NonConvergence, e.what()};
  } catch (const std::runtime_error& e) {
    return {EvalErrorKind::InvalidPoint, e.what()};
  } catch (const std::exception& e) {
    return {EvalErrorKind::NonConvergence, e.what()};
  } catch (...) {
    return {EvalErrorKind::NonConvergence, "unknown exception"};
  }
}

}  // namespace metacore::robust
