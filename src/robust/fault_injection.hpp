// Deterministic fault injection for robustness tests and ablations. The
// injector wraps an EvaluateFn and fails evaluations with configured
// per-kind probabilities, driven by counter-based RNG draws keyed on the
// point's coordinate bits — never on wall-clock or thread identity — so the
// exact same faults fire at any thread count and on every rerun.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "robust/error.hpp"
#include "search/objective.hpp"

namespace metacore::robust {

struct FaultInjectionConfig {
  /// Per-evaluation probability of each failure kind. Terminal kinds
  /// (invalid_point, non_convergence, non_finite) draw once per point —
  /// like the real engines, retrying them fails identically. The transient
  /// kind draws independently per attempt (keyed on current_attempt()), so
  /// a bounded retry clears it with probability 1 - p^attempts.
  double invalid_point = 0.0;
  double non_convergence = 0.0;
  double non_finite = 0.0;
  double transient = 0.0;
  std::uint64_t seed = 0x5EEDF001ULL;
};

/// Faults actually fired so far, by kind (for matching against a
/// GuardedEvaluator's counters in tests).
struct FaultInjectionCounts {
  std::size_t invalid_point = 0;
  std::size_t non_convergence = 0;
  std::size_t non_finite = 0;
  std::size_t transient = 0;

  std::size_t total() const noexcept {
    return invalid_point + non_convergence + non_finite + transient;
  }

  friend bool operator==(const FaultInjectionCounts&,
                         const FaultInjectionCounts&) = default;
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument on a null evaluator or a probability
  /// outside [0, 1].
  FaultInjector(search::EvaluateFn inner, FaultInjectionConfig config);

  /// Evaluates `point`, throwing EvalException for injected invalid-point /
  /// non-convergence / transient faults; an injected non-finite fault
  /// instead poisons one metric of the inner result with NaN (exercising
  /// the guard's quarantine path). Safe to call concurrently.
  search::Evaluation operator()(const std::vector<double>& point,
                                int fidelity) const;

  /// The injector as an EvaluateFn (shares this instance's counters).
  search::EvaluateFn fn() const;

  FaultInjectionCounts counts() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
  search::EvaluateFn inner_;
  FaultInjectionConfig config_;
};

}  // namespace metacore::robust
