// Tests for the fault-tolerant evaluation layer: error classification,
// GuardedEvaluator retry/quarantine/conversion semantics, and the
// checkpoint JSON round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "robust/checkpoint.hpp"
#include "robust/error.hpp"
#include "robust/guarded_evaluator.hpp"

namespace metacore {
namespace {

search::Evaluation ok_eval(double cost) {
  search::Evaluation e;
  e.metrics["cost"] = cost;
  return e;
}

robust::EvalError classify(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (...) {
    return robust::classify_current_exception();
  }
}

TEST(EvalError, ClassifiesStandardExceptionTypes) {
  using Kind = robust::EvalErrorKind;
  EXPECT_EQ(classify(std::make_exception_ptr(std::invalid_argument("x"))).kind,
            Kind::InvalidPoint);
  EXPECT_EQ(classify(std::make_exception_ptr(std::domain_error("x"))).kind,
            Kind::InvalidPoint);
  EXPECT_EQ(classify(std::make_exception_ptr(std::out_of_range("x"))).kind,
            Kind::InvalidPoint);
  EXPECT_EQ(classify(std::make_exception_ptr(std::runtime_error("x"))).kind,
            Kind::InvalidPoint);
  // The schedulers throw std::logic_error when they fail to converge.
  EXPECT_EQ(classify(std::make_exception_ptr(std::logic_error("x"))).kind,
            Kind::NonConvergence);
  EXPECT_EQ(classify(std::make_exception_ptr(42)).kind, Kind::NonConvergence);
  // EvalException reports its own kind and message.
  const auto err = classify(std::make_exception_ptr(
      robust::EvalException(Kind::InjectedTransient, "blip")));
  EXPECT_EQ(err.kind, Kind::InjectedTransient);
  EXPECT_EQ(err.message, "blip");
}

TEST(EvalError, KindNamesAreStable) {
  using Kind = robust::EvalErrorKind;
  EXPECT_STREQ(robust::to_string(Kind::InvalidPoint), "invalid-point");
  EXPECT_STREQ(robust::to_string(Kind::NonConvergence), "non-convergence");
  EXPECT_STREQ(robust::to_string(Kind::NonFiniteMetric), "non-finite-metric");
  EXPECT_STREQ(robust::to_string(Kind::InjectedTransient),
               "injected-transient");
  EXPECT_TRUE(robust::is_transient(Kind::InjectedTransient));
  EXPECT_FALSE(robust::is_transient(Kind::InvalidPoint));
  EXPECT_FALSE(robust::is_transient(Kind::NonConvergence));
  EXPECT_FALSE(robust::is_transient(Kind::NonFiniteMetric));
}

TEST(GuardedEvaluator, PassesThroughCleanEvaluations) {
  robust::GuardedEvaluator guard(
      [](const std::vector<double>& point, int fidelity) {
        return ok_eval(point[0] + fidelity);
      });
  const auto eval = guard({2.5}, 3);
  EXPECT_TRUE(eval.feasible);
  EXPECT_EQ(eval.metrics.at("cost"), 5.5);
  EXPECT_TRUE(eval.failure_reason.empty());
  EXPECT_EQ(guard.counters(), robust::FailureCounters{});
}

TEST(GuardedEvaluator, RejectsInvalidConstruction) {
  EXPECT_THROW(robust::GuardedEvaluator(nullptr), std::invalid_argument);
  EXPECT_THROW(
      robust::GuardedEvaluator(
          [](const std::vector<double>&, int) { return ok_eval(0.0); },
          robust::RetryPolicy{0}),
      std::invalid_argument);
}

TEST(GuardedEvaluator, ConvertsTerminalFailuresToInfeasible) {
  robust::GuardedEvaluator guard(
      [](const std::vector<double>&, int) -> search::Evaluation {
        throw std::invalid_argument("degenerate corner");
      });
  const auto eval = guard({0.0}, 0);
  EXPECT_FALSE(eval.feasible);
  EXPECT_TRUE(eval.metrics.empty());
  EXPECT_EQ(eval.failure_reason, "invalid-point: degenerate corner");
  const auto c = guard.counters();
  EXPECT_EQ(c.invalid_point, 1u);
  EXPECT_EQ(c.failed_evaluations, 1u);
  EXPECT_EQ(c.retries, 0u);  // deterministic failures are not retried
}

TEST(GuardedEvaluator, RetriesTransientFaultsDeterministically) {
  // Fails on attempts 0 and 1, succeeds on attempt 2: with max_attempts = 3
  // the guard recovers; the attempt number must be visible to the evaluator.
  auto flaky = [](const std::vector<double>& point, int) {
    if (robust::current_attempt() < 2) {
      throw robust::EvalException(robust::EvalErrorKind::InjectedTransient,
                                  "blip");
    }
    return ok_eval(point[0]);
  };
  robust::GuardedEvaluator guard(flaky, robust::RetryPolicy{3});
  const auto eval = guard({7.0}, 0);
  EXPECT_TRUE(eval.feasible);
  EXPECT_EQ(eval.metrics.at("cost"), 7.0);
  auto c = guard.counters();
  EXPECT_EQ(c.transient_faults, 2u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.recovered, 1u);
  EXPECT_EQ(c.failed_evaluations, 0u);

  // One attempt fewer and the same fault sequence becomes terminal.
  robust::GuardedEvaluator strict(flaky, robust::RetryPolicy{2});
  const auto failed = strict({7.0}, 0);
  EXPECT_FALSE(failed.feasible);
  EXPECT_EQ(failed.failure_reason, "injected-transient: blip");
  c = strict.counters();
  EXPECT_EQ(c.transient_faults, 2u);
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.recovered, 0u);
  EXPECT_EQ(c.failed_evaluations, 1u);
}

TEST(GuardedEvaluator, QuarantinesNonFiniteMetrics) {
  robust::GuardedEvaluator guard(
      [](const std::vector<double>&, int) {
        search::Evaluation e;
        e.metrics["cost"] = 1.0;
        e.metrics["ber"] = std::numeric_limits<double>::quiet_NaN();
        e.metrics["area"] = std::numeric_limits<double>::infinity();
        return e;
      });
  const auto eval = guard({1.0}, 0);
  EXPECT_FALSE(eval.feasible);
  // Finite metrics survive; NaN/Inf never reach downstream predictors.
  EXPECT_EQ(eval.metrics.count("cost"), 1u);
  EXPECT_EQ(eval.metrics.count("ber"), 0u);
  EXPECT_EQ(eval.metrics.count("area"), 0u);
  EXPECT_NE(eval.failure_reason.find("non-finite-metric"), std::string::npos);
  EXPECT_NE(eval.failure_reason.find("ber"), std::string::npos);
  EXPECT_NE(eval.failure_reason.find("area"), std::string::npos);
  const auto c = guard.counters();
  EXPECT_EQ(c.non_finite, 1u);
  EXPECT_EQ(c.failed_evaluations, 1u);
}

TEST(GuardedEvaluator, AttemptNumberResetsBetweenEvaluations) {
  std::vector<int> attempts;
  robust::GuardedEvaluator guard(
      [&](const std::vector<double>&, int) {
        attempts.push_back(robust::current_attempt());
        return ok_eval(0.0);
      });
  guard({1.0}, 0);
  guard({2.0}, 0);
  EXPECT_EQ(attempts, (std::vector<int>{0, 0}));
  EXPECT_EQ(robust::current_attempt(), 0);
}

std::string temp_checkpoint_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Checkpoint, RoundTripsJournalExactly) {
  robust::SearchCheckpoint cp;
  cp.dimensions = 2;
  cp.probabilistic_metric = "ber";
  cp.fingerprint = {{"max_resolution", 3.0}, {"threshold", 0.05}};
  cp.failures.invalid_point = 2;
  cp.failures.retries = 5;
  cp.failures.failed_evaluations = 2;

  robust::CheckpointRecord a;
  a.indices = {0, 4};
  a.fidelity = 1;
  a.eval.feasible = true;
  a.eval.metrics = {{"cost", 0.1 + 0.2},  // not exactly 0.3: exercises %.17g
                    {"ber", 3.0517578125e-05}};
  a.eval.confidence_weight = 12345.0;

  robust::CheckpointRecord b;
  b.indices = {3, 1};
  b.fidelity = 0;
  b.eval.feasible = false;
  // Escapes and non-finite values must survive the round trip.
  b.eval.failure_reason = "invalid-point: \"quoted\"\n\ttabbed \\ slash";
  b.eval.metrics = {{"inf", std::numeric_limits<double>::infinity()},
                    {"ninf", -std::numeric_limits<double>::infinity()}};
  cp.journal = {a, b};

  const std::string path = temp_checkpoint_path("roundtrip.json");
  ASSERT_FALSE(robust::checkpoint_exists(path));
  robust::save_checkpoint(path, cp);
  ASSERT_TRUE(robust::checkpoint_exists(path));

  const auto loaded = robust::load_checkpoint(path);
  EXPECT_EQ(loaded.version, robust::kCheckpointVersion);
  EXPECT_EQ(loaded.dimensions, cp.dimensions);
  EXPECT_EQ(loaded.probabilistic_metric, cp.probabilistic_metric);
  EXPECT_EQ(loaded.fingerprint, cp.fingerprint);
  EXPECT_EQ(loaded.failures, cp.failures);
  ASSERT_EQ(loaded.journal.size(), 2u);
  EXPECT_EQ(loaded.journal[0].indices, a.indices);
  EXPECT_EQ(loaded.journal[0].fidelity, a.fidelity);
  EXPECT_EQ(loaded.journal[0].eval.feasible, true);
  // Bit-exact doubles, not just close.
  EXPECT_EQ(loaded.journal[0].eval.metrics, a.eval.metrics);
  EXPECT_EQ(loaded.journal[0].eval.confidence_weight,
            a.eval.confidence_weight);
  EXPECT_EQ(loaded.journal[1].eval.failure_reason, b.eval.failure_reason);
  EXPECT_EQ(loaded.journal[1].eval.metrics, b.eval.metrics);
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripsNaNMetric) {
  robust::SearchCheckpoint cp;
  cp.dimensions = 1;
  robust::CheckpointRecord rec;
  rec.indices = {0};
  rec.eval.metrics = {{"x", std::numeric_limits<double>::quiet_NaN()}};
  cp.journal = {rec};
  const std::string path = temp_checkpoint_path("nan.json");
  robust::save_checkpoint(path, cp);
  const auto loaded = robust::load_checkpoint(path);
  ASSERT_EQ(loaded.journal.size(), 1u);
  EXPECT_TRUE(std::isnan(loaded.journal[0].eval.metrics.at("x")));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingAndMalformedFiles) {
  EXPECT_THROW(robust::load_checkpoint(temp_checkpoint_path("absent.json")),
               std::runtime_error);
  const std::string path = temp_checkpoint_path("garbage.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  EXPECT_THROW(robust::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  if (!f) return text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

robust::SearchCheckpoint small_checkpoint() {
  robust::SearchCheckpoint cp;
  cp.dimensions = 1;
  robust::CheckpointRecord rec;
  rec.indices = {0};
  rec.eval.metrics = {{"cost", 1.0}};
  cp.journal = {rec};
  return cp;
}

TEST(Checkpoint, RejectsVersionMismatch) {
  const std::string path = temp_checkpoint_path("version.json");
  robust::save_checkpoint(path, small_checkpoint());
  // Rewrite the version field by hand.
  std::string text = read_file(path);
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"version\":9");
  write_file(path, text);
  EXPECT_THROW(robust::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFileWithDescriptiveError) {
  // A checkpoint is one atomic JSON document: a truncated file cannot have
  // been produced by save_checkpoint (tmp + rename), so load must refuse
  // it — with an error that names the checkpoint, not a bare parse fail.
  const std::string path = temp_checkpoint_path("truncated.json");
  robust::save_checkpoint(path, small_checkpoint());
  const std::string text = read_file(path);
  ASSERT_GT(text.size(), 20u);
  write_file(path, text.substr(0, text.size() / 2));
  try {
    robust::load_checkpoint(path);
    FAIL() << "truncated checkpoint must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageMidFileWithDescriptiveError) {
  const std::string path = temp_checkpoint_path("midfile.json");
  robust::save_checkpoint(path, small_checkpoint());
  std::string text = read_file(path);
  // Stomp a structural byte mid-document (the journal key's colon) so the
  // damage is guaranteed to be outside any string literal.
  const auto pos = text.find("\"journal\":");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 10] = '\x01';
  write_file(path, text);
  try {
    robust::load_checkpoint(path);
    FAIL() << "corrupt checkpoint must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metacore
