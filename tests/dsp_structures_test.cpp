// Tests for the filter realization structures: functional equivalence,
// cost accounting, and fixed-point quantization behaviour.
#include <gtest/gtest.h>

#include <tuple>

#include "dsp/design.hpp"
#include "dsp/structures.hpp"

namespace metacore::dsp {
namespace {

FilterSpec paper_spec() {
  FilterSpec spec;
  spec.band = BandType::Bandpass;
  spec.family = FilterFamily::Elliptic;
  spec.pass_lo = 0.411111;
  spec.pass_hi = 0.466667;
  spec.stop_lo = 0.3487015;
  spec.stop_hi = 0.494444;
  spec.passband_ripple_db = passband_ripple_db_from_eps(0.015782);
  spec.stopband_atten_db = stopband_atten_db_from_eps(0.0157816);
  return spec;
}

const TransferFunction& paper_tf() {
  static const DesignedFilter filter = design_filter(paper_spec());
  return filter.tf;
}

// Every structure must reproduce the designed transfer function: identical
// impulse responses (vs the direct-form reference) and identical frequency
// responses, across families.
class StructureSweep
    : public ::testing::TestWithParam<std::tuple<StructureKind, FilterFamily>> {
};

TEST_P(StructureSweep, ImpulseResponseMatchesReference) {
  const auto [kind, family] = GetParam();
  FilterSpec spec = paper_spec();
  spec.family = family;
  const DesignedFilter filter = design_filter(spec);
  auto dut = realize(filter.zpk, kind);
  auto ref = realize(filter.zpk, StructureKind::DirectForm2Transposed);
  for (int i = 0; i < 300; ++i) {
    const double x = i == 0 ? 1.0 : 0.0;
    EXPECT_NEAR(dut->process(x), ref->process(x), 1e-4) << "sample " << i;
  }
}

TEST_P(StructureSweep, EffectiveTfMatchesDesign) {
  const auto [kind, family] = GetParam();
  FilterSpec spec = paper_spec();
  spec.family = family;
  const DesignedFilter filter = design_filter(spec);
  const auto realization = realize(filter.zpk, kind);
  const TransferFunction etf = realization->effective_tf();
  for (double w = 0.05; w < 3.1; w += 0.1) {
    EXPECT_NEAR(etf.magnitude(w), filter.tf.magnitude(w), 1e-4) << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructuresAllFamilies, StructureSweep,
    ::testing::Combine(::testing::ValuesIn(all_structures()),
                       ::testing::Values(FilterFamily::Butterworth,
                                         FilterFamily::Chebyshev1,
                                         FilterFamily::Elliptic)));

TEST(Structures, ResetClearsState) {
  for (const auto kind : all_structures()) {
    auto r = realize(paper_tf(), kind);
    std::vector<double> first, second;
    for (int i = 0; i < 50; ++i) first.push_back(r->process(i == 0 ? 1.0 : 0.2));
    r->reset();
    for (int i = 0; i < 50; ++i) second.push_back(r->process(i == 0 ? 1.0 : 0.2));
    EXPECT_EQ(first, second) << to_string(kind);
  }
}

TEST(Structures, CostAccounting) {
  // Order-8 filter: direct forms use 2n delays (DF1) or n (DF2); cascade
  // has 4 biquads; the lattice-ladder uses 2n+n+1 multipliers.
  const auto df1 = realize(paper_tf(), StructureKind::DirectForm1)->cost();
  EXPECT_EQ(df1.delays, 16);
  const auto df2 = realize(paper_tf(), StructureKind::DirectForm2)->cost();
  EXPECT_EQ(df2.delays, 8);
  EXPECT_EQ(df2.multiplies, 17);
  const auto cas = realize(paper_tf(), StructureKind::Cascade)->cost();
  EXPECT_EQ(cas.delays, 8);
  EXPECT_EQ(cas.additions, 16);
  const auto lad = realize(paper_tf(), StructureKind::LatticeLadder)->cost();
  EXPECT_EQ(lad.delays, 8);
  EXPECT_GE(lad.multiplies, 2 * 8);  // lattice stages alone
}

TEST(Structures, CascadeSectionsMultiplyBack) {
  const auto cascade = realize(paper_tf(), StructureKind::Cascade);
  const TransferFunction product = cascade->effective_tf();
  const TransferFunction& target = paper_tf();
  for (double w = 0.1; w < 3.1; w += 0.25) {
    EXPECT_NEAR(product.magnitude(w), target.magnitude(w), 1e-7);
  }
}

TEST(Structures, ParallelSectionsSumBack) {
  const auto parallel = realize(paper_tf(), StructureKind::Parallel);
  const TransferFunction sum = parallel->effective_tf();
  for (double w = 0.1; w < 3.1; w += 0.25) {
    EXPECT_NEAR(sum.magnitude(w), paper_tf().magnitude(w), 1e-7);
  }
}

TEST(Structures, QuantizationDegradesGracefullyByStructure) {
  // The classic sensitivity ordering: at 10-12 bits the cascade/parallel
  // forms stay within spec-like ripple while the raw direct forms fall
  // apart (their high-order polynomial coefficients are hypersensitive).
  const FilterSpec spec = paper_spec();
  auto ripple_at = [&](StructureKind kind, int bits) {
    const auto q = realize(paper_tf(), kind)->quantized(bits);
    const TransferFunction tf = q->effective_tf();
    if (!tf.is_stable()) return 1e9;
    return measure_bandpass(tf, spec.pass_lo, spec.pass_hi, spec.stop_lo,
                            spec.stop_hi)
        .passband_ripple_db;
  };
  EXPECT_LT(ripple_at(StructureKind::Cascade, 11), 0.5);
  EXPECT_LT(ripple_at(StructureKind::Parallel, 11), 0.5);
  EXPECT_GT(ripple_at(StructureKind::DirectForm1, 11), 0.5);
}

TEST(Structures, QuantizedCoefficientsAreRepresentable) {
  const std::vector<double> coeffs{0.123456789, -1.987654321, 0.5};
  const auto q = quantize_coefficients(coeffs, 8);
  ASSERT_EQ(q.size(), coeffs.size());
  // 8-bit word with 1 integer bit (max |c| < 2): 6 fractional bits.
  for (std::size_t i = 0; i < q.size(); ++i) {
    const double scaled = q[i] * 64.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    EXPECT_NEAR(q[i], coeffs[i], 1.0 / 64.0);
  }
}

TEST(Structures, QuantizeValueRounds) {
  EXPECT_DOUBLE_EQ(quantize_value(0.3, 2), 0.25);
  EXPECT_DOUBLE_EQ(quantize_value(0.374, 3), 0.375);
  EXPECT_DOUBLE_EQ(quantize_value(-0.3, 2), -0.25);
}

TEST(Structures, QuantizeRejectsBadWordSize) {
  EXPECT_THROW(quantize_coefficients({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(quantize_coefficients({1.0}, 33), std::invalid_argument);
}

TEST(Structures, WiderWordsConvergeToExact) {
  for (const auto kind : all_structures()) {
    const auto exact = realize(paper_tf(), kind);
    const auto q24 = exact->quantized(24);
    const TransferFunction tf24 = q24->effective_tf();
    for (double w = 0.3; w < 3.0; w += 0.4) {
      EXPECT_NEAR(tf24.magnitude(w), paper_tf().magnitude(w), 1e-3)
          << to_string(kind);
    }
  }
}

TEST(Structures, RealizeRejectsDegenerateTf) {
  TransferFunction bad{{1.0}, {}};
  EXPECT_THROW(realize(bad, StructureKind::DirectForm1), std::invalid_argument);
  TransferFunction zero_a0{{1.0}, {0.0, 1.0}};
  EXPECT_THROW(realize(zero_a0, StructureKind::Cascade), std::invalid_argument);
}

TEST(Structures, LatticeRejectsUnstableTf) {
  // Pole outside the unit circle -> |reflection coefficient| >= 1.
  TransferFunction unstable{{1.0, 0.0}, {1.0, -1.5}};
  EXPECT_THROW(realize(unstable, StructureKind::LatticeLadder),
               std::runtime_error);
}

TEST(Structures, FirstOrderFilterAllStructures) {
  // Degenerate low-order input exercises the odd-section paths.
  TransferFunction first{{0.3, 0.3}, {1.0, -0.4}};
  for (const auto kind : all_structures()) {
    auto r = realize(first, kind);
    auto ref = realize(first, StructureKind::DirectForm1);
    for (int i = 0; i < 40; ++i) {
      const double x = i == 0 ? 1.0 : 0.0;
      EXPECT_NEAR(r->process(x), ref->process(x), 1e-10) << to_string(kind);
    }
  }
}

TEST(Structures, StreamingHelperMatchesLoop) {
  auto a = realize(paper_tf(), StructureKind::Cascade);
  auto b = realize(paper_tf(), StructureKind::Cascade);
  std::vector<double> input(100);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = std::sin(0.44 * M_PI * static_cast<double>(i));
  }
  const auto batch = a->process(input);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], b->process(input[i]));
  }
}

}  // namespace
}  // namespace metacore::dsp
