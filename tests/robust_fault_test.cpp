// Fault-injection matrix for the guarded multiresolution search: every
// failure kind, serial and parallel, with deterministic injection — the
// search must complete, account for every injected fault, and stay
// bit-identical across thread counts. Plus checkpoint/resume: a run killed
// mid-search resumes from its per-level checkpoint and reproduces the
// uninterrupted result with fewer evaluator calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "search/multires_search.hpp"
#include "util/rng.hpp"

namespace metacore {
namespace {

/// Deterministic synthetic landscape: a smooth bowl plus a point-keyed
/// pseudo-random BER-like metric (same shape as the exec_pool determinism
/// tests, so fault-free behavior is well understood).
search::EvaluateFn synthetic_eval(std::atomic<std::size_t>* calls) {
  return [calls](const std::vector<double>& point, int fidelity) {
    if (calls) calls->fetch_add(1);
    double v = 0.0;
    for (std::size_t d = 0; d < point.size(); ++d) {
      const double diff = point[d] - 0.5;
      v += diff * diff;
    }
    search::Evaluation e;
    e.metrics["cost"] = v + 0.01 * fidelity;
    const double noise =
        static_cast<double>(util::CounterRng::at(
            17, static_cast<std::uint64_t>(std::llround(v * 1e9)))) /
        static_cast<double>(std::numeric_limits<std::uint64_t>::max());
    e.metrics["ber"] = std::pow(10.0, -2.0 - 3.0 * noise - v);
    e.confidence_weight = 10'000.0;
    return e;
  };
}

search::DesignSpace synthetic_space() {
  std::vector<search::ParameterDef> params;
  for (int d = 0; d < 3; ++d) {
    search::ParameterDef p;
    p.name = "x" + std::to_string(d);
    for (int i = 0; i < 9; ++i) p.values.push_back(i / 8.0);
    p.correlation = search::Correlation::Smooth;
    params.push_back(p);
  }
  return search::DesignSpace(params);
}

search::Objective synthetic_objective() {
  search::Objective obj;
  obj.minimize = "cost";
  obj.constraints.push_back(
      {search::Constraint::Kind::UpperBound, "ber", 1e-3});
  return obj;
}

search::SearchConfig small_config() {
  search::SearchConfig config;
  config.max_resolution = 2;
  config.regions_per_level = 3;
  config.probabilistic_metric = "ber";
  return config;
}

struct InjectedRun {
  search::SearchResult result;
  robust::FaultInjectionCounts injected;
  std::size_t evaluator_calls = 0;
};

InjectedRun run_with_injection(const robust::FaultInjectionConfig& faults,
                               std::size_t threads) {
  exec::ThreadPool::set_global_threads(threads);
  std::atomic<std::size_t> calls{0};
  robust::FaultInjector injector(synthetic_eval(&calls), faults);
  search::MultiresolutionSearch engine(synthetic_space(),
                                       synthetic_objective(), injector.fn(),
                                       small_config());
  InjectedRun run;
  run.result = engine.run();
  run.injected = injector.counts();
  run.evaluator_calls = calls.load();
  exec::ThreadPool::set_global_threads(1);
  return run;
}

void expect_same_result(const search::SearchResult& a,
                        const search::SearchResult& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.found_feasible, b.found_feasible);
  EXPECT_EQ(a.best.indices, b.best.indices);
  EXPECT_EQ(a.best.eval.metrics, b.best.eval.metrics);
  EXPECT_EQ(a.failures, b.failures);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t p = 0; p < a.history.size(); ++p) {
    EXPECT_EQ(a.history[p].indices, b.history[p].indices);
    EXPECT_EQ(a.history[p].eval.metrics, b.history[p].eval.metrics);
    EXPECT_EQ(a.history[p].eval.failure_reason,
              b.history[p].eval.failure_reason);
  }
}

TEST(FaultMatrix, EveryKindSurvivesAndIsAccountedAtAnyThreadCount) {
  struct KindCase {
    const char* name;
    robust::FaultInjectionConfig faults;
  };
  std::vector<KindCase> cases(4);
  cases[0] = {"invalid_point", {}};
  cases[0].faults.invalid_point = 0.1;
  cases[1] = {"non_convergence", {}};
  cases[1].faults.non_convergence = 0.1;
  cases[2] = {"non_finite", {}};
  cases[2].faults.non_finite = 0.1;
  cases[3] = {"transient", {}};
  cases[3].faults.transient = 0.1;

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<InjectedRun> runs;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      runs.push_back(run_with_injection(c.faults, threads));
    }
    const auto& ref = runs[0];
    EXPECT_GT(ref.result.evaluations, 0u);
    EXPECT_GT(ref.injected.total(), 0u)
        << "injector never fired; the matrix tests nothing";

    // Guard counters must match the injector's record exactly.
    const auto& f = ref.result.failures;
    EXPECT_EQ(f.invalid_point, ref.injected.invalid_point);
    EXPECT_EQ(f.non_convergence, ref.injected.non_convergence);
    EXPECT_EQ(f.non_finite, ref.injected.non_finite);
    EXPECT_EQ(f.transient_faults, ref.injected.transient);
    // Terminal kinds fail exactly once per fault; transients fail only when
    // retries are exhausted (every non-final-attempt transient is retried).
    EXPECT_EQ(f.failed_evaluations,
              ref.injected.invalid_point + ref.injected.non_convergence +
                  ref.injected.non_finite +
                  (ref.injected.transient - f.retries));

    // Identical faults, trajectory, and accounting at 2 and 8 threads.
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].injected, ref.injected);
      expect_same_result(runs[i].result, ref.result);
    }
  }
}

TEST(FaultMatrix, TenPercentTransientRateCompletesWithAccurateCounters) {
  robust::FaultInjectionConfig faults;
  faults.transient = 0.10;
  const auto run = run_with_injection(faults, 8);
  EXPECT_GT(run.result.evaluations, 0u);
  EXPECT_GT(run.injected.transient, 0u);
  const auto& f = run.result.failures;
  EXPECT_EQ(f.transient_faults, run.injected.transient);
  EXPECT_EQ(f.retries + f.failed_evaluations, run.injected.transient);
  // Every retried-and-cleared evaluation is a recovery.
  EXPECT_GT(f.recovered, 0u);
  // The inner evaluator runs once per attempt the injector lets through:
  // total attempts (evaluations + retries) minus intercepted ones (fired
  // transients), which reduces to evaluations - failed_evaluations.
  EXPECT_EQ(run.evaluator_calls,
            run.result.evaluations - f.failed_evaluations);
}

TEST(FaultMatrix, WinnerUnchangedWhenFaultsOnlyHitInfeasiblePoints) {
  // Fault exactly the points that violate the BER constraint in the
  // fault-free landscape. Those points are never scored for refinement and
  // never win, so converting them from constraint-infeasible to
  // failed-infeasible must leave the trajectory and the winner untouched.
  // (The config deliberately has no probabilistic metric: region scoring
  // then depends only on constraint-feasible points, which faults never
  // touch here.)
  auto config = small_config();
  config.probabilistic_metric.clear();
  const auto clean_fn = synthetic_eval(nullptr);
  const auto violates_ber = [clean_fn](const std::vector<double>& point) {
    return clean_fn(point, 0).metrics.at("ber") > 1e-3;
  };

  exec::ThreadPool::set_global_threads(4);
  search::MultiresolutionSearch clean_engine(synthetic_space(),
                                             synthetic_objective(), clean_fn,
                                             config);
  const auto clean = clean_engine.run();
  ASSERT_TRUE(clean.found_feasible);

  auto faulty = [&](const std::vector<double>& point, int fidelity) {
    if (violates_ber(point)) {
      throw robust::EvalException(robust::EvalErrorKind::InvalidPoint,
                                  "constraint-violating point faulted");
    }
    return clean_fn(point, fidelity);
  };
  search::MultiresolutionSearch faulty_engine(synthetic_space(),
                                              synthetic_objective(), faulty,
                                              config);
  const auto faulted = faulty_engine.run();
  exec::ThreadPool::set_global_threads(1);

  EXPECT_GT(faulted.failures.invalid_point, 0u);
  ASSERT_TRUE(faulted.found_feasible);
  EXPECT_EQ(faulted.evaluations, clean.evaluations);
  EXPECT_EQ(faulted.best.indices, clean.best.indices);
  EXPECT_EQ(faulted.best.eval.metrics, clean.best.eval.metrics);
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Evaluator that hard-kills the process's search by throwing an unguarded
/// exception at the Nth call (guarding disabled in these tests).
search::EvaluateFn killing_eval(std::atomic<std::size_t>* calls,
                                std::size_t kill_at) {
  auto inner = synthetic_eval(nullptr);
  return [calls, kill_at, inner](const std::vector<double>& point,
                                 int fidelity) {
    if (calls->fetch_add(1) + 1 == kill_at) {
      throw std::runtime_error("simulated crash");
    }
    return inner(point, fidelity);
  };
}

TEST(CheckpointResume, KilledRunResumesToIdenticalResult) {
  auto config = small_config();
  config.guard_evaluations = false;  // let the crash propagate

  // Reference: uninterrupted run, no checkpoint.
  exec::ThreadPool::set_global_threads(4);
  std::atomic<std::size_t> ref_calls{0};
  search::MultiresolutionSearch ref_engine(synthetic_space(),
                                           synthetic_objective(),
                                           synthetic_eval(&ref_calls), config);
  const auto reference = ref_engine.run();
  ASSERT_GT(ref_calls.load(), 40u) << "landscape too small to kill mid-run";

  // Killed run: crashes past the halfway point, after at least one level
  // completed and flushed its checkpoint.
  const std::string path = temp_path("resume.json");
  std::remove(path.c_str());
  config.checkpoint_path = path;
  std::atomic<std::size_t> kill_calls{0};
  search::MultiresolutionSearch killed_engine(
      synthetic_space(), synthetic_objective(),
      killing_eval(&kill_calls, ref_calls.load() / 2), config);
  EXPECT_THROW(killed_engine.run(), std::runtime_error);
  ASSERT_TRUE(robust::checkpoint_exists(path))
      << "no level completed before the crash";

  // Resume: a fresh engine with a clean evaluator picks up the journal and
  // finishes without repeating completed work.
  std::atomic<std::size_t> resume_calls{0};
  search::MultiresolutionSearch resumed_engine(
      synthetic_space(), synthetic_objective(), synthetic_eval(&resume_calls),
      config);
  const auto resumed = resumed_engine.run();
  exec::ThreadPool::set_global_threads(1);

  expect_same_result(resumed, reference);
  EXPECT_LT(resume_calls.load(), ref_calls.load())
      << "resume re-evaluated work the checkpoint already covered";
  EXPECT_GT(resume_calls.load(), 0u);

  // Resuming a *completed* checkpoint replays everything: zero calls.
  std::atomic<std::size_t> replay_calls{0};
  search::MultiresolutionSearch replay_engine(
      synthetic_space(), synthetic_objective(), synthetic_eval(&replay_calls),
      config);
  const auto replayed = replay_engine.run();
  expect_same_result(replayed, reference);
  EXPECT_EQ(replay_calls.load(), 0u);
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsCheckpointFromDifferentConfiguration) {
  auto config = small_config();
  config.checkpoint_path = temp_path("mismatch.json");
  std::remove(config.checkpoint_path.c_str());
  search::MultiresolutionSearch writer(synthetic_space(),
                                       synthetic_objective(),
                                       synthetic_eval(nullptr), config);
  writer.run();
  ASSERT_TRUE(robust::checkpoint_exists(config.checkpoint_path));

  auto other = config;
  other.max_resolution = config.max_resolution + 1;
  search::MultiresolutionSearch reader(synthetic_space(),
                                       synthetic_objective(),
                                       synthetic_eval(nullptr), other);
  EXPECT_THROW(reader.run(), std::runtime_error);
  std::remove(config.checkpoint_path.c_str());
}

TEST(CheckpointResume, GuardedFaultsSurviveTheCheckpointRoundTrip) {
  // A guarded run with injected faults writes its counters and failure
  // reasons into the checkpoint; a replay restores both exactly.
  auto config = small_config();
  config.checkpoint_path = temp_path("faulted.json");
  std::remove(config.checkpoint_path.c_str());
  robust::FaultInjectionConfig faults;
  faults.invalid_point = 0.05;
  faults.transient = 0.05;

  exec::ThreadPool::set_global_threads(4);
  robust::FaultInjector injector(synthetic_eval(nullptr), faults);
  search::MultiresolutionSearch engine(synthetic_space(),
                                       synthetic_objective(), injector.fn(),
                                       config);
  const auto original = engine.run();
  ASSERT_GT(original.failures.total_faults(), 0u);

  std::atomic<std::size_t> replay_calls{0};
  search::MultiresolutionSearch replayer(synthetic_space(),
                                         synthetic_objective(),
                                         synthetic_eval(&replay_calls),
                                         config);
  const auto replayed = replayer.run();
  exec::ThreadPool::set_global_threads(1);

  expect_same_result(replayed, original);
  EXPECT_EQ(replay_calls.load(), 0u);
  std::remove(config.checkpoint_path.c_str());
}

}  // namespace
}  // namespace metacore
