// End-to-end digital filter design tests, including the paper's Section 5.3
// bandpass specification.
#include <gtest/gtest.h>

#include "dsp/design.hpp"

namespace metacore::dsp {
namespace {

FilterSpec paper_spec(FilterFamily family) {
  FilterSpec spec;
  spec.band = BandType::Bandpass;
  spec.family = family;
  spec.pass_lo = 0.411111;
  spec.pass_hi = 0.466667;
  spec.stop_lo = 0.3487015;
  spec.stop_hi = 0.494444;
  spec.passband_ripple_db = passband_ripple_db_from_eps(0.015782);
  spec.stopband_atten_db = stopband_atten_db_from_eps(0.0157816);
  return spec;
}

class BandpassFamilySweep : public ::testing::TestWithParam<FilterFamily> {};

TEST_P(BandpassFamilySweep, PaperSpecIsMet) {
  const FilterSpec spec = paper_spec(GetParam());
  const DesignedFilter filter = design_filter(spec);
  EXPECT_TRUE(filter.tf.is_stable());
  const BandMetrics m = measure_bandpass(filter.tf, spec.pass_lo, spec.pass_hi,
                                         spec.stop_lo, spec.stop_hi, 1024);
  EXPECT_LE(m.passband_ripple_db, spec.passband_ripple_db + 0.01);
  EXPECT_LE(m.max_stopband_gain_db, -spec.stopband_atten_db + 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BandpassFamilySweep,
                         ::testing::Values(FilterFamily::Butterworth,
                                           FilterFamily::Chebyshev1,
                                           FilterFamily::Chebyshev2,
                                           FilterFamily::Elliptic));

TEST(DesignFilter, PaperSpecEllipticOrderIsEight) {
  const DesignedFilter filter = design_filter(paper_spec(FilterFamily::Elliptic));
  EXPECT_EQ(filter.prototype_order, 4);
  EXPECT_EQ(filter.tf.order(), 8);
}

TEST(DesignFilter, EllipticUsesLowestOrder) {
  const int ellip =
      design_filter(paper_spec(FilterFamily::Elliptic)).prototype_order;
  const int cheb =
      design_filter(paper_spec(FilterFamily::Chebyshev1)).prototype_order;
  const int butter =
      design_filter(paper_spec(FilterFamily::Butterworth)).prototype_order;
  EXPECT_LE(ellip, cheb);
  EXPECT_LE(cheb, butter);
}

TEST(DesignFilter, LowpassMeetsSpec) {
  FilterSpec spec;
  spec.band = BandType::Lowpass;
  spec.family = FilterFamily::Elliptic;
  spec.pass_hi = 0.3;
  spec.stop_hi = 0.4;
  spec.passband_ripple_db = 0.5;
  spec.stopband_atten_db = 45.0;
  const DesignedFilter filter = design_filter(spec);
  EXPECT_TRUE(filter.tf.is_stable());
  // Passband [0, 0.3 pi].
  double min_pass = 0.0;
  for (double f = 0.001; f <= 0.3; f += 0.002) {
    min_pass = std::min(min_pass, filter.tf.magnitude_db(f * M_PI));
  }
  EXPECT_GE(min_pass, -0.55);
  // Stopband [0.4 pi, pi].
  double max_stop = -1e9;
  for (double f = 0.4; f <= 1.0; f += 0.002) {
    max_stop = std::max(max_stop, filter.tf.magnitude_db(f * M_PI));
  }
  EXPECT_LE(max_stop, -44.0);
}

TEST(DesignFilter, HighpassMeetsSpec) {
  FilterSpec spec;
  spec.band = BandType::Highpass;
  spec.family = FilterFamily::Chebyshev1;
  spec.pass_lo = 0.6;
  spec.stop_lo = 0.45;
  spec.passband_ripple_db = 0.5;
  spec.stopband_atten_db = 40.0;
  const DesignedFilter filter = design_filter(spec);
  EXPECT_TRUE(filter.tf.is_stable());
  double min_pass = 0.0;
  for (double f = 0.6; f <= 0.99; f += 0.002) {
    min_pass = std::min(min_pass, filter.tf.magnitude_db(f * M_PI));
  }
  EXPECT_GE(min_pass, -0.55);
  double max_stop = -1e9;
  for (double f = 0.01; f <= 0.45; f += 0.002) {
    max_stop = std::max(max_stop, filter.tf.magnitude_db(f * M_PI));
  }
  EXPECT_LE(max_stop, -39.0);
}

TEST(DesignFilter, BandstopMeetsSpec) {
  FilterSpec spec;
  spec.band = BandType::Bandstop;
  spec.family = FilterFamily::Butterworth;
  spec.pass_lo = 0.3;
  spec.stop_lo = 0.4;
  spec.stop_hi = 0.5;
  spec.pass_hi = 0.6;
  spec.passband_ripple_db = 1.0;
  spec.stopband_atten_db = 30.0;
  const DesignedFilter filter = design_filter(spec);
  EXPECT_TRUE(filter.tf.is_stable());
  double max_stop = -1e9;
  for (double f = 0.42; f <= 0.48; f += 0.002) {
    max_stop = std::max(max_stop, filter.tf.magnitude_db(f * M_PI));
  }
  EXPECT_LE(max_stop, -28.0);
  EXPECT_GE(filter.tf.magnitude_db(0.1 * M_PI), -1.2);
  EXPECT_GE(filter.tf.magnitude_db(0.9 * M_PI), -1.2);
}

TEST(DesignFilter, OrderOverrideIsHonored) {
  FilterSpec spec = paper_spec(FilterFamily::Elliptic);
  spec.order_override = 6;
  const DesignedFilter filter = design_filter(spec);
  EXPECT_EQ(filter.prototype_order, 6);
  EXPECT_EQ(filter.tf.order(), 12);
}

TEST(FilterSpec, ValidationRejectsBadBands) {
  FilterSpec spec = paper_spec(FilterFamily::Elliptic);
  spec.pass_lo = 0.5;  // above pass_hi
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = paper_spec(FilterFamily::Elliptic);
  spec.stop_lo = 0.45;  // inside the passband
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = paper_spec(FilterFamily::Elliptic);
  spec.passband_ripple_db = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(EpsConversions, PaperValues) {
  // eps_p = 0.015782 -> about 0.138 dB ripple; eps_s = 0.0157816 -> ~36 dB.
  EXPECT_NEAR(passband_ripple_db_from_eps(0.015782), 0.1382, 1e-3);
  EXPECT_NEAR(stopband_atten_db_from_eps(0.0157816), 36.04, 0.01);
  EXPECT_THROW(passband_ripple_db_from_eps(0.0), std::invalid_argument);
  EXPECT_THROW(stopband_atten_db_from_eps(1.0), std::invalid_argument);
}

TEST(AnalogTransforms, BilinearMapsLeftHalfPlaneInsideUnitCircle) {
  Zpk analog;
  analog.poles = {Complex{-0.5, 0.8}, Complex{-0.5, -0.8}, Complex{-2.0, 0.0}};
  analog.gain = 1.0;
  const Zpk digital = bilinear(analog);
  for (const Complex& p : digital.poles) {
    EXPECT_LT(std::abs(p), 1.0);
  }
  // Excess poles became zeros at z = -1.
  ASSERT_EQ(digital.zeros.size(), 3u);
  for (const Complex& z : digital.zeros) {
    EXPECT_NEAR(std::abs(z - Complex{-1.0, 0.0}), 0.0, 1e-12);
  }
}

TEST(AnalogTransforms, LpToBpDoublesOrder) {
  Zpk proto;
  proto.poles = {Complex{-1.0, 0.0}};
  proto.gain = 1.0;
  const Zpk bp = lp_to_bp(proto, 1.0, 0.2);
  EXPECT_EQ(bp.poles.size(), 2u);
  EXPECT_EQ(bp.zeros.size(), 1u);  // zero at s=0 from the excess pole
}

TEST(AnalogTransforms, LpToHpInvertsFrequencies) {
  Zpk proto;
  proto.poles = {Complex{-1.0, 0.0}};
  proto.gain = 1.0;  // H(0)=1, falls off with frequency
  const Zpk hp = lp_to_hp(proto, 2.0);
  // Highpass: small at DC, ~1 at high frequency.
  EXPECT_LT(std::abs(hp.response(Complex{0.0, 0.01})), 0.1);
  EXPECT_NEAR(std::abs(hp.response(Complex{0.0, 100.0})), 1.0, 0.05);
}

}  // namespace
}  // namespace metacore::dsp
