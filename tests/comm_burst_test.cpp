// Tests for the Gilbert-Elliott burst channel and block interleaver, plus
// the end-to-end property they exist for: interleaving restores coded
// performance on bursty channels.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/burst_channel.hpp"
#include "comm/channel.hpp"
#include "comm/interleaver.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

TEST(GilbertElliott, StationaryBadFraction) {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.18;
  EXPECT_NEAR(params.bad_fraction(), 0.1, 1e-12);
}

TEST(GilbertElliott, Validation) {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.bad_esn0_db = params.good_esn0_db + 1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(GilbertElliott, OccupancyMatchesStationaryDistribution) {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.09;  // bad fraction 0.1
  GilbertElliottChannel channel(params, 1.0, 5);
  int bad = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    channel.transmit(1.0);
    bad += channel.in_bad_state() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(bad) / kN, 0.1, 0.01);
}

TEST(GilbertElliott, NoiseIsBurstier) {
  // Same average noise power as a matched AWGN channel, but concentrated:
  // the variance of windowed error energy must be larger.
  GilbertElliottParams params;
  GilbertElliottChannel burst(params, 1.0, 7);
  const double avg_sigma = burst.average_noise_sigma();
  AwgnChannel awgn(10.0 * std::log10(0.5 / (avg_sigma * avg_sigma)), 1.0, 7);

  constexpr int kWindows = 400, kWindow = 256;
  auto window_energy_var = [&](auto& channel) {
    double sum = 0.0, sum2 = 0.0;
    for (int w = 0; w < kWindows; ++w) {
      double energy = 0.0;
      for (int i = 0; i < kWindow; ++i) {
        const double noise = channel.transmit(0.0);
        energy += noise * noise;
      }
      sum += energy;
      sum2 += energy * energy;
    }
    const double mean = sum / kWindows;
    return sum2 / kWindows - mean * mean;
  };
  EXPECT_GT(window_energy_var(burst), 3.0 * window_energy_var(awgn));
}

TEST(BlockInterleaver, RoundTripIdentity) {
  BlockInterleaver interleaver(8, 16);
  util::Random rng(3);
  std::vector<double> stream(8 * 16 * 3);
  for (auto& s : stream) s = rng.uniform(-1.0, 1.0);
  const auto forward = interleaver.interleave(std::span<const double>(stream));
  const auto back = interleaver.deinterleave(std::span<const double>(forward));
  EXPECT_EQ(back, stream);
}

TEST(BlockInterleaver, SpreadsContiguousBursts) {
  // A burst of `rows` consecutive symbols after interleaving lands in
  // distinct columns — de-interleaved positions at least `cols` apart.
  BlockInterleaver interleaver(8, 16);
  std::vector<int> marked(interleaver.depth(), 0);
  // Corrupt an 8-symbol burst in the interleaved domain.
  std::vector<int> interleaved(interleaver.depth());
  for (std::size_t i = 0; i < interleaved.size(); ++i) {
    interleaved[i] = static_cast<int>(i >= 40 && i < 48);
  }
  const auto spread =
      interleaver.deinterleave(std::span<const int>(interleaved));
  std::vector<std::size_t> hit_positions;
  for (std::size_t i = 0; i < spread.size(); ++i) {
    if (spread[i]) hit_positions.push_back(i);
  }
  ASSERT_EQ(hit_positions.size(), 8u);
  for (std::size_t i = 1; i < hit_positions.size(); ++i) {
    EXPECT_GE(hit_positions[i] - hit_positions[i - 1], 15u);
  }
}

TEST(BlockInterleaver, RejectsBadInput) {
  EXPECT_THROW(BlockInterleaver(0, 4), std::invalid_argument);
  BlockInterleaver interleaver(4, 4);
  std::vector<double> wrong(15, 0.0);
  EXPECT_THROW(interleaver.interleave(std::span<const double>(wrong)),
               std::invalid_argument);
}

TEST(BurstChannel, InterleavingRecoversCodedPerformance) {
  // End to end: K=5 soft Viterbi over a bursty channel, with and without a
  // block interleaver between encoder and channel. Interleaving must cut
  // the error count substantially.
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  util::Random data_rng(11);
  constexpr std::size_t kBits = 61'440;  // multiple of the interleaver depth
  std::vector<int> data(kBits);
  for (auto& b : data) b = data_rng.bit() ? 1 : 0;
  ConvolutionalEncoder enc1(code), enc2(code);
  BpskModulator mod;
  const auto tx_plain = mod.modulate(enc1.encode(data));
  const auto tx_symbols = mod.modulate(enc2.encode(data));

  GilbertElliottParams params;
  params.good_esn0_db = 6.0;
  params.bad_esn0_db = -6.0;
  params.p_good_to_bad = 0.004;
  params.p_bad_to_good = 0.10;

  BlockInterleaver interleaver(64, 96);  // depth 6144 symbols

  auto run = [&](bool use_interleaver, std::uint64_t seed) {
    GilbertElliottChannel channel(params, 1.0, seed);
    std::vector<double> rx;
    if (use_interleaver) {
      const auto shuffled =
          interleaver.interleave(std::span<const double>(tx_symbols));
      rx = interleaver.deinterleave(
          std::span<const double>(channel.transmit(shuffled)));
    } else {
      rx = channel.transmit(tx_plain);
    }
    auto decoder =
        make_soft_decoder(trellis, 25, 3, QuantizationMethod::AdaptiveSoft,
                          1.0, channel.average_noise_sigma());
    const auto out = decoder->decode(rx);
    int errors = 0;
    for (std::size_t i = 0; i < data.size(); ++i) errors += out[i] != data[i];
    return errors;
  };

  const int errors_plain = run(false, 99);
  const int errors_interleaved = run(true, 99);
  EXPECT_LT(errors_interleaved, errors_plain / 2);
}

}  // namespace
}  // namespace metacore::comm
