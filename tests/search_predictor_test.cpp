// Tests for the smooth-metric interpolator and the Bayesian BER predictor.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "search/predictor.hpp"

namespace metacore::search {
namespace {

TEST(SmoothEstimator, ExactAtObservations) {
  SmoothEstimator est;
  est.add({0.0, 0.0}, 1.0);
  est.add({1.0, 1.0}, 5.0);
  EXPECT_DOUBLE_EQ(est.predict(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(est.predict(std::vector<double>{1.0, 1.0}), 5.0);
}

TEST(SmoothEstimator, InterpolatesBetween) {
  SmoothEstimator est;
  est.add({0.0}, 0.0);
  est.add({1.0}, 10.0);
  const double mid = est.predict(std::vector<double>{0.5});
  EXPECT_NEAR(mid, 5.0, 1e-9);  // symmetric weights
  const double near_low = est.predict(std::vector<double>{0.1});
  EXPECT_LT(near_low, 2.0);
}

TEST(SmoothEstimator, EmptyReturnsZero) {
  SmoothEstimator est;
  EXPECT_DOUBLE_EQ(est.predict(std::vector<double>{0.5}), 0.0);
}

TEST(SmoothEstimator, DimensionMismatchThrows) {
  SmoothEstimator est;
  est.add({0.0, 0.0}, 1.0);
  EXPECT_THROW(est.predict(std::vector<double>{0.0}), std::invalid_argument);
}

TEST(BerPredictor, PredictsNearEvidence) {
  BerPredictor pred;
  pred.add({0.5, 0.5}, 1e-3, 100000);
  const auto p = pred.predict(std::vector<double>{0.5, 0.5});
  EXPECT_NEAR(p.log10_mean, -3.0, 0.05);
}

TEST(BerPredictor, UncertaintyGrowsWithDistance) {
  BerPredictor pred;
  pred.add({0.0, 0.0}, 1e-3, 100000);
  const auto close = pred.predict(std::vector<double>{0.05, 0.0});
  const auto far = pred.predict(std::vector<double>{1.0, 1.0});
  EXPECT_LT(close.log10_sigma, far.log10_sigma);
}

TEST(BerPredictor, BlendsNeighbors) {
  BerPredictor pred;
  pred.add({0.0}, 1e-2, 10000);
  pred.add({1.0}, 1e-6, 10000);
  const auto mid = pred.predict(std::vector<double>{0.5});
  EXPECT_LT(mid.log10_mean, -2.0);
  EXPECT_GT(mid.log10_mean, -6.0);
}

TEST(BerPredictor, ProbabilityMonotoneInThreshold) {
  BerPredictor pred;
  pred.add({0.5}, 1e-4, 100000);
  const std::vector<double> at{0.5};
  const double p_loose = pred.probability_below(at, 1e-2);
  const double p_exact = pred.probability_below(at, 1e-4);
  const double p_tight = pred.probability_below(at, 1e-8);
  EXPECT_GT(p_loose, p_exact);
  EXPECT_GT(p_exact, p_tight);
  EXPECT_GT(p_loose, 0.9);
  EXPECT_LT(p_tight, 0.1);
}

TEST(BerPredictor, NoEvidenceIsUninformative) {
  BerPredictor pred;
  EXPECT_DOUBLE_EQ(pred.probability_below(std::vector<double>{0.5}, 1e-4), 0.5);
  EXPECT_GT(pred.predict(std::vector<double>{0.5}).log10_sigma, 1.0);
}

TEST(BerPredictor, HeavierEvidenceDominates) {
  BerPredictor pred;
  pred.add({0.45}, 1e-2, 100);        // light evidence
  pred.add({0.55}, 1e-6, 10000000);   // heavy evidence
  const auto mid = pred.predict(std::vector<double>{0.5});
  EXPECT_LT(mid.log10_mean, -3.5);  // pulled toward the heavy observation
}

TEST(BerPredictor, ClampsDegenerateBers) {
  BerPredictor pred;
  pred.add({0.0}, 0.0, 1000);  // zero observed errors
  const auto p = pred.predict(std::vector<double>{0.0});
  EXPECT_LE(p.log10_mean, -11.0);
  EXPECT_THROW(pred.add({0.1}, 1e-3, 0.0), std::invalid_argument);
}

TEST(SmoothEstimator, RejectsNonFiniteEvidence) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  SmoothEstimator est;
  EXPECT_THROW(est.add({nan, 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(est.add({0.0, inf}, 1.0), std::invalid_argument);
  EXPECT_THROW(est.add({0.0}, nan), std::invalid_argument);
  EXPECT_THROW(est.add({0.0}, -inf), std::invalid_argument);
  // A rejected observation must not corrupt later predictions.
  est.add({0.0}, 2.0);
  EXPECT_DOUBLE_EQ(est.predict(std::vector<double>{0.0}), 2.0);
}

TEST(BerPredictor, RejectsNonFiniteEvidence) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  BerPredictor pred;
  EXPECT_THROW(pred.add({nan}, 1e-3, 1000.0), std::invalid_argument);
  EXPECT_THROW(pred.add({0.0}, nan, 1000.0), std::invalid_argument);
  EXPECT_THROW(pred.add({0.0}, inf, 1000.0), std::invalid_argument);
  EXPECT_THROW(pred.add({0.0}, 1e-3, inf), std::invalid_argument);
  EXPECT_THROW(pred.add({0.0}, 1e-3, nan), std::invalid_argument);
  // Still usable after rejections.
  pred.add({0.0}, 1e-4, 1000.0);
  const auto p = pred.predict(std::vector<double>{0.0});
  EXPECT_NEAR(p.log10_mean, -4.0, 0.2);
}

}  // namespace
}  // namespace metacore::search
