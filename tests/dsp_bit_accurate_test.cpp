// Tests for the bit-accurate fixed-point cascade datapath.
#include <gtest/gtest.h>

#include "dsp/bit_accurate.hpp"
#include "dsp/design.hpp"
#include "dsp/signal.hpp"

namespace metacore::dsp {
namespace {

const DesignedFilter& paper_filter() {
  static const DesignedFilter filter = [] {
    FilterSpec spec;
    spec.band = BandType::Bandpass;
    spec.family = FilterFamily::Elliptic;
    spec.pass_lo = 0.411111;
    spec.pass_hi = 0.466667;
    spec.stop_lo = 0.3487015;
    spec.stop_hi = 0.494444;
    spec.passband_ripple_db = passband_ripple_db_from_eps(0.015782);
    spec.stopband_atten_db = stopband_atten_db_from_eps(0.0157816);
    return design_filter(spec);
  }();
  return filter;
}

BitAccurateConfig wide_config() {
  BitAccurateConfig cfg;
  cfg.signal_format = {24, 19};       // plenty of headroom and resolution
  cfg.coefficient_format = {24, 21};
  return cfg;
}

TEST(ToSos, SectionsAreSecondOrderAndStable) {
  const auto sos = to_sos(paper_filter().zpk);
  ASSERT_EQ(sos.size(), 4u);  // 8th-order bandpass
  for (const auto& s : sos) {
    // Stability triangle: |a2| < 1 and |a1| < 1 + a2.
    EXPECT_LT(std::abs(s.a2), 1.0);
    EXPECT_LT(std::abs(s.a1), 1.0 + s.a2 + 1e-9);
  }
}

TEST(ToSos, ProductReconstructsResponse) {
  const auto sos = to_sos(paper_filter().zpk);
  for (double w = 0.2; w < 3.0; w += 0.3) {
    Complex h{1.0, 0.0};
    const Complex zinv = std::polar(1.0, -w);
    for (const auto& s : sos) {
      const Complex num = s.b0 + zinv * (s.b1 + zinv * s.b2);
      const Complex den = 1.0 + zinv * (s.a1 + zinv * s.a2);
      h *= num / den;
    }
    EXPECT_NEAR(std::abs(h), paper_filter().tf.magnitude(w), 1e-6) << w;
  }
}

TEST(BitAccurateCascade, WideFormatsTrackReference) {
  const auto stimulus = linear_chirp(2048, 0.35 * M_PI, 0.55 * M_PI, 0.5);
  const double snr =
      bit_accurate_snr_db(paper_filter().zpk, wide_config(), stimulus);
  EXPECT_GT(snr, 70.0);
}

TEST(BitAccurateCascade, SnrImprovesWithSignalWordLength) {
  const auto stimulus = linear_chirp(2048, 0.35 * M_PI, 0.55 * M_PI, 0.5);
  double prev = -100.0;
  for (int bits : {10, 14, 18, 22}) {
    BitAccurateConfig cfg;
    cfg.signal_format = {bits, bits - 5};
    cfg.coefficient_format = {20, 17};
    const double snr =
        bit_accurate_snr_db(paper_filter().zpk, cfg, stimulus);
    EXPECT_GT(snr, prev) << bits;
    prev = snr;
  }
  EXPECT_GT(prev, 50.0);
}

TEST(BitAccurateCascade, CountsSaturationWithoutHeadroom) {
  BitAccurateConfig cfg;
  cfg.signal_format = {12, 11};  // Q0.11: range [-1, 1) — no headroom
  cfg.coefficient_format = {16, 13};
  BitAccurateCascade cascade(paper_filter().zpk, cfg);
  // Drive near full scale in the passband: internal nodes exceed +-1.
  const auto stimulus = sine_wave(2048, 0.44 * M_PI, 0.98);
  cascade.process(stimulus);
  EXPECT_GT(cascade.saturation_events(), 0u);

  // With 3 integer bits of headroom the same stimulus never clips.
  BitAccurateConfig roomy = cfg;
  roomy.signal_format = {16, 12};
  BitAccurateCascade safe(paper_filter().zpk, roomy);
  safe.process(stimulus);
  EXPECT_EQ(safe.saturation_events(), 0u);
}

TEST(BitAccurateCascade, ResetClearsStateAndCounters) {
  BitAccurateCascade cascade(paper_filter().zpk, wide_config());
  const auto stimulus = sine_wave(256, 0.44 * M_PI, 0.5);
  const auto first = cascade.process(stimulus);
  cascade.reset();
  const auto second = cascade.process(stimulus);
  EXPECT_EQ(first, second);
  cascade.reset();
  EXPECT_EQ(cascade.saturation_events(), 0u);
}

TEST(BitAccurateCascade, RejectsCoefficientOverflow) {
  // A narrowband lowpass has poles near z = 1, so a1 ~ -1.9 — far outside
  // a Q0.7 coefficient ROM.
  FilterSpec spec;
  spec.band = BandType::Lowpass;
  spec.family = FilterFamily::Butterworth;
  spec.pass_hi = 0.05;
  spec.stop_hi = 0.15;
  spec.passband_ripple_db = 1.0;
  spec.stopband_atten_db = 30.0;
  const auto narrow = design_filter(spec);
  BitAccurateConfig cfg;
  cfg.signal_format = {16, 13};
  cfg.coefficient_format = {8, 7};  // Q0.7: range [-1, 1)
  EXPECT_THROW(BitAccurateCascade(narrow.zpk, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::dsp
