// Unit tests for the hard / fixed-soft / adaptive-soft channel quantizers.
#include <gtest/gtest.h>

#include "comm/quantizer.hpp"

namespace metacore::comm {
namespace {

TEST(Quantizer, HardSlicesOnSign) {
  const Quantizer q(QuantizationMethod::Hard, 1, 1.0, 0.5);
  EXPECT_EQ(q.bits(), 1);
  EXPECT_EQ(q.levels(), 2);
  EXPECT_EQ(q.quantize(-2.0), 0);
  EXPECT_EQ(q.quantize(-1e-9), 0);
  EXPECT_EQ(q.quantize(0.0), 1);
  EXPECT_EQ(q.quantize(3.0), 1);
}

TEST(Quantizer, HardForcesOneBit) {
  const Quantizer q(QuantizationMethod::Hard, 5, 1.0, 0.5);
  EXPECT_EQ(q.bits(), 1);
}

TEST(Quantizer, FixedSoftThreeBitLevels) {
  // 8 levels uniform over [-1, 1]: step 0.25, level = floor((x+1)/0.25).
  const Quantizer q(QuantizationMethod::FixedSoft, 3, 1.0, 0.5);
  EXPECT_EQ(q.levels(), 8);
  EXPECT_EQ(q.quantize(-1.5), 0);
  EXPECT_EQ(q.quantize(-0.99), 0);
  EXPECT_EQ(q.quantize(-0.70), 1);
  EXPECT_EQ(q.quantize(-0.01), 3);
  EXPECT_EQ(q.quantize(0.01), 4);
  EXPECT_EQ(q.quantize(0.99), 7);
  EXPECT_EQ(q.quantize(5.0), 7);
}

TEST(Quantizer, QuantizationIsMonotone) {
  for (auto method :
       {QuantizationMethod::FixedSoft, QuantizationMethod::AdaptiveSoft}) {
    const Quantizer q(method, 3, 1.0, 0.7);
    int prev = 0;
    for (double x = -3.0; x <= 3.0; x += 0.01) {
      const int level = q.quantize(x);
      EXPECT_GE(level, prev);
      prev = level;
    }
    EXPECT_EQ(prev, 7);
  }
}

TEST(Quantizer, AdaptiveDecisionLevelTracksNoise) {
  // Per Figure 4, the adaptive step is D = kD * sigma; doubling the noise
  // doubles the step.
  const Quantizer narrow(QuantizationMethod::AdaptiveSoft, 3, 1.0, 0.4);
  const Quantizer wide(QuantizationMethod::AdaptiveSoft, 3, 1.0, 0.8);
  EXPECT_NEAR(narrow.step(), kAdaptiveDecisionFactor * 0.4, 1e-12);
  EXPECT_NEAR(wide.step(), kAdaptiveDecisionFactor * 0.8, 1e-12);
  // A sample one noise-sigma above zero lands closer to the top with the
  // narrow quantizer.
  EXPECT_GE(narrow.quantize(0.4), wide.quantize(0.4));
}

TEST(Quantizer, AdaptiveIsCenteredOnZero) {
  const Quantizer q(QuantizationMethod::AdaptiveSoft, 3, 1.0, 0.5);
  EXPECT_EQ(q.quantize(-1e-9), 3);
  EXPECT_EQ(q.quantize(1e-9), 4);
}

TEST(Quantizer, BranchMetricDistances) {
  const Quantizer q(QuantizationMethod::FixedSoft, 3, 1.0, 0.5);
  // Level 0 is "confident 0": zero metric against expected 0, max against 1.
  EXPECT_EQ(q.branch_metric(0, 0), 0);
  EXPECT_EQ(q.branch_metric(0, 1), 7);
  EXPECT_EQ(q.branch_metric(7, 1), 0);
  EXPECT_EQ(q.branch_metric(7, 0), 7);
  EXPECT_EQ(q.branch_metric(3, 0), 3);
  EXPECT_EQ(q.branch_metric(3, 1), 4);
}

TEST(Quantizer, OneBitSoftEqualsHard) {
  const Quantizer hard(QuantizationMethod::Hard, 1, 1.0, 0.5);
  const Quantizer fixed1(QuantizationMethod::FixedSoft, 1, 1.0, 0.5);
  for (double x = -2.0; x <= 2.0; x += 0.013) {
    EXPECT_EQ(hard.quantize(x), fixed1.quantize(x)) << x;
  }
}

TEST(Quantizer, RejectsBadConfiguration) {
  EXPECT_THROW(Quantizer(QuantizationMethod::FixedSoft, 0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(Quantizer(QuantizationMethod::FixedSoft, 9, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(Quantizer(QuantizationMethod::FixedSoft, 3, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Quantizer, MethodNames) {
  EXPECT_EQ(to_string(QuantizationMethod::Hard), "hard");
  EXPECT_EQ(to_string(QuantizationMethod::FixedSoft), "fixed");
  EXPECT_EQ(to_string(QuantizationMethod::AdaptiveSoft), "adaptive");
}

}  // namespace
}  // namespace metacore::comm
