// Tests for the Viterbi MetaCore: parameter-space mapping, evaluation, and
// a small end-to-end search.
#include <gtest/gtest.h>

#include "core/viterbi_metacore.hpp"

namespace metacore::core {
namespace {

ViterbiRequirements easy_requirements() {
  ViterbiRequirements req;
  req.target_ber = 1e-2;
  req.esn0_db = 2.0;
  req.throughput_mbps = 1.0;
  return req;
}

// Point layout: K, L_mult, G, R1, R2, Q, N, M_frac.
TEST(ViterbiMetaCore, DecodePointHard) {
  ViterbiMetaCore core(easy_requirements());
  const auto spec = core.decode_point({5, 4, 0, 1, 3, 1, 1, 0.0});
  EXPECT_EQ(spec.kind, comm::DecoderKind::Hard);
  EXPECT_EQ(spec.code.constraint_length, 5);
  EXPECT_EQ(spec.traceback_depth, 20);
}

TEST(ViterbiMetaCore, DecodePointSoft) {
  ViterbiMetaCore core(easy_requirements());
  const auto spec = core.decode_point({7, 5, 0, 3, 4, 1, 1, 0.0});
  EXPECT_EQ(spec.kind, comm::DecoderKind::Soft);
  EXPECT_EQ(spec.high_res_bits, 3);  // single-resolution runs at R1
  EXPECT_EQ(spec.code.generators_octal(), "171,133");
}

TEST(ViterbiMetaCore, DecodePointMultires) {
  ViterbiMetaCore core(easy_requirements());
  const auto spec = core.decode_point({5, 5, 0, 1, 3, 1, 1, 0.25});
  EXPECT_EQ(spec.kind, comm::DecoderKind::Multires);
  EXPECT_EQ(spec.low_res_bits, 1);
  EXPECT_EQ(spec.high_res_bits, 3);
  EXPECT_EQ(spec.num_high_res_paths, 4);  // 0.25 * 16 states
}

TEST(ViterbiMetaCore, DecodePointRepairsDegenerateCombos) {
  ViterbiMetaCore core(easy_requirements());
  // R2 < R1 in multires mode: repaired to R2 = R1.
  const auto spec = core.decode_point({5, 5, 0, 3, 2, 1, 1, 0.5});
  EXPECT_EQ(spec.high_res_bits, 3);
  // N > M: clamped.
  const auto spec2 = core.decode_point({5, 5, 0, 1, 3, 1, 4, 0.125});
  EXPECT_EQ(spec2.num_high_res_paths, 2);
  EXPECT_LE(spec2.normalization_terms, spec2.num_high_res_paths);
}

TEST(ViterbiMetaCore, DesignSpaceHasEightDimensions) {
  ViterbiMetaCore core(easy_requirements());
  const auto space = core.design_space();
  EXPECT_EQ(space.dimensions(), 8u);
  // Fixed G and N collapse to singletons, per the paper's speed-up.
  EXPECT_EQ(space.parameters()[2].values.size(), 1u);
  EXPECT_EQ(space.parameters()[6].values.size(), 1u);

  ViterbiRequirements open = easy_requirements();
  open.fix_polynomial = false;
  open.fix_normalization = false;
  const auto wide = ViterbiMetaCore(open).design_space();
  EXPECT_GT(wide.parameters()[2].values.size(), 1u);
  EXPECT_GT(wide.parameters()[6].values.size(), 1u);
}

TEST(ViterbiMetaCore, RecommendedBerConfigScalesWithTarget) {
  const auto tight = ViterbiMetaCore::recommended_ber_config(1e-5);
  const auto loose = ViterbiMetaCore::recommended_ber_config(1e-2);
  EXPECT_GT(tight.max_bits, loose.max_bits);
}

TEST(ViterbiMetaCore, EvaluateProducesCoupledMetrics) {
  ViterbiMetaCore core(easy_requirements());
  const auto eval = core.evaluate({5, 4, 0, 1, 3, 1, 1, 0.25}, 0);
  ASSERT_TRUE(eval.feasible);
  EXPECT_TRUE(eval.has_metric("ber"));
  EXPECT_TRUE(eval.has_metric("area_mm2"));
  EXPECT_TRUE(eval.has_metric("cycles_per_bit"));
  EXPECT_GT(eval.metric("area_mm2"), 0.0);
  EXPECT_GT(eval.confidence_weight, 1000.0);
}

TEST(ViterbiMetaCore, CertifiedBerHasRuleOfThreeFloor) {
  // At Es/N0 = 8 dB a K=7 soft decoder sees no errors in a short run; the
  // certified BER must still be bounded below by ~3/bits.
  ViterbiRequirements req = easy_requirements();
  req.esn0_db = 8.0;
  comm::BerRunConfig ber;
  ber.max_bits = 20'000;
  ber.min_bits = 20'000;
  ViterbiMetaCore core(req, ber);
  const auto eval = core.evaluate({7, 5, 0, 3, 4, 1, 1, 0.0}, 0);
  EXPECT_GE(eval.metric("ber"), 3.0 / 20'000 * 0.99);
  EXPECT_DOUBLE_EQ(eval.metric("ber_observed"), 0.0);
}

TEST(ViterbiMetaCore, ObjectiveMinimizesAreaUnderBer) {
  ViterbiMetaCore core(easy_requirements());
  const auto obj = core.objective();
  EXPECT_EQ(obj.minimize, "area_mm2");
  ASSERT_EQ(obj.constraints.size(), 1u);
  EXPECT_EQ(obj.constraints[0].metric, "ber");
}

TEST(ViterbiMetaCore, SmallSearchFindsFeasibleDesign) {
  // Loose requirements so a tiny budget suffices.
  ViterbiRequirements req = easy_requirements();
  comm::BerRunConfig ber;
  ber.max_bits = 12'000;
  ber.min_bits = 8'000;
  ber.max_errors = 200;
  ViterbiMetaCore core(req, ber);
  search::SearchConfig config;
  config.max_resolution = 1;
  config.regions_per_level = 2;
  config.max_evaluations = 80;
  const auto result = core.search(config);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_GT(result.evaluations, 10u);
  const auto spec = core.decode_point(result.best.values);
  EXPECT_GE(spec.code.constraint_length, 3);
}

TEST(ViterbiMetaCore, RejectsBadRequirements) {
  ViterbiRequirements req = easy_requirements();
  req.target_ber = 0.0;
  EXPECT_THROW(ViterbiMetaCore{req}, std::invalid_argument);
  req = easy_requirements();
  req.throughput_mbps = -1.0;
  EXPECT_THROW(ViterbiMetaCore{req}, std::invalid_argument);
}

TEST(ViterbiMetaCore, RejectsWrongPointArity) {
  ViterbiMetaCore core(easy_requirements());
  EXPECT_THROW(core.decode_point({1, 2, 3}), std::invalid_argument);
}

TEST(Describe, FormatsSpecAndArea) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.kind = comm::DecoderKind::Soft;
  spec.high_res_bits = 3;
  const std::string text = describe(spec, 1.23);
  EXPECT_NE(text.find("35,23"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
}

}  // namespace
}  // namespace metacore::core
