// Tests for punctured convolutional codes.
#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "comm/puncture.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

TEST(PuncturePattern, StandardRates) {
  EXPECT_NEAR(rate_2_3_pattern().rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rate_3_4_pattern().rate(), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(rate_5_6_pattern().rate(), 5.0 / 6.0, 1e-12);
}

TEST(PuncturePattern, Validation) {
  PuncturePattern bad{2, {1, 1, 1}};  // wrong mask size
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  PuncturePattern starved{2, {1, 0, 0, 0}};  // rate above 1
  EXPECT_THROW(starved.validate(), std::invalid_argument);
  PuncturePattern zero{0, {}};
  EXPECT_THROW(zero.validate(), std::invalid_argument);
}

TEST(Puncture, DropsMaskedSymbols) {
  // Rate 2/3: mask 1,1,1,0 over pairs.
  const std::vector<int> symbols{10, 11, 20, 21, 30, 31, 40, 41};
  const auto out = puncture(std::span<const int>(symbols), rate_2_3_pattern());
  EXPECT_EQ(out, (std::vector<int>{10, 11, 20, 30, 31, 40}));
}

TEST(Depuncture, ReinsertsNeutralAtMaskedPositions) {
  const std::vector<double> received{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto out = depuncture(received, rate_2_3_pattern(), 4, 0.0);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0, 0.0}));
}

TEST(Depuncture, RoundTripsWithPuncture) {
  util::Random rng(4);
  std::vector<double> stream(60);
  for (auto& s : stream) s = rng.uniform(-1.0, 1.0);
  for (const auto& pattern :
       {rate_2_3_pattern(), rate_3_4_pattern(), rate_5_6_pattern()}) {
    const auto punctured = puncture(std::span<const double>(stream), pattern);
    const auto restored = depuncture(punctured, pattern, 30, -99.0);
    ASSERT_EQ(restored.size(), stream.size());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (restored[i] != -99.0) {
        EXPECT_DOUBLE_EQ(restored[i], stream[i]);
        ++kept;
      }
    }
    EXPECT_EQ(kept, punctured.size());
  }
}

TEST(Depuncture, RejectsLengthMismatch) {
  const std::vector<double> received{1.0, 2.0};
  EXPECT_THROW(depuncture(received, rate_2_3_pattern(), 4),
               std::invalid_argument);
  const std::vector<double> too_long(20, 0.0);
  EXPECT_THROW(depuncture(too_long, rate_2_3_pattern(), 4),
               std::invalid_argument);
}

class PuncturedDecodeSweep
    : public ::testing::TestWithParam<int> {};  // 0=2/3, 1=3/4, 2=5/6

TEST_P(PuncturedDecodeSweep, NoiselessDecodeRecoversData) {
  const PuncturePattern pattern = GetParam() == 0   ? rate_2_3_pattern()
                                  : GetParam() == 1 ? rate_3_4_pattern()
                                                    : rate_5_6_pattern();
  const CodeSpec code = best_rate_half_code(7);
  const Trellis trellis(code);
  util::Random rng(7 + static_cast<std::uint64_t>(GetParam()));
  // Data length must be a multiple of the pattern period.
  std::vector<int> data(30 * pattern.period);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  const auto tx = mod.modulate(encoder.encode(data));
  const auto punctured = puncture(std::span<const double>(tx), pattern);
  const auto rx = depuncture(punctured, pattern, data.size());
  auto decoder = make_soft_decoder(trellis, 10 * 7, 3,
                                   QuantizationMethod::FixedSoft, 1.0, 0.5);
  EXPECT_EQ(decoder->decode(rx), data) << pattern.label();
}

INSTANTIATE_TEST_SUITE_P(StandardPatterns, PuncturedDecodeSweep,
                         ::testing::Values(0, 1, 2));

TEST(PuncturedDecode, CorrectsNoiseAtModerateSnr) {
  const PuncturePattern pattern = rate_3_4_pattern();
  const CodeSpec code = best_rate_half_code(7);
  const Trellis trellis(code);
  util::Random rng(21);
  std::vector<int> data(3'000);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  const auto tx = mod.modulate(encoder.encode(data));
  AwgnChannel channel(4.5, 1.0, 17);
  const auto rx_p = channel.transmit(puncture(std::span<const double>(tx), pattern));
  const auto rx = depuncture(rx_p, pattern, data.size());
  auto decoder = make_soft_decoder(trellis, 70, 3,
                                   QuantizationMethod::AdaptiveSoft, 1.0,
                                   channel.noise_sigma());
  const auto out = decoder->decode(rx);
  int errors = 0;
  for (std::size_t i = 0; i < data.size(); ++i) errors += out[i] != data[i];
  // Punctured rate 3/4 still corrects the channel comfortably at 4.5 dB.
  EXPECT_LT(errors, 30);
}

TEST(PuncturedDecode, HigherRateTradesRobustness) {
  // At the same channel quality, the rate-5/6 punctured code must do worse
  // than the unpunctured mother code (less redundancy).
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  util::Random rng(5);
  std::vector<int> data(20'000);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder e1(code), e2(code);
  BpskModulator mod;
  const auto tx_full = mod.modulate(e1.encode(data));
  const auto tx_sym = mod.modulate(e2.encode(data));

  AwgnChannel ch1(2.5, 1.0, 31), ch2(2.5, 1.0, 31);
  const auto rx_full = ch1.transmit(tx_full);
  const auto pattern = rate_5_6_pattern();
  const auto rx_punct = depuncture(
      ch2.transmit(puncture(std::span<const double>(tx_sym), pattern)),
      pattern, data.size());

  auto d1 = make_soft_decoder(trellis, 50, 3, QuantizationMethod::AdaptiveSoft,
                              1.0, ch1.noise_sigma());
  auto d2 = make_soft_decoder(trellis, 50, 3, QuantizationMethod::AdaptiveSoft,
                              1.0, ch2.noise_sigma());
  int err_full = 0, err_punct = 0;
  const auto out_full = d1->decode(rx_full);
  const auto out_punct = d2->decode(rx_punct);
  for (std::size_t i = 0; i < data.size(); ++i) {
    err_full += out_full[i] != data[i];
    err_punct += out_punct[i] != data[i];
  }
  EXPECT_GT(err_punct, err_full);
}

}  // namespace
}  // namespace metacore::comm
