// The serialized-response cache behind DesignService::submit_encoded: a
// repeat of an identical query whose evaluator scope held still is
// answered as cached pre-encoded bytes (zero re-search), and any
// generation movement — store append, compaction, layout migration, or
// archive growth — invalidates the entry so a cached answer is always
// byte-identical to what a fresh submit() would produce right now.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "serve/binary_codec.hpp"
#include "serve/service.hpp"
#include "serve/store.hpp"

namespace metacore::serve {
namespace {

std::string temp_store_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::error_code ec;
  std::filesystem::remove_all(path + ".d", ec);
  return path;
}

/// Cheap Viterbi query (loose BER target, tiny budget).
DesignQuery tiny_query(double mbps = 1.0) {
  DesignQuery query;
  query.kind = QueryKind::Viterbi;
  query.target_ber = 1e-2;
  query.esn0_db = 1.0;
  query.throughput_mbps = mbps;
  query.ber_shards = 2;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 16;
  return query;
}

/// Submits twice so the entry is cached: the cold run moves its own scope
/// (store appends, archive growth) so by design the *repeat* is the run
/// that becomes cacheable. Returns the warm bytes.
std::shared_ptr<const std::string> warm_cache(DesignService& service,
                                              const DesignQuery& query,
                                              WireEncoding encoding) {
  service.submit_encoded(query, encoding);
  return service.submit_encoded(query, encoding);
}

TEST(ResponseCache, WarmRepeatHitsWithBytesIdenticalToAFreshSubmit) {
  DesignService service;
  const DesignQuery query = tiny_query();

  // Cold run: a miss that moves the archive, so it is not yet cached.
  const auto first = service.submit_encoded(query, WireEncoding::Json);
  EXPECT_EQ(service.stats().response_cache_misses, 1u);
  EXPECT_EQ(service.response_cache_size(), 0u);

  // The repeat re-runs with the scope now stable — cached from here on.
  const auto second = service.submit_encoded(query, WireEncoding::Json);
  EXPECT_EQ(service.stats().response_cache_misses, 2u);
  EXPECT_EQ(service.response_cache_size(), 1u);
  EXPECT_EQ(*second, *first);  // deterministic re-run, identical bytes

  const auto third = service.submit_encoded(query, WireEncoding::Json);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.response_cache_hits, 1u);
  EXPECT_EQ(stats.response_cache_misses, 2u);
  // A hit returns the cached buffer itself — no re-serialization.
  EXPECT_EQ(third.get(), second.get());
  // The cache contract: cached bytes == what a fresh submit produces now.
  EXPECT_EQ(*third, to_json(service.submit(query)));
}

TEST(ResponseCache, EncodingsShareOneEntryAndStayConsistent) {
  DesignService service;
  const DesignQuery query = tiny_query();
  const auto json = warm_cache(service, query, WireEncoding::Json);
  ASSERT_TRUE(json);
  ASSERT_EQ(service.response_cache_size(), 1u);

  // The binary fetch of the same query is a hit on the same entry (filled
  // lazily from the cached struct — still zero re-search) ...
  const auto binary = service.submit_encoded(query, WireEncoding::Binary);
  EXPECT_EQ(service.stats().response_cache_hits, 1u);
  EXPECT_EQ(service.response_cache_size(), 1u);
  // ... and decodes to exactly the cached JSON answer.
  EXPECT_EQ(to_json(decode_design_response(*binary)), *json);
  // Both encodings now hit.
  const auto again = service.submit_encoded(query, WireEncoding::Binary);
  EXPECT_EQ(again.get(), binary.get());
  EXPECT_EQ(service.stats().response_cache_hits, 2u);
}

TEST(ResponseCache, StoreAppendInvalidatesTheEntry) {
  ServiceConfig config;
  config.store_path = temp_store_path("cache_append.jsonl");
  DesignService service(config);
  const DesignQuery query = tiny_query();
  warm_cache(service, query, WireEncoding::Json);
  ASSERT_EQ(service.response_cache_size(), 1u);

  // A wider-budget query on the SAME evaluator scope (budget is not part
  // of the fingerprint) evaluates fresh points and appends them to the
  // same store shard — the generation moves under the cached entry.
  DesignQuery wider = query;
  wider.budget.initial_points_per_dim = 3;
  wider.budget.max_evaluations = 48;
  service.submit(wider);

  const auto after = service.submit_encoded(query, WireEncoding::Json);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.response_cache_invalidations, 1u);
  // The invalidated repeat still answers correctly — and byte-identically
  // to a fresh submit against the enlarged store.
  EXPECT_EQ(*after, to_json(service.submit(query)));
}

TEST(ResponseCache, CompactionInvalidatesTheEntry) {
  ServiceConfig config;
  config.store_path = temp_store_path("cache_compact.jsonl");
  DesignService service(config);
  const DesignQuery query = tiny_query();
  warm_cache(service, query, WireEncoding::Json);
  ASSERT_EQ(service.response_cache_size(), 1u);
  const ServiceStats before = service.stats();

  // Snapshot compaction rewrites the journal: same entries, new
  // generation — the cache must not assume the scope held still.
  service.store()->compact();
  const auto after = service.submit_encoded(query, WireEncoding::Json);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.response_cache_invalidations,
            before.response_cache_invalidations + 1);
  EXPECT_EQ(*after, to_json(service.submit(query)));
}

TEST(ResponseCache, LayoutMigrationBumpsTheStoreGeneration) {
  // The migration arm of the invalidation contract: reopening a store
  // into a different shard layout rewrites every shard, so a service
  // attached to the migrated store sees a fresh generation and can never
  // serve bytes stamped under the old layout.
  const std::string path = temp_store_path("cache_migrate.jsonl");
  const DesignQuery query = tiny_query();
  const std::string fingerprint = query_fingerprint(query);
  {
    StoreConfig store_config;
    store_config.shards = 1;
    DesignService service(
        {path, std::make_shared<EvaluationStore>(path, store_config)});
    service.submit(query);
  }
  StoreConfig resharded;
  resharded.shards = 4;
  EvaluationStore migrated(path, resharded);
  EXPECT_TRUE(migrated.stats().migrated_layout);
  EXPECT_GE(migrated.generation(fingerprint), 1u);
}

TEST(ResponseCache, CapacityZeroDisablesCaching) {
  ServiceConfig config;
  config.response_cache_capacity = 0;
  DesignService service(config);
  const DesignQuery query = tiny_query();
  for (int i = 0; i < 3; ++i) {
    service.submit_encoded(query, WireEncoding::Json);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.response_cache_hits, 0u);
  EXPECT_EQ(service.response_cache_size(), 0u);
}

TEST(ResponseCache, FifoEvictionHonorsTheCapacity) {
  ServiceConfig config;
  config.response_cache_capacity = 1;
  DesignService service(config);
  const DesignQuery a = tiny_query(1.0);
  const DesignQuery b = tiny_query(2.0);
  warm_cache(service, a, WireEncoding::Json);
  ASSERT_EQ(service.response_cache_size(), 1u);

  // Warming a second query evicts the first (FIFO) instead of growing.
  warm_cache(service, b, WireEncoding::Json);
  EXPECT_EQ(service.response_cache_size(), 1u);

  // `a` was evicted: its repeat is a miss again, not a hit.
  const std::size_t hits_before = service.stats().response_cache_hits;
  service.submit_encoded(a, WireEncoding::Json);
  EXPECT_EQ(service.stats().response_cache_hits, hits_before);
}

TEST(ResponseCache, BatchDeduplicatesIdenticalEncodedQueries) {
  DesignService service;
  const DesignQuery query = tiny_query();
  warm_cache(service, query, WireEncoding::Json);

  std::vector<DesignService::EncodedQuery> items(4);
  for (auto& item : items) {
    item.query = query;
    item.encoding = WireEncoding::Json;
  }
  items[3].encoding = WireEncoding::Binary;
  const auto out = service.submit_batch_encoded(items);
  ASSERT_EQ(out.size(), 4u);
  // The three identical (query, encoding) pairs share one buffer.
  EXPECT_EQ(out[0].get(), out[1].get());
  EXPECT_EQ(out[1].get(), out[2].get());
  // The binary slot decodes to the same answer.
  EXPECT_EQ(to_json(decode_design_response(*out[3])), *out[0]);
}

}  // namespace
}  // namespace metacore::serve
