// Tests for signal generators, SNR measurement, and group delay.
#include <gtest/gtest.h>

#include "dsp/design.hpp"
#include "dsp/signal.hpp"
#include "dsp/structures.hpp"

namespace metacore::dsp {
namespace {

TEST(SineWave, FrequencyAndAmplitude) {
  const auto s = sine_wave(1000, M_PI / 4.0, 2.0);
  double peak = 0.0;
  for (double x : s) peak = std::max(peak, std::abs(x));
  EXPECT_NEAR(peak, 2.0, 1e-3);
  // Period 8 samples: s[n+8] == s[n].
  for (std::size_t n = 0; n + 8 < s.size(); n += 7) {
    EXPECT_NEAR(s[n], s[n + 8], 1e-9);
  }
}

TEST(LinearChirp, SweepsTheBand) {
  const auto c = linear_chirp(4096, 0.05 * M_PI, 0.95 * M_PI);
  EXPECT_EQ(c.size(), 4096u);
  // Energy is spread: no clipping, bounded amplitude.
  for (double x : c) EXPECT_LE(std::abs(x), 1.0 + 1e-12);
  EXPECT_THROW(linear_chirp(1, 0.1, 0.2), std::invalid_argument);
}

TEST(WhiteNoise, MomentsAndDeterminism) {
  const auto a = white_noise(50'000, 0.5, 9);
  const auto b = white_noise(50'000, 0.5, 9);
  EXPECT_EQ(a, b);
  double sum = 0.0, sum2 = 0.0;
  for (double x : a) {
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / a.size(), 0.0, 0.01);
  EXPECT_NEAR(sum2 / a.size(), 0.25, 0.01);
}

TEST(OutputSnr, KnownRatios) {
  const std::vector<double> ref{1.0, -1.0, 1.0, -1.0};
  std::vector<double> noisy = ref;
  for (auto& x : noisy) x *= 1.1;  // 10% amplitude error
  EXPECT_NEAR(output_snr_db(ref, noisy), 20.0, 0.1);  // 20 dB
  EXPECT_DOUBLE_EQ(output_snr_db(ref, ref), 300.0);
  EXPECT_THROW(output_snr_db(ref, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(OutputSnr, MeasuresCoefficientQuantizationError) {
  // Quantizing cascade coefficients costs SNR monotonically as the word
  // shrinks, on a broadband chirp through the paper's bandpass filter.
  FilterSpec spec;
  spec.band = BandType::Bandpass;
  spec.family = FilterFamily::Elliptic;
  spec.pass_lo = 0.411111;
  spec.pass_hi = 0.466667;
  spec.stop_lo = 0.3487015;
  spec.stop_hi = 0.494444;
  spec.passband_ripple_db = passband_ripple_db_from_eps(0.015782);
  spec.stopband_atten_db = stopband_atten_db_from_eps(0.0157816);
  const auto filter = design_filter(spec);
  const auto stimulus = linear_chirp(4096, 0.35 * M_PI, 0.55 * M_PI);

  auto exact = realize(filter.zpk, StructureKind::Cascade);
  const auto reference = exact->process(stimulus);

  double prev_snr = -1.0;
  for (int bits : {8, 12, 16, 20}) {
    auto quantized = realize(filter.zpk, StructureKind::Cascade)->quantized(bits);
    const auto actual = quantized->process(stimulus);
    const double snr = output_snr_db(reference, actual);
    EXPECT_GT(snr, prev_snr) << bits;
    prev_snr = snr;
  }
  EXPECT_GT(prev_snr, 60.0);  // 20-bit coefficients are near-transparent
}

TEST(GroupDelay, ConstantForPureDelay) {
  // H(z) = z^-3: group delay 3 samples everywhere.
  TransferFunction tf{{0.0, 0.0, 0.0, 1.0}, {1.0}};
  for (double w : {0.3, 1.0, 2.0, 2.8}) {
    EXPECT_NEAR(group_delay(tf, w), 3.0, 1e-6) << w;
  }
}

TEST(GroupDelay, PositiveInPassbandOfIirFilter) {
  FilterSpec spec;
  spec.band = BandType::Lowpass;
  spec.family = FilterFamily::Chebyshev1;
  spec.pass_hi = 0.4;
  spec.stop_hi = 0.5;
  spec.passband_ripple_db = 0.5;
  spec.stopband_atten_db = 40.0;
  const auto filter = design_filter(spec);
  // IIR passband group delay is positive and peaks toward the band edge.
  const double mid = group_delay(filter.tf, 0.2 * M_PI);
  const double edge = group_delay(filter.tf, 0.39 * M_PI);
  EXPECT_GT(mid, 0.0);
  EXPECT_GT(edge, mid);
}

}  // namespace
}  // namespace metacore::dsp
