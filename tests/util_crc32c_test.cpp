// CRC32C dispatch: the portable slice-by-8 reference against known check
// values, bit-identity between the software and SSE4.2 hardware tiers at
// every size/alignment, and the backend-forcing knob the env override
// (METACORE_CRC32C) routes through.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace metacore::util {
namespace {

TEST(Crc32c, MatchesTheRfc3720CheckValue) {
  // The canonical CRC32C test vector (RFC 3720 appendix B.4).
  EXPECT_EQ(crc32c_sw("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c_sw(""), 0x00000000u);
  // 32 zero bytes, another published vector.
  EXPECT_EQ(crc32c_sw(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, HardwareTierIsBitIdenticalToSoftware) {
  if (!crc32c_hw_available()) {
    GTEST_SKIP() << "SSE4.2 CRC32C not available on this build/CPU";
  }
  // Every length 0..256 plus some large odd sizes, at shifted offsets so
  // the hardware path's alignment head/tail handling is exercised.
  std::string data(4096 + 7, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(CounterRng::at(0x5eedc0de, i));
  }
  for (std::size_t size = 0; size <= 256; ++size) {
    for (std::size_t offset : {0u, 1u, 3u, 7u}) {
      const char* p = data.data() + offset;
      crc32c_force_backend("sw");
      const std::uint32_t sw = crc32c(p, size);
      crc32c_force_backend("hw");
      EXPECT_EQ(crc32c(p, size), sw) << "size " << size << " off " << offset;
    }
  }
  for (std::size_t size : {1023u, 2048u, 4093u}) {
    crc32c_force_backend("sw");
    const std::uint32_t sw = crc32c(data.data(), size);
    crc32c_force_backend("hw");
    EXPECT_EQ(crc32c(data.data(), size), sw) << "size " << size;
  }
  crc32c_force_backend("auto");
}

TEST(Crc32c, ForceBackendRoutesAndValidates) {
  crc32c_force_backend("sw");
  EXPECT_EQ(crc32c_backend(), "sw-slice8");
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  if (crc32c_hw_available()) {
    crc32c_force_backend("hw");
    EXPECT_EQ(crc32c_backend(), "hw-sse42");
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  } else {
    EXPECT_THROW(crc32c_force_backend("hw"), std::runtime_error);
  }
  EXPECT_THROW(crc32c_force_backend("fpga"), std::invalid_argument);
  crc32c_force_backend("auto");
  // Whatever auto resolves to, the answer is the same.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

}  // namespace
}  // namespace metacore::util
